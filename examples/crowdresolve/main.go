// Crowdresolve: the crowdsourcing loop in isolation. A scripted
// scenario produces a source disagreement (a faulty bus reports
// congestion at a free-flowing intersection); the query execution
// engine pushes the question to nearby volunteers over 2G/3G/WiFi,
// online EM fuses their answers, and the verdict — fed back as a crowd
// event — makes the CEP engine flag the bus as noisy, after which the
// self-adaptive busCongestion definition (rule-set 3′) discards its
// reports.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)

	interPos := geo.At(53.3471, -6.2621)
	parnellPos := geo.At(53.3528, -6.2634)
	registry, err := traffic.NewRegistry([]traffic.Intersection{
		{ID: "oconnell-bridge", Pos: interPos, Sensors: []string{"s1"}},
		{ID: "parnell-square", Pos: parnellPos, Sensors: []string{"s2"}},
	}, 120)
	if err != nil {
		log.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{
		Registry:    registry,
		NoisyPolicy: traffic.CrowdValidated, // rule-set (4)
		Adaptive:    true,                   // rule-set (3′)
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 1800, Step: 600})
	if err != nil {
		log.Fatal(err)
	}

	// --- the disagreement -------------------------------------------------
	// SCATS says free flow; the faulty bus insists on congestion.
	if err := engine.Input(
		traffic.Traffic(60, "s1", "oconnell-bridge", "A1", 0.08, 1200),
		traffic.Move(300, "bus33009", "r10", "DublinBus", 30, interPos, 0, true),
	); err != nil {
		log.Fatal(err)
	}
	res, err := engine.Query(600)
	if err != nil {
		log.Fatal(err)
	}
	var disagreement *rtec.Event
	for i, ev := range res.Fresh {
		if ev.Type == traffic.Disagree {
			disagreement = &res.Fresh[i]
		}
	}
	if disagreement == nil {
		log.Fatal("expected a disagree event")
	}
	bus, _ := disagreement.Str("bus")
	val, _ := disagreement.Str("value")
	fmt.Printf("CEP detected: disagree(bus=%s, intersection=%s, %s) at t=%d\n",
		bus, disagreement.Key, val, int64(disagreement.Time))
	fmt.Printf("noisy(%s) before crowd input: %v\n\n", bus, res.HoldsAt(traffic.Noisy, bus, 600))

	// --- the crowdsourcing round ------------------------------------------
	qeeEngine := qee.NewEngine(qee.Options{Seed: 42})
	roster := crowd.NewRoster()
	estimator := crowd.NewEstimator(crowd.EstimatorOptions{})

	// Five volunteers around the bridge, one of them unreliable. The
	// ground truth is "no congestion".
	errorProbs := map[string]float64{"anna": 0.05, "brian": 0.1, "ciara": 0.1, "dara": 0.2, "eoin": 0.85}
	seed := int64(0)
	for id, p := range errorProbs {
		seed++
		sim := crowd.NewSimulatedParticipant(id, p, seed)
		if err := roster.Register(crowd.Participant{ID: id, Pos: interPos, Online: true}); err != nil {
			log.Fatal(err)
		}
		if err := qeeEngine.Connect(qee.Device{
			Participant: crowd.Participant{ID: id, Pos: interPos},
			Network:     qee.Network(int(seed) % 3),
			Respond: func(q qee.Query) (string, time.Duration) {
				return sim.Answer(q.Answers, traffic.Negative).Label, time.Second
			},
		}); err != nil {
			log.Fatal(err)
		}
	}

	selected := crowd.SelectNearest(5, 0)(roster.Online(), interPos)
	exec, err := qeeEngine.Execute(context.Background(), qee.Query{
		ID:       "oconnell-bridge@600",
		Question: "Is there a traffic congestion at O'Connell Bridge?",
		Answers:  []string{traffic.Positive, traffic.Negative},
		Pos:      interPos,
	}, selected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("map phase answers:")
	for _, a := range exec.Answers {
		fmt.Printf("   %s → %s\n", a.Participant, a.Label)
	}
	fmt.Printf("reduce phase counts: %v\n", exec.Counts)
	for _, t := range exec.Timings {
		fmt.Printf("   %-6s %-4s trigger %3dms, push %3dms, comm %3dms\n",
			t.Participant, t.Network, t.Trigger.Milliseconds(), t.Push.Milliseconds(), t.Comm.Milliseconds())
	}

	verdict, err := estimator.Process(exec.Task(nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nonline EM verdict: %q with confidence %.3f\n", verdict.Best, verdict.Confidence)

	// Rewards: participants earn in proportion to how strongly the
	// fused posterior backs their answer ("a participant's quality may
	// be a factor in the computation of the reward", Section 7.2).
	ledger, err := crowd.NewLedger(crowd.ProportionalReward(0.10)) // €0.10 base
	if err != nil {
		log.Fatal(err)
	}
	if err := ledger.Credit(exec.Task(nil), verdict); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewards for this task:")
	for _, b := range ledger.Balances() {
		fmt.Printf("   %-6s €%.3f\n", b.Participant, b.Earned)
	}

	// --- feeding the verdict back ------------------------------------------
	crowdEv := traffic.CrowdVerdict(660, "oconnell-bridge", verdict.Best)
	crowdEv.Attrs["lon"] = interPos.Lon
	crowdEv.Attrs["lat"] = interPos.Lat
	// The same faulty bus drives on and claims congestion at Parnell
	// Square too (SCATS there agrees with the crowd: free flow).
	if err := engine.Input(
		crowdEv,
		traffic.Traffic(650, "s2", "parnell-square", "A1", 0.06, 1300),
		traffic.Move(700, "bus33009", "r10", "DublinBus", 30, parnellPos, 0, true),
	); err != nil {
		log.Fatal(err)
	}
	res, err = engine.Query(1200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter crowd feedback (query time 1200):\n")
	fmt.Printf("   noisy(%s): %v for %v\n", bus,
		res.HoldsAt(traffic.Noisy, bus, 1200), res.Intervals(traffic.Noisy, bus))
	fmt.Printf("   busCongestion(parnell-square): %v — the report at t=700 was discarded (rule-set 3')\n",
		res.Intervals(traffic.BusCongestion, "parnell-square"))
	fmt.Printf("   busCongestion(oconnell-bridge): %v — the pre-verdict initiation persists by inertia\n",
		res.Intervals(traffic.BusCongestion, "oconnell-bridge"))
}
