// Sparsitymap: the traffic modelling component in isolation. Sensor
// readings from the synthetic SCATS deployment condition a Gaussian
// Process with the regularized Laplacian kernel; the program prints a
// comparison of estimated vs true flow at junctions WITHOUT sensors
// (the whole point of the component) and renders the Figure 9 style
// city map as SVG.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/gp"
	"github.com/insight-dublin/insight/rtec"
)

func main() {
	log.SetFlags(0)

	city, err := dublin.NewCity(dublin.Config{Seed: 3, NumBuses: 1, NumSensors: 300})
	if err != nil {
		log.Fatal(err)
	}
	g := city.Graph()
	at := rtec.Time(8 * 3600) // morning rush snapshot

	// Observations: one aggregated reading per sensor-carrying junction.
	perVertex := map[int][]float64{}
	for i := range city.Sensors() {
		s := &city.Sensors()[i]
		_, flow := city.SensorReading(s, at)
		perVertex[s.Vertex] = append(perVertex[s.Vertex], flow)
	}
	var obs []gp.Observation
	for v, flows := range perVertex {
		var sum float64
		for _, f := range flows {
			sum += f
		}
		obs = append(obs, gp.Observation{Vertex: v, Value: sum / float64(len(flows))})
	}
	fmt.Printf("street network: %d junctions; sensors cover %d (%.0f%%)\n",
		g.NumVertices(), len(obs), 100*float64(len(obs))/float64(g.NumVertices()))

	// Hyperparameters by grid search in [0, 10] (the paper's choice).
	grid := gp.DefaultGrid(4)
	search, err := gp.GridSearch(g, obs, grid, grid, 2500, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid search picked alpha=%.2f beta=%.2f (CV RMSE %.0f veh/h)\n",
		search.Alpha, search.Beta, search.RMSE)

	kernel, err := gp.RegularizedLaplacian(g, search.Alpha, search.Beta)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := gp.Fit(kernel, obs, 2500)
	if err != nil {
		log.Fatal(err)
	}
	est, err := reg.PredictAll()
	if err != nil {
		log.Fatal(err)
	}

	// Score the estimates at UNOBSERVED junctions against ground truth.
	observed := map[int]bool{}
	for _, o := range obs {
		observed[o.Vertex] = true
	}
	var mae, baselineMAE float64
	var meanFlow float64
	for _, o := range obs {
		meanFlow += o.Value
	}
	meanFlow /= float64(len(obs))
	n := 0
	for v := 0; v < g.NumVertices(); v++ {
		if observed[v] {
			continue
		}
		intensity := city.CongestionAt(g.Vertex(v).Pos, at)
		truth := 1500 - 1300*intensity
		mae += math.Abs(est[v] - truth)
		baselineMAE += math.Abs(meanFlow - truth)
		n++
	}
	mae /= float64(n)
	baselineMAE /= float64(n)
	fmt.Printf("unobserved junctions: %d\n", n)
	fmt.Printf("GP mean absolute error:        %.0f veh/h\n", mae)
	fmt.Printf("city-mean baseline error:      %.0f veh/h\n", baselineMAE)
	fmt.Printf("improvement over the baseline: %.0f%%\n", 100*(1-mae/baselineMAE))

	// Kernel ablation: the p-step random-walk kernel from the same
	// Smola & Kondor family the paper cites. Its support is local
	// (radius p), so it reverts to the mean in sensor deserts where
	// the regularized Laplacian still propagates.
	walkKernel, err := gp.RandomWalkKernel(g, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	walkReg, err := gp.Fit(walkKernel, obs, 2500)
	if err != nil {
		log.Fatal(err)
	}
	walkEst, err := walkReg.PredictAll()
	if err != nil {
		log.Fatal(err)
	}
	var walkMAE float64
	for v := 0; v < g.NumVertices(); v++ {
		if observed[v] {
			continue
		}
		intensity := city.CongestionAt(g.Vertex(v).Pos, at)
		walkMAE += math.Abs(walkEst[v] - (1500 - 1300*intensity))
	}
	walkMAE /= float64(n)
	fmt.Printf("random-walk kernel (p=3) MAE:  %.0f veh/h (local support)\n", walkMAE)

	// Render the Figure 9 style map.
	f, err := os.Create("sparsity_map.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sensorVertices := make([]int, 0, len(observed))
	for v := range observed {
		sensorVertices = append(sensorVertices, v)
	}
	if err := g.RenderSVG(f, citygraph.RenderOptions{
		Values:  est,
		Sensors: sensorVertices,
		Title:   "GP traffic flow estimates (green = free flow, red = congested)",
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote sparsity_map.svg")
}
