// Xmlpipeline: the Streams framework used the way the paper describes
// it (Section 3) — a data-flow graph declared in XML, standard
// processors for cleaning, and an application-defined processor class
// registered through the API ("adding customized processors is
// realised by implementing the respective interfaces"). The pipeline
// ingests a synthetic SCATS stream, drops malformed items, flags
// congested readings with a custom processor and fans the results into
// a collector.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

const flowDefinition = `
<application>
  <queue id="readings" capacity="256"/>
  <process id="ingest" input="scats" output="readings">
    <processor class="drop-missing" key="density"/>
    <processor class="congestion-flag" density="0.35" flow="600"/>
  </process>
  <process id="deliver" input="readings" output="out">
    <processor class="count" key="seq"/>
  </process>
</application>`

func main() {
	log.SetFlags(0)

	// Registry: the standard library plus our own processor class.
	reg := streams.NewRegistry()
	if err := streams.RegisterStdProcessors(reg); err != nil {
		log.Fatal(err)
	}
	err := reg.RegisterProcessor("congestion-flag", func(params map[string]string) (streams.Processor, error) {
		density, err1 := strconv.ParseFloat(params["density"], 64)
		flow, err2 := strconv.ParseFloat(params["flow"], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("congestion-flag needs numeric density and flow attributes")
		}
		return streams.Map(func(it streams.Item) streams.Item {
			out := it.Clone()
			out["congested"] = it.Float("density") >= density && it.Float("flow") <= flow
			return out
		}), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Input: 30 minutes of synthetic SCATS readings as items.
	city, err := dublin.NewCity(dublin.Config{Seed: 4, NumBuses: 1, NumSensors: 50})
	if err != nil {
		log.Fatal(err)
	}
	var items []streams.Item
	for _, sde := range city.Collect(8*3600, 8*3600+1800) {
		if sde.Event.Type != traffic.TrafficType {
			continue
		}
		density, _ := sde.Event.Float("density")
		flow, _ := sde.Event.Float("flow")
		items = append(items, streams.Item{
			"sensor":  sde.Event.Key,
			"time":    int64(sde.Event.Time),
			"density": density,
			"flow":    flow,
		})
	}
	// A couple of malformed records, as real feeds have.
	items = append(items, streams.Item{"sensor": "broken"}, streams.Item{"sensor": "broken2"})

	top := streams.NewTopology()
	if err := top.AddStream("scats", streams.NewSliceSource(items...)); err != nil {
		log.Fatal(err)
	}
	sink := streams.NewCollectorSink()
	if err := top.AddSink("out", sink); err != nil {
		log.Fatal(err)
	}
	if err := streams.LoadXML(top, reg, strings.NewReader(flowDefinition)); err != nil {
		log.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	congested := 0
	for _, it := range sink.Items() {
		if it.Bool("congested") {
			congested++
		}
	}
	fmt.Printf("ingested %d raw records → %d clean readings, %d flagged congested\n",
		len(items), sink.Len(), congested)

	congestedSensors := map[string]bool{}
	for _, it := range sink.Items() {
		if it.Bool("congested") {
			congestedSensors[it.String("sensor")] = true
		}
	}
	if len(congestedSensors) > 0 {
		fmt.Print("congested sensors:")
		for s := range congestedSensors {
			fmt.Printf(" %s", s)
		}
		fmt.Println()
	}
}
