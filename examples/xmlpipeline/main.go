// Xmlpipeline: the Streams framework used the way the paper describes
// it (Section 3) — a data-flow graph declared in XML, standard
// processors for cleaning, and an application-defined processor class
// registered through the API ("adding customized processors is
// realised by implementing the respective interfaces"). The pipeline
// ingests a synthetic SCATS stream delivered as one columnar batch
// (plus a couple of malformed per-item records, as real feeds have),
// flags congested readings with a custom batch-aware processor that
// appends a column instead of cloning one map per reading, and lets
// the non-batch-aware cleaning stage receive the rows as lazily
// materialized Items — the two transport representations coexisting in
// one chain.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

const flowDefinition = `
<application>
  <queue id="readings" capacity="256"/>
  <process id="ingest" input="scats" output="readings">
    <processor class="congestion-flag" density="0.35" flow="600"/>
    <processor class="drop-missing" key="density"/>
  </process>
  <process id="deliver" input="readings" output="out">
    <processor class="count" key="seq"/>
  </process>
</application>`

// congestionFlag marks readings whose density is high and flow low.
// The batch path appends one bool column and passes the batch on;
// per-item records (the malformed stragglers) take the map path.
type congestionFlag struct {
	density, flow float64
}

func (c *congestionFlag) Process(it streams.Item) (streams.Item, error) {
	out := it.Clone()
	out["congested"] = it.Float("density") >= c.density && it.Float("flow") <= c.flow
	return out, nil
}

// ProcessBatch implements streams.BatchProcessor: the whole batch is
// flagged with one column append — no per-reading map clone — and
// rides on for the rest of the chain to expand lazily.
func (c *congestionFlag) ProcessBatch(b *streams.Batch) ([]streams.Item, error) {
	density := b.FloatCol("density").F
	flow := b.FloatCol("flow").F
	out := b.BoolCol("congested")
	for i := range density {
		out.AppendBool(density[i] >= c.density && flow[i] <= c.flow)
	}
	return []streams.Item{streams.BatchItem(b)}, nil
}

func main() {
	log.SetFlags(0)

	// Registry: the standard library plus our own processor class.
	reg := streams.NewRegistry()
	if err := streams.RegisterStdProcessors(reg); err != nil {
		log.Fatal(err)
	}
	err := reg.RegisterProcessor("congestion-flag", func(params map[string]string) (streams.Processor, error) {
		density, err1 := strconv.ParseFloat(params["density"], 64)
		flow, err2 := strconv.ParseFloat(params["flow"], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("congestion-flag needs numeric density and flow attributes")
		}
		return &congestionFlag{density: density, flow: flow}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Input: 30 minutes of synthetic SCATS readings as one columnar
	// batch — the generator's native emission — riding the stream as a
	// single envelope item.
	city, err := dublin.NewCity(dublin.Config{Seed: 4, NumBuses: 1, NumSensors: 50})
	if err != nil {
		log.Fatal(err)
	}
	batch := streams.GetBatch(traffic.TrafficType, "scats")
	for _, sde := range city.Collect(8*3600, 8*3600+1800) {
		if sde.Event.Type != traffic.TrafficType {
			continue
		}
		density, _ := sde.Event.Float("density")
		flow, _ := sde.Event.Float("flow")
		batch.Append(int64(sde.Event.Time), int64(sde.Arrival), sde.Event.Key)
		batch.FloatCol("density").AppendFloat(density)
		batch.FloatCol("flow").AppendFloat(flow)
	}
	rows := batch.Len()
	items := []streams.Item{streams.BatchItem(batch)}
	// A couple of malformed per-item records, as real feeds have.
	items = append(items, streams.Item{"key": "broken"}, streams.Item{"key": "broken2"})

	top := streams.NewTopology()
	if err := top.AddStream("scats", streams.NewSliceSource(items...)); err != nil {
		log.Fatal(err)
	}
	sink := streams.NewCollectorSink()
	if err := top.AddSink("out", sink); err != nil {
		log.Fatal(err)
	}
	if err := streams.LoadXML(top, reg, strings.NewReader(flowDefinition)); err != nil {
		log.Fatal(err)
	}
	if err := top.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	congested := 0
	for _, it := range sink.Items() {
		if it.Bool("congested") {
			congested++
		}
	}
	fmt.Printf("ingested %d batched + %d stray records → %d clean readings, %d flagged congested\n",
		rows, len(items)-1, sink.Len(), congested)

	congestedSensors := map[string]bool{}
	for _, it := range sink.Items() {
		if it.Bool("congested") {
			congestedSensors[it.String("key")] = true
		}
	}
	if len(congestedSensors) > 0 {
		fmt.Print("congested sensors:")
		for s := range congestedSensors {
			fmt.Printf(" %s", s)
		}
		fmt.Println()
	}
}
