// Quickstart: assemble the INSIGHT system on a small synthetic Dublin
// and monitor one rush-hour period. This is the smallest end-to-end
// use of the public API: generate streams, recognise complex events,
// resolve disagreements with the crowd, and print operator reports.
package main

import (
	"context"
	"fmt"
	"log"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)

	// A quarter-scale city: 100 buses, 100 SCATS sensors, seeded so
	// every run is identical.
	city, err := dublin.NewCity(dublin.Config{
		Seed:       1,
		NumBuses:   100,
		NumSensors: 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A dozen volunteers near the first intersections, answering
	// crowdsourcing queries from their phones.
	var volunteers []insight.SimParticipant
	for i, in := range city.Intersections() {
		if i >= 12 {
			break
		}
		volunteers = append(volunteers, insight.SimParticipant{
			ID:        fmt.Sprintf("vol%02d", i),
			Pos:       in.Pos,
			ErrorProb: 0.1,
			Network:   qee.Network(i % 3),
		})
	}

	sys, err := insight.New(insight.Config{
		City:          city,
		Seed:          1,
		WorkingMemory: 1200, // 20 min window
		Step:          600,  // 10 min step: late SDEs are still caught
		Participants:  volunteers,
		Traffic: traffic.Config{
			Adaptive:    true, // rule-set (3′): drop unreliable buses
			NoisyPolicy: traffic.Pessimistic,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Monitor 08:00–09:00.
	err = sys.Run(context.Background(), 8*3600, 9*3600, func(r *insight.Report) error {
		fmt.Print(r.String())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// After the run, the traffic model fills in the rest of the city.
	est, err := sys.SparsityMap(2, 1, 2500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraffic model: flow estimates at %d junctions from %d sensor readings\n",
		len(est.Values), est.Observations)
}
