// Congestion: using the CEP layer directly. This example scripts a
// small scenario over two SCATS intersections and one bus line, builds
// the paper's CE definitions PLUS a custom "gridlockRisk" complex
// event on top of them, and walks through three query times, printing
// the recognised fluents — including how a delayed SDE is recovered by
// a window larger than the step (Figure 2 of the paper).
package main

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/interval"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)

	// Two intersections on the quays.
	posA := geo.At(53.3466, -6.2756)
	posB := geo.At(53.3471, -6.2621)
	registry, err := traffic.NewRegistry([]traffic.Intersection{
		{ID: "bachelors-walk", Pos: posA, Sensors: []string{"s1", "s2"}},
		{ID: "oconnell-bridge", Pos: posB, Sensors: []string{"s3"}},
	}, 120)
	if err != nil {
		log.Fatal(err)
	}

	// Start from the paper's definitions...
	cfg := traffic.Config{Registry: registry}
	defs, err := buildWithGridlock(cfg)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := rtec.NewEngine(defs, rtec.Options{
		WorkingMemory: 1200, // 20 min
		Step:          600,  // 10 min — window > step absorbs delays
	})
	if err != nil {
		log.Fatal(err)
	}

	busAt := func(t rtec.Time, pos geo.Point, delay int64, congested bool) rtec.Event {
		return traffic.Move(t, "bus33009", "r10", "DublinBus", delay, pos, 0, congested)
	}

	// t=100..460: both sensors of bachelors-walk congested; the bus
	// crawls past it with growing delay.
	if err := engine.Input(
		traffic.Traffic(100, "s1", "bachelors-walk", "A1", 0.7, 250),
		traffic.Traffic(100, "s2", "bachelors-walk", "A2", 0.8, 180),
		traffic.Traffic(100, "s3", "oconnell-bridge", "A1", 0.1, 1100),
		traffic.Traffic(400, "s1", "bachelors-walk", "A1", 0.85, 160), // density still climbing
		busAt(120, posA, 60, true),
		busAt(145, posA, 190, true), // +130 s delay in 25 s → delayIncrease
	); err != nil {
		log.Fatal(err)
	}

	report(engine, 600)

	// A DELAYED SDE: it occurred at t=580 (inside the previous step)
	// but arrives only now. The 20-minute window still covers it.
	if err := engine.Input(
		busAt(580, posB, 200, true), // late arrival
		traffic.Traffic(820, "s1", "bachelors-walk", "A1", 0.15, 1000),
		traffic.Traffic(820, "s2", "bachelors-walk", "A2", 0.12, 1050),
	); err != nil {
		log.Fatal(err)
	}

	report(engine, 1200)
	report(engine, 1800)
}

// buildWithGridlock extends the paper's definition set with a custom
// statically determined fluent: gridlockRisk holds at an intersection
// while the intersection is congested AND its density trend keeps
// rising — congestion that is still getting worse.
func buildWithGridlock(cfg traffic.Config) (*rtec.Definitions, error) {
	return traffic.BuildWith(cfg, func(b *rtec.Builder) {
		b.Static(rtec.StaticFluent{
			Name:   "gridlockRisk",
			Inputs: []string{traffic.ScatsIntCongestion, traffic.DensityTrend},
			HoldsFor: func(ctx *rtec.Context) map[rtec.KV]rtec.IntervalList {
				out := make(map[rtec.KV]rtec.IntervalList)
				for _, in := range cfg.Registry.Intersections() {
					congested := ctx.Intervals(traffic.ScatsIntCongestion, in.ID)
					if len(congested) == 0 {
						continue
					}
					// Union of rising-density periods across the
					// intersection's sensors.
					var rising []interval.List
					for _, s := range in.Sensors {
						rising = append(rising,
							ctx.IntervalsValue(traffic.DensityTrend, s, traffic.TrendRising))
					}
					risk := interval.Intersect(congested, interval.UnionAll(rising...))
					if len(risk) > 0 {
						out[rtec.KV{Key: in.ID, Value: rtec.TrueValue}] = risk
					}
				}
				return out
			},
		})
	})
}

func report(e *rtec.Engine, q rtec.Time) {
	res, err := e.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— query time %d (window %v, %d SDEs, %v)\n",
		int64(q), res.Window, res.Stats.InputEvents, res.Stats.Elapsed.Round(1000))
	for _, fluent := range []string{
		traffic.ScatsCongestion, traffic.ScatsIntCongestion,
		traffic.BusCongestion, traffic.SourceDisagreement, "gridlockRisk",
	} {
		for kv, l := range res.Fluents[fluent] {
			fmt.Printf("   holdsFor(%s(%s)=%s, %v)\n", fluent, kv.Key, kv.Value, l)
		}
	}
	for _, ev := range res.Derived[traffic.DelayIncrease] {
		growth, _ := ev.Int("delayGrowth")
		fmt.Printf("   happensAt(delayIncrease(%s, +%d s), %d)\n", ev.Key, growth, int64(ev.Time))
	}
	fmt.Println()
}
