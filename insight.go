// Package insight wires the components of the INSIGHT Dublin traffic
// management system (Artikis et al., EDBT 2014, Figure 1) into one
// runnable System:
//
//   - the synthetic Dublin substrate (package dublin) plays the role
//     of the bus and SCATS sensor feeds behind their mediators;
//   - complex event processing (packages rtec and traffic) recognises
//     congestion, trends, source disagreement and source reliability,
//     distributed over the four city regions;
//   - crowdsourcing (packages crowd and crowd/qee) resolves source
//     disagreements by querying simulated participants near the
//     disputed intersection and fusing their answers with online EM;
//     verdicts are fed back into the CEP engine as crowd events,
//     closing the self-adaptation loop of rule-sets (4)/(5) + (3′);
//   - traffic modelling (package gp) produces city-wide flow estimates
//     from the sparse sensor readings on demand.
//
// Each query time yields a Report — the operator-facing view with the
// recognised situations, alerts and crowdsourcing outcomes.
package insight

import (
	"fmt"
	"sort"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/gp"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// Time re-exports the discrete time point type used across the system.
type Time = rtec.Time

// SimParticipant describes one simulated crowdsourcing volunteer.
type SimParticipant struct {
	ID        string
	Pos       geo.Point
	ErrorProb float64
	Network   qee.Network
}

// Config assembles a System.
type Config struct {
	// City is the synthetic Dublin substrate. Required.
	City *dublin.City
	// CloseMeters is the close-predicate threshold. Default 150.
	CloseMeters float64
	// Traffic overrides CE thresholds; Registry is filled in from the
	// city automatically.
	Traffic traffic.Config
	// WorkingMemory and Step configure RTEC windowing. Defaults:
	// WM 1800 s, Step 900 s (window twice the step, absorbing
	// mediator delays per Figure 2).
	WorkingMemory, Step Time
	// Partitions is the number of CE recognition partitions.
	// Default geo.NumRegions (the paper's four city areas).
	Partitions int
	// Shards switches recognition to the N-way sharded tier: bus keys
	// and sensors are rendezvous-assigned to Shards shard engines, a
	// reduce engine folds the cross-shard busCongestion votes, and
	// skew-driven rebalancing can migrate hot keys between shards (see
	// DESIGN.md, "Sharded recognition tier"). 0 (the default) keeps the
	// legacy fixed partitioning; Partitions is then ignored.
	Shards int
	// RebalanceFactor enables automatic skew-driven rebalancing on the
	// sharded tier: when one shard has routed more than RebalanceFactor
	// × the average number of bus moves since the last check, its
	// hottest keys migrate to the least loaded shard. <= 0 (default)
	// disables automatic rebalancing; System.Rebalance still works.
	RebalanceFactor float64
	// RebalanceMinMoves is the minimum number of routed moves before a
	// skew check concludes. Default 64 × Shards.
	RebalanceMinMoves int
	// ShardSerialEval evaluates the shard engines one after another
	// instead of concurrently. Measurement mode for cmd/shardbench: on a
	// single-core host, concurrent shard queries time-slice and each
	// engine's Elapsed absorbs the others' wait, so the modeled cluster
	// critical path (max over shards) is only meaningful when every
	// shard runs alone. Recognition output is identical either way.
	ShardSerialEval bool
	// Participants are the crowdsourcing volunteers. Crowdsourcing is
	// disabled when empty.
	Participants []SimParticipant
	// CrowdSelection picks whom to query; default
	// crowd.SelectNearest(5, 0).
	CrowdSelection crowd.Selection
	// CrowdDeadline bounds each crowd query; default 0 (none).
	CrowdDeadline time.Duration
	// CrowdResponseTimeout bounds how long one participant's device
	// may take to produce an answer before the round gives up on it
	// (and retries, see CrowdRespondRetries). 0 waits forever — a dead
	// worker then hangs the crowdsourcing round.
	CrowdResponseTimeout time.Duration
	// CrowdRespondRetries is the number of extra response attempts
	// after a timeout before the worker is marked failed. Default 0.
	CrowdRespondRetries int
	// WatermarkStaleness is the pipeline's per-stream liveness bound:
	// an input stream whose arrival watermark trails the most advanced
	// stream by more than this is declared degraded and excluded from
	// the query-boundary watermark minimum, so a silent source cannot
	// freeze recognition (the degradation is flagged on each Report).
	// 0 disables: a silent stream then withholds query boundaries
	// until end of stream. One Step is a good starting bound.
	WatermarkStaleness Time
	// Seed drives the crowdsourcing simulation.
	Seed int64
	// Store selects the RTEC working-memory representation for every
	// partition engine: rtec.StoreRow (the default) keeps one Event per
	// stored SDE, rtec.StoreColumn keeps per-type column blocks with
	// row-id key indexes (lower resident memory, identical recognition
	// output — see DESIGN.md, "Columnar store internals").
	Store rtec.StoreKind
	// ColumnarTransport moves SDEs through the pipeline as typed
	// columnar batches (streams.Batch) instead of one map-backed item
	// per event: the generator emits batches natively and the
	// monitoring processor feeds them to the engines as column blocks.
	// Recognition output is identical either way; the columnar path
	// exists purely for throughput (see DESIGN.md).
	ColumnarTransport bool
	// UnpacedReplay lets the replay sources run freely instead of
	// aligning them on the shared virtual clock. Benchmark mode: the
	// pipeline then measures processing cost, not replay pacing.
	// Recognition output is unaffected when WatermarkStaleness is 0
	// (boundary admission filters by arrival time, so the interleaving
	// never shows); with a staleness bound, free-running sources can
	// spuriously degrade slower streams — keep pacing in that case.
	UnpacedReplay bool
}

// System is the assembled INSIGHT pipeline.
type System struct {
	cfg       Config
	city      *dublin.City
	registry  *traffic.Registry
	defs      *rtec.Definitions
	engines   engineTier
	estimator *crowd.Estimator
	qeeEngine *qee.Engine
	roster    *crowd.Roster

	gen     *dublin.Generator
	genDone bool
	primed  bool
	inbox   []dublin.SDE // generated, not yet fed; sorted by arrival
	next    *dublin.SDE  // lookahead from the generator

	lastTraffic  map[string]trafficReading // latest reading per sensor
	lastCrowd    map[string]crowdReading   // latest verdict per intersection
	sensorVertex map[string]int            // sensor ID -> graph vertex
	interVertex  map[string]int            // intersection ID -> graph vertex
	kernels      map[[2]float64]*gp.Kernel
}

type crowdReading struct {
	vertex    int
	congested bool
	t         Time
}

type trafficReading struct {
	vertex int
	flow   float64
	t      Time
}

// New assembles a System.
func New(cfg Config) (*System, error) {
	if cfg.City == nil {
		return nil, fmt.Errorf("insight: Config.City is required")
	}
	if cfg.CloseMeters == 0 {
		cfg.CloseMeters = 150
	}
	if cfg.WorkingMemory == 0 {
		cfg.WorkingMemory = 1800
	}
	if cfg.Step == 0 {
		cfg.Step = 900
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = int(geo.NumRegions)
	}
	if cfg.CrowdSelection == nil {
		cfg.CrowdSelection = crowd.SelectNearest(5, 0)
	}

	registry, err := cfg.City.Registry(cfg.CloseMeters)
	if err != nil {
		return nil, err
	}
	tcfg := cfg.Traffic
	tcfg.Registry = registry
	if tcfg.CrowdWindow == 0 {
		// Crowd verdicts are produced at query times, up to a step
		// after the disagreement they answer; leave headroom so they
		// land inside the rule-sets' validity window.
		tcfg.CrowdWindow = cfg.Step + 600
	}
	defs, err := traffic.Build(tcfg)
	if err != nil {
		return nil, err
	}
	var engines engineTier
	if cfg.Shards > 0 {
		tier, err := newShardTier(cfg, tcfg, registry)
		if err != nil {
			return nil, err
		}
		engines = tier
	} else {
		part, err := rtec.NewPartitioned(defs, rtec.Options{
			WorkingMemory: cfg.WorkingMemory,
			Step:          cfg.Step,
			Store:         cfg.Store,
		}, cfg.Partitions, func(e rtec.Event) int {
			return dublin.PartitionOf(e) % cfg.Partitions
		})
		if err != nil {
			return nil, err
		}
		part.SetBlockAssign(func(b *rtec.Block) func(int) int {
			of := dublin.PartitionOfBlock(b)
			return func(i int) int { return of(i) % cfg.Partitions }
		})
		engines = part
	}

	s := &System{
		cfg:          cfg,
		city:         cfg.City,
		registry:     registry,
		defs:         defs,
		engines:      engines,
		estimator:    crowd.NewEstimator(crowd.EstimatorOptions{}),
		roster:       crowd.NewRoster(),
		lastTraffic:  make(map[string]trafficReading),
		lastCrowd:    make(map[string]crowdReading),
		sensorVertex: make(map[string]int, len(cfg.City.Sensors())),
		interVertex:  make(map[string]int),
		kernels:      make(map[[2]float64]*gp.Kernel),
	}
	for _, sensor := range cfg.City.Sensors() {
		s.sensorVertex[sensor.ID] = sensor.Vertex
		s.interVertex[sensor.Intersection] = sensor.Vertex
	}

	if len(cfg.Participants) > 0 {
		s.qeeEngine = qee.NewEngine(qee.Options{
			Seed:            cfg.Seed,
			ResponseTimeout: cfg.CrowdResponseTimeout,
			RespondRetries:  cfg.CrowdRespondRetries,
		})
		for i, p := range cfg.Participants {
			if err := s.roster.Register(crowd.Participant{
				ID: p.ID, Pos: p.Pos, Online: true,
				ComputeTime: 2 * time.Second,
			}); err != nil {
				return nil, err
			}
			sim := crowd.NewSimulatedParticipant(p.ID, p.ErrorProb, cfg.Seed+int64(i)*97+13)
			city := cfg.City
			if err := s.qeeEngine.Connect(qee.Device{
				Participant: crowd.Participant{ID: p.ID, Pos: p.Pos},
				Network:     p.Network,
				Respond: func(q qee.Query) (string, time.Duration) {
					truth := traffic.Negative
					// The participant looks out the window: ground truth
					// at the disputed location, right now.
					if t, ok := parseQueryTime(q.ID); ok && city.IsCongested(q.Pos, t) {
						truth = traffic.Positive
					}
					return sim.Answer(q.Answers, truth).Label, 2 * time.Second
				},
			}); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Registry exposes the SCATS intersection registry.
func (s *System) Registry() *traffic.Registry { return s.registry }

// Definitions exposes the compiled CE definition set.
func (s *System) Definitions() *rtec.Definitions { return s.defs }

// Estimator exposes the online EM participant-reliability estimator.
func (s *System) Estimator() *crowd.Estimator { return s.estimator }

// queryTimeID encodes the query time into the crowd query ID so the
// simulated participants can consult the ground truth of the right
// moment (a real participant would simply look at the street).
func queryTimeID(inter string, t Time) string {
	return fmt.Sprintf("%s@%d", inter, int64(t))
}

func parseQueryTime(id string) (Time, bool) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			var t int64
			if _, err := fmt.Sscanf(id[i+1:], "%d", &t); err != nil {
				return 0, false
			}
			return Time(t), true
		}
	}
	return 0, false
}

// feed pumps generated SDEs with Arrival <= q into the engines and
// tracks the latest sensor readings for the traffic model.
func (s *System) feed(q Time) (int, error) {
	// Pull the occurrence-ordered generator far enough: any event
	// occurring after q also arrives after q.
	for !s.genDone {
		if s.next == nil {
			sde, ok := s.gen.Next()
			if !ok {
				s.genDone = true
				break
			}
			s.next = &sde
		}
		if s.next.Event.Time > q {
			break
		}
		s.inbox = append(s.inbox, *s.next)
		s.next = nil
	}
	sort.SliceStable(s.inbox, func(i, j int) bool { return s.inbox[i].Arrival < s.inbox[j].Arrival })
	fed := 0
	for len(s.inbox) > 0 && s.inbox[0].Arrival <= q {
		sde := s.inbox[0]
		s.inbox = s.inbox[1:]
		if err := s.engines.Input(sde.Event); err != nil {
			return fed, err
		}
		fed++
		if sde.Event.Type == traffic.TrafficType {
			s.noteTraffic(sde.Event)
		}
	}
	return fed, nil
}

func (s *System) noteTraffic(e rtec.Event) {
	v, ok := s.sensorVertex[e.Key]
	if !ok {
		return
	}
	flow, _ := e.Float("flow")
	s.lastTraffic[e.Key] = trafficReading{vertex: v, flow: flow, t: e.Time}
}
