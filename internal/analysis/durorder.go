package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// DurOrder checks the durability ordering the WAL and checkpoint
// machinery promise: a file is synced before it is renamed into place,
// the directory is synced after the rename (so the new name survives a
// crash), and in code that appends to the log, nothing is forwarded
// downstream before the append — the consumed-implies-durable
// invariant the crash-equivalence gate replays. The scan is linear per
// function over write/sync/rename/append/forward events, with calls
// into same-package helpers resolved through the call closure (a call
// to a helper that fsyncs counts as a sync at the call site).
var DurOrder = &Analyzer{
	Name: "durorder",
	Doc:  "rename-before-sync, missing dir-sync and forward-before-append in durable-path code",
	Run:  runDurOrder,
}

// durOrderFiles are the root-package durable-path files; the streams/wal
// package is in scope as a whole.
var durOrderFiles = map[string]bool{
	"checkpoint.go":       true,
	"pipeline_durable.go": true,
}

const (
	doWrite = iota
	doSync
	doRename
	doAppend
	doForward
)

type doEvent struct {
	pos  token.Pos
	kind int
}

func runDurOrder(pass *Pass) {
	pkg := pass.Pkg
	wholePkg := pkgMatches(pkg.Path, []string{"wal"})

	ix := newFuncIndex(pkg)
	inScope := func(fd *ast.FuncDecl) bool {
		if wholePkg {
			return true
		}
		return durOrderFiles[filepath.Base(pkg.Fset.Position(fd.Pos()).Filename)]
	}

	// Effect summaries: does a same-package function's closure write or
	// sync? A call to it then carries those effects to the call site.
	writes := make(map[*ast.FuncDecl]bool)
	syncs := make(map[*ast.FuncDecl]bool)
	var all []*ast.FuncDecl
	for _, fd := range ix.decls {
		all = append(all, fd)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Pos() < all[j].Pos() })
	for _, fd := range all {
		for member := range ix.closure([]*ast.FuncDecl{fd}) {
			ast.Inspect(member.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch directCallName(pkg, call) {
				case "Write", "WriteAt", "WriteString", "Truncate":
					writes[fd] = true
				case "Sync":
					syncs[fd] = true
				}
				return true
			})
		}
	}

	for _, fd := range all {
		if !inScope(fd) {
			continue
		}
		var events []doEvent
		walkShallow(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				events = append(events, doEvent{pos: n.Pos(), kind: doForward})
			case *ast.CallExpr:
				events = append(events, callEvents(pkg, ix, n, writes, syncs)...)
			}
			return true
		})
		if len(events) == 0 {
			continue
		}
		sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

		dirty := false
		lastRename := token.NoPos
		lastRenameDirty := false
		syncedAfterRename := true
		firstAppend := token.NoPos
		var forwards []token.Pos
		for _, ev := range events {
			switch ev.kind {
			case doWrite:
				dirty = true
			case doSync:
				dirty = false
				syncedAfterRename = true
			case doRename:
				lastRename = ev.pos
				lastRenameDirty = dirty
				syncedAfterRename = false
			case doAppend:
				if !firstAppend.IsValid() {
					firstAppend = ev.pos
				}
			case doForward:
				forwards = append(forwards, ev.pos)
			}
		}
		if lastRenameDirty {
			pass.Reportf(lastRename, "os.Rename after unsynced writes in %s; fsync the file before renaming it into place", funcName(fd))
		}
		if lastRename.IsValid() && !syncedAfterRename {
			pass.Reportf(lastRename, "no sync after the final os.Rename in %s; fsync the directory so the new name survives a crash", funcName(fd))
		}
		if firstAppend.IsValid() {
			for _, fpos := range forwards {
				if fpos < firstAppend {
					pass.Reportf(fpos, "item forwarded before the WAL append in %s; consumed records must be durable first (append, then forward)", funcName(fd))
				}
			}
		}
	}
}

// directCallName names a method call (receiver.Name(...)); package
// selectors (os.Rename) and plain identifiers return "".
func directCallName(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return ""
		}
	}
	return sel.Sel.Name
}

// callEvents classifies one call expression into durability events.
func callEvents(pkg *Package, ix *funcIndex, call *ast.CallExpr, writes, syncs map[*ast.FuncDecl]bool) []doEvent {
	if isPkgCall(pkg.Info, call, "os", "Rename") {
		return []doEvent{{pos: call.Pos(), kind: doRename}}
	}
	var events []doEvent
	switch directCallName(pkg, call) {
	case "Write", "WriteAt", "WriteString", "Truncate":
		events = append(events, doEvent{pos: call.Pos(), kind: doWrite})
	case "Sync":
		events = append(events, doEvent{pos: call.Pos(), kind: doSync})
	case "Append":
		events = append(events, doEvent{pos: call.Pos(), kind: doAppend})
	case "Emit", "Forward", "Publish", "Push":
		events = append(events, doEvent{pos: call.Pos(), kind: doForward})
	}
	// A call into a same-package helper carries the helper's effects:
	// writes land before syncs so a write-and-sync helper leaves the
	// file clean.
	if fn, ok := calleeObj(pkg.Info, call).(*types.Func); ok {
		if decl := ix.decls[fn]; decl != nil {
			if writes[decl] {
				events = append(events, doEvent{pos: call.Pos(), kind: doWrite})
			}
			if syncs[decl] {
				events = append(events, doEvent{pos: call.Pos() + 1, kind: doSync})
			}
		}
	}
	return events
}
