package analysis

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose results must be bit-stable
// across runs and Workers counts: the recognition engine, the traffic
// model and its kernels, and every synthetic-data generator the
// equivalence harnesses replay. Matched by import-path suffix.
var deterministicPkgs = []string{
	"insight", "rtec", "gp", "internal/linalg", "interval", "crowd",
	"crowd/qee", "dublin", "citygraph", "traffic", "geo", "eval",
}

// nondetRandOK are the math/rand package-level functions that do NOT
// draw from the unseeded global source and are therefore fine.
var nondetRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// NoDeterminism flags wall-clock reads, unseeded global math/rand
// draws and order-dependent map iteration inside the deterministic
// packages. Those are exactly the constructs that made "same seed,
// same result" a convention rather than a property; PR 1's
// full-vs-incremental equivalence and PR 3's cross-Workers
// bit-identity both assume none of them exist on the result path.
// Wall-clock instrumentation that feeds only Stats fields is
// legitimate — annotate it with //lint:allow nodeterminism and a
// justification.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "flags time.Now, unseeded math/rand and order-dependent map iteration in deterministic packages",
	Run:  runNoDeterminism,
}

func runNoDeterminism(pass *Pass) {
	if !pkgMatches(pass.Pkg.Path, deterministicPkgs) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgCall(info, n, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now in a deterministic package: results must not depend on wall-clock time")
				}
				if obj := calleeObj(info, n); obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "math/rand" && !nondetRandOK[obj.Name()] {
					// Only package-level functions draw from the global
					// source; methods on a *rand.Rand are seeded by
					// whoever built it.
					fn, isFunc := obj.(*types.Func)
					if isFunc && fn.Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(), "math/rand.%s draws from the unseeded global source: use rand.New(rand.NewSource(seed))", obj.Name())
					}
				}
			}
			// Range statements are inspected per statement list so the
			// tail of the list is available for sanitizer detection.
			var stmts []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				stmts = n.List
			case *ast.CaseClause:
				stmts = n.Body
			case *ast.CommClause:
				stmts = n.Body
			}
			for i, stmt := range stmts {
				if ls, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = ls.Stmt
				}
				if rng, ok := stmt.(*ast.RangeStmt); ok {
					checkMapRange(pass, rng, stmts[i+1:])
				}
			}
			return true
		})
	}
}

// sortSanitizers are the stdlib in-place sorts that restore a
// deterministic order after collecting from a map. The comparator
// variants are trusted to be total — that is the caller's contract.
var sortSanitizers = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether the tail statements sort the named
// object in place with a stdlib sort.
func sortedAfter(info *types.Info, obj types.Object, tail []ast.Stmt) bool {
	for _, stmt := range tail {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := calleeObj(info, call)
		if fn == nil || fn.Pkg() == nil || !sortSanitizers[fn.Pkg().Path()][fn.Name()] {
			continue
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
	}
	return false
}

// checkMapRange flags `range m` over a map when the body makes the
// iteration order observable: appending to a slice that outlives the
// loop, sending on a channel, or writing formatted output. Map order
// is randomized per run in Go, so any of those makes output
// run-dependent. Collect-then-sort is the canonical remedy: an
// in-place stdlib sort of the appended slice later in the same
// statement list sanitizes the append.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, tail []ast.Stmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "map iteration order leaks into output: loop body %s; iterate sorted keys instead", what)
	}
	done := false
	walkShallow(rng.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n, "sends on a channel")
			done = true
		case *ast.CallExpr:
			if isBuiltin(info, n, "append") && len(n.Args) > 0 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && declaredOutside(info, id, rng, rng) &&
					!sortedAfter(info, info.Uses[id], tail) {
					report(n, "appends to "+id.Name+", declared outside the loop")
					done = true
				}
			}
			if obj := calleeObj(info, n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
				switch obj.Name() {
				case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
					report(n, "writes output via fmt."+obj.Name())
					done = true
				}
			}
		}
		return !done
	})
}
