package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow rule[,rule...] [justification]
//
// and silence the named rules:
//
//   - on the same source line as the comment (trailing comment), or
//   - on the line immediately below (comment on its own line), or
//   - throughout a declaration, when the comment is part of a func or
//     type doc comment.
//
// The justification text is free-form but expected by review
// convention; the burn-down rule of this repo is that every allow
// carries one.
const allowPrefix = "//lint:allow"

// allowSite is one (comment, rule) suppression. Every rule named on an
// allow line gets its own site, so a multi-rule comment can be live for
// one rule and stale for another. suppressed() marks the site it used;
// stalelint reports the sites nothing used.
type allowSite struct {
	pos  token.Position // the comment's own position
	rule string
	used bool
}

// suppressor answers "is this diagnostic allowed?" for one package and
// remembers which allow comments earned their keep.
type suppressor struct {
	// lines maps filename -> line -> sites anchored at that line.
	lines map[string]map[int][]*allowSite
	// spans are whole-declaration suppressions from doc comments; they
	// share site records with lines, so a hit through either path marks
	// the same comment used.
	spans []supSpan
	// sites lists every site once, in file/comment order, for the
	// staleness sweep.
	sites []*allowSite
}

type supSpan struct {
	file       string
	start, end int
	sites      []*allowSite
}

// parseAllow extracts the rule list from one comment, or nil. Order is
// preserved so diagnostics about the comment stay byte-stable.
func parseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var rules []string
	seen := make(map[string]bool)
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" && !seen[r] {
			seen[r] = true
			rules = append(rules, r)
		}
	}
	return rules
}

func newSuppressor(pkg *Package) *suppressor {
	s := &suppressor{lines: make(map[string]map[int][]*allowSite)}
	// One site per (comment, rule), registered at the comment's line and
	// shared with any doc-comment span below.
	byComment := make(map[*ast.Comment][]*allowSite)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules := parseAllow(c.Text)
				if rules == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := s.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowSite)
					s.lines[pos.Filename] = byLine
				}
				for _, r := range rules {
					site := &allowSite{pos: pos, rule: r}
					byLine[pos.Line] = append(byLine[pos.Line], site)
					byComment[c] = append(byComment[c], site)
					s.sites = append(s.sites, site)
				}
			}
		}
		// Doc-comment allows cover the whole declaration (for a GenDecl
		// group, every spec in the group).
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			var sites []*allowSite
			for _, c := range doc.List {
				sites = append(sites, byComment[c]...)
			}
			if len(sites) == 0 {
				continue
			}
			start := pkg.Fset.Position(decl.Pos())
			end := pkg.Fset.Position(decl.End())
			s.spans = append(s.spans, supSpan{
				file: start.Filename, start: start.Line, end: end.Line, sites: sites,
			})
		}
	}
	return s
}

// suppressed reports whether d is covered by an allow comment, marking
// the first covering site used.
func (s *suppressor) suppressed(d Diagnostic) bool {
	if byLine := s.lines[d.Pos.Filename]; byLine != nil {
		// Same line (trailing comment) or the line above (standalone
		// comment preceding the flagged statement).
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			for _, site := range byLine[line] {
				if site.rule == d.Rule {
					site.used = true
					return true
				}
			}
		}
	}
	for _, span := range s.spans {
		if span.file != d.Pos.Filename || d.Pos.Line < span.start || span.end < d.Pos.Line {
			continue
		}
		for _, site := range span.sites {
			if site.rule == d.Rule {
				site.used = true
				return true
			}
		}
	}
	return false
}
