package analysis

import (
	"go/ast"
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow rule[,rule...] [justification]
//
// and silence the named rules:
//
//   - on the same source line as the comment (trailing comment), or
//   - on the line immediately below (comment on its own line), or
//   - throughout a declaration, when the comment is part of a func or
//     type doc comment.
//
// The justification text is free-form but expected by review
// convention; the burn-down rule of this repo is that every allow
// carries one.
const allowPrefix = "//lint:allow"

// suppressor answers "is this diagnostic allowed?" for one package.
type suppressor struct {
	// lines maps filename -> line -> rules allowed at that line.
	lines map[string]map[int]map[string]bool
	// spans are whole-declaration suppressions from doc comments.
	spans []supSpan
}

type supSpan struct {
	file       string
	start, end int
	rules      map[string]bool
}

// parseAllow extracts the rule set from one comment, or nil.
func parseAllow(text string) map[string]bool {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	rules := make(map[string]bool)
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules[r] = true
		}
	}
	return rules
}

func newSuppressor(pkg *Package) *suppressor {
	s := &suppressor{lines: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules := parseAllow(c.Text)
				if rules == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := s.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					s.lines[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = make(map[string]bool)
				}
				for r := range rules {
					byLine[pos.Line][r] = true
				}
			}
		}
		// Doc-comment allows cover the whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			rules := make(map[string]bool)
			for _, c := range doc.List {
				for r := range parseAllow(c.Text) {
					rules[r] = true
				}
			}
			if len(rules) == 0 {
				continue
			}
			start := pkg.Fset.Position(decl.Pos())
			end := pkg.Fset.Position(decl.End())
			s.spans = append(s.spans, supSpan{
				file: start.Filename, start: start.Line, end: end.Line, rules: rules,
			})
		}
	}
	return s
}

// suppressed reports whether d is covered by an allow comment.
func (s *suppressor) suppressed(d Diagnostic) bool {
	if byLine := s.lines[d.Pos.Filename]; byLine != nil {
		// Same line (trailing comment) or the line above (standalone
		// comment preceding the flagged statement).
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			if rules := byLine[line]; rules != nil && rules[d.Rule] {
				return true
			}
		}
	}
	for _, span := range s.spans {
		if span.file == d.Pos.Filename && span.start <= d.Pos.Line && d.Pos.Line <= span.end && span.rules[d.Rule] {
			return true
		}
	}
	return false
}
