package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Exact float
// comparison is almost always a latent bug in numeric code — the
// blocked kernels and the GP likelihood are validated against a 1e-10
// reference tolerance precisely because refactoring changes rounding.
// Two idioms are exempt: x != x (the NaN test) and comparison against
// an exact-zero literal (the "is it exactly the unset/singular value"
// guard, which IEEE 754 represents exactly). Anything else either gets
// a tolerance or an explicit //lint:allow floateq justification.
// Test files are outside the framework's load set, so the
// reference-equivalence harness is unaffected by construction.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags exact ==/!= comparison of floating-point values",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := info.Types[be.X]
			yt, yok := info.Types[be.Y]
			if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
				return true
			}
			if isExactZero(xt) || isExactZero(yt) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the NaN idiom
			}
			pass.Reportf(be.Pos(), "exact floating-point %s comparison: use a tolerance (see internal/linalg equivalence harness)", be.Op)
			return true
		})
	}
}

// isExactZero reports whether the operand is a constant zero — exactly
// representable, so comparing against it is a well-defined guard.
func isExactZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return tv.Value.ExactString() == "0"
}
