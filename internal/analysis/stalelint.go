package analysis

// StaleLint reports //lint:allow comments that no longer suppress
// anything — the suppression debt left behind when the code a finding
// pointed at is fixed or deleted but the allow line lingers. It is
// framework-driven rather than a normal Pass: Run() executes every
// other selected analyzer first, then asks the package's suppressor
// which allow sites were never consulted. A rule is only judged when
// its analyzer actually ran this invocation (running `-only floateq`
// must not condemn every other allow in the tree); a rule name no
// analyzer has ever registered is always reported. Allow sites naming
// stalelint itself are exempt — a suppression of the staleness report
// is consulted by the report, not by an analyzer pass.
var StaleLint = &Analyzer{
	Name: "stalelint",
	Doc:  "//lint:allow comments that no longer suppress anything",
	// Run is intentionally empty: see the special case in analysis.Run.
	Run: func(*Pass) {},
}

// staleDiags sweeps a package's suppressor after the analyzers ran.
// ran holds the rules whose analyzers executed this invocation; known
// holds every registered rule name.
func staleDiags(s *suppressor, ran, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, site := range s.sites {
		if site.used || site.rule == StaleLint.Name {
			continue
		}
		if !known[site.rule] {
			out = append(out, Diagnostic{
				Pos:     site.pos,
				Rule:    StaleLint.Name,
				Message: "//lint:allow names unknown rule \"" + site.rule + "\"",
			})
			continue
		}
		if ran[site.rule] {
			out = append(out, Diagnostic{
				Pos:     site.pos,
				Rule:    StaleLint.Name,
				Message: "//lint:allow " + site.rule + " no longer suppresses anything; remove it",
			})
		}
	}
	return out
}
