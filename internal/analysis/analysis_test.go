package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden expected.txt files under testdata")

var (
	loaderOnce sync.Once
	loaderErr  error
	testLoader *Loader
)

// fixtureLoader returns a shared Loader rooted at the repo module so
// every fixture package reuses one FileSet and one stdlib importer.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		testLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoader
}

func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := fixtureLoader(t).LoadDir(abs, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	return pkg
}

// render formats diagnostics the way cmd/insightlint does, with the
// file path reduced to its base name so goldens are location-stable.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// goldenCases maps each analyzer to its fixture directory and the
// import path it is loaded under. The import paths for nodeterminism,
// hotalloc and durorder end in suffixes that match those analyzers'
// package gates ("rtec", "internal/linalg", "wal"). A case may run a
// wider analyzer set than the one it is named for: stalelint only
// judges rules whose analyzers ran, so its golden runs All.
var goldenCases = []struct {
	analyzer   *Analyzer
	dir        string
	importPath string
	analyzers  []*Analyzer // defaults to just analyzer
}{
	{NoDeterminism, "nodeterminism", "fixture/rtec", nil},
	{GoroutineLeak, "goroutineleak", "fixture/goroutineleak", nil},
	{HotAlloc, "hotalloc", "fixture/internal/linalg", nil},
	{HotAlloc, "hotalloc_batch", "fixture/streams", nil},
	{HotAlloc, "hotalloc_colstore", "fixture/colstore/rtec", nil},
	{FloatEq, "floateq", "fixture/floateq", nil},
	{LockCopy, "lockcopy", "fixture/lockcopy", nil},
	{ItemAlias, "itemalias", "fixture/itemalias", nil},
	{ErrDrop, "errdrop", "fixture/streams/wal", nil},
	{SnapshotDrift, "snapshotdrift", "fixture/snapshotdrift", nil},
	{LockGuard, "lockguard", "fixture/lockguard", nil},
	{DurOrder, "durorder", "fixture/durorder/wal", nil},
	{StaleLint, "stalelint", "fixture/stalelint", All},
}

func TestAnalyzerGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.importPath)
			analyzers := tc.analyzers
			if analyzers == nil {
				analyzers = []*Analyzer{tc.analyzer}
			}
			got := render(Run([]*Package{pkg}, analyzers))
			goldenPath := filepath.Join("testdata", tc.dir, "expected.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.analyzer.Name, got, want)
			}
		})
	}
}

// TestSuppression pins the three suppression-comment forms to
// functions in the fixtures that violate their rule but must not be
// reported: same-line, line-above, and doc-comment allows.
func TestSuppression(t *testing.T) {
	cases := []struct {
		analyzer   *Analyzer
		dir        string
		importPath string
		allowed    []string // substrings that must NOT appear in any diagnostic line
	}{
		// Same-line allow on the time.Now call in AllowedStamp.
		{NoDeterminism, "nodeterminism", "fixture/rtec", []string{"fixture.go:21:"}},
		// Line-above allow on the go statement in AllowedLeak.
		{GoroutineLeak, "goroutineleak", "fixture/goroutineleak", []string{"fixture.go:87:"}},
		// Doc-comment allow covering the whole Allowed declaration.
		{LockCopy, "lockcopy", "fixture/lockcopy", []string{"fixture.go:56:"}},
		// Same-line allow on the quiet.y field declaration.
		{SnapshotDrift, "snapshotdrift", "fixture/snapshotdrift", []string{"fixture.go:76:"}},
		// Same-line allow on the racy read in counter.Peek.
		{LockGuard, "lockguard", "fixture/lockguard", []string{"fixture.go:41:"}},
		// Same-line allow on the early forward in sink.lossyForward.
		{DurOrder, "durorder", "fixture/durorder/wal", []string{"fixture.go:33:"}},
	}
	for _, tc := range cases {
		pkg := loadFixture(t, tc.dir, tc.importPath)
		out := render(Run([]*Package{pkg}, []*Analyzer{tc.analyzer}))
		for _, loc := range tc.allowed {
			if strings.Contains(out, loc) {
				t.Errorf("%s: suppressed site %s still reported:\n%s", tc.analyzer.Name, loc, out)
			}
		}
		if !strings.Contains(out, "fixture.go") {
			t.Errorf("%s: expected unsuppressed findings alongside the allowed ones, got none", tc.analyzer.Name)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All) {
		t.Fatalf("Select(\"\",\"\") = %d analyzers, want %d", len(all), len(All))
	}

	only, err := Select("floateq,hotalloc", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 || only[0].Name != "floateq" && only[1].Name != "floateq" {
		t.Fatalf("Select(only) returned %v", names(only))
	}

	skipped, err := Select("", "nodeterminism")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != len(All)-1 {
		t.Fatalf("Select(skip) = %d analyzers, want %d", len(skipped), len(All)-1)
	}
	for _, a := range skipped {
		if a.Name == "nodeterminism" {
			t.Fatal("Select(skip) kept the skipped analyzer")
		}
	}

	if _, err := Select("nosuchrule", ""); err == nil {
		t.Fatal("Select with unknown -only name did not error")
	}
	if _, err := Select("", "nosuchrule"); err == nil {
		t.Fatal("Select with unknown -skip name did not error")
	}
}

// TestSelectFiltersFindings drives a fixture through Run with a
// Select-ed analyzer list, mirroring the driver's -only flag: the
// selected rule reports, the others stay silent.
func TestSelectFiltersFindings(t *testing.T) {
	pkg := loadFixture(t, "floateq", "fixture/floateq")
	sel, err := Select("goroutineleak", "")
	if err != nil {
		t.Fatal(err)
	}
	if out := render(Run([]*Package{pkg}, sel)); out != "" {
		t.Errorf("-only goroutineleak over the floateq fixture reported:\n%s", out)
	}
	sel, err = Select("floateq", "")
	if err != nil {
		t.Fatal(err)
	}
	if out := render(Run([]*Package{pkg}, sel)); !strings.Contains(out, "[floateq]") {
		t.Errorf("-only floateq over the floateq fixture reported nothing")
	}
}

// TestDiagnosticOrder checks Run's output is sorted by position.
func TestDiagnosticOrder(t *testing.T) {
	pkg := loadFixture(t, "floateq", "fixture/floateq")
	diags := Run([]*Package{pkg}, []*Analyzer{FloatEq})
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
