package analysis

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow floateq reason", []string{"floateq"}},
		{"//lint:allow floateq", []string{"floateq"}},
		{"//lint:allow\tfloateq tab separator", []string{"floateq"}},
		{"//lint:allow floateq,lockcopy both", []string{"floateq", "lockcopy"}},
		{"//lint:allow floateq,floateq,lockcopy deduped", []string{"floateq", "lockcopy"}},
		{"//lint:allow floateq, lockcopy space splits the list", []string{"floateq"}},
		{"//lint:allowfloateq no separator", nil},
		{"//lint:allow", nil},
		{"// lint:allow floateq not a directive", nil},
		{"//lint:deny floateq wrong verb", nil},
	}
	for _, tc := range cases {
		if got := parseAllow(tc.text); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

// suppressOut runs floateq, lockcopy and stalelint over the suppress
// fixture and returns the rendered diagnostics.
func suppressOut(t *testing.T) string {
	t.Helper()
	pkg := loadFixture(t, "suppress", "fixture/suppress")
	return render(Run([]*Package{pkg}, []*Analyzer{FloatEq, LockCopy, StaleLint}))
}

// TestMultiRuleAllow pins the two multi-rule shapes: an allow whose
// rules are both live suppresses both findings and is never stale; an
// allow with a dead half suppresses the live rule and surfaces the
// dead one through stalelint.
func TestMultiRuleAllow(t *testing.T) {
	out := suppressOut(t)
	// Same (line 17) violates both rules on one line: both suppressed.
	if strings.Contains(out, "fixture.go:17:") && !strings.Contains(out, "[stalelint]") {
		t.Errorf("multi-rule allow with both halves live still reported:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "fixture.go:17:") {
			t.Errorf("line 17 should be fully suppressed, got: %s", line)
		}
	}
	// Cmp's comparison (line 22) is suppressed...
	if strings.Contains(out, "fixture.go:22: [floateq]") {
		t.Errorf("floateq half of the partial allow did not suppress:\n%s", out)
	}
	// ...and the dead lockcopy half is reported stale at the comment.
	if !strings.Contains(out, "//lint:allow lockcopy no longer suppresses anything") {
		t.Errorf("stale lockcopy half of the multi-rule allow not reported:\n%s", out)
	}
	// The fully-live allow on line 17 must not be called stale.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "fixture.go:17:") && strings.Contains(line, "[stalelint]") {
			t.Errorf("live multi-rule allow reported stale: %s", line)
		}
	}
}

// TestDeclGroupSpan checks a doc-comment allow on a var (...) group
// reaches every spec in the group, including ones separated from the
// comment by more than one line.
func TestDeclGroupSpan(t *testing.T) {
	out := suppressOut(t)
	for _, loc := range []string{"fixture.go:32:", "fixture.go:34:"} {
		if strings.Contains(out, loc) {
			t.Errorf("group-spec finding at %s escaped the doc-comment allow:\n%s", loc, out)
		}
	}
	if strings.Contains(out, "group-wide") {
		t.Errorf("the group allow was reported stale despite suppressing specs:\n%s", out)
	}
}

// TestGeneratedFileAllow checks generated files get no special
// treatment: findings are still reported there, and allow lines still
// suppress them.
func TestGeneratedFileAllow(t *testing.T) {
	out := suppressOut(t)
	if strings.Contains(out, "generated.go:8:") {
		t.Errorf("allowed finding in generated file still reported:\n%s", out)
	}
	if !strings.Contains(out, "generated.go:13:") {
		t.Errorf("bare finding in generated file not reported:\n%s", out)
	}
}
