// Package fixture exercises the lockguard analyzer: a named mutex, an
// embedded RWMutex, the *Locked naming convention, a below-threshold
// field and a suppressed finding.
package fixture

import "sync"

// counter guards n with mu in most methods; the stragglers are the
// findings.
type counter struct {
	mu  sync.Mutex
	n   int    // guarded in Add/Get/resetLocked, unguarded in Racy and Peek
	tag string // never guarded: no majority, no findings
}

func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Racy reads n outside the lock: finding.
func (c *counter) Racy() int { return c.n }

func (c *counter) Name() string { return c.tag }

func (c *counter) SetName(s string) { c.tag = s }

// resetLocked runs under the caller's lock by convention: its access
// counts as guarded.
func (c *counter) resetLocked() { c.n = 0 }

// Peek is a deliberate dirty read under a justification.
func (c *counter) Peek() int {
	return c.n //lint:allow lockguard deliberate racy peek for the fixture
}

// Window releases the lock midway: the access after Unlock is outside
// the window and below it the inline unlock path is exercised.
func (c *counter) Window() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // second read outside the window: finding
}

// rw embeds its RWMutex; promoted Lock/RLock calls must count.
type rw struct {
	sync.RWMutex
	m map[string]int
}

func (r *rw) Load(k string) int {
	r.RLock()
	defer r.RUnlock()
	return r.m[k]
}

func (r *rw) Store(k string, v int) {
	r.Lock()
	defer r.Unlock()
	r.m[k] = v
}

// Purge drops the map without the lock: finding.
func (r *rw) Purge() { r.m = nil }
