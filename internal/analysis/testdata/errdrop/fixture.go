// Package wal exercises the errdrop analyzer. The fixture is loaded
// under the import path fixture/streams/wal, so the whole file is in
// the durability scope and every discarded error from a critical call
// must be reported.
package wal

import "os"

// silentCloser has a Close with no error result; same-named calls on
// it must not be flagged.
type silentCloser struct{}

func (silentCloser) Close() {}

func dropped(f *os.File, p []byte) {
	f.Sync()        // want: discarded
	defer f.Close() // want: discarded by defer
	go f.Sync()     // want: discarded by go statement

	n, _ := f.Write(p) // want: error assigned to _
	_ = n
	_ = os.Remove(f.Name()) // want: error assigned to _
}

func checked(f *os.File, p []byte) error {
	if err := f.Sync(); err != nil { // fine: error checked
		return err
	}
	n, err := f.Write(p) // fine: error bound to a name
	_ = n
	if err != nil {
		return err
	}
	var sc silentCloser
	sc.Close() // fine: no error result to drop
	_, _ = f.Seek(0, 0)
	// fine: Seek is not a durability-critical callee
	os.Remove(f.Name()) //lint:allow errdrop cleanup of a file already renamed away
	return f.Close()    // fine: error returned to the caller
}
