// Package iafix exercises the itemalias analyzer with a stand-in for
// streams.Item (a named map type called Item).
package iafix

// Item mirrors streams.Item.
type Item map[string]any

// Clone returns a shallow copy.
func (it Item) Clone() Item {
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v
	}
	return out
}

type letter struct{ it Item }

type buffer struct {
	last    Item
	items   []Item
	byKey   map[string]Item
	letters []letter
}

// Retain stores the input map in a field: flagged.
func (b *buffer) Retain(it Item) {
	b.last = it
}

// RetainClone stores a copy: fine.
func (b *buffer) RetainClone(it Item) {
	b.last = it.Clone()
}

// Append retains through a slice field: flagged.
func (b *buffer) Append(it Item) {
	b.items = append(b.items, it)
}

// Index retains through a map field: flagged.
func (b *buffer) Index(it Item) {
	b.byKey[it.key()] = it
}

// Wrap retains through a composite literal: flagged.
func (b *buffer) Wrap(it Item) {
	b.letters = append(b.letters, letter{it: it})
}

// Forward sends the item downstream, transferring ownership: fine.
func Forward(it Item, ch chan Item) {
	ch <- it
}

// Pass returns the item to the caller: fine.
func Pass(it Item) Item {
	return it
}

var lastGlobal Item

// Stash retains through a package variable: flagged.
func Stash(it Item) {
	lastGlobal = it
}

// Local keeps the item only in locals that do not escape: fine.
func Local(it Item) {
	var tmp []Item
	tmp = append(tmp, it)
	_ = tmp
}

// Allowed is a sanctioned sink.
func (b *buffer) Allowed(it Item) {
	//lint:allow itemalias fixture: sink owns the item after the call
	b.items = append(b.items, it)
}

func (it Item) key() string {
	s, _ := it["id"].(string)
	return s
}
