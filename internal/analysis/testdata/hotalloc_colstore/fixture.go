// Package hcfix exercises the hotalloc rule over the resident column
// store's batch paths. It is loaded under the import path
// "fixture/rtec", so insertRows / mergeOrder / appendFrom / gatherCol
// form the columnar merge path: per-row Event materialization (Event,
// At, Slice calls) and per-row map construction are flagged at any
// loop depth, while packed cell moves pass.
package hcfix

// Event mirrors the per-event record a view call materializes.
type Event struct {
	Time int64
	Key  string
}

// Block is a minimal resident column segment.
type Block struct {
	Times []int64
	KIdx  []uint32
	KDict []string
}

// Event materializes the view of one row. Defining it is fine — only
// calling it per row inside a batch-path loop is flagged.
func (b *Block) Event(i int) Event {
	return Event{Time: b.Times[i], Key: b.KDict[b.KIdx[i]]}
}

// Rows is a zero-copy window view.
type Rows struct {
	blk *Block
	ids []int32
}

// Len returns the number of rows in the view.
func (r Rows) Len() int { return len(r.ids) }

// At materializes the view event of one row.
func (r Rows) At(i int) Event { return r.blk.Event(int(r.ids[i])) }

// Slice materializes the whole view.
func (r Rows) Slice() []Event {
	out := make([]Event, r.Len())
	for i := range out {
		out[i] = r.At(i)
	}
	return out
}

type store struct {
	order []int32
}

// insertRows materializes one view event per appended row: the Event
// call is flagged — the bulk path must move packed cells instead.
func (s *store) insertRows(src *Block, rows []int32) {
	for _, r := range rows {
		ev := src.Event(int(r))
		_ = ev
		s.order = append(s.order, r)
	}
}

// mergeOrder re-materializes each merged row (flagged) and builds a
// per-row map (flagged); the slice appends themselves are fine on the
// batch path.
func mergeOrder(dst []Event, src Rows) []Event {
	for i := 0; i < src.Len(); i++ {
		dst = append(dst, src.At(i))
		attrs := map[string]any{"row": i}
		_ = attrs
	}
	return dst
}

// gatherCol flattens views via Slice per element: flagged.
func gatherCol(views []Rows) []Event {
	var out []Event
	for _, v := range views {
		out = append(out, v.Slice()...)
	}
	return out
}

// appendFrom is the sanctioned shape: packed column-to-column moves,
// no per-row materialization. Nothing is flagged.
func (b *Block) appendFrom(src *Block, rows []int32) {
	for _, r := range rows {
		b.Times = append(b.Times, src.Times[r])
		b.KIdx = append(b.KIdx, src.KIdx[r])
	}
}

// copyView is not a batch-path function: the same patterns pass.
func copyView(src Rows) []Event {
	var out []Event
	for i := 0; i < src.Len(); i++ {
		out = append(out, src.At(i))
	}
	return out
}
