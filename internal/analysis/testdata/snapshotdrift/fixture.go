// Package fixture exercises the snapshotdrift analyzer: a two-sided
// Snapshot/Restore pair with drifting fields, a nested carrier struct,
// a snapshot-only struct, //state: annotations and a suppressed
// finding.
package fixture

// box is a snapshot-paired struct covering every drift outcome.
type box struct {
	kept    int // serialized and restored: clean
	lost    int // never serialized nor restored: finding (both sides)
	halfOut int // serialized but not rebuilt: finding (restore side)
	halfIn  int // rebuilt but not serialized: finding (snapshot side)

	// cache is recomputed from kept on first use after a restore.
	//state:derived recomputed on demand
	cache map[int]int

	scratch []byte //state:transient reusable buffer

	inner part
}

// part is a carrier struct reached through box.inner: the pair's
// closures must account for its fields too.
type part struct {
	a int
	b int
	c int // never read by encodePart: finding (snap side; the wholesale
	// assignment b.inner = restorePart(s) zeroes it, which counts as a
	// rebuild)
}

// boxSnap is the serialized form, reached through Snapshot's result
// type.
type boxSnap struct {
	Kept  int
	Extra int // written by Snapshot, never read on restore: finding
	A, B  int
}

func (b *box) Snapshot() *boxSnap {
	s := &boxSnap{Kept: b.kept, Extra: 1}
	b.encodePart(s)
	_ = b.halfOut
	return s
}

func (b *box) encodePart(s *boxSnap) {
	s.A, s.B = b.inner.a, b.inner.b
}

func (b *box) Restore(s *boxSnap) {
	b.kept = s.Kept
	b.halfIn = 0
	b.cache = nil
	b.inner = restorePart(s)
}

func restorePart(s *boxSnap) part {
	return part{a: s.A, b: s.B}
}

// ring has a snapshot method but no restore pair: uncaptured fields
// need a //state: annotation rather than a restore-side account.
type ring struct {
	seen []int
	drop int // not captured: finding (one-sided)
	n    int //state:transient run-scoped counter
}

func (r *ring) snapshot() []int { return append([]int(nil), r.seen...) }

// quiet drifts deliberately under a lint suppression.
type quiet struct {
	x int
	y int //lint:allow snapshotdrift fixture: drift is the point of this field
}

func (q *quiet) Snapshot() int { return q.x }

func (q *quiet) Restore(v int) { q.x = v }

// wholesale's snapshot copies the carrier by value: every carrier
// field counts as captured without being named.
type wholesale struct {
	blobs map[string]blob
}

type blob struct {
	A int
	B string
}

func (w *wholesale) Snapshot() map[string]blob {
	out := make(map[string]blob, len(w.blobs))
	for k, v := range w.blobs {
		out[k] = v
	}
	return out
}

func (w *wholesale) Restore(m map[string]blob) {
	w.blobs = make(map[string]blob, len(m))
	for k, v := range m {
		w.blobs[k] = v
	}
}
