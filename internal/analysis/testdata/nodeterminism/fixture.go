// Package ndfix exercises the nodeterminism analyzer. It is loaded by
// the framework tests under the import path "fixture/rtec" so the
// deterministic-package gate applies.
package ndfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().Unix()
}

// AllowedStamp reads the wall clock under a suppression comment.
func AllowedStamp() int64 {
	return time.Now().Unix() //lint:allow nodeterminism fixture: instrumentation only
}

// GlobalDraw uses the unseeded global source: flagged.
func GlobalDraw() float64 { return rand.Float64() }

// SeededDraw uses an explicit seeded source: fine (method call).
func SeededDraw(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

// LeakOrder returns map keys in iteration order: flagged.
func LeakOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// CollectThenSort is the canonical remedy: not flagged.
func CollectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PrintAll writes output in map order: flagged.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// SendAll sends in map order: flagged.
func SendAll(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// PerKey appends only to a slice scoped inside the loop body: fine.
func PerKey(m map[string]int) {
	for k := range m {
		parts := []string{}
		parts = append(parts, k)
		_ = parts
	}
}
