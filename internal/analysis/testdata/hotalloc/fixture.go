// Package hafix exercises the hotalloc analyzer. It is loaded under
// the import path "fixture/internal/linalg" so every function counts
// as a hot path.
package hafix

import "fmt"

type point struct{ x, y int }

// Kernel is allocation-free: fine.
func Kernel(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// MakeInLoop allocates per iteration: make and append flagged.
func MakeInLoop(n int) [][]float64 {
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		out = append(out, row)
	}
	return out
}

// Boxing converts ints to any per iteration: flagged.
func Boxing(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// Concat grows a string per iteration: flagged.
func Concat(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + p
	}
	return s
}

// Composite builds a struct literal per iteration: flagged.
func Composite(n int) {
	for i := 0; i < n; i++ {
		p := point{i, i}
		_ = p
	}
}

// OuterLoopSetup allocates only in the outer (non-innermost) loop
// body: the make is fine, the append in the innermost loop is flagged.
func OuterLoopSetup(n int) {
	for i := 0; i < n; i++ {
		buf := make([]int, 0, n)
		for j := 0; j < n; j++ {
			buf = append(buf, j)
		}
		_ = buf
	}
}

// ColdPanic allocates only to build a panic argument: fine.
func ColdPanic(n int) {
	for i := 0; i < n; i++ {
		if i < 0 {
			panic(fmt.Sprintf("impossible %d", i))
		}
	}
}

// Allowed is suppressed inline.
func Allowed(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 1) //lint:allow hotalloc fixture: sanctioned allocation
	}
}
