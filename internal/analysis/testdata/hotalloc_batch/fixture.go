// Package hbfix exercises the hotalloc batch-path rule. It is loaded
// under the import path "fixture/streams", so the functions named
// AppendRowFrom and faultBatch form the columnar batch path and must
// not materialize per-row maps — at any loop depth.
package hbfix

// Item mirrors the transport item: a per-event attribute map.
type Item map[string]any

// Batch is a minimal columnar batch.
type Batch struct {
	Times []int64
	Keys  []string
}

// Len returns the number of rows.
func (b *Batch) Len() int { return len(b.Times) }

// ItemAt rebuilds the map view of one row. Defining it is fine — only
// calling it per row inside a batch loop is flagged.
func (b *Batch) ItemAt(i int) Item {
	return Item{"time": b.Times[i], "key": b.Keys[i]}
}

// Clone copies an item.
func (it Item) Clone() Item {
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v
	}
	return out
}

// faultBatch re-materializes every row: the ItemAt and Clone calls are
// flagged, and so is the map literal in the nested loop — batch rules
// apply at every depth, not just the innermost.
func faultBatch(b *Batch) []Item {
	var out []Item
	for i := 0; i < b.Len(); i++ {
		it := b.ItemAt(i)
		out = append(out, it.Clone())
		for j := 0; j < 2; j++ {
			attrs := map[string]any{"dup": j}
			_ = attrs
		}
	}
	return out
}

// AppendRowFrom builds a scratch map per row: the make is flagged; the
// plain slice appends are fine on the batch path (amortized growth).
func (b *Batch) AppendRowFrom(src *Batch, i int) {
	for k := 0; k <= i; k++ {
		scratch := make(map[string]int, 1)
		scratch["row"] = k
		b.Times = append(b.Times, src.Times[k])
		b.Keys = append(b.Keys, src.Keys[k])
	}
}

// copyOut is not a batch-path function: the same patterns pass.
func copyOut(b *Batch) []Item {
	var out []Item
	for i := 0; i < b.Len(); i++ {
		out = append(out, b.ItemAt(i))
	}
	return out
}

type pool struct{}

// faultBatch (the method) carries a sanctioned materialization: the
// suppression comment keeps it out of the diagnostics.
func (pool) faultBatch(b *Batch) {
	for i := 0; i < b.Len(); i++ {
		_ = b.ItemAt(i) //lint:allow hotalloc fixture: sanctioned materialization
	}
}
