// Package glfix exercises the goroutineleak analyzer.
package glfix

import (
	"context"
	"sync"
)

// Leaky spawns a goroutine nothing can stop or join: flagged.
func Leaky() {
	go func() {
		for {
			_ = 1
		}
	}()
}

// leaky is unexported: outside the rule's scope.
func leaky() {
	go func() {
		for {
			_ = 1
		}
	}()
}

// WithCtx listens on ctx.Done: fine.
func WithCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// WithWG joins through a WaitGroup: fine.
func WithWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// WithQuit selects on a quit channel: fine.
func WithQuit(quit chan struct{}) {
	go func() {
		select {
		case <-quit:
		}
	}()
}

// Closer's goroutine is bounded by the WaitGroup it waits on: fine.
func Closer(wg *sync.WaitGroup, ch chan int) {
	go func() {
		wg.Wait()
		close(ch)
	}()
}

// Drain ranges over a channel, joined by whoever closes it: fine.
func Drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// NamedNoArgs starts a named function with no context or channel
// argument: flagged.
func NamedNoArgs() {
	go spin()
}

// NamedCtx passes a context to the named function: fine.
func NamedCtx(ctx context.Context) {
	go watch(ctx)
}

func spin() {}

func watch(ctx context.Context) { <-ctx.Done() }

// AllowedLeak is suppressed by the comment above the go statement.
func AllowedLeak() {
	//lint:allow goroutineleak fixture: detached by design
	go func() {
		for {
			_ = 1
		}
	}()
}
