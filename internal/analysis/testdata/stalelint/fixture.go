// Package fixture exercises the stalelint analyzer: a live allow, a
// stale allow, a multi-rule allow with one dead half and an unknown
// rule name.
package fixture

// eq wants exact equality; its allow suppresses a real floateq finding
// and is therefore live.
func eq(a, b float64) bool {
	return a == b //lint:allow floateq fixture: exact match is the contract here
}

// alwaysTrue once compared floats; the comparison is gone but the
// allow lingers: stale finding.
//
//lint:allow floateq stale: nothing in this function compares floats any more
func alwaysTrue(a, b float64) bool {
	_ = a
	_ = b
	return true
}

// multi suppresses two rules on one line but only the floateq half
// still fires: the goroutineleak half is a stale finding.
func multi(a, b float64) bool {
	return a == b //lint:allow floateq,goroutineleak fixture: only the float half is live
}

// unknown names a rule that does not exist: always reported.
func unknown() int {
	return 1 //lint:allow nosuchrule this rule name is a typo
}

// keep holds a dormant allow on purpose; the stalelint finding about
// it is itself suppressed by the allow on the line above it.
//
//lint:allow stalelint the dormant allow below documents intent
//lint:allow floateq dormant: kept for an upcoming float comparison
func keep(a, b float64) bool {
	_ = a
	_ = b
	return false
}
