// Package fixture exercises suppressor edge cases: multi-rule allow
// lines (fully and partially live), a doc-comment allow spanning a
// var declaration group, and allows inside a generated file (see
// generated.go).
package fixture

import "sync"

// padlock carries a mutex so by-value receivers trip lockcopy.
type padlock struct {
	mu sync.Mutex
	n  int
}

// Same trips floateq and lockcopy on one line; the multi-rule allow
// covers both, so neither half is stale.
func (p padlock) Same(a, b float64) bool { return a == b } //lint:allow floateq,lockcopy fixture: both halves live

// Cmp names two rules but only violates one: the lockcopy half of the
// allow is stale.
func Cmp(a, b float64) bool {
	return a == b //lint:allow floateq,lockcopy fixture: the lockcopy half is dead
}

var lhs, rhs float64

// The whole group compares exactly on purpose; the doc-comment allow
// must reach every spec, including ones past line-above range.
//
//lint:allow floateq fixture: group-wide sanctioned exact comparisons
var (
	eqFwd = lhs == rhs

	eqRev = rhs == lhs
)
