// Package wal exercises the durorder analyzer: forward-before-append,
// rename-after-unsynced-write, missing sync-after-rename and the clean
// counterparts. The package is loaded under an import path ending in
// /wal so it falls inside the analyzer's scope.
package wal

import "os"

// sink pairs a durable file with a downstream channel.
type sink struct {
	f   *os.File
	out chan []byte
}

// badForward hands the record downstream before it is durable: finding.
func (s *sink) badForward(rec []byte) error {
	s.out <- rec
	return s.Append(rec)
}

// goodForward appends first, forwards after: clean.
func (s *sink) goodForward(rec []byte) error {
	if err := s.Append(rec); err != nil {
		return err
	}
	s.out <- rec
	return nil
}

// lossyForward forwards before appending on purpose: a best-effort tap
// whose loss on crash is acceptable, so the finding is suppressed.
func (s *sink) lossyForward(rec []byte) error {
	s.out <- rec //lint:allow durorder best-effort tap: loss on crash is acceptable here
	return s.Append(rec)
}

// Append writes and syncs one record.
func (s *sink) Append(rec []byte) error {
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	return s.f.Sync()
}

// renameUnsynced publishes a file whose contents may still be in the
// page cache, and never syncs the directory either: two findings at
// the rename.
func renameUnsynced(f *os.File, tmp, final string) error {
	if _, err := f.Write([]byte("state")); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// renameSynced syncs the file before the rename and the directory
// after it: clean.
func renameSynced(f *os.File, tmp, final, dir string) error {
	if _, err := f.Write([]byte("state")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// renameNoDirSync syncs the file but not the directory: one finding.
func renameNoDirSync(f *os.File, tmp, final string) error {
	if _, err := f.Write([]byte("state")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
