// Package fefix exercises the floateq analyzer.
package fefix

// Eq compares floats exactly: flagged.
func Eq(a, b float64) bool { return a == b }

// Neq compares floats exactly: flagged.
func Neq(a, b float64) bool { return a != b }

// F32 compares float32 exactly: flagged.
func F32(a, b float32) bool { return a == b }

// NaN is the x != x idiom: fine.
func NaN(a float64) bool { return a != a }

// Zero compares against an exact-zero literal: fine.
func Zero(a float64) bool { return a == 0 }

// Ints are not floats: fine.
func Ints(a, b int) bool { return a == b }

// Tol uses a tolerance: fine.
func Tol(a, b float64) bool { return abs(a-b) <= 1e-9 }

// Allowed is suppressed inline.
func Allowed(a, b float64) bool {
	return a == b //lint:allow floateq fixture: sanctioned exact compare
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
