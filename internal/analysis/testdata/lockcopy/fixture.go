// Package lcfix exercises the lockcopy analyzer.
package lcfix

import "sync"

// Guarded carries a mutex by value.
type Guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ g Guarded }

// ByValue copies the lock through a parameter: flagged.
func ByValue(g Guarded) int { return g.n }

// ByPointer is fine.
func ByPointer(g *Guarded) int { return g.n }

// Val copies the lock through the receiver: flagged.
func (g Guarded) Val() int { return g.n }

// PtrVal is fine.
func (g *Guarded) PtrVal() int { return g.n }

// Produce returns the lock by value: flagged.
func Produce() Guarded { return Guarded{} }

// ProducePtr returns a pointer: fine.
func ProducePtr() *Guarded { return &Guarded{} }

// Nested finds the lock through an embedded field: flagged.
func Nested(w wrapper) int { return w.g.n }

// RangeCopy copies each element, lock included: flagged.
func RangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// RangeIndex iterates by index: fine.
func RangeIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// Allowed is suppressed through its doc comment.
//
//lint:allow lockcopy fixture: sanctioned copy
func Allowed(g Guarded) int { return g.n }
