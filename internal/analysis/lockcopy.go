package analysis

import (
	"go/ast"
	"go/types"
)

// LockCopy flags signatures and range clauses that copy a value
// containing a sync primitive (Mutex, RWMutex, WaitGroup, Cond, Once,
// Pool, Map): a copied lock guards nothing, and the supervision and
// topology state of the streams backbone is exactly the kind of
// mutex-bearing struct that must only travel by pointer. `go vet`'s
// copylocks catches assignment sites; this rule additionally pins down
// the declarations — by-value receivers, parameters and results — so
// the mistake is reported where the API is defined, not where it is
// first called.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags by-value receivers/params/results and range copies of lock-bearing structs",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := funcName(fd)
			check := func(fl *ast.FieldList, what string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					tv, ok := info.Types[field.Type]
					if !ok {
						continue
					}
					if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
						continue
					}
					if lp := lockPath(tv.Type); lp != "" {
						pass.Reportf(field.Type.Pos(), "%s of %s passes %s by value (contains %s); use a pointer", what, name, tv.Type.String(), lp)
					}
				}
			}
			check(fd.Recv, "receiver")
			if fd.Type.Params != nil {
				check(fd.Type.Params, "parameter")
			}
			if fd.Type.Results != nil {
				check(fd.Type.Results, "result")
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || rng.Value == nil {
					return true
				}
				// The value in `for _, v := range xs` is a defining
				// ident, recorded in Defs rather than Types; TypeOf
				// covers both.
				vt := info.TypeOf(rng.Value)
				if vt == nil {
					return true
				}
				if _, isPtr := vt.Underlying().(*types.Pointer); isPtr {
					return true
				}
				if lp := lockPath(vt); lp != "" {
					pass.Reportf(rng.Value.Pos(), "range clause copies %s by value (contains %s); range over indices instead", vt.String(), lp)
				}
				return true
			})
		}
	}
}
