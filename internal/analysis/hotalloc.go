package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// hotPathFuncs maps hot-path packages (by import-path suffix) to a
// regexp over function names: only matching functions are held to the
// allocation-free standard. internal/linalg is kernels throughout; in
// rtec the store's window views and eviction are the per-query inner
// loop (PR 1's O(log n) contract), while rule evaluation legitimately
// builds result maps.
var hotPathFuncs = map[string]*regexp.Regexp{
	"internal/linalg": regexp.MustCompile(`.*`),
	"rtec":            regexp.MustCompile(`^(window|windowForKey|sliceSpan|trimBefore|evict|dirtyFloor|insertSorted|dot4|rows|rowsForKey|countInSpan|idBounds|trimIDs)$`),
}

// batchPathFuncs maps packages to the functions forming the columnar
// batch path: the row loops whose whole point is that no per-event map
// is ever built. Unlike the kernel rule above, these are checked at
// every loop depth — one ItemAt or map construction per row silently
// reverts the batch path to per-item cost.
var batchPathFuncs = map[string]*regexp.Regexp{
	"streams": regexp.MustCompile(`^(AppendRowFrom|faultBatch)$`),
	"rtec":    regexp.MustCompile(`^(copyRows|inputBlock|insertRows|mergeOrder|appendCols|appendFrom|gatherCol)$`),
	"insight": regexp.MustCompile(`^(admitRows|ProcessBatch)$`),
}

// itemMaterializers are the calls that rebuild a per-event (map or
// view) representation from columnar data; calling one per row inside
// a batch loop defeats the batching. Event/At/Slice cover the resident
// column store: its window and merge paths must move packed cells, not
// materialize one Event per row.
var itemMaterializers = map[string]bool{
	"ItemAt":   true,
	"Clone":    true,
	"NewEvent": true,
	"Event":    true,
	"At":       true,
	"Slice":    true,
}

// HotAlloc flags allocation sites inside the innermost loop bodies of
// hot-path functions: composite literals, make, append (which may
// grow), string concatenation and interface boxing. PR 3's blocked
// kernels get their throughput from allocation-free inner loops (the
// 4-accumulator dot products, the tile sweeps); an alloc introduced
// there is a silent multi-× regression the equivalence tests cannot
// see. Cold paths inside a hot loop (error/panic construction) are
// fine — annotate them with //lint:allow hotalloc and a justification.
//
// On the columnar batch path (batchPathFuncs) it additionally flags
// per-row map construction and Item/Event materialization calls at any
// loop depth: the zero-allocation contract of batched transport.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocations in the innermost loops of hot-path kernel functions and per-row map materialization in batch loops",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	var hotRe *regexp.Regexp
	for suffix, re := range hotPathFuncs {
		if pkgMatches(pass.Pkg.Path, []string{suffix}) {
			hotRe = re
			break
		}
	}
	var batchRe *regexp.Regexp
	for suffix, re := range batchPathFuncs {
		if pkgMatches(pass.Pkg.Path, []string{suffix}) {
			batchRe = re
			break
		}
	}
	if hotRe == nil && batchRe == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcName(fd)
			if hotRe != nil && hotRe.MatchString(fd.Name.Name) {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					body := loopBody(n)
					if body == nil || !innermostLoop(body) {
						return true
					}
					checkHotLoop(pass, name, body)
					return true
				})
			}
			if batchRe != nil && batchRe.MatchString(fd.Name.Name) {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if body := loopBody(n); body != nil {
						checkBatchLoop(pass, name, body)
					}
					return true
				})
			}
		}
	}
}

// checkBatchLoop reports per-row map construction and Item/Event
// materialization directly inside one batch-loop body. Nested loop
// bodies are skipped here — the caller visits every loop, so each
// statement is checked exactly once, at its own depth.
func checkBatchLoop(pass *Pass, fn string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	walkShallow(body, func(n ast.Node) bool {
		if b := loopBody(n); b != nil && ast.Node(body) != n {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "per-row map construction in batch loop of %s defeats columnar batching", fn)
					return false
				}
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "panic") {
				return false
			}
			if isBuiltin(info, n, "make") {
				if tv, ok := info.Types[n]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "per-row map construction in batch loop of %s defeats columnar batching", fn)
					}
				}
				return true
			}
			if name, ok := calleeName(n); ok && itemMaterializers[name] {
				pass.Reportf(n.Pos(), "per-row %s call in batch loop of %s materializes the map representation", name, fn)
			}
		}
		return true
	})
}

// calleeName extracts the bare called name of a call expression:
// "f(...)" yields f, "x.M(...)" yields M. Conversions and builtins
// yield false.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}

// loopBody returns the body of a for/range statement, or nil.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// innermostLoop reports whether body contains no nested loop (nested
// function literals are opaque: their loops are analyzed when the
// literal itself is walked).
func innermostLoop(body *ast.BlockStmt) bool {
	inner := false
	walkShallow(body, func(n ast.Node) bool {
		if ast.Node(body) != n && loopBody(n) != nil {
			inner = true
		}
		return !inner
	})
	return !inner
}

// checkHotLoop reports every allocation site directly inside body.
func checkHotLoop(pass *Pass, fn string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal allocates in the innermost loop of hot function %s", fn)
			return false // don't re-flag nested literals
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n, "panic"):
				// A reached panic ends the loop: everything evaluated
				// for its argument is the cold path.
				return false
			case isBuiltin(info, n, "make"):
				pass.Reportf(n.Pos(), "make allocates in the innermost loop of hot function %s", fn)
			case isBuiltin(info, n, "append"):
				pass.Reportf(n.Pos(), "append may grow its backing array in the innermost loop of hot function %s", fn)
			default:
				checkBoxing(pass, fn, n)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation allocates in the innermost loop of hot function %s", fn)
					}
				}
			}
		}
		return true
	})
}

// checkBoxing flags call arguments that convert a concrete value to an
// interface parameter — each such conversion may heap-allocate.
func checkBoxing(pass *Pass, fn string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if _, argIface := at.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		pass.Reportf(arg.Pos(), "interface conversion (boxing) may allocate in the innermost loop of hot function %s", fn)
	}
}
