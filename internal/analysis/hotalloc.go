package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// hotPathFuncs maps hot-path packages (by import-path suffix) to a
// regexp over function names: only matching functions are held to the
// allocation-free standard. internal/linalg is kernels throughout; in
// rtec the store's window views and eviction are the per-query inner
// loop (PR 1's O(log n) contract), while rule evaluation legitimately
// builds result maps.
var hotPathFuncs = map[string]*regexp.Regexp{
	"internal/linalg": regexp.MustCompile(`.*`),
	"rtec":            regexp.MustCompile(`^(window|windowForKey|sliceSpan|trimBefore|evict|dirtyFloor|insertSorted|dot4)$`),
}

// HotAlloc flags allocation sites inside the innermost loop bodies of
// hot-path functions: composite literals, make, append (which may
// grow), string concatenation and interface boxing. PR 3's blocked
// kernels get their throughput from allocation-free inner loops (the
// 4-accumulator dot products, the tile sweeps); an alloc introduced
// there is a silent multi-× regression the equivalence tests cannot
// see. Cold paths inside a hot loop (error/panic construction) are
// fine — annotate them with //lint:allow hotalloc and a justification.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocations in the innermost loops of hot-path kernel functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	var hotRe *regexp.Regexp
	for suffix, re := range hotPathFuncs {
		if pkgMatches(pass.Pkg.Path, []string{suffix}) {
			hotRe = re
			break
		}
	}
	if hotRe == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotRe.MatchString(fd.Name.Name) {
				continue
			}
			name := funcName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				body := loopBody(n)
				if body == nil || !innermostLoop(body) {
					return true
				}
				checkHotLoop(pass, name, body)
				return true
			})
		}
	}
}

// loopBody returns the body of a for/range statement, or nil.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// innermostLoop reports whether body contains no nested loop (nested
// function literals are opaque: their loops are analyzed when the
// literal itself is walked).
func innermostLoop(body *ast.BlockStmt) bool {
	inner := false
	walkShallow(body, func(n ast.Node) bool {
		if ast.Node(body) != n && loopBody(n) != nil {
			inner = true
		}
		return !inner
	})
	return !inner
}

// checkHotLoop reports every allocation site directly inside body.
func checkHotLoop(pass *Pass, fn string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal allocates in the innermost loop of hot function %s", fn)
			return false // don't re-flag nested literals
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n, "panic"):
				// A reached panic ends the loop: everything evaluated
				// for its argument is the cold path.
				return false
			case isBuiltin(info, n, "make"):
				pass.Reportf(n.Pos(), "make allocates in the innermost loop of hot function %s", fn)
			case isBuiltin(info, n, "append"):
				pass.Reportf(n.Pos(), "append may grow its backing array in the innermost loop of hot function %s", fn)
			default:
				checkBoxing(pass, fn, n)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation allocates in the innermost loop of hot function %s", fn)
					}
				}
			}
		}
		return true
	})
}

// checkBoxing flags call arguments that convert a concrete value to an
// interface parameter — each such conversion may heap-allocate.
func checkBoxing(pass *Pass, fn string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if _, argIface := at.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		pass.Reportf(arg.Pos(), "interface conversion (boxing) may allocate in the innermost loop of hot function %s", fn)
	}
}
