package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the unit every analyzer
// operates on.
type Package struct {
	Path  string // import path ("fixture/..." for test fixtures)
	Name  string // package name from the source files
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, build-constraint filtered, sorted by filename
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module. Module-internal
// imports are resolved by recursively loading the imported package from
// source; stdlib imports are resolved from the toolchain's compiled
// export data (`go list -export std`), falling back to type-checking
// the standard library from source when the go command is unavailable.
type Loader struct {
	Fset    *token.FileSet
	root    string // absolute module root (directory of go.mod)
	modPath string // module path from go.mod

	pkgs    map[string]*Package
	loading map[string]bool // cycle guard
	stdlib  types.Importer
}

// NewLoader prepares a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := moduleName(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    abs,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		stdlib:  newStdImporter(fset),
	}, nil
}

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// moduleName extracts the module path from root/go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.TrimSuffix(rest, "// indirect")), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// LoadModule walks the module tree and loads every package that
// contains non-test Go files, in import-path order. Directories named
// testdata, hidden directories and _-prefixed directories are skipped,
// mirroring the go command.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "results" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go
// file (before build-constraint filtering).
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Results are cached by import path; test files are
// excluded, and files are filtered by build constraints for the default
// build context (so e.g. a `//go:build race` file does not clash with
// its `!race` twin).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg := l.pkgs[importPath]; pkg != nil {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(abs, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		return l.importPkg(path)
	})}
	tpkg, err := cfg.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importPkg resolves one import: module-internal paths load from
// source through the cache, everything else goes to the stdlib
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := l.root
		if rel != "" {
			dir = filepath.Join(l.root, filepath.FromSlash(rel))
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newStdImporter builds the standard-library importer. The fast path
// feeds the compiled export data of every std package to the gc
// importer; if no export data can be found it falls back to the source
// importer, which type-checks the standard library from GOROOT
// sources.
func newStdImporter(fset *token.FileSet) types.Importer {
	exports := stdExportMap()
	if len(exports) == 0 {
		return importer.ForCompiler(fset, "source", nil)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file := exports[path]
		if file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// The import-path -> export-file map for the standard library is
// immutable for a given toolchain, but discovering it means running
// `go list -export -e std` — around 0.3s, which used to dominate
// insightlint's wall time. It is now resolved once per process and
// memoised on disk across processes, keyed by toolchain version and
// platform; every cached file path is stat-validated so a pruned build
// cache or toolchain upgrade transparently falls back to a fresh scan.
var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
)

// stdExportMap returns the stdlib export-data map, or nil when the go
// command is unavailable (callers then use the source importer).
func stdExportMap() map[string]string {
	stdExportsOnce.Do(func() {
		path := stdExportsCachePath()
		if m := readStdExportsCache(path); m != nil {
			stdExports = m
			return
		}
		out, err := exec.Command("go", "list", "-export", "-e", "-f", "{{.ImportPath}}={{.Export}}", "std").Output()
		if err != nil {
			return
		}
		m := parseStdExports(out)
		if len(m) == 0 {
			return
		}
		writeStdExportsCache(path, out)
		stdExports = m
	})
	return stdExports
}

// stdExportsCachePath names the per-toolchain on-disk cache file.
func stdExportsCachePath() string {
	name := fmt.Sprintf("insightlint-std-exports-%s-%s-%s.txt",
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return filepath.Join(os.TempDir(), name)
}

// parseStdExports decodes `go list -export` output ("path=exportfile"
// per line); packages without export data (empty right side) are
// dropped.
func parseStdExports(out []byte) map[string]string {
	exports := make(map[string]string)
	for _, line := range strings.Split(string(bytes.TrimSpace(out)), "\n") {
		ip, file, ok := strings.Cut(line, "=")
		if ok && file != "" {
			exports[ip] = file
		}
	}
	return exports
}

// readStdExportsCache loads and validates a cached export map. Any
// missing export file invalidates the whole cache: the build cache was
// pruned and `go list -export` must rebuild it.
func readStdExportsCache(path string) map[string]string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	m := parseStdExports(data)
	if len(m) == 0 {
		return nil
	}
	for _, file := range m {
		if _, err := os.Stat(file); err != nil {
			return nil
		}
	}
	return m
}

// writeStdExportsCache persists the raw `go list` output atomically
// (temp file + rename) so concurrent lint runs never observe a torn
// cache. Failures are ignored: the cache is an optimisation only.
func writeStdExportsCache(path string, out []byte) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
