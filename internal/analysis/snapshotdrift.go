package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapshotDrift proves the snapshot/restore contract structurally: for
// every struct with a snapshot-side method (Snapshot, MarshalBinary,
// encode*, snapshot*, *Snapshot) each field must be touched by the
// snapshot call closure, touched by the restore call closure (Restore,
// UnmarshalBinary, restore*/decode*, plus package-level decode*/
// restore*/load*/unmarshal* constructors returning the type), or be
// explicitly annotated //state:derived or //state:transient. Structs
// reachable from a checked struct's fields or from the snapshot
// methods' result types — the carrier types a snapshot is encoded
// into — are held to the same standard, so dropping one encode line
// for a serialized field is a lint failure, not a latent
// crash-equivalence bug.
var SnapshotDrift = &Analyzer{
	Name: "snapshotdrift",
	Doc:  "struct fields must survive the Snapshot/Restore path or carry a //state: annotation",
	Run:  runSnapshotDrift,
}

// snapPair is one struct with snapshot-side (and possibly restore-side)
// entry points.
type snapPair struct {
	owner   *types.TypeName
	snap    []*ast.FuncDecl
	restore []*ast.FuncDecl
}

// driftEntry accumulates, per struct, the field uses of every pair
// whose closure can reach it. A struct reachable from several pairs
// (a shared carrier) passes if any reaching path serializes it.
type driftEntry struct {
	decl     *structDecl
	snapUsed map[*types.Var]bool
	restUsed map[*types.Var]bool
	twoSided bool
	oneSided bool
}

func isSnapSideName(name string) bool {
	return name == "Snapshot" || name == "MarshalBinary" || name == "encode" ||
		strings.HasPrefix(name, "snapshot") || strings.HasPrefix(name, "encode") ||
		strings.HasSuffix(name, "Snapshot")
}

func isRestoreSideName(name string) bool {
	return name == "Restore" || name == "UnmarshalBinary" ||
		strings.HasPrefix(name, "restore") || strings.HasPrefix(name, "decode") ||
		strings.HasSuffix(name, "Restore")
}

func isRestoreFreeName(name string) bool {
	return strings.HasPrefix(name, "decode") || strings.HasPrefix(name, "restore") ||
		strings.HasPrefix(name, "load") || strings.HasPrefix(name, "unmarshal")
}

// recvTypeName resolves the named type a method declaration hangs off,
// or nil for free functions and unnamed receivers.
func recvTypeName(pkg *Package, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil {
		return nil
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	if named, ok := derefType(recv.Type()).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// resultStructs yields the named same-package structs a function
// returns (through pointers and slices), the carrier types a snapshot
// is encoded into.
func resultStructs(pkg *Package, fd *ast.FuncDecl, sidx map[*types.TypeName]*structDecl) []*types.TypeName {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	results := fn.Type().(*types.Signature).Results()
	var out []*types.TypeName
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok && sidx[named.Obj()] != nil {
			out = append(out, named.Obj())
		}
	}
	return out
}

// fieldTypeStructs yields the named same-package structs embedded in a
// field type, unwrapping pointers, slices, arrays and maps. Interfaces
// and foreign packages end the walk: their contents are someone else's
// contract.
func fieldTypeStructs(t types.Type, sidx map[*types.TypeName]*structDecl, out map[*types.TypeName]bool) {
	switch u := t.(type) {
	case *types.Named:
		if sidx[u.Obj()] != nil {
			out[u.Obj()] = true
		}
		return
	case *types.Pointer:
		fieldTypeStructs(u.Elem(), sidx, out)
	case *types.Slice:
		fieldTypeStructs(u.Elem(), sidx, out)
	case *types.Array:
		fieldTypeStructs(u.Elem(), sidx, out)
	case *types.Map:
		fieldTypeStructs(u.Key(), sidx, out)
		fieldTypeStructs(u.Elem(), sidx, out)
	}
}

func runSnapshotDrift(pass *Pass) {
	pkg := pass.Pkg
	sidx := structIndex(pkg)
	if len(sidx) == 0 {
		return
	}
	ix := newFuncIndex(pkg)

	// Discover pairs: snapshot-side methods per struct, restore-side
	// methods per struct, and restore-side free constructors by result
	// type.
	pairs := make(map[*types.TypeName]*snapPair)
	pairFor := func(tn *types.TypeName) *snapPair {
		p := pairs[tn]
		if p == nil {
			p = &snapPair{owner: tn}
			pairs[tn] = p
		}
		return p
	}
	for fn, fd := range ix.decls {
		name := fn.Name()
		if tn := recvTypeName(pkg, fd); tn != nil && sidx[tn] != nil {
			if isSnapSideName(name) {
				pairFor(tn).snap = append(pairFor(tn).snap, fd)
			}
			if isRestoreSideName(name) {
				pairFor(tn).restore = append(pairFor(tn).restore, fd)
			}
			continue
		}
		if fd.Recv == nil && isRestoreFreeName(name) {
			for _, tn := range resultStructs(pkg, fd, sidx) {
				pairFor(tn).restore = append(pairFor(tn).restore, fd)
			}
		}
	}

	entries := make(map[*types.TypeName]*driftEntry)
	entryFor := func(tn *types.TypeName) *driftEntry {
		e := entries[tn]
		if e == nil {
			e = &driftEntry{
				decl:     sidx[tn],
				snapUsed: make(map[*types.Var]bool),
				restUsed: make(map[*types.Var]bool),
			}
			entries[tn] = e
		}
		return e
	}

	for tn, pair := range pairs {
		if len(pair.snap) == 0 {
			continue // restore-side only: a constructor, not a snapshot contract
		}
		snapUsed := fieldUses(pkg, ix.closure(pair.snap))
		restUsed := fieldUses(pkg, ix.closure(pair.restore))

		// The struct set this pair vouches for: the owner plus every
		// same-package struct reachable from its non-annotated fields
		// and from the pair's result types — except structs with their
		// own snapshot contract, which answer for themselves.
		group := map[*types.TypeName]bool{tn: true}
		frontier := []*types.TypeName{tn}
		for _, fd := range append(append([]*ast.FuncDecl{}, pair.snap...), pair.restore...) {
			for _, res := range resultStructs(pkg, fd, sidx) {
				if !group[res] && (pairs[res] == nil || len(pairs[res].snap) == 0) {
					group[res] = true
					frontier = append(frontier, res)
				}
			}
		}
		for len(frontier) > 0 {
			cur := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			next := make(map[*types.TypeName]bool)
			for _, f := range sidx[cur].fields {
				if stateAnnotation(f.ast) != "" {
					continue // annotated out of the contract: don't descend
				}
				fieldTypeStructs(f.v.Type(), sidx, next)
			}
			for res := range next {
				if !group[res] && (pairs[res] == nil || len(pairs[res].snap) == 0) {
					group[res] = true
					frontier = append(frontier, res)
				}
			}
		}

		for member := range group {
			e := entryFor(member)
			for v := range snapUsed {
				e.snapUsed[v] = true
			}
			for v := range restUsed {
				e.restUsed[v] = true
			}
			if len(pair.restore) > 0 {
				e.twoSided = true
			} else {
				e.oneSided = true
			}
		}
	}

	// Report in declared-name order; Run's global sort keys on position,
	// but a stable walk keeps map iteration out of the picture.
	names := make([]*types.TypeName, 0, len(entries))
	for tn := range entries {
		names = append(names, tn)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })

	for _, tn := range names {
		e := entries[tn]
		for _, f := range e.decl.fields {
			if stateAnnotation(f.ast) != "" {
				continue
			}
			if lockPath(f.v.Type()) != "" {
				continue // sync primitives are never serialized
			}
			missSnap := !e.snapUsed[f.v]
			missRest := e.twoSided && !e.restUsed[f.v]
			qual := tn.Name() + "." + f.v.Name()
			switch {
			case missSnap && missRest:
				pass.Reportf(f.ast.Pos(), "field %s is neither read on the snapshot path nor rebuilt on restore; serialize it or annotate //state:derived or //state:transient", qual)
			case missSnap && e.twoSided:
				pass.Reportf(f.ast.Pos(), "field %s is rebuilt on restore but never read on the snapshot path; serialize it or annotate //state:derived or //state:transient", qual)
			case missSnap:
				pass.Reportf(f.ast.Pos(), "field %s is not captured by the snapshot path; capture it or annotate //state:transient", qual)
			case missRest:
				pass.Reportf(f.ast.Pos(), "field %s is serialized but never rebuilt on restore; decode it or annotate //state:derived or //state:transient", qual)
			}
		}
	}
}
