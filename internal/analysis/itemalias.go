package analysis

import (
	"go/ast"
	"go/types"
)

// ItemAlias flags functions that retain a reference to an input
// streams.Item (a map) beyond the call: storing the item — or a
// composite wrapping it — into a field, a map/slice reachable from a
// receiver or parameter, or an outer-scope variable, and appending it
// to such a slice. The supervision/dead-letter machinery of PR 2
// snapshots items on the failure path and the chaos duplicator re-uses
// them; both are only sound if processors treat the input map as
// borrowed for the duration of Process and store it.Clone() when they
// need to keep state. Forwarding (returning the item or sending it
// on a channel) transfers ownership and is fine. Deliberate
// ownership-transfer sinks annotate with //lint:allow itemalias.
var ItemAlias = &Analyzer{
	Name: "itemalias",
	Doc:  "flags processors that retain a reference to an input streams.Item beyond the call",
	Run:  runItemAlias,
}

func runItemAlias(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			items := itemParams(info, fd)
			if len(items) == 0 {
				continue
			}
			checkItemRetention(pass, fd, items)
		}
	}
}

// itemParams collects the objects of Item-typed parameters and
// receivers of fd.
func itemParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	items := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isItemType(obj.Type()) {
					items[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	if len(items) == 0 {
		return nil
	}
	return items
}

func checkItemRetention(pass *Pass, fd *ast.FuncDecl, items map[types.Object]bool) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) && len(as.Lhs) != 1 {
				break
			}
			lhs := as.Lhs[min(i, len(as.Lhs)-1)]
			// x = append(retained, it): the append target decides
			// whether the item escapes.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
				if len(call.Args) < 2 {
					continue
				}
				argRetains := false
				for _, a := range call.Args[1:] {
					if retainsItemRef(info, a, items) {
						argRetains = true
					}
				}
				if argRetains && (retainedLocation(info, fd, call.Args[0]) || retainedLocation(info, fd, lhs)) {
					name := exprItemName(info, call.Args, items)
					pass.Reportf(rhs.Pos(), "input Item %s is appended to state that outlives the call; append %s.Clone() instead", name, name)
				}
				continue
			}
			if retainsItemRef(info, rhs, items) && retainedLocation(info, fd, lhs) {
				name := exprItemName(info, as.Rhs, items)
				pass.Reportf(rhs.Pos(), "input Item %s is stored beyond the call; store %s.Clone() instead", name, name)
			}
		}
		return true
	})
}

// retainsItemRef reports whether evaluating expr yields a reference to
// one of the tracked item maps: the bare identifier, possibly wrapped
// in composite literals or address-of. Reads through the map
// (it[k], len(it)) and calls (it.Clone()) do not retain.
func retainsItemRef(info *types.Info, expr ast.Expr, items map[types.Object]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return items[info.Uses[e]]
	case *ast.UnaryExpr:
		return retainsItemRef(info, e.X, items)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if retainsItemRef(info, el, items) {
				return true
			}
		}
	}
	return false
}

// retainedLocation reports whether the expression denotes storage that
// outlives fd's call: a field selector, an index into a map/slice, or
// a variable — in each case rooted at an identifier declared outside
// the function body (receiver, parameter, closure capture or package
// variable).
func retainedLocation(info *types.Info, fd *ast.FuncDecl, expr ast.Expr) bool {
	root := expr
	for {
		switch e := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		default:
			// Whether a plain variable, or the root of a
			// selector/index chain: storage retains the item iff it is
			// declared outside the function body (receiver, parameter,
			// closure capture or package variable). Purely local
			// structures that never escape are fine.
			id, ok := ast.Unparen(root).(*ast.Ident)
			if !ok {
				return false
			}
			return declaredOutside(info, id, fd.Body, fd.Body)
		}
	}
}

// exprItemName returns the name of the first tracked item identifier
// in exprs, for the message.
func exprItemName(info *types.Info, exprs []ast.Expr, items map[types.Object]bool) string {
	for _, e := range exprs {
		name := ""
		ast.Inspect(e, func(n ast.Node) bool {
			if name != "" {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && items[info.Uses[id]] {
				name = id.Name
			}
			return true
		})
		if name != "" {
			return name
		}
	}
	return "item"
}
