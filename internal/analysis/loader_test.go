package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseStdExports(t *testing.T) {
	out := []byte("fmt=/cache/fmt.a\nnoexport=\nio=/cache/io.a\n")
	m := parseStdExports(out)
	if len(m) != 2 || m["fmt"] != "/cache/fmt.a" || m["io"] != "/cache/io.a" {
		t.Fatalf("parseStdExports = %v", m)
	}
	if _, ok := m["noexport"]; ok {
		t.Fatal("package without export data kept in the map")
	}
}

// TestReadStdExportsCacheValidation checks a cache entry pointing at a
// pruned export file invalidates the whole cache, while a cache whose
// files all exist round-trips.
func TestReadStdExportsCacheValidation(t *testing.T) {
	dir := t.TempDir()
	real := filepath.Join(dir, "fmt.a")
	if err := os.WriteFile(real, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte("fmt="+real+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if m := readStdExportsCache(good); m == nil || m["fmt"] != real {
		t.Fatalf("valid cache rejected: %v", m)
	}

	stale := filepath.Join(dir, "stale.txt")
	content := "fmt=" + real + "\nio=" + filepath.Join(dir, "gone.a") + "\n"
	if err := os.WriteFile(stale, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if m := readStdExportsCache(stale); m != nil {
		t.Fatalf("cache with a pruned export file accepted: %v", m)
	}

	if m := readStdExportsCache(filepath.Join(dir, "missing.txt")); m != nil {
		t.Fatalf("missing cache file accepted: %v", m)
	}
}
