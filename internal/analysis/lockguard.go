package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockGuard infers which struct fields a mutex guards and flags the
// accesses that escape it. For every struct holding a sync.Mutex or
// sync.RWMutex, each method's receiver-rooted field accesses are
// replayed against the Lock/Unlock windows in that method (a deferred
// unlock holds to the end; methods named *Locked are assumed to run
// under the caller's lock). A field counts as guarded when lock-held
// accesses form a strict majority with at least two guarded sites; the
// minority accesses outside the lock are then reported. The inference
// complements the race detector: it needs no failing schedule, only
// the code's own dominant locking discipline.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "accesses to majority-lock-guarded struct fields outside the guarding mutex",
	Run:  runLockGuard,
}

const (
	lgLock = iota
	lgUnlock
	lgAccess
)

type lgEvent struct {
	pos   token.Pos
	kind  int
	field *types.Var
}

type lgSite struct {
	pos    token.Pos
	method string
}

type lgStat struct {
	field     *types.Var
	fieldPos  token.Pos
	guarded   int
	unguarded []lgSite
}

func runLockGuard(pass *Pass) {
	pkg := pass.Pkg
	sidx := structIndex(pkg)
	ix := newFuncIndex(pkg)

	for _, tn := range sortedStructNames(sidx) {
		d := sidx[tn]
		mutexName := ""
		fields := make(map[*types.Var]token.Pos)
		for _, f := range d.fields {
			switch lp := lockPath(f.v.Type()); lp {
			case "sync.Mutex", "sync.RWMutex":
				if mutexName == "" {
					mutexName = f.v.Name()
				}
			case "":
				fields[f.v] = f.ast.Pos()
			}
		}
		if mutexName == "" || len(fields) == 0 {
			continue
		}

		stats := make(map[*types.Var]*lgStat)
		for fn, fd := range ix.decls {
			if recvTypeName(pkg, fd) != tn {
				continue
			}
			events := collectLockEvents(pkg, fd, fields)
			if len(events) == 0 {
				continue
			}
			sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
			// Replay: depth counts open lock windows; a *Locked method
			// runs entirely under the caller's lock.
			depth := 0
			if hasSuffixLocked(fn.Name()) {
				depth = 1
			}
			for _, ev := range events {
				switch ev.kind {
				case lgLock:
					depth++
				case lgUnlock:
					if depth > 0 {
						depth--
					}
				case lgAccess:
					st := stats[ev.field]
					if st == nil {
						st = &lgStat{field: ev.field, fieldPos: fields[ev.field]}
						stats[ev.field] = st
					}
					if depth > 0 {
						st.guarded++
					} else {
						st.unguarded = append(st.unguarded, lgSite{pos: ev.pos, method: funcName(fd)})
					}
				}
			}
		}

		for _, st := range stats {
			if st.guarded < 2 || st.guarded <= len(st.unguarded) {
				continue
			}
			total := st.guarded + len(st.unguarded)
			for _, site := range st.unguarded {
				pass.Reportf(site.pos, "field %s.%s is accessed in %s without holding %s (guarded at %d of %d sites)",
					tn.Name(), st.field.Name(), site.method, mutexName, st.guarded, total)
			}
		}
	}
}

func hasSuffixLocked(name string) bool {
	return len(name) >= 6 && name[len(name)-6:] == "Locked"
}

// sortedStructNames gives a deterministic walk order over the struct
// index.
func sortedStructNames(sidx map[*types.TypeName]*structDecl) []*types.TypeName {
	names := make([]*types.TypeName, 0, len(sidx))
	for tn := range sidx {
		names = append(names, tn)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })
	return names
}

// collectLockEvents gathers, in one method body, the receiver-rooted
// lock transitions and field accesses. Function literals are skipped:
// a closure's locking context is its own problem.
func collectLockEvents(pkg *Package, fd *ast.FuncDecl, fields map[*types.Var]token.Pos) []lgEvent {
	recvObj := receiverObj(pkg, fd)
	if recvObj == nil {
		return nil
	}
	var events []lgEvent
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the window open to the end of the
			// method: emit nothing, and skip the call so it is not
			// replayed as an inline unlock.
			if kind, ok := lockCallKind(pkg, n.Call, recvObj); ok && kind == lgUnlock {
				return false
			}
			return true
		case *ast.CallExpr:
			if kind, ok := lockCallKind(pkg, n, recvObj); ok {
				events = append(events, lgEvent{pos: n.Pos(), kind: kind})
			}
			return true
		case *ast.SelectorExpr:
			sel := pkg.Info.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := fields[v]; tracked && rootIsReceiver(pkg, n.X, recvObj) {
				events = append(events, lgEvent{pos: n.Pos(), kind: lgAccess, field: v})
			}
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	})
	return events
}

// receiverObj resolves the method's receiver variable, or nil for an
// unnamed receiver.
func receiverObj(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// lockCallKind classifies a call as a lock or unlock on a sync mutex
// rooted at the receiver (r.mu.Lock(), or r.Lock() through an embedded
// mutex).
func lockCallKind(pkg *Package, call *ast.CallExpr, recvObj types.Object) (int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, false
	}
	if !rootIsReceiver(pkg, sel.X, recvObj) {
		return 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lgLock, true
	case "Unlock", "RUnlock":
		return lgUnlock, true
	}
	return 0, false
}

// rootIsReceiver unwraps a selector chain to its base identifier and
// reports whether it names the method receiver.
func rootIsReceiver(pkg *Package, x ast.Expr, recvObj types.Object) bool {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.Ident:
			return pkg.Info.Uses[e] == recvObj
		default:
			return false
		}
	}
}
