package analysis

import (
	"go/ast"
	"go/token"
)

// GoroutineLeak flags `go` statements in exported functions whose
// spawned work has no visible way to stop or be waited for: the
// closure neither receives from a channel (ctx.Done(), a quit channel,
// a work queue that closes) nor signals a sync.WaitGroup-style
// counter. PR 2's supervision machinery assumes every goroutine the
// backbone starts can be joined during shutdown — an unjoined,
// uncancellable goroutine in an exported entry point is exactly how
// the pre-PR-2 topology leaked under faults.
//
// Goroutines that run a named function are checked by their call
// arguments: passing a context.Context or a channel counts as a
// cancellation path.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "flags go statements in exported functions with no cancellation or join path",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goStmtJoinable(pass, gs) {
					pass.Reportf(gs.Pos(), "goroutine in exported %s has no visible cancellation (ctx.Done/quit channel) or join (WaitGroup)", funcName(fd))
				}
				return true
			})
		}
	}
}

// goStmtJoinable reports whether the goroutine has a visible stop or
// join path.
func goStmtJoinable(pass *Pass, gs *ast.GoStmt) bool {
	info := pass.Pkg.Info
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		joinable := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if joinable {
				return false
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				// A receive (<-ch) means the goroutine listens to some
				// channel: a quit signal, a work queue or ctx.Done().
				if n.Op == token.ARROW {
					joinable = true
				}
			case *ast.RangeStmt:
				// range over a channel drains until close: joined by
				// whoever closes it.
				if tv, ok := info.Types[n.X]; ok {
					if isChan(tv.Type) {
						joinable = true
					}
				}
			case *ast.CallExpr:
				// wg.Done() (often deferred) joins the goroutine;
				// wg.Wait() bounds its lifetime by the group it waits
				// for; ctx.Done() in a select is covered by the
				// receive case, but a bare call still counts.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
					joinable = true
				}
			}
			return !joinable
		})
		return joinable
	}
	// Named function or method: a context or channel argument (or
	// receiver method on a type we cannot see into) is the visible
	// cancellation path; with neither, nothing can stop it.
	for _, arg := range gs.Call.Args {
		if tv, ok := info.Types[arg]; ok {
			if isContextType(tv.Type) || isChan(tv.Type) {
				return true
			}
		}
	}
	return false
}
