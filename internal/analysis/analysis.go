// Package analysis is a small static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast,
// go/types and go/importer (no golang.org/x/tools dependency).
//
// The framework loads every package of the module (Loader), type-checks
// it against compiled stdlib export data, and runs a table of
// repo-specific analyzers (All) over each package. Analyzers are pure
// functions over a loaded, type-checked package; they report
// diagnostics through Pass.Reportf and never mutate anything. The
// framework owns everything else: file-set loading, build-constraint
// filtering, per-package type checking, //lint:allow suppression
// comments and deterministic diagnostic ordering — adding analyzer N+1
// is the ~50 lines of its Run function plus a table entry.
//
// The rules encode the invariants PRs 1–3 established by convention:
// seeded determinism (bit-identical recognition and kernel results
// across Workers counts), goroutine/context hygiene in the streams
// backbone, allocation-free blocked-kernel hot loops, tolerance-based
// float comparison, and the Item-ownership contract the supervision /
// dead-letter machinery depends on. cmd/insightlint is the driver;
// `make lint` gates the tree on a clean run.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical file:line:col: [rule] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects the package behind pass and
// reports findings; it must be deterministic and side-effect free.
type Analyzer struct {
	Name string // short rule name, used in [rule] output and //lint:allow
	Doc  string // one-line description of the invariant the rule guards
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All is the analyzer table, in documentation order. Adding a rule
// means appending here; -only/-skip and suppression work unchanged.
var All = []*Analyzer{
	NoDeterminism,
	GoroutineLeak,
	HotAlloc,
	FloatEq,
	LockCopy,
	ItemAlias,
	ErrDrop,
	SnapshotDrift,
	LockGuard,
	DurOrder,
	StaleLint,
}

// Select resolves -only/-skip comma-separated rule lists against All.
// Empty strings mean "no restriction". Unknown rule names are errors so
// a typo cannot silently disable the gate.
func Select(only, skip string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	check := func(list string) (map[string]bool, error) {
		if strings.TrimSpace(list) == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(Names(), ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := check(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := check(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the registered rule names in table order.
func Names() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// Run executes the analyzers over the packages, drops findings
// suppressed by //lint:allow comments and returns the rest sorted by
// file, line, column and rule — byte-stable across runs, which is
// itself one of the invariants the suite enforces.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// stalelint is framework-driven: it judges the suppressor state left
	// behind by every other selected analyzer, so it runs after them
	// rather than through its own Pass (see stalelint.go).
	ran := make(map[string]bool)
	runStale := false
	for _, a := range analyzers {
		if a.Name == StaleLint.Name {
			runStale = true
		} else {
			ran[a.Name] = true
		}
	}
	known := make(map[string]bool, len(All))
	for _, a := range All {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg)
		for _, a := range analyzers {
			if a.Name == StaleLint.Name {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !sup.suppressed(d) {
					out = append(out, d)
				}
			}
		}
		if runStale {
			for _, d := range staleDiags(sup, ran, known) {
				if !sup.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
