package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// errDropCallees names the I/O calls whose errors are the durability
// contract itself: a dropped error from any of them can silently turn
// "fsynced and recoverable" into "lost on the next crash". Matched by
// callee name inside the durability scope; the signature must actually
// return an error for a finding to fire.
var errDropCallees = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Sync":        true,
	"Close":       true,
	"Rename":      true,
	"Truncate":    true,
	"Remove":      true,
}

// errDropFiles are the durability-critical files of the root package;
// the whole streams/wal package is in scope by import-path suffix.
var errDropFiles = map[string]bool{
	"checkpoint.go":       true,
	"pipeline_durable.go": true,
}

// ErrDrop flags discarded errors from durability-critical I/O calls in
// the write-ahead-log package and the checkpoint/recovery files: bare
// call statements, go/defer statements, and assignments that send the
// error result to the blank identifier. Crash recovery is only as
// strong as its weakest error check — a Sync whose failure nobody sees
// is a checkpoint that may not exist after the crash it was written
// for. Deliberate best-effort drops (cleanup of a file about to be
// removed, error paths that already carry a root cause) are annotated
// with //lint:allow errdrop and a justification.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors from durability-critical I/O in the WAL and checkpoint paths",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	walPkg := pkgMatches(pass.Pkg.Path, []string{"wal"})
	for _, f := range pass.Pkg.Files {
		if !walPkg {
			name := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
			if !errDropFiles[name] {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "discarded")
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, st.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkDroppedCall(pass, st.Call, "discarded by defer")
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, inScope := errDropCallee(pass, call)
				if !inScope {
					return true
				}
				for _, pos := range errResultPositions(pass, call) {
					if pos < len(st.Lhs) && isBlank(st.Lhs[pos]) {
						pass.Reportf(call.Pos(), "error from %s assigned to _: durability-critical errors must be checked", name)
					}
				}
			}
			return true
		})
	}
}

// checkDroppedCall reports a statement-position call whose error
// result(s) vanish entirely.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, how string) {
	name, inScope := errDropCallee(pass, call)
	if !inScope {
		return
	}
	if len(errResultPositions(pass, call)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error from %s %s: durability-critical errors must be checked", name, how)
}

// errDropCallee extracts the called name and reports whether it is one
// of the durability-critical callees.
func errDropCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	return name, errDropCallees[name]
}

// errResultPositions lists the result indices of the call that have
// type error (empty when the call returns none, e.g. a same-named
// method with a different signature).
func errResultPositions(pass *Pass, call *ast.CallExpr) []int {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				out = append(out, i)
			}
		}
		return out
	default:
		if types.Identical(tv.Type, errType) {
			return []int{0}
		}
		return nil
	}
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
