package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgMatches reports whether importPath refers to one of the named
// repo packages. Names are path suffixes ("rtec", "internal/linalg"),
// so both the real module paths and the fixture paths used by the
// framework tests match.
func pkgMatches(importPath string, names []string) bool {
	for _, n := range names {
		if importPath == n || strings.HasSuffix(importPath, "/"+n) {
			return true
		}
	}
	return false
}

// calleeObj resolves the object a call expression invokes, looking
// through parentheses. It returns nil for calls through function
// values, type conversions and built-ins.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgCall reports whether call invokes the named function of the
// package with the given import path (e.g. "time", "Now").
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isBuiltin reports whether call invokes the named builtin (append,
// make, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// lockPath returns a description like "sync.Mutex" if t contains a
// lock by value (directly, via struct fields or arrays), or "".
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return lockPathRec(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathRec(u.Field(i).Type(), seen); p != "" {
				return p
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isChan reports whether t's underlying type is a channel.
func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isItemType reports whether t is a named map type called "Item" — the
// streams data item (or a fixture stand-in shaped like it).
func isItemType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Item" {
		return false
	}
	_, ok = named.Underlying().(*types.Map)
	return ok
}

// walkShallow visits the tree under n but does not descend into
// nested function literals — the scope boundary most analyzers here
// care about.
func walkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}

// declaredOutside reports whether the identifier's object is declared
// at a position outside [from, to) — i.e. it outlives that region.
func declaredOutside(info *types.Info, id *ast.Ident, from, to ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < from.Pos() || obj.Pos() >= to.End()
}

// ---- cross-function field-accessor tracking ----
//
// The state-integrity analyzers (snapshotdrift, durorder) reason about
// what a *group* of functions touches: a Snapshot method plus every
// helper it calls, a checkpoint writer plus the fsync helpers it leans
// on. funcIndex resolves same-package call targets, closure computes
// the reachable declaration set, and fieldUses collects every struct
// field that set mentions — selector reads and writes, keyed
// composite-literal fields and positional literal fields alike.

// funcIndex indexes every function and method declared in one package.
type funcIndex struct {
	pkg    *Package
	decls  map[*types.Func]*ast.FuncDecl
	byName map[string][]*ast.FuncDecl // name → declarations (methods of any receiver)
}

func newFuncIndex(pkg *Package) *funcIndex {
	ix := &funcIndex{
		pkg:    pkg,
		decls:  make(map[*types.Func]*ast.FuncDecl),
		byName: make(map[string][]*ast.FuncDecl),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				ix.decls[fn] = fd
				ix.byName[fd.Name.Name] = append(ix.byName[fd.Name.Name], fd)
			}
		}
	}
	return ix
}

// closure returns the declarations reachable from seeds through
// same-package calls, including the seeds themselves. A call through
// an interface method has no body here, so it is resolved by name:
// every package method with that name joins the closure — a deliberate
// superset, so no implementation behind a store/tier interface escapes
// the analysis.
func (ix *funcIndex) closure(seeds []*ast.FuncDecl) map[*ast.FuncDecl]bool {
	out := make(map[*ast.FuncDecl]bool)
	var work []*ast.FuncDecl
	add := func(fd *ast.FuncDecl) {
		if fd != nil && !out[fd] {
			out[fd] = true
			work = append(work, fd)
		}
	}
	for _, fd := range seeds {
		add(fd)
	}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObj(ix.pkg.Info, call).(*types.Func)
			if !ok {
				return true
			}
			if decl := ix.decls[fn]; decl != nil {
				add(decl)
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				for _, cand := range ix.byName[fn.Name()] {
					add(cand)
				}
			}
			return true
		})
	}
	return out
}

// fieldUses records every struct field the declaration set mentions,
// keyed by the field's types.Var object. A struct value copied
// wholesale on the right-hand side of an assignment (out[k] = *h)
// carries every field with it, so all of them count as used; a
// *pointer* moved around does not — the carrier-struct pattern (build
// behind a pointer, write each field, return the pointer) must still
// account for every field individually.
func fieldUses(pkg *Package, decls map[*ast.FuncDecl]bool) map[*types.Var]bool {
	used := make(map[*types.Var]bool)
	for fd := range decls {
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel := pkg.Info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						used[v] = true
					}
				}
			case *ast.CompositeLit:
				markCompositeFields(pkg, n, used)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if tv, ok := pkg.Info.Types[rhs]; ok {
						markWholeStruct(tv.Type, used, nil)
					}
				}
			}
			return true
		})
	}
	return used
}

// markWholeStruct marks every field of a named struct type (and of the
// structs it embeds by value) as used. Pointers, slices and maps end
// the walk: their pointees are shared, not copied.
func markWholeStruct(t types.Type, used map[*types.Var]bool, seen map[types.Type]bool) {
	if seen[t] {
		return
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if _, isNamed := t.(*types.Named); !isNamed {
		if arr, ok := t.(*types.Array); ok {
			markWholeStruct(arr.Elem(), used, seen)
		}
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		used[f] = true
		markWholeStruct(f.Type(), used, seen)
	}
}

// markCompositeFields records the struct fields a composite literal
// initializes — by key for keyed literals, by position otherwise.
func markCompositeFields(pkg *Package, lit *ast.CompositeLit, used map[*types.Var]bool) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := derefType(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if v, ok := pkg.Info.Uses[id].(*types.Var); ok && v.IsField() {
					used[v] = true
				}
			}
			continue
		}
		if i < st.NumFields() {
			used[st.Field(i)] = true
		}
	}
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// structDecl carries one named struct's syntax: its fields in type
// order, each aligned with the ast.Field that declares it (the anchor
// for //state: annotations and diagnostic positions).
type structDecl struct {
	obj    *types.TypeName
	name   string
	fields []structField
}

type structField struct {
	v   *types.Var
	ast *ast.Field
}

// structIndex maps every named struct type declared in the package to
// its field declarations.
func structIndex(pkg *Package) map[*types.TypeName]*structDecl {
	out := make(map[*types.TypeName]*structDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				astStruct, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				d := &structDecl{obj: obj, name: ts.Name.Name}
				i := 0
				for _, af := range astStruct.Fields.List {
					n := len(af.Names)
					if n == 0 {
						n = 1 // embedded field declares exactly one
					}
					for k := 0; k < n && i < st.NumFields(); k++ {
						d.fields = append(d.fields, structField{v: st.Field(i), ast: af})
						i++
					}
				}
				out[obj] = d
			}
		}
	}
	return out
}

// stateAnnotation returns "derived", "transient" or "" for a field
// declaration. //state:derived marks a field rebuilt from other state
// after restore; //state:transient marks one that is meaningless
// across restarts. Either places the field deliberately outside the
// snapshot contract, with the justification text alongside.
func stateAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			for _, kind := range []string{"derived", "transient"} {
				rest, ok := strings.CutPrefix(c.Text, "//state:"+kind)
				if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
					return kind
				}
			}
		}
	}
	return ""
}

// funcName renders a readable name for a function declaration,
// including the receiver type for methods.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	if ix, ok := recv.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
