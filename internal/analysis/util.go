package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgMatches reports whether importPath refers to one of the named
// repo packages. Names are path suffixes ("rtec", "internal/linalg"),
// so both the real module paths and the fixture paths used by the
// framework tests match.
func pkgMatches(importPath string, names []string) bool {
	for _, n := range names {
		if importPath == n || strings.HasSuffix(importPath, "/"+n) {
			return true
		}
	}
	return false
}

// calleeObj resolves the object a call expression invokes, looking
// through parentheses. It returns nil for calls through function
// values, type conversions and built-ins.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgCall reports whether call invokes the named function of the
// package with the given import path (e.g. "time", "Now").
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isBuiltin reports whether call invokes the named builtin (append,
// make, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// lockPath returns a description like "sync.Mutex" if t contains a
// lock by value (directly, via struct fields or arrays), or "".
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return lockPathRec(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathRec(u.Field(i).Type(), seen); p != "" {
				return p
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isChan reports whether t's underlying type is a channel.
func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isItemType reports whether t is a named map type called "Item" — the
// streams data item (or a fixture stand-in shaped like it).
func isItemType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Item" {
		return false
	}
	_, ok = named.Underlying().(*types.Map)
	return ok
}

// walkShallow visits the tree under n but does not descend into
// nested function literals — the scope boundary most analyzers here
// care about.
func walkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}

// declaredOutside reports whether the identifier's object is declared
// at a position outside [from, to) — i.e. it outlives that region.
func declaredOutside(info *types.Info, id *ast.Ident, from, to ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < from.Pos() || obj.Pos() >= to.End()
}

// funcName renders a readable name for a function declaration,
// including the receiver type for methods.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	if ix, ok := recv.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
