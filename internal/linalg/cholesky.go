package linalg

import "math"

// dot4 is an inner product with four independent accumulators. The
// naive kernels chain every subtraction through one register, so they
// run at FP-add latency; splitting the chain lets the core overlap the
// multiplies and is worth ~2-3× on the dot-shaped inner loops. The
// summation order differs from a single chain, which is why the
// equivalence suite compares against the reference with a tolerance
// instead of bit equality.
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Cholesky is the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	L *Matrix

	// lt caches Lᵀ so back substitution reads rows (contiguous memory)
	// instead of columns (stride-n loads). nil in Reference mode, where
	// the seed column-walking substitution is retained.
	lt *Matrix
	// opts are the options the factorization was built with; Solve
	// reuses them for its own blocking and parallelism.
	opts Options
}

// NewCholesky factorizes the SPD matrix a with the package-wide
// default options. It returns ErrNotSPD if a is not square or a pivot
// is non-positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	return NewCholeskyWith(a, DefaultOptions())
}

// NewCholeskyWith factorizes the SPD matrix a using a right-looking
// blocked algorithm: factorize the diagonal panel, triangular-solve
// the panel rows below it in parallel, then apply the symmetric
// rank-BlockSize trailing update over parallel tiles. Matrices no
// larger than one block (and Reference mode) use the retained serial
// reference code.
//
// The operation sequence per element does not depend on Workers, so
// the factor is bit-identical for any worker count.
func NewCholeskyWith(a *Matrix, opts Options) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, ErrNotSPD
	}
	var l *Matrix
	var err error
	if opts.Reference || a.Rows <= opts.blockSize() {
		l, err = naiveCholesky(a)
	} else {
		l, err = blockedCholesky(a, opts)
	}
	if err != nil {
		return nil, err
	}
	c := &Cholesky{L: l, opts: opts}
	if !opts.Reference {
		c.lt = l.T()
	}
	return c, nil
}

// blockedCholesky is the right-looking blocked factorization. The
// lower triangle of a is copied into l, then consumed panel by panel:
//
//	for each panel of nb columns:
//	  1. factorize the nb×nb diagonal block (serial — O(n·nb²) total)
//	  2. TRSM: rows below the panel solve against the diagonal block,
//	     parallel over row blocks
//	  3. SYRK: the trailing lower triangle subtracts the panel's outer
//	     product, parallel over tiles
//
// Non-positive (or NaN) pivots surface in step 1 as ErrNotSPD, exactly
// like the reference.
func blockedCholesky(a *Matrix, opts Options) (*Matrix, error) {
	n := a.Rows
	nb := opts.blockSize()
	workers := opts.workers()
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(l.Data[i*n:i*n+i+1], a.Data[i*n:i*n+i+1])
	}
	for j0 := 0; j0 < n; j0 += nb {
		j1 := min(j0+nb, n)
		// 1. Diagonal block: unblocked factorization of l[j0:j1, j0:j1],
		// whose entries already carry every update from earlier panels.
		for j := j0; j < j1; j++ {
			jrow := l.Data[j*n+j0 : j*n+j]
			d := l.Data[j*n+j] - dot4(jrow, jrow)
			if d <= 0 || math.IsNaN(d) {
				return nil, ErrNotSPD
			}
			dj := math.Sqrt(d)
			l.Data[j*n+j] = dj
			for i := j + 1; i < j1; i++ {
				irow := l.Data[i*n+j0 : i*n+j]
				l.Data[i*n+j] = (l.Data[i*n+j] - dot4(irow, jrow)) / dj
			}
		}
		if j1 == n {
			break
		}
		// 2. TRSM: L21 = A21·L11⁻ᵀ, parallel over row blocks. Each row
		// depends only on the finished diagonal block and on itself.
		rows := n - j1
		rowBlocks := (rows + nb - 1) / nb
		ParallelFor(workers, rowBlocks, func(t int) {
			i0 := j1 + t*nb
			i1 := min(i0+nb, n)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					irow := l.Data[i*n+j0 : i*n+j]
					jrow := l.Data[j*n+j0 : j*n+j]
					l.Data[i*n+j] = (l.Data[i*n+j] - dot4(irow, jrow)) / l.Data[j*n+j]
				}
			}
		})
		// 3. SYRK trailing update: l[i,k] -= l[i,panel]·l[k,panel] for
		// j1 <= k <= i < n, parallel over lower-triangle tiles. Each
		// element is written by exactly one tile.
		tiles := make([][2]int, 0, rowBlocks*(rowBlocks+1)/2)
		for ti := 0; ti < rowBlocks; ti++ {
			for tk := 0; tk <= ti; tk++ {
				tiles = append(tiles, [2]int{ti, tk}) //lint:allow hotalloc tile worklist, not the FLOP path; capacity is preallocated exactly
			}
		}
		ParallelFor(workers, len(tiles), func(t int) {
			i0 := j1 + tiles[t][0]*nb
			i1 := min(i0+nb, n)
			k0 := j1 + tiles[t][1]*nb
			k1 := min(k0+nb, n)
			for i := i0; i < i1; i++ {
				kmax := min(k1, i+1)
				irow := l.Data[i*n+j0 : i*n+j1]
				for k := k0; k < kmax; k++ {
					l.Data[i*n+k] -= dot4(irow, l.Data[k*n+j0:k*n+j1])
				}
			}
		})
	}
	return l, nil
}

// SolveVec solves A·x = b for x given the factorization of A. The back
// pass runs over the cached transpose, turning the seed's stride-n
// column walk into contiguous row reads.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: dimension mismatch in SolveVec")
	}
	if c.lt == nil {
		return naiveSolveVec(c.L, b)
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i] - dot4(c.L.Data[i*n:i*n+i], y[:i])
		y[i] = s / c.L.Data[i*n+i]
	}
	// Back substitution: Lᵀ·x = y, reading rows of Lᵀ.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i] - dot4(c.lt.Data[i*n+i+1:(i+1)*n], x[i+1:])
		x[i] = s / c.lt.Data[i*n+i]
	}
	return x
}

// Solve solves A·X = B for all columns of B at once. Columns are
// partitioned across workers; within each partition the substitutions
// run panel by panel so every L (and Lᵀ) row chunk is read once per
// panel and applied to the whole column range — the multi-RHS
// equivalent of a blocked TRSM. The seed solved column-at-a-time with
// a fresh stride-n back pass per column.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	n := c.L.Rows
	if b.Rows != n {
		panic("linalg: dimension mismatch in Solve")
	}
	if c.lt == nil {
		return naiveSolve(c.L, b)
	}
	out := b.Clone()
	m := b.Cols
	// Column chunk: wide enough to amortize the panel sweeps, narrow
	// enough that a row chunk of X stays resident while L streams by.
	chunk := c.opts.blockSize()
	colBlocks := (m + chunk - 1) / chunk
	ParallelFor(c.opts.workers(), colBlocks, func(t int) {
		c0 := t * chunk
		c1 := min(c0+chunk, m)
		c.solveColumns(out, c0, c1)
	})
	return out
}

// solveColumns forward/back-substitutes columns [c0, c1) of x in
// place, where x initially holds the right-hand sides.
func (c *Cholesky) solveColumns(x *Matrix, c0, c1 int) {
	l, lt := c.L, c.lt
	n := l.Rows
	m := x.Cols
	nb := c.opts.blockSize()
	// Forward: L·Y = B, panel by panel.
	for p0 := 0; p0 < n; p0 += nb {
		p1 := min(p0+nb, n)
		for i := p0; i < p1; i++ {
			xi := x.Data[i*m : (i+1)*m]
			for k := p0; k < i; k++ {
				lik := l.Data[i*n+k]
				xk := x.Data[k*m : (k+1)*m]
				for j := c0; j < c1; j++ {
					xi[j] -= lik * xk[j]
				}
			}
			d := l.Data[i*n+i]
			for j := c0; j < c1; j++ {
				xi[j] /= d
			}
		}
		// Push the finished panel into every row below it.
		for i := p1; i < n; i++ {
			xi := x.Data[i*m : (i+1)*m]
			for k := p0; k < p1; k++ {
				lik := l.Data[i*n+k]
				xk := x.Data[k*m : (k+1)*m]
				for j := c0; j < c1; j++ {
					xi[j] -= lik * xk[j]
				}
			}
		}
	}
	// Backward: Lᵀ·X = Y, panels from the bottom up, rows of Lᵀ.
	for p1 := n; p1 > 0; p1 -= nb {
		p0 := max(p1-nb, 0)
		for i := p1 - 1; i >= p0; i-- {
			xi := x.Data[i*m : (i+1)*m]
			for k := i + 1; k < p1; k++ {
				lki := lt.Data[i*n+k]
				xk := x.Data[k*m : (k+1)*m]
				for j := c0; j < c1; j++ {
					xi[j] -= lki * xk[j]
				}
			}
			d := lt.Data[i*n+i]
			for j := c0; j < c1; j++ {
				xi[j] /= d
			}
		}
		// Push the finished panel into every row above it.
		for i := 0; i < p0; i++ {
			xi := x.Data[i*m : (i+1)*m]
			for k := p0; k < p1; k++ {
				lki := lt.Data[i*n+k]
				xk := x.Data[k*m : (k+1)*m]
				for j := c0; j < c1; j++ {
					xi[j] -= lki * xk[j]
				}
			}
		}
	}
}

// Inverse returns A⁻¹ from the factorization. Unlike the generic
// Solve against Identity (the seed's path, still used in Reference
// mode), the dedicated path exploits structure on both sides: the
// forward result Y = L⁻¹ is lower triangular (rows above each column
// are exact zeros), and A⁻¹ is symmetric, so the back pass computes
// the lower triangle only and mirrors it — n³/3 multiply-adds instead
// of n³, on top of the blocked row-major access.
func (c *Cholesky) Inverse() *Matrix {
	n := c.L.Rows
	if c.lt == nil {
		return c.Solve(Identity(n))
	}
	x := NewMatrix(n, n)
	chunk := c.opts.blockSize()
	colBlocks := (n + chunk - 1) / chunk
	ParallelFor(c.opts.workers(), colBlocks, func(t int) {
		c0 := t * chunk
		c1 := min(c0+chunk, n)
		c.inverseColumns(x, c0, c1)
	})
	// Mirror the computed lower triangle; the result is exactly
	// symmetric by construction.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x.Data[i*n+j] = x.Data[j*n+i]
		}
	}
	return x
}

// inverseColumns computes columns [c0, c1) of A⁻¹ into x (zeroed on
// entry), rows c0..n only — the strict upper triangle is left to the
// caller's mirror step.
func (c *Cholesky) inverseColumns(x *Matrix, c0, c1 int) {
	l, lt := c.L, c.lt
	n := l.Rows
	// Forward: Y = L⁻¹ columns [c0, c1). Y[k, j] is zero for k < j, so
	// rows before c0 contribute nothing and row k carries entries only
	// up to column k.
	for i := c0; i < n; i++ {
		xi := x.Data[i*n : (i+1)*n]
		lrow := l.Data[i*n : i*n+i]
		for k := c0; k < i; k++ {
			v := lrow[k]
			xk := x.Data[k*n : k*n+min(c1, k+1)]
			for j := c0; j < len(xk); j++ {
				xi[j] -= v * xk[j]
			}
		}
		if i < c1 {
			xi[i]++ // the identity right-hand side
		}
		d := l.Data[i*n+i]
		for j, jm := c0, min(c1, i+1); j < jm; j++ {
			xi[j] /= d
		}
	}
	// Backward: Lᵀ·X = Y, lower triangle of X only (j <= i). Rows
	// below i are already final and their entries at columns <= i+1
	// are exactly the ones read here.
	for i := n - 1; i >= c0; i-- {
		xi := x.Data[i*n : (i+1)*n]
		ltrow := lt.Data[i*n : (i+1)*n]
		jm := min(c1, i+1)
		for k := i + 1; k < n; k++ {
			v := ltrow[k]
			xk := x.Data[k*n : (k+1)*n]
			for j := c0; j < jm; j++ {
				xi[j] -= v * xk[j]
			}
		}
		d := l.Data[i*n+i]
		for j := c0; j < jm; j++ {
			xi[j] /= d
		}
	}
}

// LogDet returns log|A| from the factorization.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// InverseSPD inverts a symmetric positive-definite matrix.
func InverseSPD(a *Matrix) (*Matrix, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Inverse(), nil
}
