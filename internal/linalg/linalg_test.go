package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !approxEqual(a.Data[i], b.Data[i], tol) {
			return false
		}
	}
	return true
}

// randomSPD builds a random symmetric positive-definite matrix
// A = MᵀM + n·I.
func randomSPD(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	a := m.T().Mul(m)
	a.AddDiag(float64(n))
	return a
}

func TestNewMatrixZero(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewMatrix must be zeroed")
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I[%d,%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows layout wrong: %+v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged rows must panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !matApproxEqual(got, want, 0) {
		t.Errorf("Mul = %+v, want %+v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomSPD(r, 5)
	if got := a.Mul(Identity(5)); !matApproxEqual(got, a, 1e-12) {
		t.Error("A·I != A")
	}
	if got := Identity(5).Mul(a); !matApproxEqual(got, a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	want := []float64{-2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("T values wrong: %+v", at)
	}
	if !matApproxEqual(at.T(), a, 0) {
		t.Error("double transpose must round-trip")
	}
}

func TestScaleAddDiagAddMat(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Errorf("Scale: %+v", a)
	}
	a.AddDiag(1)
	if a.At(0, 0) != 3 || a.At(1, 1) != 9 || a.At(0, 1) != 4 {
		t.Errorf("AddDiag: %+v", a)
	}
	a.AddMat(Identity(2))
	if a.At(0, 0) != 4 || a.At(0, 1) != 4 {
		t.Errorf("AddMat: %+v", a)
	}
}

func TestSubmatrix(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	s := a.Submatrix([]int{0, 2}, []int{1, 2})
	want := FromRows([][]float64{{2, 3}, {8, 9}})
	if !matApproxEqual(s, want, 0) {
		t.Errorf("Submatrix = %+v, want %+v", s, want)
	}
}

func TestSymmetric(t *testing.T) {
	if !Identity(4).Symmetric(0) {
		t.Error("identity must be symmetric")
	}
	a := FromRows([][]float64{{1, 2}, {2.1, 1}})
	if a.Symmetric(0.01) {
		t.Error("asymmetric matrix detected as symmetric")
	}
	if !a.Symmetric(0.2) {
		t.Error("tolerance not honored")
	}
	if FromRows([][]float64{{1, 2, 3}}).Symmetric(1) {
		t.Error("non-square cannot be symmetric")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(c.L.At(0, 0), 2, 1e-12) ||
		!approxEqual(c.L.At(1, 0), 1, 1e-12) ||
		!approxEqual(c.L.At(1, 1), math.Sqrt(2), 1e-12) ||
		c.L.At(0, 1) != 0 {
		t.Errorf("L = %+v", c.L)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	cases := []*Matrix{
		FromRows([][]float64{{0, 0}, {0, 0}}),       // singular
		FromRows([][]float64{{-1, 0}, {0, 1}}),      // negative pivot
		FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}), // not square
		FromRows([][]float64{{1, 2}, {2, 1}}),       // indefinite
	}
	for i, a := range cases {
		if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
			t.Errorf("case %d: err = %v, want ErrNotSPD", i, err)
		}
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for n := 1; n <= 20; n += 4 {
		a := randomSPD(r, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got := c.SolveVec(b)
		for i := range x {
			if !approxEqual(got[i], x[i], 1e-8) {
				t.Fatalf("n=%d: SolveVec[%d] = %v, want %v", n, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyFactorReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomSPD(r, 8)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.L.Mul(c.L.T()); !matApproxEqual(got, a, 1e-9) {
		t.Error("L·Lᵀ != A")
	}
}

func TestInverseSPD(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomSPD(r, 10)
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Mul(inv); !matApproxEqual(got, Identity(10), 1e-8) {
		t.Error("A·A⁻¹ != I")
	}
	if got := inv.Mul(a); !matApproxEqual(got, Identity(10), 1e-8) {
		t.Error("A⁻¹·A != I")
	}
}

func TestLogDet(t *testing.T) {
	// det([[4, 0], [0, 9]]) = 36.
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(c.LogDet(), math.Log(36), 1e-12) {
		t.Errorf("LogDet = %v, want %v", c.LogDet(), math.Log(36))
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched Dot must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: for random SPD systems, the solved x satisfies A·x = b.
func TestQuickSolveSatisfiesSystem(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := c.SolveVec(b)
		back := a.MulVec(x)
		for i := range b {
			if !approxEqual(back[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	a := randomSPD(r, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve256(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	a := randomSPD(r, 256)
	c, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 256)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SolveVec(rhs)
	}
}
