package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize is the tile edge used by the blocked kernels when
// Options.BlockSize is zero. 64×64 float64 tiles are 32 KiB — three of
// them (the shapes the trailing updates touch) fit comfortably in a
// per-core L2 cache.
const DefaultBlockSize = 64

// Options tune the blocked, parallel kernels (Cholesky factorization,
// matrix product, batched triangular solves). The zero value asks for
// the defaults: DefaultBlockSize tiles and GOMAXPROCS workers.
//
// Results are deterministic in Workers: every output element is
// computed by exactly one task with a fixed operation order, so the
// same inputs and BlockSize give bit-identical results for any worker
// count. Results may differ from the reference implementations in the
// last few ulps (different but equally valid summation orders); the
// equivalence test suite pins the difference below 1e-10 across the
// supported size/block grid.
type Options struct {
	// BlockSize is the tile edge (panel width) of the blocked kernels.
	// 0 means DefaultBlockSize. Inputs no larger than one block fall
	// back to the serial reference code — blocking has nothing to win
	// there.
	BlockSize int
	// Workers bounds the goroutines used per kernel invocation.
	// 0 means GOMAXPROCS; 1 forces serial execution of the blocked
	// kernels.
	Workers int
	// Reference forces the retained naive (seed) implementations:
	// unblocked Cholesky, cache-oblivious product, column-at-a-time
	// solves. This is the baseline the property tests and the gpbench
	// serial phase compare against.
	Reference bool
}

func (o Options) blockSize() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return DefaultBlockSize
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// defaultOptions holds the package-wide Options used by the
// option-less entry points (Mul, NewCholesky, Cholesky.Solve, …).
// It is an atomic.Value so benchmarks can flip the whole GP stack
// between reference and blocked kernels without a data race.
var defaultOptions atomic.Value

func init() { defaultOptions.Store(Options{}) }

// DefaultOptions returns the package-wide options.
func DefaultOptions() Options { return defaultOptions.Load().(Options) }

// SetDefaultOptions replaces the package-wide options and returns the
// previous value, so callers can restore it:
//
//	prev := linalg.SetDefaultOptions(linalg.Options{Reference: true})
//	defer linalg.SetDefaultOptions(prev)
func SetDefaultOptions(o Options) Options {
	prev := DefaultOptions()
	defaultOptions.Store(o)
	return prev
}

// ParallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines. Tasks are claimed from an atomic counter, so scheduling
// is dynamic but outputs stay deterministic as long as distinct tasks
// write disjoint data. workers <= 1 (or n <= 1) runs inline with no
// goroutines at all.
func ParallelFor(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
