package linalg

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// Go fuzz targets for the factorization/solve kernels. The contract
// under arbitrary square inputs (including NaN, ±Inf, denormals and
// wild exponents):
//
//  1. never panic,
//  2. reject non-SPD matrices with ErrNotSPD and nothing else,
//  3. on success, the solve must actually satisfy the system:
//     ‖A·x − b‖ stays within the backward-stable bound when nothing
//     overflowed.
//
// `make check` runs each target for a few seconds; `make fuzz-short`
// for ~10s each.

// fuzzMatrix builds an n×n matrix from raw bytes: each 8-byte chunk is
// a float64 bit pattern, so the corpus can reach any representable
// value. Missing bytes read as zero.
func fuzzMatrix(data []byte, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		if off := i * 8; off+8 <= len(data) {
			a.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
		}
	}
	return a
}

// fuzzOptions derives kernel options from two fuzz bytes, covering the
// serial fallback, degenerate block 1, ragged tilings, and the worker
// pool.
func fuzzOptions(block, workers uint8) Options {
	return Options{BlockSize: int(block % 40), Workers: int(workers % 4)}
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// residualOK checks ‖A·x − b‖ against a generous backward-stability
// bound c·n·eps·(‖A‖_F·‖x‖ + ‖b‖). Extreme scales (near overflow or
// total underflow) are exempt: intermediate rounding there is not
// covered by the bound.
func residualOK(a *Matrix, x, b []float64) bool {
	normA := norm2(a.Data)
	normX := norm2(x)
	normB := norm2(b)
	if normA > 1e100 || normX > 1e100 || normA*normX < 1e-100 {
		return true
	}
	back := a.MulVec(x)
	for i := range back {
		back[i] -= b[i]
	}
	n := float64(a.Rows)
	tol := 1e-12 * n * (normA*normX + normB + 1)
	return norm2(back) <= tol
}

func FuzzCholesky(f *testing.F) {
	// Identity-ish, non-SPD, NaN and big-exponent seeds.
	id3 := make([]byte, 9*8)
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(id3[(i*3+i)*8:], math.Float64bits(1))
	}
	f.Add(id3, uint8(3), uint8(8), uint8(2))
	neg := make([]byte, 8)
	binary.LittleEndian.PutUint64(neg, math.Float64bits(-1))
	f.Add(neg, uint8(1), uint8(0), uint8(0))
	nan := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(nan, uint8(2), uint8(1), uint8(3))
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint64(huge, math.Float64bits(1e300))
	f.Add(huge, uint8(1), uint8(33), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, n, block, workers uint8) {
		size := int(n%16) + 1
		a := fuzzMatrix(data, size)
		c, err := NewCholeskyWith(a, fuzzOptions(block, workers))
		if err != nil {
			if !errors.Is(err, ErrNotSPD) {
				t.Fatalf("non-ErrNotSPD failure: %v", err)
			}
			return
		}
		// The factor must be lower triangular with positive diagonal.
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if c.L.At(i, j) != 0 {
					t.Fatalf("L[%d,%d] = %v above the diagonal", i, j, c.L.At(i, j))
				}
			}
			if !(c.L.At(i, i) > 0) {
				t.Fatalf("L[%d,%d] = %v, want > 0", i, i, c.L.At(i, i))
			}
		}
		// The factorization reads only the lower triangle; the operator
		// it solves is the symmetrized matrix.
		sym := a.Clone()
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				sym.Set(i, j, sym.At(j, i))
			}
		}
		if !allFinite(sym.Data) {
			return // Inf inputs can factor "successfully"; no residual claim
		}
		b := make([]float64, size)
		for i := range b {
			b[i] = float64(i + 1)
		}
		x := c.SolveVec(b)
		if !allFinite(x) || !allFinite(c.L.Data) {
			return // overflow during factorization/solve voids the bound
		}
		if !residualOK(sym, x, b) {
			t.Fatalf("residual ‖A·x−b‖ out of bounds for n=%d", size)
		}
	})
}

func FuzzSolveVec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(8), uint8(2))
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 128}, uint8(9), uint8(1), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, n, block, workers uint8) {
		size := int(n%16) + 1
		// Bounded entries symmetrized with a diagonal boost: usually SPD,
		// so the success path (and its residual) gets real coverage, but
		// near-singular cases still occur.
		a := NewMatrix(size, size)
		for i := 0; i < size; i++ {
			for j := 0; j <= i; j++ {
				var v float64
				if off := i*size + j; off < len(data) {
					v = (float64(data[off]) - 127.5) / 127.5
				}
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		var boost float64
		if len(data) > 0 {
			boost = float64(data[len(data)-1]) / 64
		}
		a.AddDiag(boost)
		b := make([]float64, size)
		for i := range b {
			if off := size*size + i; off < len(data) {
				b[i] = (float64(data[off]) - 127.5) * 4
			}
		}
		c, err := NewCholeskyWith(a, fuzzOptions(block, workers))
		if err != nil {
			if !errors.Is(err, ErrNotSPD) {
				t.Fatalf("non-ErrNotSPD failure: %v", err)
			}
			return
		}
		x := c.SolveVec(b)
		if len(x) != size {
			t.Fatalf("SolveVec returned %d values for n=%d", len(x), size)
		}
		if !allFinite(x) {
			return // near-singular: overflow is acceptable, panic is not
		}
		if !residualOK(a, x, b) {
			t.Fatalf("residual ‖A·x−b‖ out of bounds for n=%d", size)
		}
	})
}
