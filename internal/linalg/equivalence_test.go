package linalg

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The equivalence harness that locks down the blocked/parallel
// kernels: every (size, block, workers) cell of a seeded grid must
// reproduce the retained naive reference within refTol, and for a
// fixed block size the bits must not depend on the worker count at
// all. This is the same discipline PR 1 used for the incremental RTEC
// engine (full-vs-incremental equivalence over randomized streams).

const refTol = 1e-10

// The seeded grid. Sizes cross the serial-fallback boundary (n <= nb),
// exact block multiples (32, 64, 512), ragged last panels (257), and
// every tiny n. Block 1 degenerates to outer-product form, block 100
// never divides the sizes evenly.
var (
	eqSizes   = []int{1, 2, 3, 4, 5, 6, 7, 32, 64, 257, 512}
	eqBlocks  = []int{1, 8, 32, 100}
	eqWorkers = []int{1, 2, 8}
)

// eqCase returns false for grid cells too slow to be worth running:
// under the race detector the big sizes are ~10-20× slower, and
// block=1 at big n drowns in per-tile scheduling overhead by design.
func eqCase(n, block int) bool {
	if n >= 257 && block < 32 {
		return false
	}
	if raceEnabled && n >= 257 {
		return false
	}
	return true
}

func TestBlockedCholeskyMatchesReference(t *testing.T) {
	for _, n := range eqSizes {
		r := rand.New(rand.NewSource(int64(1000 + n)))
		a := randomSPD(r, n)
		want, err := naiveCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		for _, block := range eqBlocks {
			if !eqCase(n, block) {
				continue
			}
			var w1 *Matrix
			for _, workers := range eqWorkers {
				c, err := NewCholeskyWith(a, Options{BlockSize: block, Workers: workers})
				if err != nil {
					t.Fatalf("n=%d block=%d workers=%d: %v", n, block, workers, err)
				}
				if !matApproxEqual(c.L, want, refTol) {
					t.Fatalf("n=%d block=%d workers=%d: L diverges from reference by more than %v",
						n, block, workers, refTol)
				}
				// Workers must not change a single bit.
				if w1 == nil {
					w1 = c.L
				} else if !reflect.DeepEqual(c.L.Data, w1.Data) {
					t.Fatalf("n=%d block=%d: factor depends on worker count (%d)", n, block, workers)
				}
			}
		}
	}
}

func TestBlockedMulMatchesReference(t *testing.T) {
	for _, n := range eqSizes {
		r := rand.New(rand.NewSource(int64(2000 + n)))
		// Rectangular shapes around n exercise non-square tiling.
		a := randomMatrix(r, n, n+3)
		b := randomMatrix(r, n+3, max(n-1, 1))
		want := naiveMul(a, b)
		for _, block := range eqBlocks {
			if !eqCase(n, block) {
				continue
			}
			var w1 *Matrix
			for _, workers := range eqWorkers {
				got := a.MulWith(b, Options{BlockSize: block, Workers: workers})
				if !matApproxEqual(got, want, refTol) {
					t.Fatalf("n=%d block=%d workers=%d: product diverges from reference", n, block, workers)
				}
				if w1 == nil {
					w1 = got
				} else if !reflect.DeepEqual(got.Data, w1.Data) {
					t.Fatalf("n=%d block=%d: product depends on worker count (%d)", n, block, workers)
				}
			}
		}
	}
}

func TestBlockedSolveMatchesReference(t *testing.T) {
	for _, n := range eqSizes {
		r := rand.New(rand.NewSource(int64(3000 + n)))
		a := randomSPD(r, n)
		lRef, err := naiveCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		// Multi-RHS shapes: single column, ragged, full n×n (Inverse).
		for _, m := range []int{1, 3, n} {
			bm := randomMatrix(r, n, m)
			want := naiveSolve(lRef, bm)
			bv := make([]float64, n)
			for i := range bv {
				bv[i] = r.NormFloat64()
			}
			wantVec := naiveSolveVec(lRef, bv)
			for _, block := range eqBlocks {
				if !eqCase(n, block) {
					continue
				}
				var w1 *Matrix
				for _, workers := range eqWorkers {
					c, err := NewCholeskyWith(a, Options{BlockSize: block, Workers: workers})
					if err != nil {
						t.Fatalf("n=%d block=%d workers=%d: %v", n, block, workers, err)
					}
					got := c.Solve(bm)
					if !matApproxEqual(got, want, refTol) {
						t.Fatalf("n=%d m=%d block=%d workers=%d: Solve diverges from reference", n, m, block, workers)
					}
					gotVec := c.SolveVec(bv)
					for i := range wantVec {
						if !approxEqual(gotVec[i], wantVec[i], refTol) {
							t.Fatalf("n=%d block=%d workers=%d: SolveVec[%d] = %v, want %v",
								n, block, workers, i, gotVec[i], wantVec[i])
						}
					}
					if w1 == nil {
						w1 = got
					} else if !reflect.DeepEqual(got.Data, w1.Data) {
						t.Fatalf("n=%d m=%d block=%d: solve depends on worker count (%d)", n, m, block, workers)
					}
				}
			}
		}
	}
}

// Inverse has its own structured path (triangular forward result,
// symmetric mirror) distinct from Solve(Identity); it must match the
// reference inverse on the same grid, be exactly symmetric, and not
// depend on the worker count.
func TestBlockedInverseMatchesReference(t *testing.T) {
	for _, n := range eqSizes {
		r := rand.New(rand.NewSource(int64(4000 + n)))
		a := randomSPD(r, n)
		lRef, err := naiveCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		want := naiveSolve(lRef, Identity(n))
		for _, block := range eqBlocks {
			if !eqCase(n, block) {
				continue
			}
			var w1 *Matrix
			for _, workers := range eqWorkers {
				c, err := NewCholeskyWith(a, Options{BlockSize: block, Workers: workers})
				if err != nil {
					t.Fatalf("n=%d block=%d workers=%d: %v", n, block, workers, err)
				}
				got := c.Inverse()
				if !matApproxEqual(got, want, refTol) {
					t.Fatalf("n=%d block=%d workers=%d: Inverse diverges from reference", n, block, workers)
				}
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if got.At(i, j) != got.At(j, i) {
							t.Fatalf("n=%d block=%d: Inverse not exactly symmetric at (%d,%d)", n, block, i, j)
						}
					}
				}
				if w1 == nil {
					w1 = got
				} else if !reflect.DeepEqual(got.Data, w1.Data) {
					t.Fatalf("n=%d block=%d: Inverse depends on worker count (%d)", n, block, workers)
				}
			}
		}
	}
}

// The reference itself must solve the system it claims to: anchor the
// harness so a bug in naiveCholesky cannot silently bless the blocked
// kernels.
func TestReferenceSolvesSystem(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 5, 32, 64} {
		a := randomSPD(r, n)
		l, err := naiveCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got := naiveSolveVec(l, b)
		for i := range x {
			if !approxEqual(got[i], x[i], 1e-8) {
				t.Fatalf("n=%d: reference solve[%d] = %v, want %v", n, i, got[i], x[i])
			}
		}
	}
}

// Reference mode must expose exactly the naive path through the public
// API (this is what gpbench's serial baseline runs).
func TestReferenceOptionUsesNaivePath(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	a := randomSPD(r, 65) // above the default block fallback
	c, err := NewCholeskyWith(a, Options{Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naiveCholesky(a)
	if !reflect.DeepEqual(c.L.Data, want.Data) {
		t.Fatal("Reference factorization is not the naive factorization")
	}
	if c.lt != nil {
		t.Fatal("Reference mode must not cache the transpose")
	}
	b := randomMatrix(r, 65, 4)
	if !reflect.DeepEqual(c.Solve(b).Data, naiveSolve(want, b).Data) {
		t.Fatal("Reference Solve is not the naive solve")
	}
	m := randomMatrix(r, 65, 65)
	if !reflect.DeepEqual(m.MulWith(b, Options{Reference: true}).Data, naiveMul(m, b).Data) {
		t.Fatal("Reference Mul is not the naive product")
	}
}

func TestSetDefaultOptionsRoundTrip(t *testing.T) {
	prev := SetDefaultOptions(Options{BlockSize: 8, Workers: 2})
	defer SetDefaultOptions(prev)
	if got := DefaultOptions(); got.BlockSize != 8 || got.Workers != 2 {
		t.Fatalf("DefaultOptions = %+v", got)
	}
	if restored := SetDefaultOptions(prev); restored.BlockSize != 8 {
		t.Fatalf("SetDefaultOptions returned %+v, want the replaced value", restored)
	}
	// The option-less API must honour the defaults (Reference mode has
	// no cached transpose — observable via the naive solve path).
	SetDefaultOptions(Options{Reference: true})
	r := rand.New(rand.NewSource(9))
	c, err := NewCholesky(randomSPD(r, 70))
	if err != nil {
		t.Fatal(err)
	}
	if c.lt != nil {
		t.Fatal("NewCholesky ignored the package-wide Reference option")
	}
}

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]int, n)
		done := make([]chan struct{}, n)
		for i := range done {
			done[i] = make(chan struct{}, 1)
		}
		ParallelFor(workers, n, func(i int) {
			hits[i]++ // disjoint writes; -race verifies the claim
			done[i] <- struct{}{}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, h)
			}
		}
	}
	ParallelFor(4, 0, func(int) { t.Fatal("n=0 must not call fn") })
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestSubmatrixBoundsPanic(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	cases := []struct {
		rows, cols []int
		want       string
	}{
		{[]int{0, 2}, []int{0}, "row index 2"},
		{[]int{-1}, []int{0}, "row index -1"},
		{[]int{0}, []int{5}, "column index 5"},
		{[]int{1}, []int{-3}, "column index -3"},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Submatrix(%v, %v) must panic", tc.rows, tc.cols)
					return
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "linalg: Submatrix") || !strings.Contains(msg, tc.want) {
					t.Errorf("Submatrix(%v, %v) panic = %q, want mention of %q", tc.rows, tc.cols, msg, tc.want)
				}
			}()
			a.Submatrix(tc.rows, tc.cols)
		}()
	}
	// In-range index sets still work.
	if got := a.Submatrix([]int{1}, []int{0, 1}); got.At(0, 1) != 4 {
		t.Errorf("valid Submatrix broken: %+v", got)
	}
}
