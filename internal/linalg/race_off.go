//go:build !race

package linalg

// raceEnabled reports whether the race detector is compiled in. The
// equivalence suite skips its largest matrix sizes under -race (the
// instrumented inner loops are ~10-20× slower); every code path is
// still raced at the smaller sizes.
const raceEnabled = false
