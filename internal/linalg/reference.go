package linalg

import "math"

// This file retains the seed (naive, serial) implementations verbatim.
// They are the ground truth for the property/fuzz equivalence suite,
// the small-n fallback of the blocked kernels, and — via
// Options{Reference: true} — the serial baseline that cmd/gpbench and
// the gp benchmarks measure the blocked/parallel kernels against.

// naiveCholesky is the seed unblocked factorization: for each column,
// a full-length dot against every earlier column. Returns the lower
// triangular factor L with A = L·Lᵀ.
func naiveCholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, nil
}

// naiveMul is the seed cache-oblivious row-major i-k-j product.
func naiveMul(m, o *Matrix) *Matrix {
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*o.Cols : (i+1)*o.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			okRow := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, ov := range okRow {
				orow[j] += mv * ov
			}
		}
	}
	return out
}

// naiveSolveVec is the seed single-RHS substitution. The back pass
// walks L column-wise (stride-n loads), which is exactly the cache
// behaviour the blocked solver exists to avoid.
func naiveSolveVec(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, lv := range row {
			s -= lv * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// naiveSolve is the seed multi-RHS solve: one naiveSolveVec per column.
func naiveSolve(l *Matrix, b *Matrix) *Matrix {
	n := l.Rows
	out := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := naiveSolveVec(l, col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}
