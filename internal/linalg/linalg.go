// Package linalg provides the dense linear algebra needed by the
// Gaussian Process traffic-modelling component: matrices, Cholesky
// factorization of symmetric positive-definite systems, triangular
// solves and inversion. It is deliberately small — just enough for
// K = [β(L + I/α²)]⁻¹ and the GP predictive equations of Section 6 —
// and has no dependencies beyond the standard library.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite (within floating point tolerance).
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*o.Cols : (i+1)*o.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			okRow := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, ov := range okRow {
				orow[j] += mv * ov
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, rv := range row {
			sum += rv * v[j]
		}
		out[i] = sum
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMat adds o element-wise in place and returns m.
func (m *Matrix) AddMat(o *Matrix) *Matrix {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("linalg: dimension mismatch in AddMat")
	}
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
	return m
}

// AddDiag adds v to each diagonal element in place and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, v)
	}
	return m
}

// Submatrix extracts the rows and cols index sets into a new matrix.
func (m *Matrix) Submatrix(rows, cols []int) *Matrix {
	out := NewMatrix(len(rows), len(cols))
	for i, ri := range rows {
		for j, cj := range cols {
			out.Set(i, j, m.At(ri, cj))
		}
	}
	return out
}

// Symmetric reports whether the matrix equals its transpose within tol.
func (m *Matrix) Symmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Cholesky is the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	L *Matrix
}

// NewCholesky factorizes the SPD matrix a. It returns ErrNotSPD if a
// is not square or a pivot is non-positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, ErrNotSPD
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return &Cholesky{L: l}, nil
}

// SolveVec solves A·x = b for x given the factorization of A.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: dimension mismatch in SolveVec")
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Data[i*n : i*n+i]
		for k, lv := range row {
			s -= lv * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// Solve solves A·X = B column-by-column.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	n := c.L.Rows
	if b.Rows != n {
		panic("linalg: dimension mismatch in Solve")
	}
	out := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Inverse returns A⁻¹ from the factorization.
func (c *Cholesky) Inverse() *Matrix {
	return c.Solve(Identity(c.L.Rows))
}

// LogDet returns log|A| from the factorization.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// InverseSPD inverts a symmetric positive-definite matrix.
func InverseSPD(a *Matrix) (*Matrix, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Inverse(), nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dimension mismatch in Dot")
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}
