// Package linalg provides the dense linear algebra needed by the
// Gaussian Process traffic-modelling component: matrices, Cholesky
// factorization of symmetric positive-definite systems, triangular
// solves and inversion. It is deliberately small — just enough for
// K = [β(L + I/α²)]⁻¹ and the GP predictive equations of Section 6 —
// and has no dependencies beyond the standard library.
//
// The hot kernels (Cholesky, Mul, multi-RHS Solve) are cache-blocked
// and run on a bounded worker pool; see Options for the BlockSize and
// Workers knobs and the determinism guarantees. The seed's naive
// serial implementations are retained (reference.go) as the ground
// truth for the property/fuzz equivalence suite and as the serial
// baseline for benchmarks, reachable via Options{Reference: true}.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite (within floating point tolerance).
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m·o using the package-wide default
// options.
func (m *Matrix) Mul(o *Matrix) *Matrix { return m.MulWith(o, DefaultOptions()) }

// MulWith returns the matrix product m·o, tiled over BlockSize panels
// of the inner dimension and parallel over row blocks. Per output
// element the inner products accumulate in the same k-order as the
// reference, so the result is bit-identical to naiveMul for finite
// inputs and independent of Workers.
func (m *Matrix) MulWith(o *Matrix, opts Options) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	nb := opts.blockSize()
	if opts.Reference || (m.Rows <= nb && m.Cols <= nb) {
		return naiveMul(m, o)
	}
	out := NewMatrix(m.Rows, o.Cols)
	rowBlocks := (m.Rows + nb - 1) / nb
	ParallelFor(opts.workers(), rowBlocks, func(t int) {
		i0 := t * nb
		i1 := min(i0+nb, m.Rows)
		// Panel the inner dimension so the nb touched rows of o stay
		// cache-resident across the whole row block.
		for k0 := 0; k0 < m.Cols; k0 += nb {
			k1 := min(k0+nb, m.Cols)
			for i := i0; i < i1; i++ {
				mrow := m.Data[i*m.Cols+k0 : i*m.Cols+k1]
				orow := out.Data[i*o.Cols : (i+1)*o.Cols]
				for kk, mv := range mrow {
					if mv == 0 {
						continue
					}
					okRow := o.Data[(k0+kk)*o.Cols : (k0+kk+1)*o.Cols]
					for j, ov := range okRow {
						orow[j] += mv * ov
					}
				}
			}
		}
	})
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, rv := range row {
			sum += rv * v[j]
		}
		out[i] = sum
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMat adds o element-wise in place and returns m.
func (m *Matrix) AddMat(o *Matrix) *Matrix {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("linalg: dimension mismatch in AddMat")
	}
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
	return m
}

// AddDiag adds v to each diagonal element in place and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, v)
	}
	return m
}

// Submatrix extracts the rows and cols index sets into a new matrix.
// Out-of-range indexes panic with a message naming the offending index
// and the valid range (rather than a raw slice-bounds panic from Data).
func (m *Matrix) Submatrix(rows, cols []int) *Matrix {
	for _, ri := range rows {
		if ri < 0 || ri >= m.Rows {
			panic(fmt.Sprintf("linalg: Submatrix row index %d out of range [0, %d)", ri, m.Rows))
		}
	}
	for _, cj := range cols {
		if cj < 0 || cj >= m.Cols {
			panic(fmt.Sprintf("linalg: Submatrix column index %d out of range [0, %d)", cj, m.Cols))
		}
	}
	out := NewMatrix(len(rows), len(cols))
	for i, ri := range rows {
		for j, cj := range cols {
			out.Set(i, j, m.At(ri, cj))
		}
	}
	return out
}

// Symmetric reports whether the matrix equals its transpose within tol.
func (m *Matrix) Symmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dimension mismatch in Dot")
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}
