//go:build race

package linalg

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
