package insight

import (
	"context"
	"testing"
	"time"

	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// restartSystem builds a paced, columnar, crowdless system with the
// watermark staleness bound armed. Pacing matters: the pacer keeps
// every stream within Step/2 = 450 s of virtual time of the slowest
// one, so a stream whose input process is busy retrying can never
// trail the pack by more than the slack — strictly inside the 1800 s
// staleness bound. Degradation under mere retries is therefore
// impossible by construction, not by timing luck, and the test below
// can demand it.
func restartSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{
		City:               testCity(t),
		Seed:               7,
		WorkingMemory:      1800,
		Step:               900,
		ColumnarTransport:  true,
		WatermarkStaleness: 1800,
		Traffic: traffic.Config{
			NoisyPolicy: traffic.Pessimistic,
			Adaptive:    true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestPipelineRestartLiveness is the supervised-restart half of the
// liveness contract: with every input validator failing a quarter of
// its envelopes and a Restart policy retrying them, the watermark
// machinery must ride through the restarts — every stream re-enters
// the watermark minimum after each retry, no report flags degradation,
// nothing is dead-lettered, and recognition output stays bit-identical
// to the fault-free run.
func TestPipelineRestartLiveness(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600

	basePipe, err := restartSystem(t).BuildPipeline(from, until)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := basePipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline produced no reports")
	}

	chaosPipe, err := restartSystem(t).BuildChaosPipeline(from, until, ChaosConfig{
		InputErrProb: 0.25,
		Seed:         99,
		InputSupervision: &streams.SupervisionPolicy{
			Strategy: streams.Restart,
			Retry: streams.RetryPolicy{
				MaxAttempts: 12,
				BaseDelay:   time.Millisecond,
				MaxDelay:    time.Millisecond,
				Multiplier:  1,
			},
			OnExhausted: streams.Escalate,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := chaosPipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical recognition: a retried envelope is redelivered
	// whole, so the consumed SDE sequence — and with it every report —
	// matches the fault-free run exactly.
	if len(reports) != len(baseline) {
		t.Fatalf("restart run produced %d reports, baseline %d", len(reports), len(baseline))
	}
	for i := range baseline {
		if got, want := reports[i].Fingerprint(), baseline[i].Fingerprint(); got != want {
			t.Errorf("q=%d diverged under restarts:\n  restart:  %s\n  baseline: %s", int64(baseline[i].Q), got, want)
		}
		// Re-entry: a retrying stream stalls briefly but the pacer caps
		// how far the others can run ahead, so the staleness rule must
		// never fire.
		if len(reports[i].DegradedStreams) != 0 {
			t.Errorf("q=%d flags %v as degraded under mere restarts", int64(reports[i].Q), reports[i].DegradedStreams)
		}
	}

	// The faults actually happened — and were all absorbed by retries,
	// never by dropping SDEs.
	restarts, skipped := 0, 0
	for id, h := range chaosPipe.Topology.Health() {
		if len(id) > 6 && id[:6] == "input-" {
			restarts += h.Restarts
			skipped += h.Skipped
		}
	}
	if restarts == 0 {
		t.Error("no input process ever restarted: the fault injection did not bite")
	}
	if skipped != 0 {
		t.Errorf("%d envelopes dead-lettered: Restart supervision must retry, not drop", skipped)
	}
	injected := 0
	for _, cp := range chaosPipe.ChaosProcs {
		injected += cp.Stats().Errors
	}
	if injected == 0 {
		t.Error("chaos processors report no injected errors")
	}
}
