package interval

import "sort"

// CoverageAtLeast returns the maximal intervals during which at least
// n of the given lists hold simultaneously. It generalises
// intersect_all (n = len(lists)) and union_all (n = 1) and supports
// threshold-style CE definitions such as the paper's "a SCATS
// intersection is congested if at least n (n > 1) of its sensors are
// congested" (Section 4.3).
//
// CoverageAtLeast(0, ...) is undefined over an unbounded universe and
// returns nil.
func CoverageAtLeast(n int, lists []List) List {
	if n <= 0 || n > len(lists) {
		return nil
	}
	type boundary struct {
		t     Time
		delta int
	}
	var bounds []boundary
	for _, l := range lists {
		for _, s := range l {
			bounds = append(bounds, boundary{t: s.Start, delta: +1}, boundary{t: s.End, delta: -1})
		}
	}
	if len(bounds) == 0 {
		return nil
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })

	var out []Span
	count := 0
	var openStart Time
	open := false
	for i := 0; i < len(bounds); {
		t := bounds[i].t
		for i < len(bounds) && bounds[i].t == t {
			count += bounds[i].delta
			i++
		}
		if count >= n && !open {
			open = true
			openStart = t
		} else if count < n && open {
			open = false
			out = append(out, Span{Start: openStart, End: t})
		}
	}
	// count returns to zero at the last boundary, so open must be
	// false here; Normalize guards against any degenerate spans.
	return Normalize(out)
}
