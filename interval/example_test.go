package interval_test

import (
	"fmt"

	"github.com/insight-dublin/insight/interval"
)

// The three interval-manipulation constructs of RTEC's Table 1.
func Example() {
	busCongestion := interval.List{{Start: 0, End: 100}}
	scatsCongestion := interval.List{{Start: 30, End: 60}}

	// union_all
	fmt.Println(interval.UnionAll(busCongestion, scatsCongestion))
	// intersect_all
	fmt.Println(interval.IntersectAll(busCongestion, scatsCongestion))
	// relative_complement_all: the sourceDisagreement definition —
	// periods where buses report congestion but SCATS does not.
	fmt.Println(interval.RelativeComplementAll(busCongestion, []interval.List{scatsCongestion}))
	// Output:
	// [0, 100)
	// [30, 60)
	// [0, 30) ∪ [60, 100)
}

// Maximal intervals from initiation/termination points under inertia,
// the way RTEC computes holdsFor for simple fluents.
func ExampleFromTransitions() {
	initiations := []interval.Time{10, 25} // re-initiation is inert
	terminations := []interval.Time{40}
	l := interval.FromTransitions(initiations, terminations, false, 0, 1000)
	fmt.Println(l)
	// Output:
	// [11, 41)
}

// Threshold coverage: "an intersection is congested while at least n
// of its sensors are congested".
func ExampleCoverageAtLeast() {
	sensors := []interval.List{
		{{Start: 0, End: 50}},
		{{Start: 20, End: 80}},
		{{Start: 40, End: 60}},
	}
	fmt.Println(interval.CoverageAtLeast(2, sensors))
	// Output:
	// [20, 60)
}
