package interval

import (
	"testing"
	"testing/quick"
)

func TestCoverageAtLeast(t *testing.T) {
	lists := []List{
		{sp(0, 10)},
		{sp(5, 15)},
		{sp(8, 20)},
	}
	cases := []struct {
		n    int
		want List
	}{
		{1, List{sp(0, 20)}},
		{2, List{sp(5, 15)}},
		{3, List{sp(8, 10)}},
		{4, nil},
		{0, nil},
		{-1, nil},
	}
	for _, c := range cases {
		if got := CoverageAtLeast(c.n, lists); !got.Equal(c.want) {
			t.Errorf("CoverageAtLeast(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestCoverageAtLeastEmpty(t *testing.T) {
	if got := CoverageAtLeast(1, nil); got != nil {
		t.Errorf("no lists = %v, want nil", got)
	}
	if got := CoverageAtLeast(1, []List{nil, nil}); got != nil {
		t.Errorf("empty lists = %v, want nil", got)
	}
}

func TestCoverageAtLeastAdjacent(t *testing.T) {
	// Two lists covering adjacent spans never overlap.
	lists := []List{{sp(0, 5)}, {sp(5, 10)}}
	if got := CoverageAtLeast(2, lists); got != nil {
		t.Errorf("adjacent spans overlap = %v, want nil", got)
	}
	if got := CoverageAtLeast(1, lists); !got.Equal(List{sp(0, 10)}) {
		t.Errorf("union of adjacent = %v", got)
	}
}

// CoverageAtLeast(1) must equal UnionAll, and
// CoverageAtLeast(len) must equal IntersectAll.
func TestQuickCoverageEdges(t *testing.T) {
	f := func(a, b, c listGen) bool {
		lists := []List{a.l, b.l, c.l}
		if !CoverageAtLeast(1, lists).Equal(UnionAll(lists...)) {
			return false
		}
		return CoverageAtLeast(3, lists).Equal(IntersectAll(lists...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Pointwise check: a time point is covered by CoverageAtLeast(n) iff
// at least n lists contain it.
func TestQuickCoveragePointwise(t *testing.T) {
	f := func(a, b, c listGen) bool {
		lists := []List{a.l, b.l, c.l}
		for n := 1; n <= 3; n++ {
			cov := CoverageAtLeast(n, lists)
			if !cov.Valid() {
				return false
			}
			for tp := Time(-150); tp < 150; tp++ {
				count := 0
				for _, l := range lists {
					if l.Contains(tp) {
						count++
					}
				}
				if cov.Contains(tp) != (count >= n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
