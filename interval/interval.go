// Package interval implements the maximal-interval algebra used by the
// RTEC complex event processing engine (Artikis et al., EDBT 2014).
//
// A fluent's temporal extent is represented as a List of maximal,
// non-overlapping Spans. Spans are half-open on the right: a Span
// {Start, End} covers every time point T with Start <= T < End. The
// package provides the three interval-manipulation constructs of RTEC
// (union_all, intersect_all and relative_complement_all, Table 1 of the
// paper) together with the normalisation, clipping and point-set
// conversions that the engine's windowing machinery needs.
//
// Time is discrete and linear, represented by integer time points, as
// in the Event Calculus. The zero value of List is the empty interval
// set; the zero value of Span is the empty span.
package interval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Time is a discrete time point. The paper models time as linear and
// discrete, "represented by integer time-points" (Section 4.1); the
// Dublin streams use Unix seconds, but nothing in this package assumes
// a unit.
type Time int64

// Sentinel time points. MinTime and MaxTime act as -infinity and
// +infinity for open-ended intervals (e.g. a fluent initiated inside
// the working memory and not yet terminated extends to MaxTime until
// the window closes it).
const (
	MinTime Time = math.MinInt64
	MaxTime Time = math.MaxInt64
)

// Span is a half-open interval [Start, End). A Span is empty when
// Start >= End.
type Span struct {
	Start Time
	End   Time
}

// Empty reports whether the span covers no time points.
func (s Span) Empty() bool { return s.Start >= s.End }

// Contains reports whether time point t falls inside the span.
func (s Span) Contains(t Time) bool { return s.Start <= t && t < s.End }

// Intersect returns the overlap of two spans (possibly empty).
func (s Span) Intersect(o Span) Span {
	r := Span{Start: maxTime(s.Start, o.Start), End: minTime(s.End, o.End)}
	if r.Empty() {
		return Span{}
	}
	return r
}

// Duration returns the number of time points covered by the span.
// Empty spans have zero duration. Spans touching the sentinels report
// a saturated duration rather than overflowing.
func (s Span) Duration() Time {
	if s.Empty() {
		return 0
	}
	if s.Start == MinTime || s.End == MaxTime {
		return MaxTime
	}
	return s.End - s.Start
}

// String renders the span as "[start, end)"; sentinel bounds render as
// "-inf"/"+inf".
func (s Span) String() string {
	return fmt.Sprintf("[%s, %s)", timeString(s.Start), timeString(s.End))
}

func timeString(t Time) string {
	switch t {
	case MinTime:
		return "-inf"
	case MaxTime:
		return "+inf"
	}
	return fmt.Sprintf("%d", int64(t))
}

// List is a set of maximal intervals: sorted by start, pairwise
// disjoint and non-adjacent, with every member non-empty. Use
// Normalize to establish the invariant from arbitrary spans; all
// algebra in this package preserves it.
type List []Span

// Normalize sorts the spans, drops empty ones and merges overlapping
// or adjacent ones, returning a canonical maximal-interval list. The
// input is not modified.
func Normalize(spans []Span) List {
	work := make([]Span, 0, len(spans))
	for _, s := range spans {
		if !s.Empty() {
			work = append(work, s)
		}
	}
	if len(work) == 0 {
		return nil
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Start != work[j].Start {
			return work[i].Start < work[j].Start
		}
		return work[i].End < work[j].End
	})
	out := List{work[0]}
	for _, s := range work[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End { // overlapping or adjacent: merge
			if s.End > last.End {
				last.End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Valid reports whether the list satisfies the maximal-interval
// invariant (sorted, disjoint, non-adjacent, non-empty).
func (l List) Valid() bool {
	for i, s := range l {
		if s.Empty() {
			return false
		}
		if i > 0 && l[i-1].End >= s.Start {
			return false
		}
	}
	return true
}

// Contains reports whether time point t is covered by the list. This
// is the interval-based holdsAt of RTEC: holdsAt(F=V, T) iff T belongs
// to one of the maximal intervals of holdsFor(F=V, I).
func (l List) Contains(t Time) bool {
	// Binary search for the first span ending after t.
	i := sort.Search(len(l), func(i int) bool { return l[i].End > t })
	return i < len(l) && l[i].Contains(t)
}

// Empty reports whether the list covers no time points.
func (l List) Empty() bool { return len(l) == 0 }

// Duration returns the total number of time points covered. Lists with
// sentinel-bounded spans report a saturated duration.
func (l List) Duration() Time {
	var total Time
	for _, s := range l {
		d := s.Duration()
		if d == MaxTime || total > MaxTime-d {
			return MaxTime
		}
		total += d
	}
	return total
}

// Clone returns an independent copy of the list.
func (l List) Clone() List {
	if l == nil {
		return nil
	}
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Equal reports whether two lists cover exactly the same time points.
// Both lists must be valid (normalized).
func (l List) Equal(o List) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the list as "[a, b) ∪ [c, d)".
func (l List) String() string {
	if len(l) == 0 {
		return "∅"
	}
	parts := make([]string, len(l))
	for i, s := range l {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ∪ ")
}

// Union returns the union of two maximal-interval lists.
func Union(a, b List) List {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	merged := make([]Span, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return Normalize(merged)
}

// UnionAll implements union_all(L, I) of RTEC Table 1: I is the list of
// maximal intervals produced by the union of the lists of maximal
// intervals of L.
func UnionAll(lists ...List) List {
	var spans []Span
	for _, l := range lists {
		spans = append(spans, l...)
	}
	return Normalize(spans)
}

// Intersect returns the intersection of two maximal-interval lists
// using a linear merge.
func Intersect(a, b List) List {
	var out List
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if ov := a[i].Intersect(b[j]); !ov.Empty() {
			out = append(out, ov)
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// IntersectAll implements intersect_all(L, I) of RTEC Table 1: the
// intersection of all the lists. Intersecting zero lists yields the
// empty list (there is no universal interval in a windowed engine).
func IntersectAll(lists ...List) List {
	if len(lists) == 0 {
		return nil
	}
	out := lists[0].Clone()
	for _, l := range lists[1:] {
		if out.Empty() {
			return nil
		}
		out = Intersect(out, l)
	}
	return out
}

// Complement returns the gaps of l inside the universe span: the time
// points of universe not covered by l.
func Complement(l List, universe Span) List {
	if universe.Empty() {
		return nil
	}
	var out List
	cursor := universe.Start
	for _, s := range l {
		if s.End <= universe.Start {
			continue
		}
		if s.Start >= universe.End {
			break
		}
		if s.Start > cursor {
			out = append(out, Span{Start: cursor, End: minTime(s.Start, universe.End)})
		}
		if s.End > cursor {
			cursor = s.End
		}
		if cursor >= universe.End {
			return out
		}
	}
	if cursor < universe.End {
		out = append(out, Span{Start: cursor, End: universe.End})
	}
	return out
}

// RelativeComplement returns the time points of a not covered by b.
func RelativeComplement(a, b List) List {
	if a.Empty() || b.Empty() {
		return a.Clone()
	}
	var out List
	j := 0
	for _, s := range a {
		cursor := s.Start
		for j < len(b) && b[j].End <= cursor {
			j++
		}
		k := j
		for k < len(b) && b[k].Start < s.End {
			if b[k].Start > cursor {
				out = append(out, Span{Start: cursor, End: b[k].Start})
			}
			if b[k].End > cursor {
				cursor = b[k].End
			}
			k++
		}
		if cursor < s.End {
			out = append(out, Span{Start: cursor, End: s.End})
		}
	}
	return out
}

// RelativeComplementAll implements relative_complement_all(I', L, I) of
// RTEC Table 1: I is the relative complement of I' with respect to
// every list in L, i.e. the time points of base covered by none of the
// lists. The paper's sourceDisagreement CE is defined with this
// construct (Section 4.3).
func RelativeComplementAll(base List, lists []List) List {
	out := base.Clone()
	for _, l := range lists {
		if out.Empty() {
			return nil
		}
		out = RelativeComplement(out, l)
	}
	return out
}

// Clip restricts the list to the window span, cutting spans that cross
// the window edges. RTEC's working-memory mechanism discards everything
// outside (Q-WM, Q].
func Clip(l List, window Span) List {
	if window.Empty() {
		return nil
	}
	var out List
	for _, s := range l {
		if ov := s.Intersect(window); !ov.Empty() {
			out = append(out, ov)
		}
	}
	return out
}

// FromTransitions builds a maximal-interval list from initiation and
// termination points under the law of inertia, the way RTEC computes
// holdsFor for simple fluents: a period starts at each initiation point
// (when the fluent does not already hold) and ends at the earliest
// later termination point, or extends to `horizon` if none follows.
// If holdsAtStart is true, a period is open from `start` (the window
// begin) until the first termination.
//
// Initiation semantics follow the Event Calculus convention that a
// fluent initiated at T holds strictly after T: the produced span
// starts at T+1. A fluent terminated at T no longer holds after T: the
// span ends at T+1 (so the fluent still holds AT the termination
// point, per holdsFor/holdsAt in RTEC).
//
// Both point slices may be unsorted and may contain duplicates; they
// are not modified.
func FromTransitions(initiations, terminations []Time, holdsAtStart bool, start, horizon Time) List {
	ini := append([]Time(nil), initiations...)
	ter := append([]Time(nil), terminations...)
	sort.Slice(ini, func(i, j int) bool { return ini[i] < ini[j] })
	sort.Slice(ter, func(i, j int) bool { return ter[i] < ter[j] })

	var out List
	var cur Span
	open := false
	if holdsAtStart {
		cur = Span{Start: start}
		open = true
	}
	i, j := 0, 0
	for i < len(ini) || j < len(ter) {
		// Process the earliest remaining transition; termination
		// wins ties so that initiate+terminate at the same instant
		// yields no (or a closing) period, matching RTEC where a
		// terminatedAt at T ends the period in progress at T.
		var t Time
		isInit := false
		switch {
		case j >= len(ter):
			t, isInit = ini[i], true
		case i >= len(ini):
			t = ter[j]
		case ini[i] < ter[j]:
			t, isInit = ini[i], true
		default:
			t = ter[j]
		}
		if isInit {
			i++
			if !open {
				cur = Span{Start: t + 1}
				open = true
			}
		} else {
			j++
			if open {
				cur.End = t + 1
				if !cur.Empty() {
					out = append(out, cur)
				}
				open = false
			}
		}
	}
	if open {
		cur.End = horizon
		if !cur.Empty() {
			out = append(out, cur)
		}
	}
	return Normalize(out)
}

func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
