package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sp(a, b Time) Span { return Span{Start: a, End: b} }

func TestSpanEmpty(t *testing.T) {
	cases := []struct {
		s    Span
		want bool
	}{
		{Span{}, true},
		{sp(5, 5), true},
		{sp(6, 5), true},
		{sp(5, 6), false},
		{sp(MinTime, MaxTime), false},
	}
	for _, c := range cases {
		if got := c.s.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestSpanContains(t *testing.T) {
	s := sp(10, 20)
	for _, c := range []struct {
		t    Time
		want bool
	}{{9, false}, {10, true}, {15, true}, {19, true}, {20, false}} {
		if got := s.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSpanIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Span
	}{
		{sp(0, 10), sp(5, 15), sp(5, 10)},
		{sp(0, 10), sp(10, 20), Span{}},
		{sp(0, 10), sp(12, 20), Span{}},
		{sp(0, 10), sp(2, 8), sp(2, 8)},
		{sp(0, 10), sp(0, 10), sp(0, 10)},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		// Intersection is commutative.
		if got := c.b.Intersect(c.a); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v (commuted)", c.b, c.a, got, c.want)
		}
	}
}

func TestSpanDuration(t *testing.T) {
	if d := sp(3, 10).Duration(); d != 7 {
		t.Errorf("Duration = %d, want 7", d)
	}
	if d := (Span{}).Duration(); d != 0 {
		t.Errorf("empty Duration = %d, want 0", d)
	}
	if d := sp(MinTime, 0).Duration(); d != MaxTime {
		t.Errorf("sentinel Duration = %d, want saturated MaxTime", d)
	}
}

func TestSpanString(t *testing.T) {
	if got := sp(1, 2).String(); got != "[1, 2)" {
		t.Errorf("String = %q", got)
	}
	if got := sp(MinTime, MaxTime).String(); got != "[-inf, +inf)" {
		t.Errorf("String = %q", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   []Span
		want List
	}{
		{"empty", nil, nil},
		{"drops empty spans", []Span{sp(5, 5), sp(8, 3)}, nil},
		{"sorts", []Span{sp(10, 12), sp(0, 2)}, List{sp(0, 2), sp(10, 12)}},
		{"merges overlap", []Span{sp(0, 5), sp(3, 8)}, List{sp(0, 8)}},
		{"merges adjacent", []Span{sp(0, 5), sp(5, 8)}, List{sp(0, 8)}},
		{"keeps gaps", []Span{sp(0, 5), sp(6, 8)}, List{sp(0, 5), sp(6, 8)}},
		{"nested", []Span{sp(0, 10), sp(2, 3)}, List{sp(0, 10)}},
		{"duplicate", []Span{sp(1, 4), sp(1, 4)}, List{sp(1, 4)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Normalize(c.in)
			if !got.Equal(c.want) {
				t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
			}
			if !got.Valid() {
				t.Errorf("Normalize(%v) = %v is not valid", c.in, got)
			}
		})
	}
}

func TestListContains(t *testing.T) {
	l := List{sp(0, 5), sp(10, 15), sp(20, 25)}
	for _, c := range []struct {
		t    Time
		want bool
	}{
		{-1, false}, {0, true}, {4, true}, {5, false}, {7, false},
		{10, true}, {14, true}, {15, false}, {24, true}, {25, false}, {100, false},
	} {
		if got := l.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	if (List)(nil).Contains(3) {
		t.Error("nil list should contain nothing")
	}
}

func TestListDuration(t *testing.T) {
	l := List{sp(0, 5), sp(10, 15)}
	if d := l.Duration(); d != 10 {
		t.Errorf("Duration = %d, want 10", d)
	}
	if d := (List{sp(MinTime, 0), sp(5, 10)}).Duration(); d != MaxTime {
		t.Errorf("sentinel Duration = %d, want saturated", d)
	}
}

func TestListString(t *testing.T) {
	if got := (List{}).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	if got := (List{sp(1, 2), sp(4, 6)}).String(); got != "[1, 2) ∪ [4, 6)" {
		t.Errorf("String = %q", got)
	}
}

func TestUnion(t *testing.T) {
	a := List{sp(0, 5), sp(10, 15)}
	b := List{sp(4, 11), sp(20, 22)}
	want := List{sp(0, 15), sp(20, 22)}
	if got := Union(a, b); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := Union(nil, b); !got.Equal(b) {
		t.Errorf("Union(nil, b) = %v, want %v", got, b)
	}
	if got := Union(a, nil); !got.Equal(a) {
		t.Errorf("Union(a, nil) = %v, want %v", got, a)
	}
}

func TestUnionAll(t *testing.T) {
	got := UnionAll(
		List{sp(0, 2)},
		List{sp(1, 4)},
		List{sp(8, 9)},
		nil,
	)
	want := List{sp(0, 4), sp(8, 9)}
	if !got.Equal(want) {
		t.Errorf("UnionAll = %v, want %v", got, want)
	}
	if got := UnionAll(); got != nil {
		t.Errorf("UnionAll() = %v, want nil", got)
	}
}

func TestIntersect(t *testing.T) {
	a := List{sp(0, 10), sp(20, 30)}
	b := List{sp(5, 25)}
	want := List{sp(5, 10), sp(20, 25)}
	if got := Intersect(a, b); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got := Intersect(a, nil); got != nil {
		t.Errorf("Intersect(a, nil) = %v, want nil", got)
	}
}

func TestIntersectAll(t *testing.T) {
	got := IntersectAll(
		List{sp(0, 100)},
		List{sp(10, 50), sp(60, 90)},
		List{sp(40, 70)},
	)
	want := List{sp(40, 50), sp(60, 70)}
	if !got.Equal(want) {
		t.Errorf("IntersectAll = %v, want %v", got, want)
	}
	if got := IntersectAll(); got != nil {
		t.Errorf("IntersectAll() = %v, want nil", got)
	}
	if got := IntersectAll(List{sp(0, 1)}, nil, List{sp(0, 1)}); got != nil {
		t.Errorf("IntersectAll with empty member = %v, want nil", got)
	}
}

func TestComplement(t *testing.T) {
	cases := []struct {
		name     string
		l        List
		universe Span
		want     List
	}{
		{"empty list", nil, sp(0, 10), List{sp(0, 10)}},
		{"full cover", List{sp(0, 10)}, sp(0, 10), nil},
		{"middle gap", List{sp(0, 3), sp(7, 10)}, sp(0, 10), List{sp(3, 7)}},
		{"edges", List{sp(2, 4)}, sp(0, 10), List{sp(0, 2), sp(4, 10)}},
		{"outside universe", List{sp(100, 200)}, sp(0, 10), List{sp(0, 10)}},
		{"overhanging", List{sp(-5, 2), sp(8, 20)}, sp(0, 10), List{sp(2, 8)}},
		{"empty universe", List{sp(0, 5)}, Span{}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Complement(c.l, c.universe)
			if !got.Equal(c.want) {
				t.Errorf("Complement(%v, %v) = %v, want %v", c.l, c.universe, got, c.want)
			}
		})
	}
}

func TestRelativeComplement(t *testing.T) {
	cases := []struct {
		name string
		a, b List
		want List
	}{
		{"disjoint", List{sp(0, 5)}, List{sp(10, 20)}, List{sp(0, 5)}},
		{"swallowed", List{sp(2, 4)}, List{sp(0, 10)}, nil},
		{"split", List{sp(0, 10)}, List{sp(3, 6)}, List{sp(0, 3), sp(6, 10)}},
		{"left trim", List{sp(0, 10)}, List{sp(-5, 4)}, List{sp(4, 10)}},
		{"right trim", List{sp(0, 10)}, List{sp(7, 15)}, List{sp(0, 7)}},
		{"multi", List{sp(0, 10), sp(20, 30)}, List{sp(5, 25)}, List{sp(0, 5), sp(25, 30)}},
		{"b empty", List{sp(0, 10)}, nil, List{sp(0, 10)}},
		{"a empty", nil, List{sp(0, 10)}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := RelativeComplement(c.a, c.b)
			if !got.Equal(c.want) {
				t.Errorf("RelativeComplement(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		})
	}
}

// TestRelativeComplementAll reproduces the sourceDisagreement pattern of
// Section 4.3: bus congestion intervals minus SCATS congestion intervals.
func TestRelativeComplementAll(t *testing.T) {
	busCongestion := List{sp(0, 100)}
	scatsCongestion := List{sp(30, 60)}
	got := RelativeComplementAll(busCongestion, []List{scatsCongestion})
	want := List{sp(0, 30), sp(60, 100)}
	if !got.Equal(want) {
		t.Errorf("RelativeComplementAll = %v, want %v", got, want)
	}

	got = RelativeComplementAll(busCongestion, []List{scatsCongestion, {sp(0, 40)}, {sp(90, 100)}})
	want = List{sp(60, 90)}
	if !got.Equal(want) {
		t.Errorf("RelativeComplementAll (3 lists) = %v, want %v", got, want)
	}

	if got := RelativeComplementAll(busCongestion, nil); !got.Equal(busCongestion) {
		t.Errorf("RelativeComplementAll with no subtrahends = %v, want base", got)
	}
}

func TestClip(t *testing.T) {
	l := List{sp(0, 10), sp(20, 30), sp(40, 50)}
	got := Clip(l, sp(5, 45))
	want := List{sp(5, 10), sp(20, 30), sp(40, 45)}
	if !got.Equal(want) {
		t.Errorf("Clip = %v, want %v", got, want)
	}
	if got := Clip(l, Span{}); got != nil {
		t.Errorf("Clip to empty window = %v, want nil", got)
	}
}

func TestFromTransitions(t *testing.T) {
	horizon := Time(1000)
	cases := []struct {
		name         string
		ini, ter     []Time
		holdsAtStart bool
		want         List
	}{
		{"single period", []Time{10}, []Time{20}, false, List{sp(11, 21)}},
		{"open period extends to horizon", []Time{10}, nil, false, List{sp(11, 1000)}},
		{"holds at start until termination", nil, []Time{15}, true, List{sp(0, 16)}},
		{"holds at start no termination", nil, nil, true, List{sp(0, 1000)}},
		{"re-initiation is inert", []Time{10, 12, 14}, []Time{20}, false, List{sp(11, 21)}},
		{"termination without holding ignored", nil, []Time{5}, false, nil},
		{"two periods", []Time{10, 30}, []Time{20, 40}, false, List{sp(11, 21), sp(31, 41)}},
		{"simultaneous init+term closes", []Time{10}, []Time{10}, true, List{sp(0, 11), sp(11, 1000)}},
		{"unsorted input", []Time{30, 10}, []Time{40, 20}, false, List{sp(11, 21), sp(31, 41)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := FromTransitions(c.ini, c.ter, c.holdsAtStart, 0, horizon)
			// "simultaneous init+term closes": term at 10 closes [0,11),
			// init at 10 reopens [11, horizon) and Normalize merges them.
			want := Normalize(c.want)
			if !got.Equal(want) {
				t.Errorf("FromTransitions = %v, want %v", got, want)
			}
		})
	}
}

// --- property-based tests -------------------------------------------------

// genList builds a random normalized list from a seed.
func genList(r *rand.Rand) List {
	n := r.Intn(6)
	spans := make([]Span, n)
	for i := range spans {
		start := Time(r.Intn(200) - 100)
		spans[i] = Span{Start: start, End: start + Time(r.Intn(30))}
	}
	return Normalize(spans)
}

// listGen adapts genList for testing/quick.
type listGen struct{ l List }

func (listGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(listGen{genList(r)})
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(g listGen) bool {
		again := Normalize(g.l)
		return again.Equal(g.l) && again.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b listGen) bool {
		return Union(a.l, b.l).Equal(Union(b.l, a.l))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b listGen) bool {
		return Intersect(a.l, b.l).Equal(Intersect(b.l, a.l))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	f := func(a, b, c listGen) bool {
		return Union(Union(a.l, b.l), c.l).Equal(Union(a.l, Union(b.l, c.l)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// De Morgan inside a bounded universe: ¬(A ∪ B) = ¬A ∩ ¬B.
func TestQuickDeMorgan(t *testing.T) {
	universe := sp(-150, 150)
	f := func(a, b listGen) bool {
		lhs := Complement(Union(a.l, b.l), universe)
		rhs := Intersect(Complement(a.l, universe), Complement(b.l, universe))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A \ B pointwise: every covered point is in A and not in B.
func TestQuickRelativeComplementPointwise(t *testing.T) {
	f := func(a, b listGen) bool {
		diff := RelativeComplement(a.l, b.l)
		if !diff.Valid() {
			return false
		}
		for tp := Time(-150); tp < 150; tp++ {
			want := a.l.Contains(tp) && !b.l.Contains(tp)
			if diff.Contains(tp) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Union/Intersect pointwise agreement with set semantics.
func TestQuickSetSemanticsPointwise(t *testing.T) {
	f := func(a, b listGen) bool {
		u := Union(a.l, b.l)
		x := Intersect(a.l, b.l)
		if !u.Valid() || !x.Valid() {
			return false
		}
		for tp := Time(-150); tp < 150; tp++ {
			inA, inB := a.l.Contains(tp), b.l.Contains(tp)
			if u.Contains(tp) != (inA || inB) {
				return false
			}
			if x.Contains(tp) != (inA && inB) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Duration is additive under disjoint union: |A| + |B| = |A∪B| + |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(a, b listGen) bool {
		return a.l.Duration()+b.l.Duration() ==
			Union(a.l, b.l).Duration()+Intersect(a.l, b.l).Duration()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickClipSubset(t *testing.T) {
	window := sp(-50, 50)
	f := func(a listGen) bool {
		clipped := Clip(a.l, window)
		if !clipped.Valid() {
			return false
		}
		for tp := Time(-150); tp < 150; tp++ {
			want := a.l.Contains(tp) && window.Contains(tp)
			if clipped.Contains(tp) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionAll(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	lists := make([]List, 16)
	for i := range lists {
		spans := make([]Span, 64)
		for j := range spans {
			start := Time(r.Intn(100000))
			spans[j] = Span{Start: start, End: start + Time(r.Intn(50)+1)}
		}
		lists[i] = Normalize(spans)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionAll(lists...)
	}
}

func BenchmarkRelativeComplement(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	mk := func() List {
		spans := make([]Span, 256)
		for j := range spans {
			start := Time(r.Intn(100000))
			spans[j] = Span{Start: start, End: start + Time(r.Intn(50)+1)}
		}
		return Normalize(spans)
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelativeComplement(a, c)
	}
}
