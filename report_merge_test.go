package insight

import (
	"reflect"
	"testing"
	"time"

	"github.com/insight-dublin/insight/rtec"
)

// TestMergeReports pins the cross-shard report aggregation: sorted key
// unions, summed statistics with parallel-max Elapsed, max-over-shards
// WatermarkLag, unioned DegradedStreams, and graceful handling of nil
// and empty shards.
func TestMergeReports(t *testing.T) {
	a := &Report{
		Q:                      900,
		Window:                 rtec.Span{Start: 1, End: 901},
		CongestedIntersections: []string{"I1", "I3"},
		BusCongestionAreas:     []string{"I1"},
		NoisyBuses:             []string{"bus2"},
		DegradedStreams:        []string{"scats-north", "bus"},
		WatermarkLag:           30,
		Stats: rtec.Stats{
			InputEvents:   100,
			DerivedEvents: 10,
			FluentPeriods: 5,
			Elapsed:       20 * time.Millisecond,
			AllocBytes:    1000,
			ResidentBytes: 4000,
		},
		FedEvents: 50,
	}
	b := &Report{
		Q:                      900,
		Window:                 rtec.Span{Start: 1, End: 901},
		CongestedIntersections: []string{"I2", "I3"},
		Disagreements:          []string{"I2"},
		DegradedStreams:        []string{"bus"},
		WatermarkLag:           45,
		Stats: rtec.Stats{
			InputEvents:   60,
			DerivedEvents: 4,
			FluentPeriods: 2,
			Elapsed:       35 * time.Millisecond,
			AllocBytes:    500,
			ResidentBytes: 3000,
		},
		FedEvents: 20,
	}
	empty := &Report{Q: 900, Window: rtec.Span{Start: 1, End: 901}} // idle shard

	got := MergeReports([]*Report{a, nil, b, empty})
	if got == nil {
		t.Fatal("merged report is nil")
	}
	if got.Q != 900 || got.Window != a.Window {
		t.Errorf("Q/Window = %d/%v", got.Q, got.Window)
	}
	if want := []string{"I1", "I2", "I3"}; !reflect.DeepEqual(got.CongestedIntersections, want) {
		t.Errorf("congested = %v, want %v", got.CongestedIntersections, want)
	}
	if want := []string{"I1"}; !reflect.DeepEqual(got.BusCongestionAreas, want) {
		t.Errorf("busAreas = %v, want %v", got.BusCongestionAreas, want)
	}
	if want := []string{"I2"}; !reflect.DeepEqual(got.Disagreements, want) {
		t.Errorf("disagreements = %v, want %v", got.Disagreements, want)
	}
	if want := []string{"bus2"}; !reflect.DeepEqual(got.NoisyBuses, want) {
		t.Errorf("noisy = %v, want %v", got.NoisyBuses, want)
	}
	if want := []string{"bus", "scats-north"}; !reflect.DeepEqual(got.DegradedStreams, want) {
		t.Errorf("degraded = %v, want %v (sorted union)", got.DegradedStreams, want)
	}
	if got.WatermarkLag != 45 {
		t.Errorf("WatermarkLag = %d, want 45 (max over shards)", got.WatermarkLag)
	}
	if got.Stats.InputEvents != 160 || got.Stats.DerivedEvents != 14 || got.Stats.FluentPeriods != 7 {
		t.Errorf("summed counters = %+v", got.Stats)
	}
	if got.Stats.AllocBytes != 1500 {
		t.Errorf("AllocBytes = %d, want 1500 (summed)", got.Stats.AllocBytes)
	}
	if got.Stats.ResidentBytes != 7000 {
		t.Errorf("ResidentBytes = %d, want 7000 (summed)", got.Stats.ResidentBytes)
	}
	if got.Stats.Elapsed != 35*time.Millisecond {
		t.Errorf("Elapsed = %v, want 35ms (parallel max, not sum)", got.Stats.Elapsed)
	}
	if got.FedEvents != 70 {
		t.Errorf("FedEvents = %d, want 70", got.FedEvents)
	}

	if MergeReports(nil) != nil || MergeReports([]*Report{nil, nil}) != nil {
		t.Error("merging nothing must return nil")
	}
	solo := MergeReports([]*Report{empty})
	if solo == nil || len(solo.DegradedStreams) != 0 {
		t.Errorf("single empty shard: %+v", solo)
	}
}

// TestMergeResultsStats pins the engine-level counterpart the tier
// leans on: MergeResults must sum the memory accounting across shard
// results (ResidentBytes, AllocBytes) while taking the parallel max of
// Elapsed, and an idle shard's zero-valued result must not disturb the
// merge.
func TestMergeResultsStats(t *testing.T) {
	mk := func(resident, alloc uint64, elapsed time.Duration) *rtec.Result {
		return &rtec.Result{
			Q:      60,
			Window: rtec.Span{Start: 1, End: 61},
			Stats: rtec.Stats{
				ResidentBytes: resident,
				AllocBytes:    alloc,
				Elapsed:       elapsed,
			},
		}
	}
	merged := rtec.MergeResults([]*rtec.Result{
		mk(1000, 200, 5*time.Millisecond),
		mk(3000, 100, 2*time.Millisecond),
		mk(0, 0, 0), // idle shard
	})
	if merged.Stats.ResidentBytes != 4000 {
		t.Errorf("ResidentBytes = %d, want 4000", merged.Stats.ResidentBytes)
	}
	if merged.Stats.AllocBytes != 300 {
		t.Errorf("AllocBytes = %d, want 300", merged.Stats.AllocBytes)
	}
	if merged.Stats.Elapsed != 5*time.Millisecond {
		t.Errorf("Elapsed = %v, want 5ms (max)", merged.Stats.Elapsed)
	}
	if len(merged.Fluents) != 0 || len(merged.Derived) != 0 || len(merged.Fresh) != 0 {
		t.Errorf("empty shards produced content: %+v", merged)
	}
}
