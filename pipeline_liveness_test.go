package insight

import (
	"context"
	"testing"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// livenessSystem builds a crowdless system with the watermark
// staleness bound enabled. Crowdsourcing is disabled on purpose: the
// participants share one qee random sequence across regions, so a
// fault in one region would perturb crowd verdicts in every region
// and the unaffected-region bit-exactness check below could not hold.
func livenessSystem(t *testing.T, staleness Time) *System {
	t.Helper()
	sys, err := New(Config{
		City:               testCity(t),
		Seed:               7,
		WorkingMemory:      1800,
		Step:               900,
		WatermarkStaleness: staleness,
		Traffic: traffic.Config{
			NoisyPolicy: traffic.Pessimistic,
			Adaptive:    true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// outsideRegion filters the intersections of a report that lie outside
// the given region, using the system registry for positions.
func outsideRegion(t *testing.T, sys *System, inters []string, region geo.Region) []string {
	t.Helper()
	var out []string
	for _, id := range inters {
		inter, ok := sys.Registry().Lookup(id)
		if !ok {
			t.Fatalf("intersection %q not in registry", id)
		}
		if geo.RegionOf(inter.Pos) != region {
			out = append(out, id)
		}
	}
	return out
}

func hasString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestPipelineLivenessStalledRegion is the headline robustness check:
// with the scats-north mediator dead from the first SDE on, the
// pipeline must still emit a report for every query boundary, flag
// the degraded stream on each, and recognise the unaffected regions
// bit-identically to the fault-free run.
func TestPipelineLivenessStalledRegion(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	const staleness = 1800 // two steps

	// Fault-free baseline.
	baselineSys := livenessSystem(t, staleness)
	basePipe, err := baselineSys.BuildPipeline(from, until)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := basePipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline produced no reports")
	}
	for _, rep := range baseline {
		if len(rep.DegradedStreams) != 0 {
			t.Fatalf("Q=%d: fault-free run flagged %v as degraded", rep.Q, rep.DegradedStreams)
		}
	}

	// Same city, scats-north dead: the source stalls after its first
	// item and never recovers.
	chaosSys := livenessSystem(t, staleness)
	chaosPipe, err := chaosSys.BuildChaosPipeline(from, until, ChaosConfig{
		Streams: map[string]streams.FaultSpec{
			"scats-north": {Seed: 1, StallAfter: 1, StallFor: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := chaosPipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A report for every query boundary, despite the silent stream.
	if len(reports) != len(baseline) {
		t.Fatalf("chaos run produced %d reports, baseline %d", len(reports), len(baseline))
	}
	for i := range reports {
		if reports[i].Q != baseline[i].Q {
			t.Fatalf("report %d: query time %d, baseline %d", i, reports[i].Q, baseline[i].Q)
		}
	}

	var fedChaos, fedBase int
	for i, rep := range reports {
		// Every report flags the dead stream: its watermark is pinned
		// at the window origin, so no boundary can fire before the
		// staleness rule excludes it from the watermark minimum.
		if !hasString(rep.DegradedStreams, "scats-north") {
			t.Errorf("Q=%d: degraded streams %v, want scats-north flagged", rep.Q, rep.DegradedStreams)
		}
		if rep.WatermarkLag <= 0 {
			t.Errorf("Q=%d: watermark lag %d, want positive under a stalled stream", rep.Q, rep.WatermarkLag)
		}
		// Unaffected regions are recognised bit-identically: recognition
		// is partitioned by region, so losing the north feed must not
		// perturb the other partitions.
		got := join(outsideRegion(t, chaosSys, rep.CongestedIntersections, geo.North))
		want := join(outsideRegion(t, baselineSys, baseline[i].CongestedIntersections, geo.North))
		if got != want {
			t.Errorf("Q=%d: non-north congested intersections %q, baseline %q", rep.Q, got, want)
		}
		fedChaos += rep.FedEvents
		fedBase += baseline[i].FedEvents
	}
	if fedChaos >= fedBase {
		t.Errorf("chaos run fed %d SDEs, baseline %d: the dead stream's SDEs should be missing", fedChaos, fedBase)
	}

	// The injector accounts for the swallowed items.
	cs := chaosPipe.Chaos["scats-north"]
	if cs == nil {
		t.Fatal("chaos pipeline did not expose the scats-north injector")
	}
	if st := cs.Stats(); st.Stalled == 0 {
		t.Errorf("injector stats %+v, want stalled items", st)
	}
}

// TestPipelineLivenessRecoveredStream checks the other half of the
// liveness contract: a stream that stalls and then reconnects floods
// its backlog out as late arrivals, rejoins the watermark minimum, and
// every one of its SDEs still enters recognition through the delayed-
// arrival path — nothing is lost, only boundary timing adapts.
func TestPipelineLivenessRecoveredStream(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	const staleness = 1800

	baselineSys := livenessSystem(t, staleness)
	basePipe, err := baselineSys.BuildPipeline(from, until)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := basePipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	chaosSys := livenessSystem(t, staleness)
	chaosPipe, err := chaosSys.BuildChaosPipeline(from, until, ChaosConfig{
		Streams: map[string]streams.FaultSpec{
			// Stall long enough to trip the staleness bound (the north
			// stream carries one SDE every ~26 s, so 90 swallowed items
			// span ~2400 s of virtual time), then reconnect mid-stream
			// and flood the backlog out.
			"scats-north": {Seed: 1, StallAfter: 10, StallFor: 90},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := chaosPipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(reports) != len(baseline) {
		t.Fatalf("chaos run produced %d reports, baseline %d", len(reports), len(baseline))
	}
	var fedChaos, fedBase int
	for i := range reports {
		if reports[i].Q != baseline[i].Q {
			t.Fatalf("report %d: query time %d, baseline %d", i, reports[i].Q, baseline[i].Q)
		}
		fedChaos += reports[i].FedEvents
		fedBase += baseline[i].FedEvents
	}
	// The stall recovered, so every SDE was eventually delivered and
	// fed to the engines — late ones at later boundaries.
	if fedChaos != fedBase {
		t.Errorf("chaos run fed %d SDEs in total, baseline %d: recovered backlog must re-enter recognition", fedChaos, fedBase)
	}
	// The first boundary cannot fire while the silent stream still
	// holds the watermark minimum, so it fires exactly when the
	// staleness rule excludes the stream — flagged.
	if !hasString(reports[0].DegradedStreams, "scats-north") {
		t.Errorf("Q=%d: degraded streams %v, want scats-north flagged during the stall", reports[0].Q, reports[0].DegradedStreams)
	}
	// Once the last end-of-stream marker lifts every watermark, no
	// stream trails any other: the final boundary must not be flagged.
	last := reports[len(reports)-1]
	if len(last.DegradedStreams) != 0 {
		t.Errorf("Q=%d: final report flags %v, want none after recovery", last.Q, last.DegradedStreams)
	}
}
