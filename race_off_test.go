//go:build !race

package insight

// raceEnabled reports whether the race detector is compiled in; alloc
// budget tests skip under it (instrumentation allocates).
const raceEnabled = false
