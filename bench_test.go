package insight

// Benchmarks regenerating the paper's evaluation figures (Section 7)
// at test scale. The cmd/ binaries run the same experiments at the
// paper's full scale and print the figures' data series:
//
//	Figure 4 — cmd/rtecbench   (CE recognition time vs working memory)
//	Figure 5 — cmd/crowdbench  (online EM estimation quality)
//	Figure 6 — cmd/qeebench    (query execution engine latency)
//	Figures 7-9 — cmd/gpmap    (street network + GP flow estimates)

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/gp"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// benchCity is a 1/8-scale Dublin (118 buses, 121 sensors) so the
// Figure 4 sweep finishes in benchmark time; shapes are scale-free.
func benchCity(b *testing.B) *dublin.City {
	b.Helper()
	city, err := dublin.NewCity(dublin.Config{
		Seed:       1,
		NumBuses:   118,
		NumSensors: 121,
	})
	if err != nil {
		b.Fatal(err)
	}
	return city
}

// runFig4 measures one CE recognition pass at the given working
// memory, in static or self-adaptive mode.
func runFig4(b *testing.B, wmMinutes int, adaptive bool) {
	city := benchCity(b)
	reg, err := city.Registry(150)
	if err != nil {
		b.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		b.Fatal(err)
	}
	wm := rtec.Time(wmMinutes * 60)
	from := rtec.Time(7 * 3600)
	sdes := city.Collect(from, from+wm)
	events := make([]rtec.Event, len(sdes))
	for i, s := range sdes {
		events[i] = s.Event
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		part, err := rtec.NewPartitioned(defs, rtec.Options{WorkingMemory: wm, Step: wm},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			b.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		results, err := part.Query(from + wm)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		merged := rtec.MergeResults(results)
		b.ReportMetric(float64(merged.Stats.InputEvents), "SDEs")
		b.StartTimer()
	}
}

// BenchmarkFig4_EventRecognition sweeps the working memory from 10 to
// 110 minutes in static and self-adaptive mode (Figure 4). The paper's
// findings to reproduce: recognition time grows roughly linearly with
// the window, the self-adaptive overhead is minimal, and recognition
// stays well under the window length (real-time).
func BenchmarkFig4_EventRecognition(b *testing.B) {
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{{"static", false}, {"adaptive", true}} {
		for _, wmMin := range []int{10, 30, 50, 70, 90, 110} {
			b.Run(fmt.Sprintf("%s/WM=%dmin", mode.name, wmMin), func(b *testing.B) {
				runFig4(b, wmMin, mode.adaptive)
			})
		}
	}
}

// BenchmarkFig5_OnlineEM measures the online EM step over the paper's
// ten simulated participants with four possible answers (Figure 5's
// workload: 1000 fused queries).
func BenchmarkFig5_OnlineEM(b *testing.B) {
	probs := []float64{0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9}
	labels := []string{"congestion", "no congestion", "accident", "roadworks"}
	sims := make([]*crowd.SimulatedParticipant, len(probs))
	for i, p := range probs {
		sims[i] = crowd.NewSimulatedParticipant(fmt.Sprintf("p%d", i+1), p, int64(i))
	}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := crowd.NewEstimator(crowd.EstimatorOptions{})
		for q := 0; q < 1000; q++ {
			truth := labels[rng.Intn(len(labels))]
			task := crowd.Task{ID: "t", Labels: labels}
			for _, sp := range sims {
				task.Answers = append(task.Answers, sp.Answer(labels, truth))
			}
			if _, err := est.Process(task); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6_QEE measures a full crowdsourcing query execution
// (map + reduce) per network type with the paper-calibrated latency
// profile on the virtual clock (Figure 6).
func BenchmarkFig6_QEE(b *testing.B) {
	for _, network := range qee.Networks {
		b.Run(network.String(), func(b *testing.B) {
			engine := qee.NewEngine(qee.Options{Seed: 2})
			var selected []crowd.Participant
			for i := 0; i < 5; i++ {
				id := fmt.Sprintf("w%d", i)
				if err := engine.Connect(qee.Device{
					Participant: crowd.Participant{ID: id},
					Network:     network,
					Respond:     func(qee.Query) (string, time.Duration) { return "yes", 0 },
				}); err != nil {
					b.Fatal(err)
				}
				selected = append(selected, crowd.Participant{ID: id})
			}
			query := qee.Query{ID: "q", Answers: []string{"yes", "no"}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Execute(context.Background(), query, selected); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9_GP measures the traffic modelling pass of Figure 9:
// kernel construction, fitting on the SCATS readings and predicting
// every junction of the street network.
func BenchmarkFig9_GP(b *testing.B) {
	g := citygraph.GenerateDublin(citygraph.DublinConfig{GridX: 20, GridY: 12, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	var obs []gp.Observation
	for i := 0; i < g.NumVertices()/4; i++ {
		obs = append(obs, gp.Observation{
			Vertex: rng.Intn(g.NumVertices()),
			Value:  200 + rng.Float64()*1200,
		})
	}
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gp.RegularizedLaplacian(g, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	kernel, err := gp.RegularizedLaplacian(g, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fit+predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg, err := gp.Fit(kernel, obs, 100)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := reg.PredictAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDatasetGeneration measures the synthetic stream generator
// (the stand-in for the 13 GB Dublin feed).
func BenchmarkDatasetGeneration(b *testing.B) {
	city := benchCity(b)
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		gen := city.Stream(0, 600)
		for {
			_, ok := gen.Next()
			if !ok {
				break
			}
			events++
		}
	}
	b.ReportMetric(float64(events)/float64(b.N), "SDEs/op")
}

// BenchmarkStepRatio measures the amortized cost of overlapping
// windows: with WM fixed at 20 min, smaller steps re-evaluate each SDE
// more often (an SDE is inside WM/step consecutive windows). This is
// the recognition-cost side of the Figure 2 trade-off whose benefit
// cmd/delaybench measures.
func BenchmarkStepRatio(b *testing.B) {
	runStepRatio(b, false)
}

// BenchmarkStepRatioFullRecompute is the same workload with the
// engine's incremental overlap caching disabled — the seed engine's
// behaviour, kept as the baseline the incremental path is measured
// against.
func BenchmarkStepRatioFullRecompute(b *testing.B) {
	runStepRatio(b, true)
}

func runStepRatio(b *testing.B, forceFull bool) {
	city := benchCity(b)
	const wmMin = 20
	for _, stepMin := range []int{20, 10, 5} {
		b.Run(fmt.Sprintf("WM=20min/step=%dmin", stepMin), func(b *testing.B) {
			reg, err := city.Registry(150)
			if err != nil {
				b.Fatal(err)
			}
			defs, err := traffic.Build(traffic.Config{Registry: reg})
			if err != nil {
				b.Fatal(err)
			}
			from := rtec.Time(7 * 3600)
			until := from + 3600 // one hour monitored
			sdes := city.Collect(from, until)
			wm := rtec.Time(wmMin * 60)
			step := rtec.Time(stepMin * 60)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				engine, err := rtec.NewEngine(defs, rtec.Options{
					WorkingMemory:      wm,
					Step:               step,
					ForceFullRecompute: forceFull,
				})
				if err != nil {
					b.Fatal(err)
				}
				cursor := 0
				b.StartTimer()
				for q := from + step; q <= until; q += step {
					for cursor < len(sdes) && sdes[cursor].Arrival <= q {
						if err := engine.Input(sdes[cursor].Event); err != nil {
							b.Fatal(err)
						}
						cursor++
					}
					if _, err := engine.Query(q); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(len(sdes)), "SDEs")
				b.StartTimer()
			}
		})
	}
}
