package citygraph

import (
	"math"
	"math/rand"

	"github.com/insight-dublin/insight/geo"
)

// DublinConfig parameterizes the synthetic Dublin street network
// generator. The defaults produce a network at roughly the granularity
// of the paper's Figure 8: an irregular street grid inside the Dublin
// bounding window with the river Liffey cutting east-west through the
// center, crossed by a limited number of bridges.
type DublinConfig struct {
	// Box is the bounding window the network is restricted to
	// (Section 7.3: "the network is restricted to a bounding window
	// of the size of the city"). Zero value means geo.Dublin.
	Box geo.Box
	// GridX, GridY are the junction grid dimensions before jitter
	// and pruning. Defaults: 36 x 22 (≈ 790 junctions, the same
	// order as the 966 SCATS sensors mapped onto it).
	GridX, GridY int
	// Bridges is the number of river crossings kept. Default: 8
	// (central Dublin has O(10) Liffey bridges).
	Bridges int
	// Jitter perturbs junction positions by up to this fraction of
	// the grid spacing, so streets are not perfectly rectilinear.
	// Default: 0.25.
	Jitter float64
	// PruneProb removes this fraction of interior grid edges to make
	// the street pattern irregular. Default: 0.12.
	PruneProb float64
	// DiagonalProb adds diagonal avenues across grid cells with this
	// probability. Default: 0.06.
	DiagonalProb float64
	// Seed drives the deterministic pseudo-random layout.
	Seed int64
}

func (c DublinConfig) withDefaults() DublinConfig {
	zero := geo.Box{}
	if c.Box == zero {
		c.Box = geo.Dublin
	}
	if c.GridX == 0 {
		c.GridX = 36
	}
	if c.GridY == 0 {
		c.GridY = 22
	}
	if c.Bridges == 0 {
		c.Bridges = 8
	}
	if c.Jitter == 0 {
		c.Jitter = 0.25
	}
	if c.PruneProb == 0 {
		c.PruneProb = 0.12
	}
	if c.DiagonalProb == 0 {
		c.DiagonalProb = 0.06
	}
	return c
}

// GenerateDublin builds the synthetic Dublin-like street network. The
// result is deterministic for a given configuration, always a single
// connected component, and lies entirely inside cfg.Box.
func GenerateDublin(cfg DublinConfig) *Graph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()

	nx, ny := cfg.GridX, cfg.GridY
	dLat := (cfg.Box.MaxLat - cfg.Box.MinLat) / float64(ny-1)
	dLon := (cfg.Box.MaxLon - cfg.Box.MinLon) / float64(nx-1)
	riverLat := cfg.Box.MinLat + (cfg.Box.MaxLat-cfg.Box.MinLat)*0.5

	// Lay the jittered junction grid.
	ids := make([][]int, ny)
	for y := 0; y < ny; y++ {
		ids[y] = make([]int, nx)
		for x := 0; x < nx; x++ {
			lat := cfg.Box.MinLat + float64(y)*dLat
			lon := cfg.Box.MinLon + float64(x)*dLon
			// Jitter interior junctions only, so the window edge stays tight.
			if x > 0 && x < nx-1 {
				lon += (r.Float64()*2 - 1) * cfg.Jitter * dLon
			}
			if y > 0 && y < ny-1 {
				lat += (r.Float64()*2 - 1) * cfg.Jitter * dLat
				// Keep junctions off the river line itself.
				if math.Abs(lat-riverLat) < dLat*0.3 {
					if lat >= riverLat {
						lat = riverLat + dLat*0.3
					} else {
						lat = riverLat - dLat*0.3
					}
				}
			}
			ids[y][x] = g.AddVertex(geo.At(lat, lon))
		}
	}

	crossesRiver := func(a, b geo.Point) bool {
		lo, hi := a.Lat, b.Lat
		if lo > hi {
			lo, hi = hi, lo
		}
		return lo < riverLat && hi > riverLat
	}

	// Pick the bridge columns: evenly spaced across the window with a
	// bias toward the center (central Dublin has the densest crossings).
	bridgeCols := make(map[int]bool)
	for i := 0; i < cfg.Bridges; i++ {
		frac := (float64(i) + 0.5) / float64(cfg.Bridges)
		// Squeeze toward the center with a smoothstep.
		frac = frac + 0.35*(0.5-frac)*math.Sin(frac*math.Pi)
		bridgeCols[int(frac*float64(nx-1))] = true
	}

	// Grid edges, pruned for irregularity. River crossings only at bridges.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				a, b := ids[y][x], ids[y][x+1]
				if !crossesRiver(g.Vertex(a).Pos, g.Vertex(b).Pos) && r.Float64() >= cfg.PruneProb {
					g.AddEdge(a, b)
				}
			}
			if y+1 < ny {
				a, b := ids[y][x], ids[y+1][x]
				river := crossesRiver(g.Vertex(a).Pos, g.Vertex(b).Pos)
				switch {
				case river && bridgeCols[x]:
					g.AddEdge(a, b) // a bridge
				case river:
					// no crossing here
				case r.Float64() >= cfg.PruneProb:
					g.AddEdge(a, b)
				}
			}
			// Occasional diagonal avenue.
			if x+1 < nx && y+1 < ny && r.Float64() < cfg.DiagonalProb {
				a, b := ids[y][x], ids[y+1][x+1]
				if !crossesRiver(g.Vertex(a).Pos, g.Vertex(b).Pos) {
					g.AddEdge(a, b)
				}
			}
		}
	}

	connectComponents(g)
	return g
}

// connectComponents stitches any stray components onto the largest one
// via their nearest junction pair, so the generated network is always
// connected (a disconnected graph would make the Laplacian kernel
// block-diagonal and the GP unable to propagate information).
func connectComponents(g *Graph) {
	for {
		comps := g.ConnectedComponents()
		if len(comps) <= 1 {
			return
		}
		main, stray := comps[0], comps[1]
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for _, a := range stray {
			pa := g.Vertex(a).Pos
			for _, b := range main {
				if d := geo.Distance(pa, g.Vertex(b).Pos); d < bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		g.AddEdge(bestA, bestB)
	}
}
