package citygraph

import (
	"fmt"
	"io"
	"math"

	"github.com/insight-dublin/insight/geo"
)

// RenderOptions controls RenderSVG.
type RenderOptions struct {
	// Width of the output image in pixels; height follows the
	// bounding box aspect ratio. Default 1200.
	Width int
	// Values holds an optional per-vertex scalar (e.g. GP traffic
	// flow estimates). When set, vertices are shaded green (low)
	// through yellow to red (high), reproducing Figure 9's "high
	// values obtain a red colour while low values obtain green".
	Values []float64
	// Sensors marks vertex IDs rendered as black dots, reproducing
	// Figure 8's "SCATS locations, depicted as black dots".
	Sensors []int
	// Highlights marks vertex IDs rendered as red rings — the
	// operator dashboard uses it for currently congested
	// intersections and active alerts.
	Highlights []int
	// Title is an optional caption.
	Title string
}

// RenderSVG writes the street network as an SVG document. It
// reproduces the visual style of the paper's Figures 7-9: grey street
// segments, optional black sensor dots and optional green-to-red
// value shading.
func (g *Graph) RenderSVG(w io.Writer, opts RenderOptions) error {
	width := opts.Width
	if width == 0 {
		width = 1200
	}
	if len(opts.Values) > 0 && len(opts.Values) != g.NumVertices() {
		return fmt.Errorf("citygraph: %d values for %d vertices", len(opts.Values), g.NumVertices())
	}

	box := g.boundingBox()
	dLat := box.MaxLat - box.MinLat
	dLon := box.MaxLon - box.MinLon
	if dLat == 0 || dLon == 0 {
		return fmt.Errorf("citygraph: degenerate bounding box %+v", box)
	}
	// Compress longitude by cos(lat) so the city is not stretched.
	aspect := dLat / (dLon * math.Cos(box.Center().Lat*math.Pi/180))
	height := int(float64(width) * aspect)
	margin := 20.0

	px := func(p geo.Point) (float64, float64) {
		x := margin + (p.Lon-box.MinLon)/dLon*(float64(width)-2*margin)
		y := margin + (box.MaxLat-p.Lat)/dLat*(float64(height)-2*margin)
		return x, y
	}

	var buf []byte
	put := func(format string, args ...any) {
		buf = append(buf, fmt.Sprintf(format, args...)...)
	}
	put(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height+30, width, height+30)
	put(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	if opts.Title != "" {
		put(`<text x="%d" y="%d" font-family="sans-serif" font-size="14">%s</text>`+"\n",
			10, height+20, opts.Title)
	}
	// Street segments.
	for _, e := range g.edges {
		x1, y1 := px(g.vertices[e.A].Pos)
		x2, y2 := px(g.vertices[e.B].Pos)
		put(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999" stroke-width="1"/>`+"\n",
			x1, y1, x2, y2)
	}
	// Value-shaded junctions.
	if len(opts.Values) > 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range opts.Values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		for i, v := range opts.Values {
			x, y := px(g.vertices[i].Pos)
			put(`<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, heatColor(v, lo, hi))
		}
	}
	// Sensor dots on top.
	for _, id := range opts.Sensors {
		if id < 0 || id >= len(g.vertices) {
			return fmt.Errorf("citygraph: sensor vertex %d out of range", id)
		}
		x, y := px(g.vertices[id].Pos)
		put(`<circle cx="%.1f" cy="%.1f" r="2.2" fill="black"/>`+"\n", x, y)
	}
	// Highlight rings above everything else.
	for _, id := range opts.Highlights {
		if id < 0 || id >= len(g.vertices) {
			return fmt.Errorf("citygraph: highlight vertex %d out of range", id)
		}
		x, y := px(g.vertices[id].Pos)
		put(`<circle cx="%.1f" cy="%.1f" r="7" fill="none" stroke="#d00" stroke-width="2.5"/>`+"\n", x, y)
	}
	put("</svg>\n")
	_, err := w.Write(buf)
	return err
}

// heatColor maps v in [lo, hi] onto a green → yellow → red gradient.
func heatColor(v, lo, hi float64) string {
	var t float64
	if hi > lo {
		t = (v - lo) / (hi - lo)
	}
	var rC, gC float64
	if t < 0.5 { // green to yellow
		rC, gC = 2*t, 1
	} else { // yellow to red
		rC, gC = 1, 2*(1-t)
	}
	return fmt.Sprintf("#%02x%02x00", int(rC*255+0.5), int(gC*255+0.5))
}

func (g *Graph) boundingBox() geo.Box {
	box := geo.Box{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
	for _, v := range g.vertices {
		box.MinLat = math.Min(box.MinLat, v.Pos.Lat)
		box.MaxLat = math.Max(box.MaxLat, v.Pos.Lat)
		box.MinLon = math.Min(box.MinLon, v.Pos.Lon)
		box.MaxLon = math.Max(box.MaxLon, v.Pos.Lon)
	}
	return box
}
