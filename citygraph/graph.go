// Package citygraph models a city street network as an undirected
// graph whose vertices are junctions, as required by the traffic
// modelling component (Section 6 of Artikis et al., EDBT 2014): "In
// the traffic graph G each junction corresponds to one vertex."
//
// The paper builds its graph from an OpenStreetMap extract of Dublin,
// restricted to a bounding window and split at junctions (Section 7.3,
// Figures 7-8). Offline, this package instead generates a
// deterministic Dublin-like street network (irregular grid, a river
// gap crossed by a small number of bridges, and diagonal avenues);
// the Gaussian Process machinery only depends on graph structure, so
// the substitution preserves the modelled behaviour.
package citygraph

import (
	"fmt"
	"math"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/internal/linalg"
)

// Vertex is a street junction.
type Vertex struct {
	ID  int
	Pos geo.Point
}

// Edge is an undirected street segment between two junction IDs.
type Edge struct {
	A, B int
}

// Graph is an undirected street network. Construct with NewGraph or
// GenerateDublin, then add edges with AddEdge.
type Graph struct {
	vertices []Vertex
	edges    []Edge
	adj      [][]int // adjacency lists, parallel to vertices
	edgeSet  map[[2]int]bool
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{edgeSet: make(map[[2]int]bool)}
}

// AddVertex appends a junction at pos and returns its ID.
func (g *Graph) AddVertex(pos geo.Point) int {
	id := len(g.vertices)
	g.vertices = append(g.vertices, Vertex{ID: id, Pos: pos})
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge connects junctions a and b. Self-loops and duplicate edges
// are ignored. It panics on out-of-range IDs.
func (g *Graph) AddEdge(a, b int) {
	if a < 0 || b < 0 || a >= len(g.vertices) || b >= len(g.vertices) {
		panic(fmt.Sprintf("citygraph: edge (%d, %d) out of range", a, b))
	}
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	if g.edgeSet[key] {
		return
	}
	g.edgeSet[key] = true
	g.edges = append(g.edges, Edge{A: a, B: b})
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// NumVertices returns the junction count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the street segment count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the junction with the given ID.
func (g *Graph) Vertex(id int) Vertex { return g.vertices[id] }

// Vertices returns all junctions (shared slice; do not modify).
func (g *Graph) Vertices() []Vertex { return g.vertices }

// Edges returns all street segments (shared slice; do not modify).
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the junctions adjacent to id (shared slice).
func (g *Graph) Neighbors(id int) []int { return g.adj[id] }

// Degree returns the number of streets meeting at junction id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// HasEdge reports whether junctions a and b are directly connected.
func (g *Graph) HasEdge(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return g.edgeSet[[2]int{a, b}]
}

// NearestVertex returns the junction closest to p by great-circle
// distance, and that distance in meters. The paper maps SCATS sensor
// locations "to their nearest neighbours within this street network"
// (Section 7.3). It returns (-1, +Inf) on an empty graph.
func (g *Graph) NearestVertex(p geo.Point) (int, float64) {
	best, bestDist := -1, math.Inf(1)
	for _, v := range g.vertices {
		if d := geo.Distance(p, v.Pos); d < bestDist {
			best, bestDist = v.ID, d
		}
	}
	return best, bestDist
}

// Laplacian returns the combinatorial Laplacian L = D − A of
// Section 6, where A is the adjacency matrix and D the diagonal degree
// matrix. The regularized Laplacian graph kernel of the traffic model
// is built from this matrix.
func (g *Graph) Laplacian() *linalg.Matrix {
	n := len(g.vertices)
	l := linalg.NewMatrix(n, n)
	for _, e := range g.edges {
		l.Add(e.A, e.B, -1)
		l.Add(e.B, e.A, -1)
		l.Add(e.A, e.A, 1)
		l.Add(e.B, e.B, 1)
	}
	return l
}

// ConnectedComponents returns the vertex sets of the connected
// components, largest first by size.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, len(g.vertices))
	var comps [][]int
	for start := range g.vertices {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	// Largest first (insertion sort; component counts are tiny).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// Connected reports whether the whole network is one component.
func (g *Graph) Connected() bool {
	if len(g.vertices) == 0 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}
