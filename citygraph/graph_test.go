package citygraph

import (
	"math"
	"strings"
	"testing"

	"github.com/insight-dublin/insight/geo"
)

func triangle() *Graph {
	g := NewGraph()
	a := g.AddVertex(geo.At(53.30, -6.30))
	b := g.AddVertex(geo.At(53.31, -6.30))
	c := g.AddVertex(geo.At(53.30, -6.29))
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	return g
}

func TestAddVertexEdgeBasics(t *testing.T) {
	g := triangle()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < 3; i++ {
		if g.Degree(i) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", i, g.Degree(i))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 0) {
		t.Error("no self loop expected")
	}
}

func TestAddEdgeDeduplication(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex(geo.At(0, 0))
	b := g.AddVertex(geo.At(1, 1))
	g.AddEdge(a, b)
	g.AddEdge(b, a) // duplicate, reversed
	g.AddEdge(a, a) // self loop, ignored
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Error("duplicate edge must not inflate degrees")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := NewGraph()
	g.AddVertex(geo.At(0, 0))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge must panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestNearestVertex(t *testing.T) {
	g := triangle()
	id, dist := g.NearestVertex(geo.At(53.3001, -6.3001))
	if id != 0 {
		t.Errorf("NearestVertex = %d, want 0", id)
	}
	if dist > 50 {
		t.Errorf("distance = %f m, want < 50 m", dist)
	}
	empty := NewGraph()
	if id, dist := empty.NearestVertex(geo.At(0, 0)); id != -1 || !math.IsInf(dist, 1) {
		t.Errorf("empty graph NearestVertex = (%d, %f)", id, dist)
	}
}

func TestLaplacianProperties(t *testing.T) {
	g := triangle()
	l := g.Laplacian()
	// Diagonal = degree; off-diagonal = -1 for edges.
	for i := 0; i < 3; i++ {
		if l.At(i, i) != 2 {
			t.Errorf("L[%d,%d] = %v, want 2", i, i, l.At(i, i))
		}
	}
	if l.At(0, 1) != -1 || l.At(1, 2) != -1 {
		t.Error("off-diagonal entries must be -1 for edges")
	}
	// Rows sum to zero.
	for i := 0; i < 3; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += l.At(i, j)
		}
		if sum != 0 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	if !l.Symmetric(0) {
		t.Error("Laplacian must be symmetric")
	}
	// L is PSD: xᵀLx >= 0 equals sum over edges of (x_a - x_b)².
	x := []float64{1, -2, 0.5}
	lx := l.MulVec(x)
	var quad float64
	for i := range x {
		quad += x[i] * lx[i]
	}
	want := (x[0]-x[1])*(x[0]-x[1]) + (x[1]-x[2])*(x[1]-x[2]) + (x[2]-x[0])*(x[2]-x[0])
	if math.Abs(quad-want) > 1e-12 {
		t.Errorf("xᵀLx = %v, want %v", quad, want)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex(geo.At(0, 0))
	b := g.AddVertex(geo.At(0, 1))
	c := g.AddVertex(geo.At(1, 0))
	d := g.AddVertex(geo.At(1, 1))
	e := g.AddVertex(geo.At(2, 2))
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	_ = d
	_ = e
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Errorf("largest component size = %d, want 3", len(comps[0]))
	}
	if g.Connected() {
		t.Error("graph with isolated vertices is not connected")
	}
	g.AddEdge(c, d)
	g.AddEdge(d, e)
	if !g.Connected() {
		t.Error("graph should now be connected")
	}
	if !NewGraph().Connected() {
		t.Error("empty graph is trivially connected")
	}
}

func TestGenerateDublinDeterministic(t *testing.T) {
	g1 := GenerateDublin(DublinConfig{Seed: 42})
	g2 := GenerateDublin(DublinConfig{Seed: 42})
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed must give the same network")
	}
	for i := 0; i < g1.NumVertices(); i++ {
		if g1.Vertex(i).Pos != g2.Vertex(i).Pos {
			t.Fatal("same seed must give the same junction positions")
		}
	}
	g3 := GenerateDublin(DublinConfig{Seed: 43})
	same := g1.NumEdges() == g3.NumEdges()
	if same {
		// Edge counts can coincide; check positions differ somewhere.
		differs := false
		for i := 0; i < g1.NumVertices(); i++ {
			if g1.Vertex(i).Pos != g3.Vertex(i).Pos {
				differs = true
				break
			}
		}
		if !differs {
			t.Error("different seeds should give different layouts")
		}
	}
}

func TestGenerateDublinStructure(t *testing.T) {
	g := GenerateDublin(DublinConfig{Seed: 1})
	if !g.Connected() {
		t.Fatal("generated network must be connected")
	}
	if g.NumVertices() < 500 {
		t.Errorf("network too small: %d junctions", g.NumVertices())
	}
	// All junctions inside (a slightly expanded) bounding window.
	box := geo.Dublin.Expand(0.002, 0.002)
	for _, v := range g.Vertices() {
		if !box.Contains(v.Pos) {
			t.Fatalf("junction %v outside Dublin window", v.Pos)
		}
	}
	// The river restricts crossings: count edges crossing the mid
	// latitude; it must be well below the grid width, but nonzero.
	riverLat := (geo.Dublin.MinLat + geo.Dublin.MaxLat) / 2
	crossings := 0
	for _, e := range g.Edges() {
		a, b := g.Vertex(e.A).Pos.Lat, g.Vertex(e.B).Pos.Lat
		if (a < riverLat) != (b < riverLat) {
			crossings++
		}
	}
	if crossings == 0 {
		t.Error("no river crossings at all — north and south city disconnected?")
	}
	cfg := DublinConfig{}.withDefaults()
	if crossings > cfg.Bridges+4 { // stitching may add a couple
		t.Errorf("too many river crossings: %d (bridges = %d)", crossings, cfg.Bridges)
	}
}

func TestGenerateDublinCustomSize(t *testing.T) {
	g := GenerateDublin(DublinConfig{GridX: 6, GridY: 4, Seed: 9})
	if g.NumVertices() != 24 {
		t.Errorf("NumVertices = %d, want 24", g.NumVertices())
	}
	if !g.Connected() {
		t.Error("small network must still be connected")
	}
}

func TestRenderSVG(t *testing.T) {
	g := GenerateDublin(DublinConfig{GridX: 10, GridY: 8, Seed: 3})
	values := make([]float64, g.NumVertices())
	for i := range values {
		values[i] = float64(i)
	}
	var sb strings.Builder
	err := g.RenderSVG(&sb, RenderOptions{
		Width:   400,
		Values:  values,
		Sensors: []int{0, 5, 10},
		Title:   "test render",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("output is not an SVG document")
	}
	if !strings.Contains(out, "<line") {
		t.Error("no street segments rendered")
	}
	if !strings.Contains(out, `fill="black"`) {
		t.Error("no sensor dots rendered")
	}
	if !strings.Contains(out, "test render") {
		t.Error("title missing")
	}
	// Value shading spans green to red.
	if !strings.Contains(out, "#00ff00") {
		t.Error("lowest value should render pure green")
	}
	if !strings.Contains(out, "#ff0000") {
		t.Error("highest value should render pure red")
	}
}

func TestRenderSVGErrors(t *testing.T) {
	g := triangle()
	var sb strings.Builder
	if err := g.RenderSVG(&sb, RenderOptions{Values: []float64{1}}); err == nil {
		t.Error("value/vertex count mismatch must error")
	}
	if err := g.RenderSVG(&sb, RenderOptions{Sensors: []int{99}}); err == nil {
		t.Error("out-of-range sensor must error")
	}
}

func TestHeatColor(t *testing.T) {
	if c := heatColor(0, 0, 1); c != "#00ff00" {
		t.Errorf("low = %s, want green", c)
	}
	if c := heatColor(1, 0, 1); c != "#ff0000" {
		t.Errorf("high = %s, want red", c)
	}
	if c := heatColor(0.5, 0, 1); c != "#ffff00" {
		t.Errorf("mid = %s, want yellow", c)
	}
	// Degenerate range must not divide by zero.
	if c := heatColor(5, 5, 5); c != "#00ff00" {
		t.Errorf("degenerate = %s, want green", c)
	}
}

func TestRenderSVGHighlights(t *testing.T) {
	g := triangle()
	var sb strings.Builder
	if err := g.RenderSVG(&sb, RenderOptions{Highlights: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `stroke="#d00"`) {
		t.Error("highlight ring not rendered")
	}
	if err := g.RenderSVG(&sb, RenderOptions{Highlights: []int{99}}); err == nil {
		t.Error("out-of-range highlight must error")
	}
}
