package rtec

import (
	"fmt"
	"sync"
	"time"

	"github.com/insight-dublin/insight/interval"
)

// Partitioned runs several independent RTEC engines over a partition
// of the input stream and evaluates them concurrently. The paper
// distributes Dublin CE recognition over the four geographical areas
// of the city — "each processor computed CEs concerning the SCATS
// sensors of one of the four areas of Dublin as well as CEs concerning
// the buses that go through that area" (Section 7.1).
type Partitioned struct {
	engines []*Engine
	assign  func(Event) int //state:transient routing function, supplied at construction
	// blockAssign, when set, routes block rows without materializing
	// per-row view Events: it is called once per block and the
	// returned function once per row, so column lookups are hoisted
	// out of the row loop. Must agree with assign on every row.
	//state:transient routing function, supplied at construction
	blockAssign func(*Block) func(int) int

	// scratch holds the per-partition row lists InputBlock routes
	// into; reused across calls (Input* calls must not be concurrent,
	// matching the single-writer contract of the underlying engines).
	scratch [][]int32 //state:transient reusable scratch
}

// NewPartitioned builds n engines sharing the (immutable) definition
// set. assign maps each input event to a partition in [0, n); events
// mapped outside that range are rejected by Input.
func NewPartitioned(defs *Definitions, opts Options, n int, assign func(Event) int) (*Partitioned, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rtec: partition count must be positive, got %d", n)
	}
	if assign == nil {
		return nil, fmt.Errorf("rtec: nil partition function")
	}
	p := &Partitioned{assign: assign}
	for i := 0; i < n; i++ {
		e, err := NewEngine(defs, opts)
		if err != nil {
			return nil, err
		}
		p.engines = append(p.engines, e)
	}
	return p, nil
}

// SetBlockAssign installs a block-level partition router used by
// InputBlock and InputBlockRows in place of the per-event assign
// function. f is called once per block; the function it returns maps a
// row index to a partition and must return, for every row, exactly the
// partition assign returns for that row's view Event — the router is a
// performance hook, not a semantic one. Pass nil to fall back to
// per-row Event routing.
func (p *Partitioned) SetBlockAssign(f func(*Block) func(int) int) { p.blockAssign = f }

// NumPartitions returns the number of engines.
func (p *Partitioned) NumPartitions() int { return len(p.engines) }

// Engine returns the i-th partition engine (for inspection; do not
// drive it directly while using the Partitioned wrapper concurrently).
func (p *Partitioned) Engine(i int) *Engine { return p.engines[i] }

// Input routes events to their partitions.
func (p *Partitioned) Input(events ...Event) error {
	for _, ev := range events {
		i := p.assign(ev)
		if i < 0 || i >= len(p.engines) {
			return fmt.Errorf("rtec: event %v assigned to invalid partition %d", ev, i)
		}
		if err := p.engines[i].Input(ev); err != nil {
			return err
		}
	}
	return nil
}

// InputBlock routes the rows of a columnar batch to their partitions.
// Row order is preserved within each partition, so the per-engine
// store ends up in exactly the state per-event routing produces.
func (p *Partitioned) InputBlock(b *Block) error {
	return p.inputBlock(b, nil)
}

// InputBlockRows is InputBlock restricted to the given rows of b, in
// the given order.
func (p *Partitioned) InputBlockRows(b *Block, rows []int32) error {
	return p.inputBlock(b, rows)
}

func (p *Partitioned) inputBlock(b *Block, rows []int32) error {
	if p.scratch == nil {
		p.scratch = make([][]int32, len(p.engines))
	}
	for i := range p.scratch {
		p.scratch[i] = p.scratch[i][:0]
	}
	var rowOf func(int) int
	if p.blockAssign != nil {
		rowOf = p.blockAssign(b)
	}
	route := func(r int32) error {
		var i int
		if rowOf != nil {
			i = rowOf(int(r))
		} else {
			i = p.assign(b.Event(int(r)))
		}
		if i < 0 || i >= len(p.engines) {
			return fmt.Errorf("rtec: event %v assigned to invalid partition %d", b.Event(int(r)), i)
		}
		p.scratch[i] = append(p.scratch[i], r)
		return nil
	}
	if rows == nil {
		n := b.Len()
		for r := 0; r < n; r++ {
			if err := route(int32(r)); err != nil {
				return err
			}
		}
	} else {
		for _, r := range rows {
			if err := route(r); err != nil {
				return err
			}
		}
	}
	for i, part := range p.scratch {
		if len(part) == 0 {
			continue
		}
		if err := p.engines[i].InputBlockRows(b, part); err != nil {
			return err
		}
	}
	return nil
}

// Query evaluates every partition at query time q, concurrently, and
// returns the per-partition results in partition order.
func (p *Partitioned) Query(q Time) ([]*Result, error) {
	results := make([]*Result, len(p.engines))
	errs := make([]error, len(p.engines))
	var wg sync.WaitGroup
	for i, e := range p.engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			results[i], errs[i] = e.Query(q)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MergeResults combines per-partition results for the same query time
// into a single view: fluent instances and derived events are unioned.
// Instances recognised in several partitions (which should not happen
// with a consistent partition function) have their intervals unioned.
func MergeResults(results []*Result) *Result {
	if len(results) == 0 {
		return nil
	}
	out := &Result{
		Q:       results[0].Q,
		Window:  results[0].Window,
		Fluents: make(map[string]map[KV]List),
		Derived: make(map[string][]Event),
	}
	for _, r := range results {
		for name, insts := range r.Fluents {
			m := out.Fluents[name]
			if m == nil {
				m = make(map[KV]List, len(insts))
				out.Fluents[name] = m
			}
			for kv, l := range insts {
				if existing, ok := m[kv]; ok {
					m[kv] = interval.Union(existing, l)
				} else {
					m[kv] = l
				}
			}
		}
		for typ, evs := range r.Derived {
			out.Derived[typ] = append(out.Derived[typ], evs...)
		}
		out.Fresh = append(out.Fresh, r.Fresh...)
		out.Stats.InputEvents += r.Stats.InputEvents
		out.Stats.DerivedEvents += r.Stats.DerivedEvents
		out.Stats.FluentPeriods += r.Stats.FluentPeriods
		out.Stats.AllocBytes += r.Stats.AllocBytes
		out.Stats.ResidentBytes += r.Stats.ResidentBytes
		out.Stats.EvalGoroutines += r.Stats.EvalGoroutines
		if r.Stats.Elapsed > out.Stats.Elapsed {
			out.Stats.Elapsed = r.Stats.Elapsed // parallel: max, not sum
		}
		// Rule costs are total work per rule, summed across
		// partitions (unlike Elapsed, which is parallel wall time).
		if r.RuleCosts != nil {
			if out.RuleCosts == nil {
				out.RuleCosts = make(map[string]time.Duration, len(r.RuleCosts))
			}
			for name, d := range r.RuleCosts {
				out.RuleCosts[name] += d
			}
		}
	}
	for typ := range out.Derived {
		sortEvents(out.Derived[typ])
	}
	sortEvents(out.Fresh)
	return out
}
