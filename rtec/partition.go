package rtec

import (
	"fmt"
	"sync"
	"time"

	"github.com/insight-dublin/insight/interval"
)

// Partitioned runs several independent RTEC engines over a partition
// of the input stream and evaluates them concurrently. The paper
// distributes Dublin CE recognition over the four geographical areas
// of the city — "each processor computed CEs concerning the SCATS
// sensors of one of the four areas of Dublin as well as CEs concerning
// the buses that go through that area" (Section 7.1).
type Partitioned struct {
	engines []*Engine
	assign  func(Event) int
}

// NewPartitioned builds n engines sharing the (immutable) definition
// set. assign maps each input event to a partition in [0, n); events
// mapped outside that range are rejected by Input.
func NewPartitioned(defs *Definitions, opts Options, n int, assign func(Event) int) (*Partitioned, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rtec: partition count must be positive, got %d", n)
	}
	if assign == nil {
		return nil, fmt.Errorf("rtec: nil partition function")
	}
	p := &Partitioned{assign: assign}
	for i := 0; i < n; i++ {
		e, err := NewEngine(defs, opts)
		if err != nil {
			return nil, err
		}
		p.engines = append(p.engines, e)
	}
	return p, nil
}

// NumPartitions returns the number of engines.
func (p *Partitioned) NumPartitions() int { return len(p.engines) }

// Engine returns the i-th partition engine (for inspection; do not
// drive it directly while using the Partitioned wrapper concurrently).
func (p *Partitioned) Engine(i int) *Engine { return p.engines[i] }

// Input routes events to their partitions.
func (p *Partitioned) Input(events ...Event) error {
	for _, ev := range events {
		i := p.assign(ev)
		if i < 0 || i >= len(p.engines) {
			return fmt.Errorf("rtec: event %v assigned to invalid partition %d", ev, i)
		}
		if err := p.engines[i].Input(ev); err != nil {
			return err
		}
	}
	return nil
}

// Query evaluates every partition at query time q, concurrently, and
// returns the per-partition results in partition order.
func (p *Partitioned) Query(q Time) ([]*Result, error) {
	results := make([]*Result, len(p.engines))
	errs := make([]error, len(p.engines))
	var wg sync.WaitGroup
	for i, e := range p.engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			results[i], errs[i] = e.Query(q)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MergeResults combines per-partition results for the same query time
// into a single view: fluent instances and derived events are unioned.
// Instances recognised in several partitions (which should not happen
// with a consistent partition function) have their intervals unioned.
func MergeResults(results []*Result) *Result {
	if len(results) == 0 {
		return nil
	}
	out := &Result{
		Q:       results[0].Q,
		Window:  results[0].Window,
		Fluents: make(map[string]map[KV]List),
		Derived: make(map[string][]Event),
	}
	for _, r := range results {
		for name, insts := range r.Fluents {
			m := out.Fluents[name]
			if m == nil {
				m = make(map[KV]List, len(insts))
				out.Fluents[name] = m
			}
			for kv, l := range insts {
				if existing, ok := m[kv]; ok {
					m[kv] = interval.Union(existing, l)
				} else {
					m[kv] = l
				}
			}
		}
		for typ, evs := range r.Derived {
			out.Derived[typ] = append(out.Derived[typ], evs...)
		}
		out.Fresh = append(out.Fresh, r.Fresh...)
		out.Stats.InputEvents += r.Stats.InputEvents
		out.Stats.DerivedEvents += r.Stats.DerivedEvents
		out.Stats.FluentPeriods += r.Stats.FluentPeriods
		out.Stats.AllocBytes += r.Stats.AllocBytes
		out.Stats.EvalGoroutines += r.Stats.EvalGoroutines
		if r.Stats.Elapsed > out.Stats.Elapsed {
			out.Stats.Elapsed = r.Stats.Elapsed // parallel: max, not sum
		}
		// Rule costs are total work per rule, summed across
		// partitions (unlike Elapsed, which is parallel wall time).
		if r.RuleCosts != nil {
			if out.RuleCosts == nil {
				out.RuleCosts = make(map[string]time.Duration, len(r.RuleCosts))
			}
			for name, d := range r.RuleCosts {
				out.RuleCosts[name] += d
			}
		}
	}
	for typ := range out.Derived {
		sortEvents(out.Derived[typ])
	}
	sortEvents(out.Fresh)
	return out
}
