package rtec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// colEquivDefs exercises every window access path a store must serve —
// Rows, RowsForKey, EventKeys, the materializing Events/EventsForKey
// compatibility API, and all accessor kinds — plus a second stratum
// reading derived events through the Rows view.
func colEquivDefs(t testing.TB) *Definitions {
	t.Helper()
	defs, err := NewBuilder().
		DeclareSDE("reading").
		Simple(SimpleFluent{
			Name:   "alert",
			Inputs: []string{"reading"},
			Transitions: func(ctx *Context) []Transition {
				var out []Transition
				for _, key := range ctx.EventKeys("reading") {
					rows := ctx.RowsForKey("reading", key)
					for i := 0; i < rows.Len(); i++ {
						e := rows.At(i)
						level, _ := e.Float("level")
						alarm, _ := e.Bool("alarm")
						zone, _ := e.Str("zone")
						count, _ := e.Int("count")
						if level > 0.5 && alarm {
							out = append(out, InitiateAt(key, rows.TimeAt(i)))
						}
						if zone == "north" && count >= 0 {
							out = append(out, TerminateAt(key, rows.TimeAt(i)))
						}
					}
				}
				return out
			},
		}).
		Event(EventRule{
			Name:   "spike",
			Inputs: []string{"reading"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				rows := ctx.Rows("reading")
				for i := 0; i < rows.Len(); i++ {
					if level, _ := rows.At(i).Float("level"); level > 0.9 {
						out = append(out, NewEvent("spike", rows.TimeAt(i), rows.KeyAt(i), nil))
					}
				}
				return out
			},
		}).
		Event(EventRule{
			Name:   "burst",
			Inputs: []string{"spike"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				for _, key := range ctx.EventKeys("spike") {
					evs := ctx.EventsForKey("spike", key)
					for i := 1; i < len(evs); i++ {
						if evs[i].Time-evs[i-1].Time <= 5 {
							out = append(out, NewEvent("burst", evs[i].Time, key, nil))
						}
					}
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

// equivRow is one generated SDE with a possibly partial, possibly
// mixed-kind attribute set — the worst case for the columnar resident
// layout (Present masks, ColIntGo, promotion to ColAny).
type equivRow struct {
	t     int64
	key   string
	attrs map[string]any
}

func randomEquivRow(rng *rand.Rand, span int64) equivRow {
	r := equivRow{
		t:     rng.Int63n(span),
		key:   fmt.Sprintf("k%d", rng.Intn(5)),
		attrs: map[string]any{},
	}
	if rng.Intn(10) > 0 { // occasionally missing entirely
		r.attrs["level"] = float64(rng.Intn(100)) / 100
	}
	if rng.Intn(10) > 0 {
		r.attrs["alarm"] = rng.Intn(2) == 0
	}
	if rng.Intn(10) > 0 {
		r.attrs["zone"] = []string{"north", "south", "east"}[rng.Intn(3)]
	}
	switch rng.Intn(4) { // mixed integer kinds force ColAny promotion
	case 0:
		r.attrs["count"] = int64(rng.Intn(10) - 5)
	case 1:
		r.attrs["count"] = rng.Intn(10) - 5
	case 2:
		r.attrs["count"] = float64(rng.Intn(10) - 5)
	}
	return r
}

func (r equivRow) event() Event {
	var attrs map[string]any
	if len(r.attrs) > 0 {
		attrs = r.attrs
	}
	return NewEvent("reading", Time(r.t), r.key, attrs)
}

// rowsToBlock columnarizes the rows the way a generic transport layer
// would: one column per attribute name, kinds from the first value
// seen (mismatches promote to the boxed column), absent attributes
// masked. withKIdx optionally dictionary-encodes the keys.
func rowsToBlock(rows []equivRow, withKIdx bool) *Block {
	b := &Block{Type: "reading"}
	if withKIdx {
		kdict := map[string]uint32{}
		for _, r := range rows {
			kid, ok := kdict[r.key]
			if !ok {
				kid = uint32(len(b.KDict))
				kdict[r.key] = kid
				b.KDict = append(b.KDict, r.key)
			}
			b.KIdx = append(b.KIdx, kid)
		}
	}
	for i, r := range rows {
		b.Times = append(b.Times, r.t)
		b.Keys = append(b.Keys, r.key)
		for name, v := range r.attrs {
			//lint:allow nodeterminism column order is layout only; recognition reads columns by name
			ci := b.colIndex(name)
			if ci < 0 {
				b.Cols = append(b.Cols, newColFor(name, v, i))
				continue
			}
			b.Cols[ci].appendCell(v, true, i)
		}
		for ci := range b.Cols {
			c := &b.Cols[ci]
			if n := colLen(c); n <= i {
				c.ensurePresent(n)
				c.Present = append(c.Present, false)
				c.appendZero()
			}
		}
	}
	return b
}

// equivEngines builds one engine per (store kind, delivery mode)
// combination.
type equivEngine struct {
	name  string
	e     *Engine
	block bool // deliver via InputBlock rather than Input
	kidx  bool // blocks carry a key dictionary
}

func newEquivEngines(t testing.TB, opts Options) []equivEngine {
	t.Helper()
	mk := func(kind StoreKind) *Engine {
		o := opts
		o.Store = kind
		e, err := NewEngine(colEquivDefs(t), o)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return []equivEngine{
		{name: "row/item", e: mk(StoreRow)},
		{name: "row/block", e: mk(StoreRow), block: true, kidx: true},
		{name: "column/item", e: mk(StoreColumn)},
		{name: "column/block", e: mk(StoreColumn), block: true, kidx: true},
		{name: "column/block-nokidx", e: mk(StoreColumn), block: true},
	}
}

func deliverChunk(t testing.TB, ee equivEngine, chunk []equivRow) {
	t.Helper()
	if ee.block {
		if err := ee.e.InputBlock(rowsToBlock(chunk, ee.kidx)); err != nil {
			t.Fatal(err)
		}
		return
	}
	evs := make([]Event, len(chunk))
	for i, r := range chunk {
		evs[i] = r.event()
	}
	if err := ee.e.Input(evs...); err != nil {
		t.Fatal(err)
	}
}

// compareAt queries every engine at q and demands identical
// recognition output, stats and store snapshots.
func compareAt(t testing.TB, engines []equivEngine, q Time, label string) {
	t.Helper()
	var ref *Result
	var refSnap *EngineSnapshot
	for _, ee := range engines {
		res, err := ee.e.Query(q)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, ee.name, err)
		}
		snap, err := ee.e.Snapshot()
		if err != nil {
			t.Fatalf("%s: %s: snapshot: %v", label, ee.name, err)
		}
		if ref == nil {
			ref, refSnap = res, snap
			continue
		}
		if !reflect.DeepEqual(ref.Fluents, res.Fluents) {
			t.Fatalf("%s: %s fluents differ from %s:\nref: %v\ngot: %v",
				label, ee.name, engines[0].name, ref.Fluents, res.Fluents)
		}
		if !reflect.DeepEqual(ref.Derived, res.Derived) {
			t.Fatalf("%s: %s derived events differ from %s:\nref: %v\ngot: %v",
				label, ee.name, engines[0].name, ref.Derived, res.Derived)
		}
		if !reflect.DeepEqual(ref.Fresh, res.Fresh) {
			t.Fatalf("%s: %s fresh events differ from %s", label, ee.name, engines[0].name)
		}
		if ref.Stats.InputEvents != res.Stats.InputEvents {
			t.Fatalf("%s: %s input events = %d, %s = %d",
				label, ee.name, res.Stats.InputEvents, engines[0].name, ref.Stats.InputEvents)
		}
		if !reflect.DeepEqual(refSnap, snap) {
			t.Fatalf("%s: %s snapshot differs from %s:\nref: %+v\ngot: %+v",
				label, ee.name, engines[0].name, refSnap, snap)
		}
	}
}

// TestColumnStoreMatchesEventStore is the randomized store-equivalence
// property: the same delayed, out-of-order stream delivered per-item
// and as columnar blocks (with and without key dictionaries) into
// row-resident and column-resident engines must produce bit-identical
// recognition output and bit-identical snapshots at every query — over
// enough windows that eviction, segment compaction and the overlap
// merge all trigger repeatedly.
func TestColumnStoreMatchesEventStore(t *testing.T) {
	const (
		wm   = Time(60)
		step = Time(20)
		span = int64(600)
	)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		engines := newEquivEngines(t, Options{WorkingMemory: wm, Step: step, RuleWorkers: 1})

		q := Time(0)
		clock := int64(0)
		for clock < span {
			n := 1 + rng.Intn(8)
			chunk := make([]equivRow, n)
			for i := range chunk {
				r := randomEquivRow(rng, 40)
				// Cluster around the advancing clock with jitter both
				// ways: late arrivals, ties and out-of-order rows.
				r.t += clock - 20
				if r.t < 0 {
					r.t = 0
				}
				chunk[i] = r
			}
			for _, ee := range engines {
				deliverChunk(t, ee, chunk)
			}
			clock += int64(rng.Intn(20))
			if nq := Time(clock); nq >= q+step {
				q = nq
				compareAt(t, engines, q, fmt.Sprintf("trial %d q=%d", trial, q))
			}
		}
	}
}

// FuzzMergeBlock drives the same randomized equivalence from fuzzed
// bytes: each 4-byte group is one row (time delta, key, attribute
// selector, value), every third chunk boundary queries and compares.
// This pins insertRows — bulk column append, order merge, per-key
// filing, with and without KIdx — to row-by-row insert on both stores.
func FuzzMergeBlock(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 50, 1, 2, 3, 9, 9, 0xff, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{200, 5, 7, 9, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		engines := newEquivEngines(t, Options{WorkingMemory: 30, Step: 10, RuleWorkers: 1})
		clock := int64(0)
		q := Time(0)
		chunks := 0
		for off := 0; off+4 <= len(data) && chunks < 64; off += 4 {
			n := 1 + int(data[off])%6
			chunk := make([]equivRow, 0, n)
			for i := 0; i < n && off+4 <= len(data); i++ {
				b0, b1, b2, b3 := data[off], data[off+1], data[off+2], data[off+3]
				r := equivRow{
					t:     clock - 15 + int64(b0)%30,
					key:   fmt.Sprintf("k%d", b1%4),
					attrs: map[string]any{},
				}
				if r.t < 0 {
					r.t = 0
				}
				if b2&1 != 0 {
					r.attrs["level"] = float64(b3) / 255
				}
				if b2&2 != 0 {
					r.attrs["alarm"] = b3&1 != 0
				}
				if b2&4 != 0 {
					r.attrs["zone"] = []string{"north", "south"}[b3%2]
				}
				switch b2 & 24 {
				case 8:
					r.attrs["count"] = int64(b3) - 128
				case 16:
					r.attrs["count"] = int(b3) - 128
				}
				chunk = append(chunk, r)
				off += 4
			}
			off -= 4 // outer loop advances once more
			for _, ee := range engines {
				deliverChunk(t, ee, chunk)
			}
			clock += int64(data[off%len(data)]) % 12
			chunks++
			if nq := Time(clock); chunks%3 == 0 && nq > q {
				q = nq
				compareAt(t, engines, q, fmt.Sprintf("chunk %d q=%d", chunks, q))
			}
		}
	})
}

// TestSnapshotRoundTripLateMin pins the dirty watermark across
// save/restore for every (source store, destination store) pair: a
// snapshot taken after late arrivals must restore — into either store
// kind — with the watermark intact, so the first post-restore query
// recomputes the late region exactly like the uninterrupted engine.
func TestSnapshotRoundTripLateMin(t *testing.T) {
	kinds := []StoreKind{StoreRow, StoreColumn}
	for _, src := range kinds {
		for _, dst := range kinds {
			t.Run(fmt.Sprintf("%v-to-%v", src, dst), func(t *testing.T) {
				opts := Options{WorkingMemory: 40, Step: 10, RuleWorkers: 1}
				opts.Store = src
				e, err := NewEngine(colEquivDefs(t), opts)
				if err != nil {
					t.Fatal(err)
				}
				feed := func(e *Engine, rows ...equivRow) {
					t.Helper()
					for _, r := range rows {
						if err := e.Input(r.event()); err != nil {
							t.Fatal(err)
						}
					}
				}
				feed(e,
					equivRow{t: 5, key: "k1", attrs: map[string]any{"level": 0.95, "alarm": true}},
					equivRow{t: 12, key: "k2", attrs: map[string]any{"level": 0.2, "count": 3}},
				)
				if _, err := e.Query(20); err != nil {
					t.Fatal(err)
				}
				// Late arrivals: at or before the last query time.
				feed(e,
					equivRow{t: 8, key: "k1", attrs: map[string]any{"zone": "north", "count": int64(1)}},
					equivRow{t: 15, key: "k3", attrs: map[string]any{"level": 0.99}},
				)
				wantFloor := e.store.dirtyFloor(map[string]bool{"reading": true})
				if wantFloor != 8 {
					t.Fatalf("source dirty floor = %d, want 8", int64(wantFloor))
				}

				snap, err := e.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				ropts := opts
				ropts.Store = dst
				r, err := NewEngine(colEquivDefs(t), ropts)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Restore(snap); err != nil {
					t.Fatal(err)
				}
				if got := r.store.dirtyFloor(map[string]bool{"reading": true}); got != wantFloor {
					t.Fatalf("restored dirty floor = %d, want %d", int64(got), int64(wantFloor))
				}
				// Restored snapshots are idempotent across store kinds.
				snap2, err := r.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(snap, snap2) {
					t.Fatalf("snapshot changed across restore:\nbefore: %+v\nafter:  %+v", snap, snap2)
				}
				// The next query incorporates the late region
				// identically on both engines.
				a, err := e.Query(30)
				if err != nil {
					t.Fatal(err)
				}
				b, err := r.Query(30)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Fluents, b.Fluents) || !reflect.DeepEqual(a.Derived, b.Derived) {
					t.Fatalf("post-restore query differs:\nsource:   %v %v\nrestored: %v %v",
						a.Fluents, a.Derived, b.Fluents, b.Derived)
				}
			})
		}
	}
}
