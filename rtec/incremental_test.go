package rtec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/insight-dublin/insight/interval"
)

// incDefs builds a definition set exercising every incremental-path
// regime: pointwise rules, a lookahead fluent, a lookback pair rule, a
// derived-event reader (head-recompute region), a static fluent, a
// multi-valued fluent, and a non-local rule that must always fall back
// to full recomputation.
func incDefs(t *testing.T) *Definitions {
	t.Helper()
	const (
		la = 7 // lookahead of "look"
		lb = 5 // lookback of "pair"
	)
	b := NewBuilder().DeclareSDE("a", "b")
	b.Simple(SimpleFluent{
		Name:     "p",
		Inputs:   []string{"a"},
		Locality: Pointwise(),
		Transitions: func(ctx *Context) []Transition {
			var out []Transition
			for _, e := range ctx.Events("a") {
				if v, _ := e.Int("v"); v > 0 {
					out = append(out, InitiateAt(e.Key, e.Time))
				} else {
					out = append(out, TerminateAt(e.Key, e.Time))
				}
			}
			return out
		},
	})
	b.Simple(SimpleFluent{
		Name:     "look",
		Inputs:   []string{"a", "b"},
		Locality: LocalWindow(0, la),
		Transitions: func(ctx *Context) []Transition {
			var out []Transition
			for _, e := range ctx.Events("a") {
				confirmed := false
				for _, c := range ctx.EventsForKey("b", e.Key) {
					if dt := c.Time - e.Time; dt > 0 && dt <= la {
						confirmed = true
						break
					}
				}
				if confirmed {
					out = append(out, InitiateAt(e.Key, e.Time))
				} else {
					out = append(out, TerminateAt(e.Key, e.Time))
				}
			}
			return out
		},
	})
	b.Simple(SimpleFluent{
		Name:     "multi",
		Inputs:   []string{"a"},
		Locality: Pointwise(),
		Transitions: func(ctx *Context) []Transition {
			var out []Transition
			for _, e := range ctx.Events("a") {
				val := "lo"
				if v, _ := e.Int("v"); v > 2 {
					val = "hi"
				}
				out = append(out, Transition{Kind: Initiate, Key: e.Key, Value: val, Time: e.Time})
			}
			return out
		},
	})
	b.Simple(SimpleFluent{
		// Non-local: pairs consecutive "b" events at unbounded gaps.
		Name:   "nonlocal",
		Inputs: []string{"b"},
		Transitions: func(ctx *Context) []Transition {
			var out []Transition
			for _, key := range ctx.EventKeys("b") {
				evs := ctx.EventsForKey("b", key)
				for i := 1; i < len(evs); i++ {
					pv, _ := evs[i-1].Int("v")
					cv, _ := evs[i].Int("v")
					if cv > pv {
						out = append(out, InitiateAt(key, evs[i].Time))
					} else {
						out = append(out, TerminateAt(key, evs[i].Time))
					}
				}
			}
			return out
		},
	})
	b.Event(EventRule{
		Name:     "pair",
		Inputs:   []string{"a"},
		Locality: LocalWindow(lb, 0),
		Derive: func(ctx *Context) []Event {
			var out []Event
			for _, key := range ctx.EventKeys("a") {
				evs := ctx.EventsForKey("a", key)
				for i := 1; i < len(evs); i++ {
					if dt := evs[i].Time - evs[i-1].Time; dt > 0 && dt < lb {
						out = append(out, NewEvent("pair", evs[i].Time, key, nil))
					}
				}
			}
			return out
		},
	})
	b.Event(EventRule{
		// Reads a derived event type with lookback (pair has valueH =
		// lb), so its splice exercises the head-recompute region.
		Name:     "reader",
		Inputs:   []string{"pair", "p"},
		Locality: Pointwise(),
		Derive: func(ctx *Context) []Event {
			var out []Event
			for _, e := range ctx.Events("pair") {
				if ctx.HoldsAt("p", e.Key, e.Time) {
					out = append(out, NewEvent("reader", e.Time, e.Key, nil))
				}
			}
			return out
		},
	})
	b.Static(StaticFluent{
		Name:   "s",
		Inputs: []string{"p", "look"},
		HoldsFor: func(ctx *Context) map[KV]IntervalList {
			out := make(map[KV]IntervalList)
			for kv, l := range ctx.FluentInstances("p") {
				if o := ctx.Intervals("look", kv.Key); len(o) > 0 {
					if i := interval.Intersect(l, o); len(i) > 0 {
						out[KV{Key: kv.Key, Value: TrueValue}] = i
					}
				}
			}
			return out
		},
	})
	defs, err := b.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return defs
}

type timedEvent struct {
	ev      Event
	arrival Time
}

// randomStream generates a delayed, out-of-order stream: occurrence
// times over [1, horizon], arrival delays up to maxDelay (some events
// arrive before their occurrence time, i.e. early).
func randomStream(rng *rand.Rand, horizon Time, n int, maxDelay Time) []timedEvent {
	keys := []string{"k0", "k1", "k2", "k3"}
	types := []string{"a", "b"}
	out := make([]timedEvent, 0, n)
	for i := 0; i < n; i++ {
		t := Time(rng.Int63n(int64(horizon))) + 1
		delay := Time(rng.Int63n(int64(maxDelay+1))) - 2 // occasionally early
		if delay < 0 && rng.Intn(2) == 0 {
			delay = 0
		}
		out = append(out, timedEvent{
			ev: NewEvent(types[rng.Intn(len(types))], t, keys[rng.Intn(len(keys))],
				map[string]any{"v": int64(rng.Intn(6))}),
			arrival: t + delay,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].arrival < out[j].arrival })
	return out
}

func canonEvents(evs []Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = fmt.Sprintf("%s|%s|%d|%v", e.Type, e.Key, int64(e.Time), e.Attrs)
	}
	sort.Strings(out)
	return out
}

// TestIncrementalEquivalence drives identical seeded random streams
// through the full-recompute and incremental engines across several
// step/WM ratios and asserts identical results at every query time.
func TestIncrementalEquivalence(t *testing.T) {
	const wm = Time(40)
	for _, step := range []Time{wm, wm / 2, wm / 4} {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("step=%d/seed=%d", step, seed), func(t *testing.T) {
				defs := incDefs(t)
				mkEngine := func(force bool, workers int) *Engine {
					e, err := NewEngine(defs, Options{
						WorkingMemory:      wm,
						Step:               step,
						ForceFullRecompute: force,
						RuleWorkers:        workers,
					})
					if err != nil {
						t.Fatalf("engine: %v", err)
					}
					return e
				}
				full := mkEngine(true, 1)
				inc := mkEngine(false, 1)
				par := mkEngine(false, 4)
				engines := []*Engine{full, inc, par}

				stream := randomStream(rand.New(rand.NewSource(seed)), 10*wm, 600, step+5)
				cursor := 0
				for q := wm; q <= 10*wm; q += step {
					for cursor < len(stream) && stream[cursor].arrival <= q {
						for _, e := range engines {
							if err := e.Input(stream[cursor].ev); err != nil {
								t.Fatalf("input: %v", err)
							}
						}
						cursor++
					}
					want, err := full.Query(q)
					if err != nil {
						t.Fatalf("full query(%d): %v", q, err)
					}
					for name, e := range map[string]*Engine{"incremental": inc, "parallel": par} {
						got, err := e.Query(q)
						if err != nil {
							t.Fatalf("%s query(%d): %v", name, q, err)
						}
						if !reflect.DeepEqual(got.Fluents, want.Fluents) {
							t.Fatalf("%s fluents diverge at q=%d:\n got %v\nwant %v", name, q, got.Fluents, want.Fluents)
						}
						for typ := range want.Derived {
							g, w := canonEvents(got.Derived[typ]), canonEvents(want.Derived[typ])
							if !reflect.DeepEqual(g, w) {
								t.Fatalf("%s derived %q diverge at q=%d:\n got %v\nwant %v", name, typ, q, g, w)
							}
						}
						if len(got.Derived) != len(want.Derived) {
							t.Fatalf("%s derived type sets diverge at q=%d", name, q)
						}
						g, w := canonEvents(got.Fresh), canonEvents(want.Fresh)
						if !reflect.DeepEqual(g, w) {
							t.Fatalf("%s fresh diverge at q=%d:\n got %v\nwant %v", name, q, g, w)
						}
						if got.Stats.InputEvents != want.Stats.InputEvents {
							t.Fatalf("%s input count diverges at q=%d: got %d want %d",
								name, q, got.Stats.InputEvents, want.Stats.InputEvents)
						}
					}
				}
			})
		}
	}
}

// TestSpliceEngages asserts the incremental path actually narrows what
// a local rule re-reads on overlapping windows — guarding against a
// silent always-full fallback.
func TestSpliceEngages(t *testing.T) {
	var seen []int
	b := NewBuilder().DeclareSDE("a")
	b.Simple(SimpleFluent{
		Name:     "f",
		Inputs:   []string{"a"},
		Locality: Pointwise(),
		Transitions: func(ctx *Context) []Transition {
			seen = append(seen, len(ctx.Events("a")))
			var out []Transition
			for _, e := range ctx.Events("a") {
				out = append(out, InitiateAt(e.Key, e.Time))
			}
			return out
		},
	})
	defs, err := b.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e, err := NewEngine(defs, Options{WorkingMemory: 100, Step: 10})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := Time(1); i <= 100; i++ {
		if err := e.Input(NewEvent("a", i, "k", nil)); err != nil {
			t.Fatalf("input: %v", err)
		}
	}
	if _, err := e.Query(100); err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(seen) != 1 || seen[0] != 100 {
		t.Fatalf("first query should see the full window, saw %v", seen)
	}
	// Slide by 10 with no new events: the rule must only re-read the
	// fresh tail, not the 90-point overlap.
	seen = nil
	if _, err := e.Query(110); err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(seen) != 1 || seen[0] >= 50 {
		t.Fatalf("overlapping query should re-read only the tail, saw %v", seen)
	}
}

// TestInputAtomic verifies that a batch containing an undeclared event
// type is rejected without ingesting any of its events.
func TestInputAtomic(t *testing.T) {
	defs := incDefs(t)
	e, err := NewEngine(defs, Options{WorkingMemory: 100})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	err = e.Input(
		NewEvent("a", 10, "k0", map[string]any{"v": int64(3)}),
		NewEvent("bogus", 11, "k0", nil),
		NewEvent("a", 12, "k0", map[string]any{"v": int64(3)}),
	)
	if err == nil {
		t.Fatal("expected error for undeclared type")
	}
	res, err := e.Query(50)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Stats.InputEvents != 0 {
		t.Fatalf("rejected batch leaked %d events into the store", res.Stats.InputEvents)
	}
}

// TestMergeResultsSumsStats verifies profile totals still sum across
// partitions with the new Stats fields.
func TestMergeResultsSumsStats(t *testing.T) {
	mk := func(alloc uint64, gor int, cost time.Duration) *Result {
		return &Result{
			Fluents: map[string]map[KV]List{},
			Derived: map[string][]Event{},
			Stats:   Stats{InputEvents: 1, AllocBytes: alloc, EvalGoroutines: gor},
			RuleCosts: map[string]time.Duration{
				"r": cost,
			},
		}
	}
	m := MergeResults([]*Result{mk(100, 2, time.Millisecond), mk(250, 3, 2*time.Millisecond)})
	if m.Stats.AllocBytes != 350 {
		t.Fatalf("AllocBytes = %d, want 350", m.Stats.AllocBytes)
	}
	if m.Stats.EvalGoroutines != 5 {
		t.Fatalf("EvalGoroutines = %d, want 5", m.Stats.EvalGoroutines)
	}
	if m.RuleCosts["r"] != 3*time.Millisecond {
		t.Fatalf("RuleCosts[r] = %v, want 3ms", m.RuleCosts["r"])
	}
	if m.Stats.InputEvents != 2 {
		t.Fatalf("InputEvents = %d, want 2", m.Stats.InputEvents)
	}
}

// TestParallelRuleCosts runs many same-stratum rules concurrently under
// Profile and checks every rule's cost is recorded (the map writes are
// mutex-guarded) and the goroutine count is reported.
func TestParallelRuleCosts(t *testing.T) {
	b := NewBuilder().DeclareSDE("a")
	const n = 12
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		b.Event(EventRule{
			Name:   name,
			Inputs: []string{"a"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				for _, e := range ctx.Events("a") {
					out = append(out, NewEvent(name, e.Time, e.Key, nil))
				}
				return out
			},
		})
	}
	defs, err := b.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e, err := NewEngine(defs, Options{WorkingMemory: 50, Profile: true, RuleWorkers: 4})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := Time(1); i <= 20; i++ {
		if err := e.Input(NewEvent("a", i, "k", nil)); err != nil {
			t.Fatalf("input: %v", err)
		}
	}
	res, err := e.Query(30)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.RuleCosts) != n {
		t.Fatalf("RuleCosts has %d entries, want %d", len(res.RuleCosts), n)
	}
	if res.Stats.EvalGoroutines != 4 {
		t.Fatalf("EvalGoroutines = %d, want 4", res.Stats.EvalGoroutines)
	}
	if res.Stats.AllocBytes == 0 {
		t.Fatal("AllocBytes not recorded under Profile")
	}
	for i := 0; i < n; i++ {
		if len(res.Derived[fmt.Sprintf("r%d", i)]) != 20 {
			t.Fatalf("rule r%d derived %d events, want 20", i, len(res.Derived[fmt.Sprintf("r%d", i)]))
		}
	}
}
