// Package rtec is a native Go implementation of the Event Calculus for
// Run-Time reasoning (RTEC) used as the complex event processing
// component in Artikis et al., "Heterogeneous Stream Processing and
// Crowdsourcing for Urban Traffic Management" (EDBT 2014).
//
// RTEC represents the occurrence of an event E at time T with
// happensAt(E, T), the effects of events on fluents with
// initiatedAt(F=V, T) and terminatedAt(F=V, T), and the state of
// fluents with holdsAt(F=V, T) and holdsFor(F=V, I), where I is a list
// of maximal intervals (Table 1 of the paper). Time is linear and
// discrete. Simple fluents obey the law of inertia: once initiated
// they hold until terminated. Statically determined fluents are
// defined by interval manipulation constructs (union_all,
// intersect_all, relative_complement_all) over other fluents.
//
// Recognition is windowed: at each query time Q only the simple
// derived events (SDEs) inside the working memory (Q-WM, Q] are
// considered; everything older is discarded, so the cost of
// recognition depends on the window size and not on the length of the
// history. Because the window is usually larger than the step between
// query times, SDEs that arrive late — after the query time they
// occurred before — are still incorporated at the next query
// (Figure 2 of the paper); everything strictly inside the window is
// recomputed at each query time.
//
// The original RTEC is a Prolog program; this package keeps its
// semantics but exposes them through Go values: events are typed
// records with attribute maps, and CE definitions are Go functions
// that derive events or fluent transitions from a window Context.
// Definitions must form an acyclic dependency graph; the engine
// stratifies them and evaluates bottom-up.
package rtec

import (
	"fmt"
	"sort"

	"github.com/insight-dublin/insight/interval"
)

// Time is a discrete time point (an alias of interval.Time).
type Time = interval.Time

// Sentinel time points (re-exported from the interval package).
const (
	MinTime = interval.MinTime
	MaxTime = interval.MaxTime
)

// Event is an event instance: happensAt(Type(attributes...), Time).
// Key names the principal entity the event is about (a bus ID, a
// SCATS sensor ID, an intersection ID); the engine indexes events by
// (Type, Key) so rules can join efficiently. Additional attributes
// live in Attrs.
// An Event is either map-backed (Attrs holds the attributes) or a
// columnar view (blk/row point into an engine-owned Block and the
// accessors read the columns). The two representations are
// behaviourally identical through the accessor methods; code must not
// read Attrs directly on events it did not build itself.
type Event struct {
	// Type is the bucket key: snapshots carry it once per bucket as
	// TypeSnapshot.Type and restoreEvent stamps it back per event.
	//state:derived carried per bucket as TypeSnapshot.Type
	Type  string
	Time  Time
	Key   string
	Attrs map[string]any

	blk *Block
	row int32
}

// NewEvent builds an event. The attrs map is used as-is (not copied).
func NewEvent(typ string, t Time, key string, attrs map[string]any) Event {
	return Event{Type: typ, Time: t, Key: key, Attrs: attrs}
}

// Get returns a raw attribute and whether it was present.
func (e Event) Get(name string) (any, bool) {
	if e.blk != nil {
		return e.blk.getAt(name, int(e.row))
	}
	v, ok := e.Attrs[name]
	return v, ok
}

// Float returns a float64 attribute. Missing or differently-typed
// attributes yield (0, false). Integer attributes are converted.
func (e Event) Float(name string) (float64, bool) {
	if e.blk != nil {
		return e.blk.floatAt(name, int(e.row))
	}
	switch v := e.Attrs[name].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	}
	return 0, false
}

// Int returns an int64 attribute. Missing or differently-typed
// attributes yield (0, false). Float attributes are truncated.
func (e Event) Int(name string) (int64, bool) {
	if e.blk != nil {
		return e.blk.intAt(name, int(e.row))
	}
	switch v := e.Attrs[name].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// Str returns a string attribute.
func (e Event) Str(name string) (string, bool) {
	if e.blk != nil {
		return e.blk.strAt(name, int(e.row))
	}
	v, ok := e.Attrs[name].(string)
	return v, ok
}

// Bool returns a boolean attribute.
func (e Event) Bool(name string) (bool, bool) {
	if e.blk != nil {
		return e.blk.boolAt(name, int(e.row))
	}
	v, ok := e.Attrs[name].(bool)
	return v, ok
}

// String renders the event as "type(key)@time".
func (e Event) String() string {
	return fmt.Sprintf("%s(%s)@%d", e.Type, e.Key, int64(e.Time))
}

// KV identifies a fluent instance for a given fluent name: the entity
// Key and the fluent Value. The paper's fluents are written
// F(args...) = V; here the args collapse into Key and V into Value.
// TrueValue is the conventional value for boolean fluents.
type KV struct {
	Key   string
	Value string
}

// TrueValue is the fluent value used by boolean fluents (F = true).
const TrueValue = "true"

// sortEvents orders events by time, breaking ties by arrival order
// (stable sort over the input ordering).
// sortEvents orders events by (Time, Type, Key) — a total order over
// the distinct derived-event identities, so slices assembled from map
// iteration come out bit-identical across runs. The sort is stable so
// genuinely duplicated identities keep their arrival order.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Key < b.Key
	})
}
