package rtec

import (
	"fmt"
	"slices"
	"sort"
)

// columnStore is the columnar-resident working memory: instead of
// exploding every ingested block into 72-byte Event rows (duplicated
// once more by the per-key index), each SDE type keeps one resident
// column segment — packed time, key-id and attribute columns — plus
// two row-id indexes:
//
//   - order: the (time, arrival)-sorted view of the live rows. The
//     columns themselves are strictly append-only between compactions,
//     so a row id is stable for the row's whole lifetime; late
//     arrivals splice into order (and the per-key lists), never into
//     the columns.
//   - byKid: per key id, the row ids of that key's events,
//     time-sorted. Replaces the per-key Event copies of the row store
//     with 4 bytes per event.
//
// Arrival order is the row-id order: ids grow monotonically, so
// keeping existing ids ahead of new ones on time ties reproduces the
// row store's arrival-stable order exactly.
//
// Eviction trims the order prefix and the per-key lists; the dead
// rows stay in the columns until they outnumber the live ones, at
// which point the segment is compacted — columns, dictionaries and
// both indexes rebuilt over the live rows (which is what makes
// evicted key strings and boxed values collectable).
//
// Window extraction hands out Rows views (segment + id sub-slice) —
// no Event is materialized unless a rule asks for one.
type columnStore struct {
	types map[string]*colBucket
	// orderScratch is the reusable overlap buffer of mergeOrder;
	// kidScratch holds the per-row resident key ids of one insertRows
	// call; trScratch the per-source-dictionary translation table.
	orderScratch []int32  //state:transient reusable scratch
	kidScratch   []uint32 //state:transient reusable scratch
	trScratch    []uint32 //state:transient reusable scratch
}

// colBucket is one SDE type's resident state.
type colBucket struct {
	seg   colSeg
	order []int32
	// byKid indexes live row ids per key id.
	//state:derived per-key index, rebuilt as rows are appended
	byKid [][]int32
	// lateMin is the dirty watermark: the earliest occurrence time
	// among events that arrived at or before the engine's last query
	// time, since that query. MaxTime means no late arrivals.
	lateMin Time
	// dead counts evicted rows still physically present in seg.
	// Snapshots flatten only live rows, so a restored bucket starts
	// compacted with zero dead rows.
	//state:transient physical-layout bookkeeping, not logical state
	dead int
}

// colSeg is the resident column segment: a Block whose Keys slice is
// nil (keys live dict-encoded in KIdx/KDict) plus the interning map
// for the key dictionary.
type colSeg struct {
	blk Block
	//state:derived interning index over blk.KDict, rebuilt by kidOf
	kids map[string]uint32
}

func newColumnStore() *columnStore {
	return &columnStore{types: make(map[string]*colBucket)}
}

func (s *columnStore) bucketOf(typ string) *colBucket {
	b := s.types[typ]
	if b == nil {
		b = &colBucket{
			seg:     colSeg{blk: Block{Type: typ}, kids: make(map[string]uint32)},
			lateMin: MaxTime,
		}
		s.types[typ] = b
	}
	return b
}

// bucket returns the type's bucket as an sdeBucket view (untyped nil
// on a miss, as the engine's nil checks require).
func (s *columnStore) bucket(typ string) sdeBucket {
	b := s.types[typ]
	if b == nil {
		return nil
	}
	return b
}

// kidOf interns a key in the segment's dictionary.
func (sg *colSeg) kidOf(key string) uint32 {
	if kid, ok := sg.kids[key]; ok {
		return kid
	}
	kid := uint32(len(sg.blk.KDict))
	sg.kids[key] = kid
	sg.blk.KDict = append(sg.blk.KDict, key)
	return kid
}

// growKeys sizes byKid to the key dictionary.
func (b *colBucket) growKeys() {
	for len(b.byKid) < len(b.seg.blk.KDict) {
		b.byKid = append(b.byKid, nil)
	}
}

// insert files one event: append a row to the segment, splice its id
// into the order and per-key indexes.
func (s *columnStore) insert(ev Event, late bool) {
	b := s.bucketOf(ev.Type)
	sg := &b.seg
	id := int32(len(sg.blk.Times))
	kid := sg.kidOf(ev.Key)
	sg.blk.Times = append(sg.blk.Times, int64(ev.Time))
	sg.blk.KIdx = append(sg.blk.KIdx, kid)
	sg.appendAttrs(ev)
	b.growKeys()
	b.order = spliceID(b.order, sg.blk.Times, id)
	b.byKid[kid] = spliceID(b.byKid[kid], sg.blk.Times, id)
	if late && ev.Time < b.lateMin {
		b.lateMin = ev.Time
	}
}

// spliceID places id after every id with an occurrence time <= its
// own. New ids are always larger than stored ones, so on time ties the
// existing ids stay ahead — (time, arrival) order, like insertSorted.
func spliceID(ids []int32, times []int64, id int32) []int32 {
	t := times[id]
	n := len(ids)
	if n == 0 || times[ids[n-1]] <= t {
		return append(ids, id)
	}
	i := sort.Search(n, func(i int) bool { return times[ids[i]] > t })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// insertRows bulk-files the given rows of a caller-owned block: one
// append pass per column, one order merge, and per-key filing through
// small-integer ids (a slice index per row — no hashing). rows must be
// time-sorted, ties in arrival order; the resulting state is exactly
// what row-by-row insert produces.
func (s *columnStore) insertRows(src *Block, rows []int32, started bool, lastQ Time) {
	n := len(rows)
	if n == 0 {
		return
	}
	b := s.bucketOf(src.Type)
	sg := &b.seg
	base := int32(len(sg.blk.Times))

	// Times, key ids. Source dictionaries translate lazily — one
	// interning per distinct key used, not per dictionary entry, so an
	// oversized transport dictionary doesn't bloat the resident one.
	kr := resizeUint32(&s.kidScratch, n)
	if src.KIdx != nil {
		const unset = ^uint32(0)
		tr := resizeUint32(&s.trScratch, len(src.KDict))
		for i := range tr {
			tr[i] = unset
		}
		for j, r := range rows {
			k := src.KIdx[r]
			if tr[k] == unset {
				tr[k] = sg.kidOf(src.KDict[k])
			}
			kr[j] = tr[k]
		}
	} else {
		for j, r := range rows {
			kr[j] = sg.kidOf(src.Keys[r])
		}
	}
	for j, r := range rows {
		sg.blk.Times = append(sg.blk.Times, src.Times[r])
		sg.blk.KIdx = append(sg.blk.KIdx, kr[j])
	}
	sg.appendCols(src, rows)
	b.growKeys()

	s.mergeOrder(b, base, n)

	// Per-key filing: each key's rows arrive in time order, so the
	// append fast path almost always hits; late rows splice.
	times := sg.blk.Times
	for j := 0; j < n; j++ {
		id := base + int32(j)
		lst := b.byKid[kr[j]]
		if m := len(lst); m == 0 || times[lst[m-1]] <= times[id] {
			b.byKid[kr[j]] = append(lst, id)
		} else {
			b.byKid[kr[j]] = spliceID(lst, times, id)
		}
	}

	if started {
		for _, r := range rows {
			if t := Time(src.Times[r]); t <= lastQ && t < b.lateMin {
				b.lateMin = t
			}
		}
	}
}

// mergeOrder merges the n freshly appended ids (base..base+n−1, whose
// times are sorted) into the order index. The common case — the rows
// land entirely after the stored ones — is a pure bulk append;
// otherwise only the overlapping tail is re-merged, existing ids kept
// ahead of new ones on time ties.
func (s *columnStore) mergeOrder(b *colBucket, base int32, n int) {
	times := b.seg.blk.Times
	ord := b.order
	t0 := times[base]
	if len(ord) == 0 || times[ord[len(ord)-1]] <= t0 {
		for j := 0; j < n; j++ {
			ord = append(ord, base+int32(j))
		}
		b.order = ord
		return
	}
	cut := sort.Search(len(ord), func(i int) bool { return times[ord[i]] > t0 })
	tail := append(s.orderScratch[:0], ord[cut:]...)
	ord = ord[:cut]
	i, j := 0, 0
	for i < len(tail) && j < n {
		if times[tail[i]] <= times[base+int32(j)] {
			ord = append(ord, tail[i])
			i++
		} else {
			ord = append(ord, base+int32(j))
			j++
		}
	}
	ord = append(ord, tail[i:]...)
	for ; j < n; j++ {
		ord = append(ord, base+int32(j))
	}
	b.order = ord
	if cap(tail) > scratchInt32Floor && cap(tail) > 4*len(tail) {
		tail = make([]int32, 0, 2*len(tail)) // decay an oversized overlap burst
	}
	s.orderScratch = tail
}

// resizeUint32 sizes the reusable buffer to n entries (contents
// unspecified), decaying oversized capacity.
func resizeUint32(buf *[]uint32, n int) []uint32 {
	if cap(*buf) < n || (cap(*buf) > scratchInt32Floor && cap(*buf) > 4*n) {
		*buf = make([]uint32, n, max(n, min(cap(*buf)/2, 2*n)))
		return *buf
	}
	*buf = (*buf)[:n]
	return *buf
}

// evict discards rows with Time <= cutoff: the order prefix and the
// per-key list prefixes are trimmed (row-id slices, 4 bytes per
// entry); the column data itself is reclaimed by compaction once dead
// rows outnumber live ones.
func (s *columnStore) evict(cutoff Time) {
	for typ, b := range s.types {
		times := b.seg.blk.Times
		k := 0
		if len(b.order) > 0 && Time(times[b.order[0]]) <= cutoff {
			k = sort.Search(len(b.order), func(i int) bool { return Time(times[b.order[i]]) > cutoff })
		}
		if k > 0 {
			b.dead += k
			b.order = trimIDs(b.order, k)
			for kid := range b.byKid {
				lst := b.byKid[kid]
				if len(lst) == 0 || Time(times[lst[0]]) > cutoff {
					continue
				}
				j := sort.Search(len(lst), func(i int) bool { return Time(times[lst[i]]) > cutoff })
				b.byKid[kid] = trimIDs(lst, j)
			}
		}
		if b.dead > 0 && b.dead >= len(b.order) {
			s.compact(b)
		}
		if len(b.order) == 0 && b.lateMin == MaxTime {
			delete(s.types, typ)
		}
	}
}

// trimIDs drops the first k ids. When the dead prefix dominates, the
// survivors move to a fresh slice so the backing array shrinks; a
// small prefix is a plain re-slice (pointer-free, bounded at 2× by
// the copy threshold).
func trimIDs(ids []int32, k int) []int32 {
	if k >= len(ids) {
		return nil
	}
	if k*2 >= len(ids) {
		out := make([]int32, len(ids)-k)
		copy(out, ids[k:])
		return out
	}
	return ids[k:]
}

// compact rebuilds the segment over the live rows: columns and both
// dictionaries are re-gathered (dropping evicted strings and boxed
// values), row ids are renumbered densely in arrival order, and the
// indexes remapped. Runs when dead rows outnumber live ones, so its
// cost is amortised O(1) per evicted row.
func (s *columnStore) compact(b *colBucket) {
	old := b.seg
	live := len(b.order)

	// Live ids in ascending id order = arrival order; dense
	// renumbering in that order preserves every time tie-break.
	ids := make([]int32, live)
	copy(ids, b.order)
	slices.Sort(ids)
	remap := make([]int32, len(old.blk.Times))
	for newID, id := range ids {
		remap[id] = int32(newID)
	}

	seg := colSeg{
		blk:  Block{Type: old.blk.Type, Times: make([]int64, 0, live), KIdx: make([]uint32, 0, live)},
		kids: make(map[string]uint32, len(old.kids)),
	}
	for _, id := range ids {
		seg.blk.Times = append(seg.blk.Times, old.blk.Times[id])
		seg.blk.KIdx = append(seg.blk.KIdx, seg.kidOf(old.blk.KDict[old.blk.KIdx[id]]))
	}
	for ci := range old.blk.Cols {
		if c := gatherCol(&old.blk.Cols[ci], ids); c != nil {
			seg.blk.Cols = append(seg.blk.Cols, *c)
		}
	}

	for i := range b.order {
		b.order[i] = remap[b.order[i]]
	}
	byKid := make([][]int32, len(seg.blk.KDict))
	for kid := range b.byKid {
		lst := b.byKid[kid]
		if len(lst) == 0 {
			continue
		}
		nk := seg.kids[old.blk.KDict[kid]]
		nl := make([]int32, len(lst))
		for i, id := range lst {
			nl[i] = remap[id]
		}
		byKid[nk] = nl
	}
	b.seg = seg
	b.byKid = byKid
	b.dead = 0
}

// gatherCol gathers the given rows of a column into a fresh column,
// or nil if the attribute is absent on every row (the column is
// dropped).
func gatherCol(c *BCol, ids []int32) *BCol {
	n := len(ids)
	out := &BCol{Name: c.Name, Kind: c.Kind}
	all := true
	if c.Present != nil {
		any := false
		out.Present = make([]bool, n)
		for j, id := range ids {
			p := c.Present[id]
			out.Present[j] = p
			any = any || p
			all = all && p
		}
		if !any {
			return nil
		}
		if all {
			out.Present = nil
		}
	}
	switch c.Kind {
	case ColFloat:
		out.F = make([]float64, n)
		for j, id := range ids {
			out.F[j] = c.F[id]
		}
	case ColInt:
		out.I = make([]int64, n)
		for j, id := range ids {
			out.I[j] = c.I[id]
		}
	case ColBool:
		out.B = make([]bool, n)
		for j, id := range ids {
			out.B[j] = c.B[id]
		}
	case ColIntGo:
		out.N = make([]int, n)
		for j, id := range ids {
			out.N[j] = c.N[id]
		}
	case ColAny:
		out.A = make([]any, n)
		for j, id := range ids {
			if out.Present == nil || out.Present[j] {
				out.A[j] = c.A[id]
			}
		}
	default: // ColStr: re-intern so evicted strings drop out
		out.SIdx = make([]uint32, n)
		out.dict = make(map[string]uint32)
		for j, id := range ids {
			if out.Present != nil && !out.Present[j] {
				continue
			}
			v := c.Dict[c.SIdx[id]]
			si, ok := out.dict[v]
			if !ok {
				si = uint32(len(out.Dict))
				out.dict[v] = si
				out.Dict = append(out.Dict, v)
			}
			out.SIdx[j] = si
		}
	}
	return out
}

// dirtyFloor returns the earliest late-arrival time across the given
// SDE types (see eventStore.dirtyFloor — the contract is shared).
func (s *columnStore) dirtyFloor(sdeTypes map[string]bool) Time {
	floor := MaxTime
	for typ := range sdeTypes {
		if b := s.types[typ]; b != nil && b.lateMin < floor {
			floor = b.lateMin
		}
	}
	return floor
}

func (s *columnStore) clearDirty() {
	for _, b := range s.types {
		b.lateMin = MaxTime
	}
}

// residentBytes estimates the long-lived heap per bucket: the column
// segment, the two row-id indexes and the key dictionary.
func (s *columnStore) residentBytes() uint64 {
	var total uint64
	for typ, b := range s.types {
		total += uint64(len(typ)) + sizeMapSlot
		total += blockResidentBytes(&b.seg.blk)
		total += uint64(cap(b.order)) * 4
		total += uint64(cap(b.byKid)) * sizeSlice
		for kid := range b.byKid {
			total += uint64(cap(b.byKid[kid])) * 4
		}
		for key := range b.seg.kids {
			total += uint64(len(key)) + sizeMapSlot
		}
	}
	return total
}

// snapshotTypes flattens the live rows, in order, to the canonical
// row-oriented snapshot form — byte-identical to what the row store
// produces for the same state, which is what keeps checkpointed
// recovery store-independent.
func (s *columnStore) snapshotTypes() ([]TypeSnapshot, error) {
	types := make([]string, 0, len(s.types))
	for typ := range s.types {
		types = append(types, typ)
	}
	sort.Strings(types)
	var out []TypeSnapshot
	for _, typ := range types {
		b := s.types[typ]
		ts := TypeSnapshot{Type: typ, LateMin: b.lateMin, Events: make([]EventSnapshot, 0, len(b.order))}
		for _, id := range b.order {
			es, err := snapshotEvent(b.seg.blk.Event(int(id)))
			if err != nil {
				return nil, fmt.Errorf("rtec: snapshot of %s event at %d: %w", typ, b.seg.blk.Times[id], err)
			}
			ts.Events = append(ts.Events, es)
		}
		out = append(out, ts)
	}
	return out, nil
}

// restoreType rebuilds one bucket from its snapshot. Snapshot order is
// (time, arrival) order, so appends rebuild both indexes on their fast
// paths.
func (s *columnStore) restoreType(ts TypeSnapshot) error {
	b := s.bucketOf(ts.Type)
	b.lateMin = ts.LateMin
	prev := Time(MinTime)
	for i, es := range ts.Events {
		if es.Time < prev {
			return fmt.Errorf("rtec: snapshot events of %q not time-sorted at index %d", ts.Type, i)
		}
		prev = es.Time
		ev, err := restoreEvent(ts.Type, es)
		if err != nil {
			return err
		}
		sg := &b.seg
		id := int32(len(sg.blk.Times))
		kid := sg.kidOf(ev.Key)
		sg.blk.Times = append(sg.blk.Times, int64(ev.Time))
		sg.blk.KIdx = append(sg.blk.KIdx, kid)
		sg.appendAttrs(ev)
		b.growKeys()
		b.order = append(b.order, id)
		b.byKid[kid] = append(b.byKid[kid], id)
	}
	return nil
}

// --- sdeBucket views ---

// idBounds restricts a time-sorted id list to [span.Start, span.End),
// mirroring sliceSpan.
func (b *colBucket) idBounds(ids []int32, span Span) (int, int) {
	if len(ids) == 0 || span.Empty() {
		return 0, 0
	}
	times := b.seg.blk.Times
	lo := 0
	if Time(times[ids[0]]) < span.Start {
		lo = sort.Search(len(ids), func(i int) bool { return Time(times[ids[i]]) >= span.Start })
	}
	hi := len(ids)
	if hi > lo && Time(times[ids[hi-1]]) >= span.End {
		hi = lo + sort.Search(hi-lo, func(i int) bool { return Time(times[ids[lo+i]]) >= span.End })
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

func (b *colBucket) rows(span Span) Rows {
	lo, hi := b.idBounds(b.order, span)
	if lo >= hi {
		return Rows{}
	}
	return Rows{seg: &b.seg, ids: b.order[lo:hi]}
}

func (b *colBucket) rowsForKey(key string, span Span) Rows {
	kid, ok := b.seg.kids[key]
	if !ok {
		return Rows{}
	}
	lo, hi := b.idBounds(b.byKid[kid], span)
	if lo >= hi {
		return Rows{}
	}
	return Rows{seg: &b.seg, ids: b.byKid[kid][lo:hi]}
}

func (b *colBucket) keysInSpan(span Span) []string {
	var out []string
	for kid := range b.byKid {
		if lo, hi := b.idBounds(b.byKid[kid], span); lo < hi {
			out = append(out, b.seg.blk.KDict[kid])
		}
	}
	sort.Strings(out)
	return out
}

func (b *colBucket) countInSpan(span Span) int {
	lo, hi := b.idBounds(b.order, span)
	return hi - lo
}
