package rtec_test

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/rtec"
)

// A minimal Event Calculus program: a boolean fluent driven by two SDE
// types, evaluated over two query times with a window larger than the
// step so a delayed SDE is recovered (the paper's Figure 2).
func Example() {
	defs, err := rtec.NewBuilder().
		DeclareSDE("enter", "exit").
		Simple(rtec.SimpleFluent{
			Name:   "occupied",
			Inputs: []string{"enter", "exit"},
			Transitions: func(ctx *rtec.Context) []rtec.Transition {
				var out []rtec.Transition
				for _, e := range ctx.Events("enter") {
					out = append(out, rtec.InitiateAt(e.Key, e.Time))
				}
				for _, e := range ctx.Events("exit") {
					out = append(out, rtec.TerminateAt(e.Key, e.Time))
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		log.Fatal(err)
	}

	engine, err := rtec.NewEngine(defs, rtec.Options{
		WorkingMemory: 120, // window: 120 time points
		Step:          60,  // step: 60 — delayed SDEs get a second chance
	})
	if err != nil {
		log.Fatal(err)
	}

	// happensAt(enter(room1), 10).
	if err := engine.Input(rtec.NewEvent("enter", 10, "room1", nil)); err != nil {
		log.Fatal(err)
	}
	res, err := engine.Query(60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q=60:", res.Intervals("occupied", "room1"))

	// An exit that OCCURRED at 50 arrives only now — within the
	// window of the next query, so it is still incorporated.
	if err := engine.Input(rtec.NewEvent("exit", 50, "room1", nil)); err != nil {
		log.Fatal(err)
	}
	res, err = engine.Query(120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q=120:", res.Intervals("occupied", "room1"))
	// Output:
	// Q=60: [11, 61)
	// Q=120: [11, 51)
}

// Derived events: recognising instantaneous complex events from SDE
// patterns, like the paper's delayIncrease.
func ExampleEventRule() {
	defs, err := rtec.NewBuilder().
		DeclareSDE("reading").
		Event(rtec.EventRule{
			Name:   "spike",
			Inputs: []string{"reading"},
			Derive: func(ctx *rtec.Context) []rtec.Event {
				var out []rtec.Event
				for _, key := range ctx.EventKeys("reading") {
					evs := ctx.EventsForKey("reading", key)
					for i := 1; i < len(evs); i++ {
						prev, _ := evs[i-1].Float("v")
						cur, _ := evs[i].Float("v")
						if cur > 2*prev {
							out = append(out, rtec.NewEvent("spike", evs[i].Time, key, nil))
						}
					}
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		log.Fatal(err)
	}
	engine, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 100})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Input(
		rtec.NewEvent("reading", 10, "s1", map[string]any{"v": 5.0}),
		rtec.NewEvent("reading", 20, "s1", map[string]any{"v": 30.0}),
	); err != nil {
		log.Fatal(err)
	}
	res, err := engine.Query(90)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Derived["spike"] {
		fmt.Println("happensAt:", e)
	}
	// Output:
	// happensAt: spike(s1)@20
}
