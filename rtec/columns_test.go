package rtec

import (
	"reflect"
	"testing"
)

func testBlock() *Block {
	return &Block{
		Type:  "reading",
		Times: []int64{10, 20, 30},
		Keys:  []string{"s1", "s2", "s1"},
		Cols: []BCol{
			{Name: "level", Kind: ColFloat, F: []float64{0.25, 0.75, 0.9}},
			{Name: "count", Kind: ColInt, I: []int64{3, 7, -2}},
			{Name: "alarm", Kind: ColBool, B: []bool{false, true, true}},
			{Name: "zone", Kind: ColStr, SIdx: []uint32{0, 1, 0}, Dict: []string{"north", "south"}},
		},
	}
}

// mapTwin builds the map-backed event with the same attributes as row
// i of the block — the representation the view must be behaviourally
// identical to.
func mapTwin(b *Block, i int) Event {
	return NewEvent(b.Type, Time(b.Times[i]), b.Keys[i], map[string]any{
		"level": b.Cols[0].F[i],
		"count": b.Cols[1].I[i],
		"alarm": b.Cols[2].B[i],
		"zone":  b.Cols[3].Dict[b.Cols[3].SIdx[i]],
	})
}

func TestBlockViewAccessorParity(t *testing.T) {
	b := testBlock()
	for i := 0; i < b.Len(); i++ {
		view, twin := b.Event(i), mapTwin(b, i)
		if view.Type != twin.Type || view.Time != twin.Time || view.Key != twin.Key {
			t.Fatalf("row %d header: view %v, twin %v", i, view, twin)
		}
		for _, name := range []string{"level", "count", "alarm", "zone", "missing"} {
			gv, gok := view.Get(name)
			wv, wok := twin.Get(name)
			if gv != wv || gok != wok {
				t.Errorf("row %d Get(%q) = (%v, %v), want (%v, %v)", i, name, gv, gok, wv, wok)
			}
			ff, fok := view.Float(name)
			wf, wfok := twin.Float(name)
			if ff != wf || fok != wfok {
				t.Errorf("row %d Float(%q) = (%v, %v), want (%v, %v)", i, name, ff, fok, wf, wfok)
			}
			fi, iok := view.Int(name)
			wi, wiok := twin.Int(name)
			if fi != wi || iok != wiok {
				t.Errorf("row %d Int(%q) = (%v, %v), want (%v, %v)", i, name, fi, iok, wi, wiok)
			}
			fs, sok := view.Str(name)
			ws, wsok := twin.Str(name)
			if fs != ws || sok != wsok {
				t.Errorf("row %d Str(%q) = (%v, %v), want (%v, %v)", i, name, fs, sok, ws, wsok)
			}
			fb, bok := view.Bool(name)
			wb, wbok := twin.Bool(name)
			if fb != wb || bok != wbok {
				t.Errorf("row %d Bool(%q) = (%v, %v), want (%v, %v)", i, name, fb, bok, wb, wbok)
			}
		}
	}
}

func TestBlockViewCrossKindCoercion(t *testing.T) {
	b := testBlock()
	view := b.Event(2)
	// Float over an int column converts.
	if f, ok := view.Float("count"); !ok || f != -2 {
		t.Errorf("Float(count) = (%v, %v), want (-2, true)", f, ok)
	}
	// Int over a float column truncates toward zero.
	if n, ok := view.Int("level"); !ok || n != 0 {
		t.Errorf("Int(level) = (%v, %v), want (0, true)", n, ok)
	}
	// Str and Bool do not coerce across kinds.
	if _, ok := view.Str("count"); ok {
		t.Error("Str(count) succeeded on an int column")
	}
	if _, ok := view.Bool("level"); ok {
		t.Error("Bool(level) succeeded on a float column")
	}
}

func TestCopyRowsGathers(t *testing.T) {
	src := testBlock()
	dst := copyRows(src, []int32{2, 0})
	if dst.Len() != 2 {
		t.Fatalf("len = %d, want 2", dst.Len())
	}
	for di, si := range []int{2, 0} {
		view, twin := dst.Event(di), mapTwin(src, si)
		for _, name := range []string{"level", "count", "alarm", "zone"} {
			gv, _ := view.Get(name)
			wv, _ := twin.Get(name)
			if gv != wv || view.Time != twin.Time || view.Key != twin.Key {
				t.Errorf("dst row %d %s = %v, want %v", di, name, gv, wv)
			}
		}
	}
	// The copy must not alias the source columns.
	src.Times[2] = 999
	src.Cols[0].F[2] = -1
	if dst.Times[0] != 30 || dst.Cols[0].F[0] != 0.9 {
		t.Error("copyRows aliased the source block")
	}
}

// levelDefs recognises an "alert" fluent keyed by sensor, initiated
// when level > 0.5 and alarm is set, terminated when the zone reads
// "north" with a non-negative count — exercising every accessor kind
// inside a rule.
func levelDefs(t *testing.T) *Definitions {
	t.Helper()
	defs, err := NewBuilder().
		DeclareSDE("reading").
		Simple(SimpleFluent{
			Name:   "alert",
			Inputs: []string{"reading"},
			Transitions: func(ctx *Context) []Transition {
				var out []Transition
				for _, e := range ctx.Events("reading") {
					level, _ := e.Float("level")
					alarm, _ := e.Bool("alarm")
					zone, _ := e.Str("zone")
					count, _ := e.Int("count")
					if level > 0.5 && alarm {
						out = append(out, InitiateAt(e.Key, e.Time))
					}
					if zone == "north" && count >= 0 {
						out = append(out, TerminateAt(e.Key, e.Time))
					}
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

// TestInputBlockMatchesInput feeds the same event sequence per-item
// and as column blocks — across several query boundaries, so the
// too-old filter and the late flag both trigger — and demands
// identical recognition output.
func TestInputBlockMatchesInput(t *testing.T) {
	opts := Options{WorkingMemory: 40, Step: 20}
	mkEngine := func() *Engine {
		e, err := NewEngine(levelDefs(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	type row struct {
		t     int64
		key   string
		level float64
		count int64
		alarm bool
		zone  string
	}
	chunks := [][]row{
		{{5, "s1", 0.8, 1, true, "south"}, {12, "s2", 0.3, 2, false, "south"}},
		{{18, "s1", 0.2, 0, false, "north"}, {3, "s2", 0.9, -1, true, "south"}}, // t=3: late after Q=20
		{{1, "s1", 0.9, 1, true, "south"}, {55, "s2", 0.7, 5, true, "south"}},   // t=1: too old after Q=40
	}
	queries := []Time{20, 40, 60}

	block := func(rs []row) *Block {
		b := &Block{Type: "reading", Cols: []BCol{
			{Name: "level", Kind: ColFloat},
			{Name: "count", Kind: ColInt},
			{Name: "alarm", Kind: ColBool},
			{Name: "zone", Kind: ColStr},
		}}
		dict := map[string]uint32{}
		for _, r := range rs {
			b.Times = append(b.Times, r.t)
			b.Keys = append(b.Keys, r.key)
			b.Cols[0].F = append(b.Cols[0].F, r.level)
			b.Cols[1].I = append(b.Cols[1].I, r.count)
			b.Cols[2].B = append(b.Cols[2].B, r.alarm)
			idx, ok := dict[r.zone]
			if !ok {
				idx = uint32(len(b.Cols[3].Dict))
				b.Cols[3].Dict = append(b.Cols[3].Dict, r.zone)
				dict[r.zone] = idx
			}
			b.Cols[3].SIdx = append(b.Cols[3].SIdx, idx)
		}
		return b
	}
	events := func(rs []row) []Event {
		out := make([]Event, len(rs))
		for i, r := range rs {
			out[i] = NewEvent("reading", Time(r.t), r.key, map[string]any{
				"level": r.level, "count": r.count, "alarm": r.alarm, "zone": r.zone,
			})
		}
		return out
	}

	itemEng, blockEng := mkEngine(), mkEngine()
	for ci, rs := range chunks {
		if err := itemEng.Input(events(rs)...); err != nil {
			t.Fatal(err)
		}
		if err := blockEng.InputBlock(block(rs)); err != nil {
			t.Fatal(err)
		}
		ri, err := itemEng.Query(queries[ci])
		if err != nil {
			t.Fatal(err)
		}
		rb, err := blockEng.Query(queries[ci])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ri.Fluents, rb.Fluents) {
			t.Errorf("Q=%d fluents differ:\nitem:  %v\nblock: %v", queries[ci], ri.Fluents, rb.Fluents)
		}
		if ri.Stats.InputEvents != rb.Stats.InputEvents {
			t.Errorf("Q=%d input events: item %d, block %d", queries[ci], ri.Stats.InputEvents, rb.Stats.InputEvents)
		}
	}
}

// TestInputBlockRejectsUndeclared mirrors Input's type check.
func TestInputBlockRejectsUndeclared(t *testing.T) {
	e, err := NewEngine(levelDefs(t), Options{WorkingMemory: 40})
	if err != nil {
		t.Fatal(err)
	}
	b := &Block{Type: "ghost", Times: []int64{1}, Keys: []string{"k"}}
	if err := e.InputBlock(b); err == nil {
		t.Fatal("undeclared SDE type accepted")
	}
}

// TestInputBlockCopies checks the engine owns its rows: mutating the
// source block after InputBlock must not change recognition.
func TestInputBlockCopies(t *testing.T) {
	e, err := NewEngine(levelDefs(t), Options{WorkingMemory: 40, Step: 20})
	if err != nil {
		t.Fatal(err)
	}
	b := &Block{
		Type:  "reading",
		Times: []int64{5},
		Keys:  []string{"s1"},
		Cols: []BCol{
			{Name: "level", Kind: ColFloat, F: []float64{0.8}},
			{Name: "count", Kind: ColInt, I: []int64{1}},
			{Name: "alarm", Kind: ColBool, B: []bool{true}},
			{Name: "zone", Kind: ColStr, SIdx: []uint32{0}, Dict: []string{"south"}},
		},
	}
	if err := e.InputBlock(b); err != nil {
		t.Fatal(err)
	}
	// Scribble over the caller's block: recycle simulation.
	b.Times[0] = 0
	b.Keys[0] = "zzz"
	b.Cols[0].F[0] = 0
	b.Cols[2].B[0] = false
	res, err := e.Query(20)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := res.Fluents["alert"][KV{Key: "s1", Value: TrueValue}]
	if !ok || len(iv) == 0 {
		t.Fatalf("alert fluent missing after source block mutation: %v", res.Fluents)
	}
}
