package rtec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/insight-dublin/insight/interval"
)

// Engine snapshots. A snapshot captures everything a Query's outcome
// depends on besides the definitions and options: the SDE store, the
// inertia seed (prev), the Fresh dedup set (seen) and the query clock.
// Restoring it into a fresh engine with the same definitions and
// options makes every subsequent Query bit-identical to the original
// engine's — the checkpointed-recovery contract the durable pipeline
// is built on.
//
// The incremental splice cache is deliberately not captured: a
// restored engine starts cold and recomputes its first window in full,
// which the PR 1 equivalence harness pins to the incremental path's
// output bit for bit. That keeps snapshots small and their format
// independent of per-rule cache internals.
//
// Every slice in a snapshot is deterministically ordered (types and
// fluents by name, instances by key/value, seen entries by
// type/key/time, events in store order), so identical engine states
// produce identical snapshots — which is what lets the chaos harness
// compare checkpoints across runs byte for byte.

// AttrKind is the dynamic type of one snapshotted event attribute.
// Go's int and int64 are kept distinct so a restored map-backed event
// returns the exact boxed type the original did from Event.Get.
type AttrKind uint8

const (
	// AttrFloat is a float64 attribute.
	AttrFloat AttrKind = iota
	// AttrInt64 is an int64 attribute.
	AttrInt64
	// AttrInt is a Go int attribute.
	AttrInt
	// AttrBool is a bool attribute.
	AttrBool
	// AttrStr is a string attribute.
	AttrStr
)

// Attr is one event attribute; Kind selects which value field is live.
type Attr struct {
	Name string
	Kind AttrKind
	F    float64
	I    int64
	B    bool
	S    string
}

// EventSnapshot is one stored SDE. Columnar view events are flattened
// to their attribute values — the restored event is map-backed, which
// is behaviourally identical through the Event accessors.
type EventSnapshot struct {
	Time  Time
	Key   string
	Attrs []Attr
}

// TypeSnapshot is one SDE type's store bucket, events in store order
// (time-sorted, arrival-stable).
type TypeSnapshot struct {
	Type    string
	LateMin Time
	Events  []EventSnapshot
}

// InstanceSnapshot is one fluent instance's un-clipped maximal
// intervals from the last query (the law-of-inertia seed).
type InstanceSnapshot struct {
	Key   string
	Value string
	Spans interval.List
}

// FluentSnapshot is one simple fluent's inertia state.
type FluentSnapshot struct {
	Name      string
	Instances []InstanceSnapshot
}

// SeenEntry is one derived-event identity already reported by an
// earlier query (the Result.Fresh dedup set).
type SeenEntry struct {
	Type string
	Key  string
	Time Time
}

// EngineSnapshot is the restorable state of one Engine.
type EngineSnapshot struct {
	LastQ   Time
	Started bool
	Types   []TypeSnapshot
	Prev    []FluentSnapshot
	Seen    []SeenEntry
}

// Snapshot captures the engine's restorable state. The engine is not
// mutated; take snapshots between Query calls (the pipeline does so at
// window boundaries), never concurrently with Input or Query.
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	s := &EngineSnapshot{LastQ: e.lastQ, Started: e.started}

	// The store flattens itself to the canonical row-oriented form:
	// identical engine states produce identical snapshots whichever
	// store implementation is configured, so a checkpoint written by a
	// row-store engine restores into a column-store one (and vice
	// versa) bit-identically.
	types, err := e.store.snapshotTypes()
	if err != nil {
		return nil, err
	}
	s.Types = types

	fluents := make([]string, 0, len(e.prev))
	for name := range e.prev {
		fluents = append(fluents, name)
	}
	sort.Strings(fluents)
	for _, name := range fluents {
		fs := FluentSnapshot{Name: name}
		for kv, l := range e.prev[name] {
			fs.Instances = append(fs.Instances, InstanceSnapshot{
				Key: kv.Key, Value: kv.Value, Spans: l.Clone(),
			})
		}
		sort.Slice(fs.Instances, func(i, j int) bool {
			a, b := fs.Instances[i], fs.Instances[j]
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.Value < b.Value
		})
		s.Prev = append(s.Prev, fs)
	}

	for id := range e.seen {
		s.Seen = append(s.Seen, SeenEntry{Type: id.typ, Key: id.key, Time: id.time})
	}
	sort.Slice(s.Seen, func(i, j int) bool {
		a, b := s.Seen[i], s.Seen[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Time < b.Time
	})
	return s, nil
}

// snapshotEvent flattens one stored event to its attribute values,
// sorted by name — columnar views and map-backed events with the same
// attributes produce the same snapshot, which keeps snapshots
// idempotent across restore round trips.
func snapshotEvent(ev Event) (EventSnapshot, error) {
	es := EventSnapshot{Time: ev.Time, Key: ev.Key}
	if ev.blk != nil {
		row := int(ev.row)
		for ci := range ev.blk.Cols {
			c := &ev.blk.Cols[ci]
			if !c.present(row) {
				continue
			}
			a := Attr{Name: c.Name}
			switch c.Kind {
			case ColFloat:
				a.Kind, a.F = AttrFloat, c.F[row]
			case ColInt:
				a.Kind, a.I = AttrInt64, c.I[row]
			case ColBool:
				a.Kind, a.B = AttrBool, c.B[row]
			case ColIntGo:
				a.Kind, a.I = AttrInt, int64(c.N[row])
			case ColAny:
				var err error
				if a, err = attrFromValue(c.Name, c.A[row]); err != nil {
					return es, err
				}
			default:
				a.Kind, a.S = AttrStr, c.Dict[c.SIdx[row]]
			}
			es.Attrs = append(es.Attrs, a)
		}
		sort.Slice(es.Attrs, func(i, j int) bool { return es.Attrs[i].Name < es.Attrs[j].Name })
		return es, nil
	}
	if len(ev.Attrs) == 0 {
		return es, nil
	}
	names := make([]string, 0, len(ev.Attrs))
	for name := range ev.Attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a, err := attrFromValue(name, ev.Attrs[name])
		if err != nil {
			return es, err
		}
		es.Attrs = append(es.Attrs, a)
	}
	return es, nil
}

// CanonicalAttrs renders an event's attributes in a canonical,
// representation-independent form: name-sorted, each value tagged with
// its kind, floats by their exact bit pattern. Two events carry the
// same attributes — whether map-backed or columnar views — exactly
// when their renderings are equal, and the rendering is totally
// ordered, which is what the Fresh dedup paths (engine-local and
// cross-shard) use to pick one deterministic survivor among derived
// events sharing an identity. Events with unsupported attribute types
// cannot be snapshotted either; they render with an error marker and
// still compare deterministically.
func CanonicalAttrs(ev Event) string {
	es, err := snapshotEvent(ev)
	if err != nil {
		return "!" + err.Error()
	}
	var b strings.Builder
	for _, a := range es.Attrs {
		b.WriteString(a.Name)
		b.WriteByte(0)
		switch a.Kind {
		case AttrFloat:
			fmt.Fprintf(&b, "f:%016x", math.Float64bits(a.F))
		case AttrInt64:
			fmt.Fprintf(&b, "i:%d", a.I)
		case AttrInt:
			fmt.Fprintf(&b, "n:%d", a.I)
		case AttrBool:
			fmt.Fprintf(&b, "b:%t", a.B)
		case AttrStr:
			b.WriteString("s:")
			b.WriteString(a.S)
		}
		b.WriteByte(0x1e)
	}
	return b.String()
}

// attrFromValue boxes one attribute value into its snapshot form.
func attrFromValue(name string, v any) (Attr, error) {
	a := Attr{Name: name}
	switch v := v.(type) {
	case float64:
		a.Kind, a.F = AttrFloat, v
	case int64:
		a.Kind, a.I = AttrInt64, v
	case int:
		a.Kind, a.I = AttrInt, int64(v)
	case bool:
		a.Kind, a.B = AttrBool, v
	case string:
		a.Kind, a.S = AttrStr, v
	default:
		return a, fmt.Errorf("attribute %q has unsupported type %T", name, v)
	}
	return a, nil
}

// restoreEvent rebuilds a map-backed event from its snapshot.
func restoreEvent(typ string, es EventSnapshot) (Event, error) {
	ev := Event{Type: typ, Time: es.Time, Key: es.Key}
	if len(es.Attrs) > 0 {
		ev.Attrs = make(map[string]any, len(es.Attrs))
		for _, a := range es.Attrs {
			switch a.Kind {
			case AttrFloat:
				ev.Attrs[a.Name] = a.F
			case AttrInt64:
				ev.Attrs[a.Name] = a.I
			case AttrInt:
				ev.Attrs[a.Name] = int(a.I)
			case AttrBool:
				ev.Attrs[a.Name] = a.B
			case AttrStr:
				ev.Attrs[a.Name] = a.S
			default:
				return ev, fmt.Errorf("rtec: attribute %q has unknown kind %d", a.Name, a.Kind)
			}
		}
	}
	return ev, nil
}

// Restore replaces the engine's state with a snapshot's. The engine
// must have been built with the same definitions and options as the
// snapshotted one; SDE types the definitions don't declare are
// rejected. All previous state — store, inertia, dedup set, splice
// caches — is discarded.
func (e *Engine) Restore(s *EngineSnapshot) error {
	// The rebuilt store is whatever kind the restoring engine is
	// configured with — snapshots are store-representation-independent,
	// so a checkpoint migrates between store kinds transparently.
	store := newSDEStore(e.opts.Store)
	restored := make(map[string]bool, len(s.Types))
	for _, ts := range s.Types {
		if !e.defs.IsSDE(ts.Type) {
			return fmt.Errorf("rtec: snapshot type %q was not declared as an SDE", ts.Type)
		}
		if restored[ts.Type] {
			return fmt.Errorf("rtec: duplicate snapshot type %q", ts.Type)
		}
		restored[ts.Type] = true
		if err := store.restoreType(ts); err != nil {
			return err
		}
	}

	prev := make(map[string]map[KV]List, len(s.Prev))
	for _, fs := range s.Prev {
		if _, dup := prev[fs.Name]; dup {
			return fmt.Errorf("rtec: duplicate snapshot fluent %q", fs.Name)
		}
		m := make(map[KV]List, len(fs.Instances))
		for _, inst := range fs.Instances {
			if !inst.Spans.Valid() {
				return fmt.Errorf("rtec: snapshot fluent %q instance %s=%s has invalid intervals",
					fs.Name, inst.Key, inst.Value)
			}
			m[KV{Key: inst.Key, Value: inst.Value}] = inst.Spans.Clone()
		}
		prev[fs.Name] = m
	}

	seen := make(map[derivedID]bool, len(s.Seen))
	for _, se := range s.Seen {
		seen[derivedID{typ: se.Type, key: se.Key, time: se.Time}] = true
	}

	e.store = store
	e.prev = prev
	e.seen = seen
	e.cache = make(map[string]*ruleCache) // cold: first query recomputes in full
	e.lastQ = s.LastQ
	e.started = s.Started
	return nil
}

// Snapshot captures every partition's engine state, in partition
// order.
func (p *Partitioned) Snapshot() ([]*EngineSnapshot, error) {
	out := make([]*EngineSnapshot, len(p.engines))
	for i, e := range p.engines {
		s, err := e.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("rtec: partition %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// Restore replaces every partition's engine state; snaps must hold one
// snapshot per partition, in partition order.
func (p *Partitioned) Restore(snaps []*EngineSnapshot) error {
	if len(snaps) != len(p.engines) {
		return fmt.Errorf("rtec: %d snapshots for %d partitions", len(snaps), len(p.engines))
	}
	for i, s := range snaps {
		if err := p.engines[i].Restore(s); err != nil {
			return fmt.Errorf("rtec: partition %d: %w", i, err)
		}
	}
	return nil
}
