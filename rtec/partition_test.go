package rtec

import (
	"strings"
	"testing"
)

// Satellite coverage for the Partitioned constructor and routing error
// paths: every invalid input must surface as a descriptive error, never
// a downstream panic, and a routing failure must not corrupt the
// partitions that already accepted rows.

func TestNewPartitionedValidation(t *testing.T) {
	defs := onOffDefs(t)
	assign := func(Event) int { return 0 }

	cases := []struct {
		name    string
		defs    *Definitions
		opts    Options
		n       int
		assign  func(Event) int
		wantSub string
	}{
		{"zero partitions", defs, Options{WorkingMemory: 10}, 0, assign, "partition count must be positive"},
		{"negative partitions", defs, Options{WorkingMemory: 10}, -2, assign, "partition count must be positive"},
		{"nil assign", defs, Options{WorkingMemory: 10}, 2, nil, "nil partition function"},
		{"nil definitions", nil, Options{WorkingMemory: 10}, 2, assign, "nil definitions"},
		{"bad engine options", defs, Options{WorkingMemory: -5}, 2, assign, "working memory must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPartitioned(tc.defs, tc.opts, tc.n, tc.assign)
			if err == nil {
				t.Fatalf("NewPartitioned accepted invalid input, got %v", p)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestPartitionedInputRoutingErrors(t *testing.T) {
	defs := onOffDefs(t)

	// Per-event routing: out-of-range assignments in both directions.
	for _, bad := range []int{-1, 2, 99} {
		p, err := NewPartitioned(defs, Options{WorkingMemory: 100}, 2, func(Event) int { return bad })
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Input(ev("on", 1, "x")); err == nil {
			t.Errorf("assign→%d: Input must error", bad)
		} else if !strings.Contains(err.Error(), "invalid partition") {
			t.Errorf("assign→%d: error %q does not mention the invalid partition", bad, err)
		}
	}

	// A routing failure mid-batch reports the error without panicking,
	// and earlier valid events stay routed.
	p, err := NewPartitioned(defs, Options{WorkingMemory: 100}, 2, func(e Event) int {
		if e.Key == "poison" {
			return 7
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Input(ev("on", 1, "good"), ev("on", 2, "poison")); err == nil {
		t.Fatal("poisoned batch must error")
	}
	res, err := p.Query(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := MergeResults(res); got.Stats.InputEvents != 1 {
		t.Fatalf("events before the routing failure lost: InputEvents = %d, want 1", got.Stats.InputEvents)
	}
}

func TestPartitionedBlockRoutingErrors(t *testing.T) {
	defs := onOffDefs(t)
	blk := &Block{Type: "on", Times: []int64{5, 6}, Keys: []string{"a", "b"}}

	p, err := NewPartitioned(defs, Options{WorkingMemory: 100}, 2, func(Event) int { return -3 })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InputBlock(blk); err == nil || !strings.Contains(err.Error(), "invalid partition") {
		t.Errorf("InputBlock with out-of-range assign: err = %v", err)
	}
	if err := p.InputBlockRows(blk, []int32{1}); err == nil {
		t.Error("InputBlockRows with out-of-range assign must error")
	}

	// A block router that disagrees with the range contract is caught
	// per row as well.
	p2, err := NewPartitioned(defs, Options{WorkingMemory: 100}, 2, func(Event) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	p2.SetBlockAssign(func(*Block) func(int) int {
		return func(int) int { return 5 }
	})
	if err := p2.InputBlock(blk); err == nil || !strings.Contains(err.Error(), "invalid partition") {
		t.Errorf("InputBlock with out-of-range block router: err = %v", err)
	}
	// Clearing the router falls back to (valid) per-event routing.
	p2.SetBlockAssign(nil)
	if err := p2.InputBlock(blk); err != nil {
		t.Fatalf("fallback per-event routing failed: %v", err)
	}
}

func TestPartitionedRestoreCountMismatch(t *testing.T) {
	defs := onOffDefs(t)
	p, err := NewPartitioned(defs, Options{WorkingMemory: 100}, 3, func(Event) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("Snapshot returned %d snapshots, want 3", len(snaps))
	}
	if err := p.Restore(snaps[:2]); err == nil || !strings.Contains(err.Error(), "2 snapshots for 3 partitions") {
		t.Errorf("short restore: err = %v", err)
	}
	if err := p.Restore(append(append([]*EngineSnapshot{}, snaps...), snaps[0])); err == nil {
		t.Error("long restore must error")
	}
	if err := p.Restore(snaps); err != nil {
		t.Errorf("exact restore failed: %v", err)
	}
}
