package rtec

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/insight-dublin/insight/interval"
)

// Options configures an Engine.
type Options struct {
	// WorkingMemory (WM) is the window length: at query time Q only
	// SDEs in (Q−WM, Q] are considered. Must be positive.
	WorkingMemory Time
	// Step is the intended temporal distance between consecutive
	// query times (Q_i − Q_{i−1}). It is advisory — Query takes the
	// query time explicitly — but Run uses it, and making WM larger
	// than Step is what lets delayed SDEs be incorporated (Fig. 2).
	Step Time
	// Profile makes every Query record per-rule evaluation times in
	// Result.RuleCosts and allocation totals in Stats.AllocBytes, for
	// finding the expensive CE definitions.
	Profile bool
	// ForceFullRecompute disables the incremental overlap reuse
	// (see incremental.go): every rule is re-evaluated over the whole
	// window at every query, exactly like the original engine. Use it
	// to debug a rule whose declared Locality is suspect — the
	// incremental and full paths must produce identical results.
	ForceFullRecompute bool
	// RuleWorkers bounds the goroutines evaluating independent rules
	// of one stratum concurrently. 0 means GOMAXPROCS; 1 forces
	// serial evaluation. Strata remain barriers either way.
	RuleWorkers int
	// Store selects the working-memory representation. The default
	// StoreRow is the original row-resident event store; StoreColumn
	// keeps working memory as per-type column segments with row-id
	// indexes — same observable behaviour, a fraction of the resident
	// bytes. See store.go.
	Store StoreKind
}

// StoreKind selects a working-memory implementation.
type StoreKind uint8

const (
	// StoreRow is the row-resident event store (the equivalence
	// reference).
	StoreRow StoreKind = iota
	// StoreColumn is the columnar-resident store.
	StoreColumn
)

func (k StoreKind) String() string {
	if k == StoreColumn {
		return "column"
	}
	return "row"
}

// Engine is a windowed RTEC evaluator. It accumulates SDEs as they
// arrive (possibly delayed and out of order) and computes, at each
// query time, the maximal intervals of every defined fluent and the
// occurrences of every derived event type within the working memory.
//
// An Engine is not safe for concurrent use; partition the stream over
// several engines (see Partitioned) for parallel recognition.
type Engine struct {
	defs *Definitions //state:transient compiled rule set, supplied at construction; Restore requires an identically-built engine
	opts Options      //state:transient config, supplied at construction

	store   sdeStore // time-indexed SDE buckets
	lastQ   Time
	started bool

	// prev holds, per simple fluent, the un-clipped maximal interval
	// lists from the previous query. They seed the law of inertia at
	// the next window start.
	prev map[string]map[KV]List

	// cache holds, per local rule, the previous query's output for
	// overlap reuse (see incremental.go). Deliberately not captured:
	// a restored engine's first query falls back to a full recompute.
	//state:derived overlap cache, repopulated by the next query
	cache map[string]*ruleCache

	// seen tracks derived event instances already reported, for
	// Result.Fresh. Pruned as instances fall out of the window.
	seen map[derivedID]bool

	// rowScratch is the reusable admitted-row buffer of inputBlock;
	// sortKeys and rowCopy are the reusable buffers of its packed
	// time sort.
	rowScratch []int32  //state:transient reusable scratch
	sortKeys   []uint64 //state:transient reusable scratch
	rowCopy    []int32  //state:transient reusable scratch
}

type derivedID struct {
	typ  string
	key  string
	time Time
}

// NewEngine builds an engine over a compiled definition set.
func NewEngine(defs *Definitions, opts Options) (*Engine, error) {
	if defs == nil {
		return nil, fmt.Errorf("rtec: nil definitions")
	}
	if opts.WorkingMemory <= 0 {
		return nil, fmt.Errorf("rtec: working memory must be positive, got %d", opts.WorkingMemory)
	}
	if opts.Step < 0 {
		return nil, fmt.Errorf("rtec: step must be non-negative, got %d", opts.Step)
	}
	if opts.RuleWorkers < 0 {
		return nil, fmt.Errorf("rtec: rule workers must be non-negative, got %d", opts.RuleWorkers)
	}
	if opts.Store > StoreColumn {
		return nil, fmt.Errorf("rtec: unknown store kind %d", opts.Store)
	}
	if opts.Step == 0 {
		opts.Step = opts.WorkingMemory
	}
	return &Engine{
		defs:  defs,
		opts:  opts,
		store: newSDEStore(opts.Store),
		prev:  make(map[string]map[KV]List),
		cache: make(map[string]*ruleCache),
		seen:  make(map[derivedID]bool),
	}, nil
}

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opts }

// Input delivers SDEs to the engine. Events may arrive in any order
// and with delays; an event participates in every query whose window
// contains its occurrence time, provided it has arrived by then.
// Events of undeclared types are rejected, and the whole batch is
// rejected atomically: either every event is filed or none is.
func (e *Engine) Input(events ...Event) error {
	for _, ev := range events {
		if !e.defs.IsSDE(ev.Type) {
			return fmt.Errorf("rtec: event type %q was not declared as an SDE", ev.Type)
		}
	}
	for _, ev := range events {
		if e.started && ev.Time <= e.lastQ-e.opts.WorkingMemory {
			continue // too old to ever appear in a window again
		}
		// Events landing at or before the last query time arrive late:
		// an earlier query already evaluated that region, so cached
		// overlap results touching it are stale.
		e.store.insert(ev, e.started && ev.Time <= e.lastQ)
	}
	return nil
}

// InputBlock delivers a columnar batch of SDEs: every row of the block
// is filed, in row order, with exactly the semantics of Input — rows
// too old to ever appear in a window again are skipped, rows at or
// before the last query time are marked late. The engine copies the
// admitted rows into a block it owns, so the caller may reuse b
// immediately.
func (e *Engine) InputBlock(b *Block) error {
	return e.inputBlock(b, nil)
}

// InputBlockRows is InputBlock restricted to the given rows of b, in
// the given order.
func (e *Engine) InputBlockRows(b *Block, rows []int32) error {
	return e.inputBlock(b, rows)
}

func (e *Engine) inputBlock(b *Block, rows []int32) error {
	if !e.defs.IsSDE(b.Type) {
		return fmt.Errorf("rtec: event type %q was not declared as an SDE", b.Type)
	}
	tooOld := e.lastQ - e.opts.WorkingMemory
	e.rowScratch = e.rowScratch[:0]
	if rows == nil {
		n := b.Len()
		for i := 0; i < n; i++ {
			if e.started && Time(b.Times[i]) <= tooOld {
				continue // too old to ever appear in a window again
			}
			e.rowScratch = append(e.rowScratch, int32(i))
		}
	} else {
		for _, r := range rows {
			if e.started && Time(b.Times[r]) <= tooOld {
				continue
			}
			e.rowScratch = append(e.rowScratch, r)
		}
	}
	if len(e.rowScratch) == 0 {
		return nil
	}
	// Sort the admitted rows by occurrence time, stably, so the owned
	// block meets insertBlock's contract. Delivery (arrival) order is
	// preserved on ties, and since a bucket's time-sorted
	// arrival-stable order is unique, the store ends up bit-identical
	// to per-row insertion. Mediator jitter is bounded, so most blocks
	// arrive already sorted and the sort is a single scan.
	sorted := true
	for i := 1; i < len(e.rowScratch); i++ {
		if b.Times[e.rowScratch[i-1]] > b.Times[e.rowScratch[i]] {
			sorted = false
			break
		}
	}
	if !sorted {
		e.sortRows(b)
	}
	e.store.insertRows(b, e.rowScratch, e.started, e.lastQ)
	return nil
}

// sortRows stably sorts rowScratch by occurrence time. The hot path
// packs (time − minTime, position) pairs into uint64 keys and sorts
// those — branch-predictable integer comparisons, no closure calls —
// with the position in the low bits carrying the stability tie-break.
// Blocks whose time span overflows the packing (44 bits of delta, 20
// bits of position — never with bounded mediator jitter) fall back to
// the stable comparison sort.
func (e *Engine) sortRows(b *Block) {
	rs := e.rowScratch
	minT := b.Times[rs[0]]
	maxT := minT
	for _, r := range rs[1:] {
		if t := b.Times[r]; t < minT {
			minT = t
		} else if t > maxT {
			maxT = t
		}
	}
	const posBits = 20
	if len(rs) >= 1<<posBits || uint64(maxT-minT) >= 1<<(64-posBits) {
		sort.SliceStable(rs, func(i, j int) bool { return b.Times[rs[i]] < b.Times[rs[j]] })
		return
	}
	keys := e.sortKeys[:0]
	for j, r := range rs {
		keys = append(keys, uint64(b.Times[r]-minT)<<posBits|uint64(j))
	}
	slices.Sort(keys)
	e.sortKeys = keys
	e.rowCopy = append(e.rowCopy[:0], rs...)
	for j, k := range keys {
		rs[j] = e.rowCopy[k&(1<<posBits-1)]
	}
}

// Result is the outcome of one query-time evaluation.
type Result struct {
	// Q is the query time and Window the working memory span
	// [Q−WM+1, Q+1).
	Q      Time
	Window Span
	// Fluents holds, per fluent name and instance, the maximal
	// intervals clipped to the window.
	Fluents map[string]map[KV]List
	// Derived holds the derived events recognised in the window,
	// per event type, time-sorted.
	Derived map[string][]Event
	// Fresh lists the derived events not reported by any earlier
	// query, time-sorted — what a downstream consumer (e.g. the
	// crowdsourcing component) should act on.
	Fresh []Event
	// Stats summarises the evaluation.
	Stats Stats
	// RuleCosts holds per-rule evaluation times when the engine runs
	// with Options.Profile; nil otherwise.
	RuleCosts map[string]time.Duration
}

// Stats summarises one evaluation.
type Stats struct {
	InputEvents   int           // SDEs inside the window
	DerivedEvents int           // derived event instances recognised
	FluentPeriods int           // maximal intervals across all fluents
	Elapsed       time.Duration // wall-clock evaluation time
	// AllocBytes is the heap allocated during the evaluation
	// (cumulative TotalAlloc delta). Recorded only under
	// Options.Profile; 0 otherwise.
	AllocBytes uint64
	// ResidentBytes estimates the heap resident in the SDE store's
	// long-lived structures after eviction (see sdeStore). Recorded
	// only under Options.Profile; 0 otherwise.
	ResidentBytes uint64
	// EvalGoroutines is the peak number of goroutines that evaluated
	// rules concurrently (1 when every stratum ran serially).
	EvalGoroutines int
}

// HoldsAt reports whether a boolean fluent instance holds at t
// according to this result.
func (r *Result) HoldsAt(fluent, key string, t Time) bool {
	m := r.Fluents[fluent]
	if m == nil {
		return false
	}
	return m[KV{Key: key, Value: TrueValue}].Contains(t)
}

// Intervals returns the clipped maximal intervals of a boolean fluent
// instance in this result.
func (r *Result) Intervals(fluent, key string) List {
	m := r.Fluents[fluent]
	if m == nil {
		return nil
	}
	return m[KV{Key: key, Value: TrueValue}]
}

// ruleOutput collects what one rule evaluation produced, so concurrent
// evaluation can defer every shared-state mutation to the stratum
// barrier and apply it in definition order (deterministic regardless
// of goroutine scheduling).
type ruleOutput struct {
	trans  []Transition // simple: window-filtered transition points (next cache)
	full   map[KV]List  // simple: un-clipped maximal intervals
	static map[KV]List  // static: normalised instance intervals
	events []Event      // event: in-window recognised instances
}

// Query evaluates all CE definitions at query time q. Query times must
// be strictly increasing. SDEs that took place before or on q−WM are
// discarded permanently (RTEC's windowing); delayed SDEs inside the
// window are incorporated by re-evaluating the affected region —
// either the whole window, or, for rules with declared Locality and a
// clean overlap, just the head/tail slices around the cached middle
// (see incremental.go).
func (e *Engine) Query(q Time) (*Result, error) {
	if e.started && q <= e.lastQ {
		return nil, fmt.Errorf("rtec: query times must increase (got %d after %d)", q, e.lastQ)
	}
	begin := time.Now() //lint:allow nodeterminism wall-clock feeds only Stats.Elapsed, never the recognition result
	var memBefore runtime.MemStats
	if e.opts.Profile {
		runtime.ReadMemStats(&memBefore)
	}
	wm := e.opts.WorkingMemory
	windowStart := q - wm + 1
	window := Span{Start: windowStart, End: q + 1}

	// Discard SDEs at or before q−WM. SDEs after q stay in the store
	// but are hidden by the context view (they have not happened yet
	// from this query's standpoint).
	e.store.evict(q - wm)
	ctx := newStoreContext(q, window, e.store)

	res := &Result{
		Q:       q,
		Window:  window,
		Fluents: make(map[string]map[KV]List),
		Derived: make(map[string][]Event),
	}
	newPrev := make(map[string]map[KV]List, len(e.prev))
	newCache := make(map[string]*ruleCache, len(e.cache))
	if e.opts.Profile {
		res.RuleCosts = make(map[string]time.Duration, len(e.defs.rules))
	}
	for typ := range e.defs.sdeTypes {
		if b := e.store.bucket(typ); b != nil {
			res.Stats.InputEvents += b.countInSpan(ctx.view)
		}
	}

	workers := e.opts.RuleWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outs := make([]ruleOutput, len(e.defs.rules))
	var costMu sync.Mutex

	evalOne := func(i int) {
		rule := &e.defs.rules[i]
		var ruleStart time.Time
		if e.opts.Profile {
			ruleStart = time.Now() //lint:allow nodeterminism wall-clock feeds only Stats.RuleCosts profiling, never the recognition result
		}
		switch rule.kind {
		case kindSimple:
			var trans []Transition
			if p, ok := e.planSplice(i, q, windowStart); ok {
				trans = spliceTransitions(rule, e.cache[rule.name], p, ctx, windowStart, q)
			} else {
				trans = cacheTransitions(rule.simple.Transitions(ctx), windowStart, q)
			}
			outs[i].trans = trans
			outs[i].full = evalSimpleFluent(trans, e.prev[rule.name], window, q)
		case kindStatic:
			inst := rule.static.HoldsFor(ctx)
			norm := make(map[KV]List, len(inst))
			for kv, l := range inst {
				if kv.Value == "" {
					kv.Value = TrueValue
				}
				if !l.Valid() {
					l = interval.Normalize(l)
				}
				if len(l) > 0 {
					norm[kv] = l
				}
			}
			outs[i].static = norm
		case kindEvent:
			var inWindow []Event
			if p, ok := e.planSplice(i, q, windowStart); ok {
				inWindow = spliceEvents(rule, e.cache[rule.name], p, ctx, windowStart, q)
			} else {
				evs := rule.event.Derive(ctx)
				inWindow = evs[:0]
				for _, ev := range evs {
					if window.Contains(ev.Time) {
						ev.Type = rule.name
						inWindow = append(inWindow, ev)
					}
				}
			}
			outs[i].events = inWindow
		}
		if e.opts.Profile {
			d := time.Since(ruleStart)
			costMu.Lock()
			res.RuleCosts[rule.name] += d
			costMu.Unlock()
		}
	}

	// Evaluate stratum by stratum (rules are sorted by stratum).
	// Within a stratum rules never read each other, so they run
	// concurrently on a bounded pool; the stratum barrier then applies
	// their outputs to the shared context in definition order.
	res.Stats.EvalGoroutines = 1
	for lo := 0; lo < len(e.defs.rules); {
		hi := lo + 1
		for hi < len(e.defs.rules) && e.defs.rules[hi].stratum == e.defs.rules[lo].stratum {
			hi++
		}
		if par := min(workers, hi-lo); par > 1 {
			if par > res.Stats.EvalGoroutines {
				res.Stats.EvalGoroutines = par
			}
			idx := make(chan int, hi-lo)
			for i := lo; i < hi; i++ {
				idx <- i
			}
			close(idx)
			var wg sync.WaitGroup
			wg.Add(par)
			for w := 0; w < par; w++ {
				go func() {
					defer wg.Done()
					for i := range idx {
						evalOne(i)
					}
				}()
			}
			wg.Wait()
		} else {
			for i := lo; i < hi; i++ {
				evalOne(i)
			}
		}
		for i := lo; i < hi; i++ {
			rule := &e.defs.rules[i]
			switch rule.kind {
			case kindSimple:
				full := outs[i].full
				ctx.setFluent(rule.name, full)
				newPrev[rule.name] = full
				res.Fluents[rule.name] = clipInstances(full, window)
				newCache[rule.name] = &ruleCache{q: q, trans: outs[i].trans}
			case kindStatic:
				ctx.setFluent(rule.name, outs[i].static)
				res.Fluents[rule.name] = clipInstances(outs[i].static, window)
			case kindEvent:
				ctx.addEvents(rule.name, outs[i].events)
				res.Derived[rule.name] = outs[i].events
				newCache[rule.name] = &ruleCache{q: q, evs: outs[i].events}
			}
		}
		lo = hi
	}

	// Fresh derived events: not seen at any earlier query time. When
	// the same identity (type, key, time) is derived more than once in
	// one query with different attributes — e.g. two buses disagreeing
	// with the same intersection at the same second — the survivor is
	// the one with the smallest canonical attribute rendering, not
	// whichever happened to be derived first: that makes the choice
	// independent of derivation interleaving, so a sharded tier
	// collapsing per-shard fresh sets picks the same survivor this
	// single engine does (see CanonicalAttrs).
	var fresh []Event
	var freshIdx map[derivedID]int
	for _, evs := range res.Derived {
		for _, ev := range evs {
			id := derivedID{typ: ev.Type, key: ev.Key, time: ev.Time}
			if e.seen[id] {
				if j, ok := freshIdx[id]; ok && CanonicalAttrs(ev) < CanonicalAttrs(fresh[j]) {
					fresh[j] = ev
				}
				continue
			}
			e.seen[id] = true
			if freshIdx == nil {
				freshIdx = make(map[derivedID]int)
			}
			freshIdx[id] = len(fresh)
			//lint:allow nodeterminism sortEvents below restores the total (time,type,key) order; surviving identities are unique
			fresh = append(fresh, ev)
		}
	}
	sortEvents(fresh)
	res.Fresh = fresh
	// Prune the seen set as instances fall out of reach.
	for id := range e.seen {
		if id.time <= q-wm {
			delete(e.seen, id)
		}
	}

	for _, evs := range res.Derived {
		res.Stats.DerivedEvents += len(evs)
	}
	for _, m := range res.Fluents {
		for _, l := range m {
			res.Stats.FluentPeriods += len(l)
		}
	}
	res.Stats.Elapsed = time.Since(begin)
	if e.opts.Profile {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		res.Stats.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
		res.Stats.ResidentBytes = e.store.residentBytes()
	}

	e.prev = newPrev
	e.cache = newCache
	e.store.clearDirty()
	e.lastQ = q
	e.started = true
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Run evaluates at the regular query times start, start+Step,
// start+2·Step, ... while until > query time, feeding each result to
// the callback. It stops early if the callback returns an error.
func (e *Engine) Run(start, until Time, fn func(*Result) error) error {
	if e.opts.Step <= 0 {
		return fmt.Errorf("rtec: Run requires a positive step")
	}
	for q := start; q <= until; q += e.opts.Step {
		res, err := e.Query(q)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(res); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalSimpleFluent turns a rule's transition points into maximal
// interval lists under inertia. prev seeds the value at the window
// start; initiating one value of a fluent instance terminates every
// other value at the same instant.
func evalSimpleFluent(trans []Transition, prev map[KV]List, window Span, q Time) map[KV]List {
	type pts struct {
		ini []Time
		ter []Time
	}
	groups := make(map[KV]*pts)
	valuesByKey := make(map[string]map[string]bool)

	note := func(kv KV) *pts {
		g := groups[kv]
		if g == nil {
			g = &pts{}
			groups[kv] = g
			vs := valuesByKey[kv.Key]
			if vs == nil {
				vs = make(map[string]bool)
				valuesByKey[kv.Key] = vs
			}
			vs[kv.Value] = true
		}
		return g
	}

	for _, tr := range trans {
		if tr.Value == "" {
			tr.Value = TrueValue
		}
		// Transitions must be observable in the window: the earliest
		// effective point is windowStart−1 (whose effect begins at
		// windowStart); anything after q cannot have been derived
		// from window events.
		if tr.Time < window.Start-1 || tr.Time > q {
			continue
		}
		g := note(KV{Key: tr.Key, Value: tr.Value})
		if tr.Kind == Initiate {
			g.ini = append(g.ini, tr.Time)
		} else {
			g.ter = append(g.ter, tr.Time)
		}
	}

	// Carry over instances holding at the window start (inertia
	// across windows).
	holdsAtStart := make(map[KV]bool)
	for kv, l := range prev {
		if l.Contains(window.Start) {
			holdsAtStart[kv] = true
			note(kv)
		}
	}

	// An initiation of value V at T terminates every other value of
	// the same key at T.
	for key, vs := range valuesByKey {
		if len(vs) < 2 {
			continue
		}
		for v := range vs {
			g := groups[KV{Key: key, Value: v}]
			for other := range vs {
				if other == v {
					continue
				}
				og := groups[KV{Key: key, Value: other}]
				g.ter = append(g.ter, og.ini...)
			}
		}
	}

	out := make(map[KV]List, len(groups))
	for kv, g := range groups {
		l := interval.FromTransitions(g.ini, g.ter, holdsAtStart[kv], window.Start, interval.MaxTime)
		if len(l) > 0 {
			out[kv] = l
		}
	}
	return out
}

func clipInstances(full map[KV]List, window Span) map[KV]List {
	out := make(map[KV]List, len(full))
	for kv, l := range full {
		if c := interval.Clip(l, window); len(c) > 0 {
			out[kv] = c
		}
	}
	return out
}
