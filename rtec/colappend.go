package rtec

import "sort"

// Column append paths of the resident column store. The segment's
// columns must all stay exactly rowCount long: every insert appends
// one cell to every resident column (a packed value, or a zero plus an
// absent mark when the event lacks the attribute), and attributes the
// segment has not seen yet open a new column whose earlier rows are
// backfilled absent. Events of one type normally share an attribute
// schema, so the masks and the boxed fallback column exist for
// correctness, not for the hot path: homogeneous blocks append with no
// Present mask at all.

// colLen returns the column's cell count.
func colLen(c *BCol) int {
	switch c.Kind {
	case ColFloat:
		return len(c.F)
	case ColInt:
		return len(c.I)
	case ColBool:
		return len(c.B)
	case ColIntGo:
		return len(c.N)
	case ColAny:
		return len(c.A)
	default:
		return len(c.SIdx)
	}
}

// cellValue is getAt without the column lookup: the boxed value of one
// cell and whether it is present.
func cellValue(c *BCol, row int) (any, bool) {
	if !c.present(row) {
		return nil, false
	}
	switch c.Kind {
	case ColFloat:
		return c.F[row], true
	case ColInt:
		return c.I[row], true
	case ColBool:
		return c.B[row], true
	case ColIntGo:
		return c.N[row], true
	case ColAny:
		return c.A[row], true
	default:
		return c.Dict[c.SIdx[row]], true
	}
}

// ensurePresent materialises the Present mask as all-true over the
// first n cells (the column so far had a value on every row).
func (c *BCol) ensurePresent(n int) {
	if c.Present != nil {
		return
	}
	c.Present = make([]bool, n)
	for i := range c.Present {
		c.Present[i] = true
	}
}

// appendPresent marks the freshly appended cell present, if the column
// tracks presence at all.
func (c *BCol) appendPresent() {
	if c.Present != nil {
		c.Present = append(c.Present, true)
	}
}

// appendZero appends the kind's zero cell (only meaningful together
// with an absent mark).
func (c *BCol) appendZero() {
	switch c.Kind {
	case ColFloat:
		c.F = append(c.F, 0)
	case ColInt:
		c.I = append(c.I, 0)
	case ColBool:
		c.B = append(c.B, false)
	case ColIntGo:
		c.N = append(c.N, 0)
	case ColAny:
		c.A = append(c.A, nil)
	default:
		c.SIdx = append(c.SIdx, 0)
	}
}

// internStr interns a value in the column dictionary, building the
// lookup map lazily (restored and compacted columns rebuild it on
// first use).
func (c *BCol) internStr(v string) uint32 {
	if c.dict == nil {
		c.dict = make(map[string]uint32, len(c.Dict))
		for i, s := range c.Dict {
			c.dict[s] = uint32(i)
		}
	}
	if si, ok := c.dict[v]; ok {
		return si
	}
	si := uint32(len(c.Dict))
	c.dict[v] = si
	c.Dict = append(c.Dict, v)
	return si
}

// promoteToAny re-boxes a packed column whose rows turned out to mix
// value types. Rare by construction; presence marks carry over.
func (c *BCol) promoteToAny(n int) {
	a := make([]any, n)
	for i := 0; i < n; i++ {
		if v, ok := cellValue(c, i); ok {
			a[i] = v
		}
	}
	c.Kind = ColAny
	c.A = a
	c.F, c.I, c.B, c.N, c.SIdx, c.Dict, c.dict = nil, nil, nil, nil, nil, nil, nil
}

// appendCell appends one cell: the value if the event carries the
// attribute (promoting the column on a kind mismatch), an absent zero
// otherwise. prior is the cell count before this append.
func (c *BCol) appendCell(v any, ok bool, prior int) {
	if !ok {
		c.ensurePresent(prior)
		c.Present = append(c.Present, false)
		c.appendZero()
		return
	}
	switch c.Kind {
	case ColFloat:
		if f, is := v.(float64); is {
			c.F = append(c.F, f)
			c.appendPresent()
			return
		}
	case ColInt:
		if i, is := v.(int64); is {
			c.I = append(c.I, i)
			c.appendPresent()
			return
		}
	case ColBool:
		if b, is := v.(bool); is {
			c.B = append(c.B, b)
			c.appendPresent()
			return
		}
	case ColIntGo:
		if i, is := v.(int); is {
			c.N = append(c.N, i)
			c.appendPresent()
			return
		}
	case ColStr:
		if s, is := v.(string); is {
			c.SIdx = append(c.SIdx, c.internStr(s))
			c.appendPresent()
			return
		}
	case ColAny:
		c.A = append(c.A, v)
		c.appendPresent()
		return
	}
	c.promoteToAny(prior)
	c.A = append(c.A, v)
	c.appendPresent()
}

// newColFor opens a column for an attribute first seen on row prior:
// the kind matches the value's boxed type, earlier rows are backfilled
// absent.
func newColFor(name string, v any, prior int) BCol {
	c := BCol{Name: name}
	switch v.(type) {
	case float64:
		c.Kind = ColFloat
		c.F = make([]float64, prior)
	case int64:
		c.Kind = ColInt
		c.I = make([]int64, prior)
	case int:
		c.Kind = ColIntGo
		c.N = make([]int, prior)
	case bool:
		c.Kind = ColBool
		c.B = make([]bool, prior)
	case string:
		c.Kind = ColStr
		c.SIdx = make([]uint32, prior)
	default:
		c.Kind = ColAny
		c.A = make([]any, prior)
	}
	if prior > 0 {
		c.Present = make([]bool, prior) // all absent so far
	}
	c.appendCell(v, true, prior)
	return c
}

// appendAttrs appends the freshly added row's attribute cells: one per
// resident column, plus new columns for attributes the segment has not
// seen. The event may be map-backed or a view — both read through the
// accessors.
func (sg *colSeg) appendAttrs(ev Event) {
	prior := len(sg.blk.Times) - 1
	for ci := range sg.blk.Cols {
		c := &sg.blk.Cols[ci]
		v, ok := ev.Get(c.Name)
		c.appendCell(v, ok, prior)
	}
	for _, name := range newAttrNames(ev, &sg.blk) {
		v, _ := ev.Get(name)
		sg.blk.Cols = append(sg.blk.Cols, newColFor(name, v, prior))
	}
}

// newAttrNames lists the event's attribute names with no resident
// column yet, in a deterministic order (sorted for map events, column
// order for views) so the segment layout is run-stable.
func newAttrNames(ev Event, blk *Block) []string {
	var out []string
	if ev.blk != nil {
		for ci := range ev.blk.Cols {
			c := &ev.blk.Cols[ci]
			if c.present(int(ev.row)) && blk.colIndex(c.Name) < 0 {
				out = append(out, c.Name)
			}
		}
		return out
	}
	for name := range ev.Attrs {
		if blk.colIndex(name) < 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// appendCols bulk-appends the given source rows to the resident
// columns, matching columns by name: same-kind columns append packed
// (string columns translate dictionary ids lazily, one interning per
// distinct value used), mismatches promote to the boxed column, source
// columns the segment lacks open backfilled, and resident columns the
// source lacks get absent cells. rows gather from src; the times for
// the new rows must already be appended.
func (sg *colSeg) appendCols(src *Block, rows []int32) {
	rowCount := len(sg.blk.Times)
	prior := rowCount - len(rows)
	for si := range src.Cols {
		sc := &src.Cols[si]
		ci := sg.blk.colIndex(sc.Name)
		if ci < 0 {
			sg.blk.Cols = append(sg.blk.Cols, newColFrom(sc, rows, prior))
			continue
		}
		sg.blk.Cols[ci].appendFrom(sc, rows)
	}
	for ci := range sg.blk.Cols {
		c := &sg.blk.Cols[ci]
		if n := colLen(c); n < rowCount {
			c.ensurePresent(n)
			for ; n < rowCount; n++ {
				c.Present = append(c.Present, false)
				c.appendZero()
			}
		}
	}
}

// newColFrom opens a resident column for a source column first seen at
// row prior, backfilling earlier rows absent.
func newColFrom(sc *BCol, rows []int32, prior int) BCol {
	c := BCol{Name: sc.Name, Kind: sc.Kind}
	switch sc.Kind {
	case ColFloat:
		c.F = make([]float64, prior, prior+len(rows))
	case ColInt:
		c.I = make([]int64, prior, prior+len(rows))
	case ColBool:
		c.B = make([]bool, prior, prior+len(rows))
	case ColIntGo:
		c.N = make([]int, prior, prior+len(rows))
	case ColAny:
		c.A = make([]any, prior, prior+len(rows))
	default:
		c.SIdx = make([]uint32, prior, prior+len(rows))
	}
	if prior > 0 {
		c.Present = make([]bool, prior, prior+len(rows)) // all absent so far
	}
	c.appendFrom(sc, rows)
	return c
}

// appendFrom appends the source rows' cells to the column.
func (c *BCol) appendFrom(sc *BCol, rows []int32) {
	if c.Kind != sc.Kind && c.Kind != ColAny {
		c.promoteToAny(colLen(c))
	}
	if c.Kind == ColAny {
		for _, r := range rows {
			v, ok := cellValue(sc, int(r))
			if !ok {
				c.ensurePresent(len(c.A))
				c.Present = append(c.Present, false)
				c.A = append(c.A, nil)
				continue
			}
			c.A = append(c.A, v)
			c.appendPresent()
		}
		return
	}
	if sc.Present != nil {
		c.ensurePresent(colLen(c))
	}
	switch c.Kind {
	case ColFloat:
		for _, r := range rows {
			c.F = append(c.F, sc.F[r])
		}
	case ColInt:
		for _, r := range rows {
			c.I = append(c.I, sc.I[r])
		}
	case ColBool:
		for _, r := range rows {
			c.B = append(c.B, sc.B[r])
		}
	case ColIntGo:
		for _, r := range rows {
			c.N = append(c.N, sc.N[r])
		}
	default: // ColStr: translate dictionary ids lazily
		const unset = ^uint32(0)
		var tr []uint32
		for _, r := range rows {
			if sc.Present != nil && !sc.Present[r] {
				c.SIdx = append(c.SIdx, 0)
				continue
			}
			si := sc.SIdx[r]
			if tr == nil {
				tr = make([]uint32, len(sc.Dict))
				for i := range tr {
					tr[i] = unset
				}
			}
			if tr[si] == unset {
				tr[si] = c.internStr(sc.Dict[si])
			}
			c.SIdx = append(c.SIdx, tr[si])
		}
	}
	if c.Present != nil {
		if sc.Present == nil {
			for range rows {
				c.Present = append(c.Present, true)
			}
		} else {
			for _, r := range rows {
				c.Present = append(c.Present, sc.Present[r])
			}
		}
	}
}
