package rtec

import (
	"fmt"
	"sort"
	"strings"
)

// TransitionKind distinguishes initiation from termination points.
type TransitionKind int

// Transition kinds.
const (
	Initiate TransitionKind = iota
	Terminate
)

// Transition is an initiatedAt/terminatedAt point for a simple fluent:
// at Time, a period of Fluent(Key) = Value begins or ends. An empty
// Value means TrueValue.
type Transition struct {
	Kind  TransitionKind
	Key   string
	Value string
	Time  Time
}

// InitiateAt builds an initiation point for a boolean fluent.
func InitiateAt(key string, t Time) Transition {
	return Transition{Kind: Initiate, Key: key, Value: TrueValue, Time: t}
}

// TerminateAt builds a termination point for a boolean fluent.
func TerminateAt(key string, t Time) Transition {
	return Transition{Kind: Terminate, Key: key, Value: TrueValue, Time: t}
}

// Locality declares the temporal locality of a rule, which is what
// licenses the engine's incremental overlap reuse (see incremental.go).
// A rule is local when its output at time T is fully determined by the
// input events it can observe in (T-Lookback, T+Lookahead] together
// with the values of its input fluents over that same range. The zero
// value declares a rule non-local: it is re-evaluated over the whole
// window at every query, which is always safe.
//
// Declaring locality the rule does not actually have is a programming
// error of the same class as reading an undeclared input: the
// incremental path may then reuse stale results. Options.
// ForceFullRecompute disables all reuse for debugging such rules.
type Locality struct {
	// Local enables incremental reuse for the rule.
	Local bool
	// Lookback bounds how far before T an input event may influence
	// the rule's output at T.
	Lookback Time
	// Lookahead bounds how far after T an input event may influence
	// the rule's output at T (e.g. the crowd-confirmation window of
	// the paper's rule-set (4), which initiates noisy at the earlier
	// disagreement time).
	Lookahead Time
}

// Pointwise is the locality of rules whose output at T depends only on
// inputs at exactly T — threshold rules like the paper's
// scatsCongestion.
func Pointwise() Locality { return Locality{Local: true} }

// LocalWindow declares a bounded locality window around each output
// time.
func LocalWindow(lookback, lookahead Time) Locality {
	return Locality{Local: true, Lookback: lookback, Lookahead: lookahead}
}

// SimpleFluent defines a simple fluent in the sense of RTEC: its
// maximal intervals are computed from initiation and termination
// points under the law of inertia. Transitions is called once per
// query with the window Context and returns all initiatedAt /
// terminatedAt points the rule derives inside the window, in any
// order. Initiating F(Key)=V implicitly terminates any other value of
// F(Key) at the same instant (a fluent has one value at a time).
type SimpleFluent struct {
	// Name of the fluent (shared namespace with event types).
	Name string
	// Inputs lists the event types and fluent names the rule reads.
	// They determine the evaluation order (stratification); reading
	// anything not listed is a programming error that may observe
	// stale values.
	Inputs []string
	// Transitions derives the initiation/termination points.
	Transitions func(ctx *Context) []Transition
	// Locality optionally declares temporal locality, enabling
	// incremental evaluation over overlapping windows.
	Locality Locality
}

// StaticFluent defines a statically determined fluent: its maximal
// intervals are computed directly by interval manipulation over other
// fluents and events (RTEC's union_all, intersect_all and
// relative_complement_all constructs). HoldsFor is called once per
// query and returns the interval list per fluent instance.
type StaticFluent struct {
	Name     string
	Inputs   []string
	HoldsFor func(ctx *Context) map[KV]IntervalList
}

// IntervalList re-exports interval.List for rule signatures.
type IntervalList = List

// EventRule defines a derived (output) event type: Derive is called
// once per query and returns the instances recognised inside the
// window, e.g. the paper's delayIncrease, disagree and agree CEs.
type EventRule struct {
	Name   string
	Inputs []string
	Derive func(ctx *Context) []Event
	// Locality optionally declares temporal locality, enabling
	// incremental evaluation over overlapping windows.
	Locality Locality
}

// Definitions is a compiled, stratified CE definition set. Build one
// with NewDefinitions.
type Definitions struct {
	sdeTypes map[string]bool
	rules    []compiledRule // in evaluation order
	names    map[string]ruleKind
	meta     []ruleMeta // incremental-evaluation metadata, aligned with rules
}

type ruleKind int

const (
	kindSDE ruleKind = iota
	kindSimple
	kindStatic
	kindEvent
)

type compiledRule struct {
	kind     ruleKind
	name     string
	inputs   []string
	simple   *SimpleFluent
	static   *StaticFluent
	event    *EventRule
	stratum  int
	locality Locality
}

// Builder accumulates SDE declarations and CE definitions and compiles
// them into a stratified Definitions set.
type Builder struct {
	sdeTypes []string
	simple   []SimpleFluent
	static   []StaticFluent
	events   []EventRule
}

// NewBuilder returns an empty definition builder.
func NewBuilder() *Builder { return &Builder{} }

// DeclareSDE registers the input (simple derived event) types the
// engine will receive, e.g. "move" and "traffic" in the Dublin
// deployment. Rules may list them as Inputs.
func (b *Builder) DeclareSDE(types ...string) *Builder {
	b.sdeTypes = append(b.sdeTypes, types...)
	return b
}

// Simple adds a simple fluent definition.
func (b *Builder) Simple(f SimpleFluent) *Builder {
	b.simple = append(b.simple, f)
	return b
}

// Static adds a statically determined fluent definition.
func (b *Builder) Static(f StaticFluent) *Builder {
	b.static = append(b.static, f)
	return b
}

// Event adds a derived event definition.
func (b *Builder) Event(r EventRule) *Builder {
	b.events = append(b.events, r)
	return b
}

// Compile checks the definition set (unique names, known inputs,
// acyclic dependencies) and produces the stratified Definitions.
func (b *Builder) Compile() (*Definitions, error) {
	d := &Definitions{
		sdeTypes: make(map[string]bool),
		names:    make(map[string]ruleKind),
	}
	for _, t := range b.sdeTypes {
		if _, dup := d.names[t]; dup {
			return nil, fmt.Errorf("rtec: duplicate name %q", t)
		}
		d.names[t] = kindSDE
		d.sdeTypes[t] = true
	}
	var all []compiledRule
	add := func(kind ruleKind, name string, inputs []string, cr compiledRule) error {
		if name == "" {
			return fmt.Errorf("rtec: definition with empty name")
		}
		if _, dup := d.names[name]; dup {
			return fmt.Errorf("rtec: duplicate name %q", name)
		}
		d.names[name] = kind
		cr.kind, cr.name, cr.inputs = kind, name, inputs
		all = append(all, cr)
		return nil
	}
	for i := range b.simple {
		f := &b.simple[i]
		if f.Transitions == nil {
			return nil, fmt.Errorf("rtec: simple fluent %q has no Transitions func", f.Name)
		}
		if err := add(kindSimple, f.Name, f.Inputs, compiledRule{simple: f, locality: f.Locality}); err != nil {
			return nil, err
		}
	}
	for i := range b.static {
		f := &b.static[i]
		if f.HoldsFor == nil {
			return nil, fmt.Errorf("rtec: static fluent %q has no HoldsFor func", f.Name)
		}
		if err := add(kindStatic, f.Name, f.Inputs, compiledRule{static: f}); err != nil {
			return nil, err
		}
	}
	for i := range b.events {
		r := &b.events[i]
		if r.Derive == nil {
			return nil, fmt.Errorf("rtec: event rule %q has no Derive func", r.Name)
		}
		if err := add(kindEvent, r.Name, r.Inputs, compiledRule{event: r, locality: r.Locality}); err != nil {
			return nil, err
		}
	}

	// Validate inputs and stratify with a longest-path layering over
	// the dependency DAG (SDEs are stratum 0).
	index := make(map[string]int, len(all))
	for i, r := range all {
		index[r.name] = i
	}
	for _, r := range all {
		for _, in := range r.inputs {
			if _, known := d.names[in]; !known {
				return nil, fmt.Errorf("rtec: %q depends on unknown input %q (declare SDE types with DeclareSDE)", r.name, in)
			}
		}
	}
	const unset = -1
	strata := make([]int, len(all))
	for i := range strata {
		strata[i] = unset
	}
	visiting := make([]bool, len(all))
	var assign func(i int) (int, error)
	assign = func(i int) (int, error) {
		if strata[i] != unset {
			return strata[i], nil
		}
		if visiting[i] {
			return 0, fmt.Errorf("rtec: cyclic dependency through %q", all[i].name)
		}
		visiting[i] = true
		defer func() { visiting[i] = false }()
		level := 1 // rules start at stratum 1; SDEs are stratum 0
		for _, in := range all[i].inputs {
			j, isRule := index[in]
			if !isRule {
				continue // SDE, stratum 0
			}
			dep, err := assign(j)
			if err != nil {
				return 0, err
			}
			if dep+1 > level {
				level = dep + 1
			}
		}
		strata[i] = level
		return strata[i], nil
	}
	for i := range all {
		if _, err := assign(i); err != nil {
			return nil, err
		}
	}
	for i := range all {
		all[i].stratum = strata[i]
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].stratum < all[j].stratum })
	d.rules = all
	d.meta = computeMeta(d)
	return d, nil
}

// Names returns all defined names (SDEs and rules), for diagnostics.
func (d *Definitions) Names() []string {
	out := make([]string, 0, len(d.names))
	for n := range d.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsSDE reports whether name was declared as an input SDE type.
func (d *Definitions) IsSDE(name string) bool { return d.sdeTypes[name] }

// Strata returns the rule names grouped by evaluation stratum, lowest
// first, for diagnostics.
func (d *Definitions) Strata() [][]string {
	var out [][]string
	for _, r := range d.rules {
		for len(out) < r.stratum {
			out = append(out, nil)
		}
		out[r.stratum-1] = append(out[r.stratum-1], r.name)
	}
	return out
}

// Describe renders the compiled definition set — SDE vocabulary and
// rules in evaluation order with their kinds and dependencies — for
// diagnostics and documentation.
func (d *Definitions) Describe() string {
	var b strings.Builder
	var sdes []string
	for t := range d.sdeTypes {
		sdes = append(sdes, t)
	}
	sort.Strings(sdes)
	fmt.Fprintf(&b, "SDE types: %s\n", strings.Join(sdes, ", "))
	for _, r := range d.rules {
		kind := "?"
		switch r.kind {
		case kindSimple:
			kind = "simple fluent"
		case kindStatic:
			kind = "static fluent"
		case kindEvent:
			kind = "derived event"
		}
		fmt.Fprintf(&b, "stratum %d  %-24s %-13s <- %s\n",
			r.stratum, r.name, kind, strings.Join(r.inputs, ", "))
	}
	return b.String()
}
