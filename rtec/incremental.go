package rtec

// Incremental windowed evaluation (overlap caching).
//
// When the window slides by less than its length (Step < WM, the
// paper's Fig. 2 configuration for delayed SDEs), consecutive windows
// overlap and a full re-evaluation repeats most of the previous
// query's work. For rules with declared temporal Locality the engine
// instead splices three pieces at query time Q (previous query q0):
//
//	head   [W-1, W-1+H)   recomputed — support was truncated by the
//	                      slide (events before the new window start
//	                      have been evicted);
//	kept   [W-1+H, q0-A]  reused from the previous query's cache;
//	tail   (q0-A, Q]      recomputed — the fresh step region, plus
//	                      however far back fresh events can reach
//	                      through the rule's lookahead.
//
// where W = Q-WM+1 is the window start, H is the rule's effective
// lookback horizon and A its effective lookahead, both closed over the
// rule's transitive inputs (a rule is only as local as what it reads).
// The recomputed pieces call the rule's own function against a context
// whose event visibility is narrowed to exactly the support the piece
// needs, so the rule scans O(step) instead of O(window) events.
//
// Reuse is sound only if the cached region is bit-identical to what a
// full re-evaluation would produce. Three gates enforce that:
//
//  1. the rule (and everything it transitively reads) declares finite
//     Locality — non-local rules always recompute;
//  2. simple-fluent inputs must have H = 0: under inertia a changed
//     transition near the window start shifts values arbitrarily far
//     forward, so only head-stable fluents have stable overlap values;
//  3. SDEs of the rule's transitive input types that arrived late (at
//     or before q0) shrink the reusable region: the store's dirty
//     watermark is the earliest such arrival, and the kept region ends
//     before everything the late event can influence (floor − A).
//
// Statically determined fluents are always recomputed (interval
// algebra over in-memory lists is cheap) but participate in the
// propagation: RTEC's Table-1 constructs are pointwise in time, so
// they forward their inputs' stability unchanged.

// infTime marks an unbounded horizon. MaxTime doubles as +infinity
// throughout the interval package, so reuse it.
const infTime = MaxTime

// satAdd adds two non-negative horizons, saturating at infinity.
func satAdd(a, b Time) Time {
	if a >= infTime || b >= infTime || a > infTime-b {
		return infTime
	}
	return a + b
}

// ruleMeta is the per-rule incremental metadata computed at Compile.
type ruleMeta struct {
	// sdeDeps is the transitive set of SDE types the rule reads.
	sdeDeps map[string]bool
	// headH is the effective lookback horizon: output at times below
	// windowStart-1+headH may differ from the previous query because
	// support fell out of the window. infTime = never reusable.
	headH Time
	// lookahead is the effective lookahead: output at times above
	// lastQ-lookahead may be influenced by events of the fresh step
	// region. infTime = never reusable.
	lookahead Time
	// valueH is the stability horizon this rule contributes to its
	// readers: derived events are stable beyond headH; simple fluents
	// are stable only when headH == 0 (inertia propagates head changes
	// forward without bound); statics forward their inputs'.
	valueH Time
	// spliceable marks rules (simple or event kind) eligible for
	// overlap reuse.
	spliceable bool
}

// computeMeta derives the incremental metadata for every rule. Rules
// are already sorted by stratum, so inputs are processed before their
// readers.
func computeMeta(d *Definitions) []ruleMeta {
	byName := make(map[string]*ruleMeta, len(d.rules))
	meta := make([]ruleMeta, len(d.rules))
	for i := range d.rules {
		r := &d.rules[i]
		m := &meta[i]
		m.sdeDeps = make(map[string]bool)

		inValueH, inLookahead := Time(0), Time(0)
		for _, in := range r.inputs {
			if d.sdeTypes[in] {
				m.sdeDeps[in] = true
				continue
			}
			im := byName[in]
			if im == nil {
				continue // unreachable after Compile validation
			}
			for s := range im.sdeDeps {
				m.sdeDeps[s] = true
			}
			if im.valueH > inValueH {
				inValueH = im.valueH
			}
			if im.lookahead > inLookahead {
				inLookahead = im.lookahead
			}
		}

		switch r.kind {
		case kindStatic:
			// Recomputed every query; forwards its inputs' stability
			// (Table-1 interval constructs are pointwise in time).
			m.headH = inValueH
			m.lookahead = inLookahead
			m.valueH = inValueH
		default:
			if !r.locality.Local || r.locality.Lookback < 0 || r.locality.Lookahead < 0 {
				m.headH, m.lookahead, m.valueH = infTime, infTime, infTime
				break
			}
			m.headH = satAdd(r.locality.Lookback, inValueH)
			m.lookahead = satAdd(r.locality.Lookahead, inLookahead)
			if r.kind == kindSimple {
				if m.headH == 0 {
					m.valueH = 0
				} else {
					m.valueH = infTime
				}
			} else {
				m.valueH = m.headH
			}
			m.spliceable = m.headH < infTime && m.lookahead < infTime
		}
		byName[r.name] = m
	}
	return meta
}

// ruleCache is one rule's output from the previous query, the reusable
// half of the splice. For simple fluents it holds the transition
// points (value-defaulted, filtered to the window); for event rules
// the recognised in-window events (time-sorted).
type ruleCache struct {
	q     Time // query time the cache was computed at
	trans []Transition
	evs   []Event
}

// splicePlan describes how one rule's evaluation decomposes at query
// time q given a valid cache from lastQ.
type splicePlan struct {
	keepLo, keepHi Time // reusable output times, inclusive
	headView       Span // event visibility for the head recompute (empty = no head)
	tailView       Span // event visibility for the tail recompute
}

// planSplice decides whether rule i can reuse its cached overlap at
// query time q, and if so how. windowStart is q-WM+1.
func (e *Engine) planSplice(i int, q, windowStart Time) (splicePlan, bool) {
	var p splicePlan
	if e.opts.ForceFullRecompute || !e.started {
		return p, false
	}
	m := &e.defs.meta[i]
	if !m.spliceable {
		return p, false
	}
	cache := e.cache[e.defs.rules[i].name]
	if cache == nil || cache.q != e.lastQ {
		return p, false
	}
	p.keepLo = satAdd(windowStart-1, m.headH)
	// Cached output is reusable up to the earliest change the rule can
	// observe: the fresh step region (after lastQ) and any late SDE
	// arrival among its transitive input types, both reaching back by
	// the effective lookahead.
	hi := e.lastQ
	if floor := e.store.dirtyFloor(m.sdeDeps); floor-1 < hi {
		hi = floor - 1
	}
	p.keepHi = hi - m.lookahead
	if p.keepLo > p.keepHi {
		return p, false // no overlap worth reusing
	}
	loc := e.defs.rules[i].locality
	if m.headH > 0 {
		// Head outputs t in [windowStart-1, keepLo-1] read events up
		// to t + own lookahead.
		p.headView = Span{Start: windowStart, End: minT(q, satAdd(p.keepLo-1, loc.Lookahead)) + 1}
	}
	// Tail outputs t in (keepHi, q] read events down to t - own
	// lookback.
	tailLo := p.keepHi + 1 - loc.Lookback
	if tailLo < windowStart || loc.Lookback >= infTime {
		tailLo = windowStart
	}
	p.tailView = Span{Start: tailLo, End: q + 1}
	return p, true
}

func minT(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// spliceTransitions evaluates a simple fluent incrementally: cached
// transitions inside the reusable region plus head/tail recomputes
// against narrowed contexts. The result is equivalent to evaluating
// the rule over the full window and is stored as the next cache.
func spliceTransitions(rule *compiledRule, cache *ruleCache, p splicePlan, ctx *Context, windowStart, q Time) []Transition {
	out := make([]Transition, 0, len(cache.trans))
	for _, tr := range cache.trans {
		if tr.Time >= p.keepLo && tr.Time <= p.keepHi {
			out = append(out, tr)
		}
	}
	if !p.headView.Empty() {
		for _, tr := range rule.simple.Transitions(ctx.withView(p.headView)) {
			if tr.Time >= windowStart-1 && tr.Time < p.keepLo {
				out = append(out, normTransition(tr))
			}
		}
	}
	for _, tr := range rule.simple.Transitions(ctx.withView(p.tailView)) {
		if tr.Time > p.keepHi && tr.Time <= q {
			out = append(out, normTransition(tr))
		}
	}
	return out
}

// spliceEvents evaluates an event rule incrementally; the pieces are
// merged back into time order (ties cannot straddle piece boundaries,
// so stable per-piece order is preserved).
func spliceEvents(rule *compiledRule, cache *ruleCache, p splicePlan, ctx *Context, windowStart, q Time) []Event {
	out := make([]Event, 0, len(cache.evs))
	if !p.headView.Empty() {
		for _, ev := range rule.event.Derive(ctx.withView(p.headView)) {
			if ev.Time >= windowStart && ev.Time < p.keepLo {
				ev.Type = rule.name
				out = append(out, ev)
			}
		}
	}
	for _, ev := range cache.evs {
		if ev.Time >= windowStart && ev.Time >= p.keepLo && ev.Time <= p.keepHi {
			out = append(out, ev)
		}
	}
	for _, ev := range rule.event.Derive(ctx.withView(p.tailView)) {
		if ev.Time > p.keepHi && ev.Time <= q {
			ev.Type = rule.name
			out = append(out, ev)
		}
	}
	return out
}

// cacheTransitions filters and value-defaults a full evaluation's
// transitions for reuse at the next query.
func cacheTransitions(trans []Transition, windowStart, q Time) []Transition {
	out := make([]Transition, 0, len(trans))
	for _, tr := range trans {
		if tr.Time >= windowStart-1 && tr.Time <= q {
			out = append(out, normTransition(tr))
		}
	}
	return out
}

func normTransition(tr Transition) Transition {
	if tr.Value == "" {
		tr.Value = TrueValue
	}
	return tr
}
