package rtec

import (
	"errors"
	"fmt"
	"testing"
)

// Window-boundary semantics: an event exactly at Q-WM is discarded;
// one at Q-WM+1 is kept.
func TestWindowBoundaryInclusion(t *testing.T) {
	defs := onOffDefs(t)
	e, _ := NewEngine(defs, Options{WorkingMemory: 100})
	if err := e.Input(
		ev("on", 100, "edge"), // exactly Q-WM for Q=200: discarded
		ev("on", 101, "kept"), // first point inside the window
	); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals("power", "edge")) != 0 {
		t.Errorf("event at Q-WM must be discarded: %v", res.Intervals("power", "edge"))
	}
	if res.Intervals("power", "kept").Empty() {
		t.Error("event at Q-WM+1 must be considered")
	}
	if res.Stats.InputEvents != 1 {
		t.Errorf("InputEvents = %d, want 1", res.Stats.InputEvents)
	}
}

// An event exactly at Q is visible at Q.
func TestEventAtQueryTimeVisible(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 100})
	if err := e.Input(ev("on", 50, "x")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	// Initiated at 50 -> holds from 51, which is outside [Q-WM+1, Q+1)?
	// No: the window is [-49, 51), so the single point 50... the fluent
	// holds on [51, ...) which clips to empty. The EVENT is visible
	// (InputEvents = 1) even though the fluent has no in-window extent
	// yet.
	if res.Stats.InputEvents != 1 {
		t.Errorf("InputEvents = %d, want 1", res.Stats.InputEvents)
	}
	if len(res.Intervals("power", "x")) != 0 {
		t.Errorf("fluent initiated at Q has no extent before Q+1: %v", res.Intervals("power", "x"))
	}
	// At the next query the fluent shows up.
	res, err = e.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HoldsAt("power", "x", 60) {
		t.Error("fluent must hold after initiation at previous Q")
	}
}

// Step larger than WM leaves unobserved gaps; inertia must still carry
// open fluents across them.
func TestInertiaAcrossGap(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 50, Step: 200})
	if err := e.Input(ev("on", 80, "x")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HoldsAt("power", "x", 90) {
		t.Fatal("fluent must hold in the first window")
	}
	// Next query at 300: window (250, 300]; nothing happened since.
	res, err = e.Query(300)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HoldsAt("power", "x", 280) {
		t.Error("open fluent must persist across the unobserved gap")
	}
	// Events inside the gap are lost entirely (windowing semantics):
	// an "off" at 150 that arrives late changes nothing.
	if err := e.Input(ev("off", 150, "x")); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HoldsAt("power", "x", 480) {
		t.Error("event lost in the gap must not retroactively terminate")
	}
}

func TestFreshSetPruned(t *testing.T) {
	defs, err := NewBuilder().
		DeclareSDE("ping").
		Event(EventRule{
			Name:   "echo",
			Inputs: []string{"ping"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				for _, e := range ctx.Events("ping") {
					out = append(out, NewEvent("echo", e.Time, e.Key, nil))
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(defs, Options{WorkingMemory: 100, Step: 100})
	for q := Time(100); q <= 1000; q += 100 {
		if err := e.Input(ev("ping", q-50, "x")); err != nil {
			t.Fatal(err)
		}
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Fresh) != 1 {
			t.Fatalf("Q=%d: Fresh = %v", q, res.Fresh)
		}
	}
	// The seen-set must not accumulate entries forever.
	if n := len(e.seen); n > 2 {
		t.Errorf("seen set grew to %d entries; pruning broken", n)
	}
}

func TestResultAccessorsNilSafety(t *testing.T) {
	r := &Result{Fluents: map[string]map[KV]List{}}
	if r.HoldsAt("ghost", "x", 1) {
		t.Error("missing fluent must not hold")
	}
	if r.Intervals("ghost", "x") != nil {
		t.Error("missing fluent must have no intervals")
	}
}

func TestRunPropagatesCallbackError(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 10, Step: 10})
	boom := errors.New("boom")
	err := e.Run(10, 100, func(r *Result) error {
		if r.Q >= 30 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Run error = %v, want boom", err)
	}
	// Run with zero step is rejected (guarded before the loop).
	e2, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 10, Step: 10})
	e2.opts.Step = 0
	if err := e2.Run(0, 10, nil); err == nil {
		t.Error("zero step Run must error")
	}
}

// Transitions reported outside the window are ignored rather than
// corrupting the interval computation.
func TestOutOfWindowTransitionsIgnored(t *testing.T) {
	defs, err := NewBuilder().
		DeclareSDE("tick").
		Simple(SimpleFluent{
			Name:   "weird",
			Inputs: []string{"tick"},
			Transitions: func(ctx *Context) []Transition {
				// A buggy rule emitting transitions far outside the
				// window in both directions, plus one valid.
				return []Transition{
					InitiateAt("x", ctx.QueryTime()-10_000),
					InitiateAt("x", ctx.QueryTime()+10_000),
					InitiateAt("x", ctx.QueryTime()-5),
				}
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(defs, Options{WorkingMemory: 100})
	if err := e.Input(ev("tick", 95, "x")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Intervals("weird", "x")
	want := List{{Start: 96, End: 101}}
	if !got.Equal(want) {
		t.Errorf("intervals = %v, want %v (only the in-window initiation)", got, want)
	}
}

// Two engines fed identically produce identical results (no hidden
// global state).
func TestEngineDeterminism(t *testing.T) {
	defs := onOffDefs(t)
	feed := func() *Result {
		e, _ := NewEngine(defs, Options{WorkingMemory: 1000})
		for i := 0; i < 100; i++ {
			typ := "on"
			if i%3 == 0 {
				typ = "off"
			}
			if err := e.Input(ev(typ, Time(i*7%500), fmt.Sprintf("k%d", i%5))); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Query(600)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := feed(), feed()
	if len(a.Fluents["power"]) != len(b.Fluents["power"]) {
		t.Fatal("instance counts differ")
	}
	for kv, l := range a.Fluents["power"] {
		if !l.Equal(b.Fluents["power"][kv]) {
			t.Fatalf("instance %v differs: %v vs %v", kv, l, b.Fluents["power"][kv])
		}
	}
}

func TestProfileRuleCosts(t *testing.T) {
	defs := onOffDefs(t)
	e, _ := NewEngine(defs, Options{WorkingMemory: 100, Profile: true})
	if err := e.Input(ev("on", 10, "x")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleCosts == nil {
		t.Fatal("Profile option must populate RuleCosts")
	}
	if _, ok := res.RuleCosts["power"]; !ok {
		t.Errorf("RuleCosts = %v, want an entry for 'power'", res.RuleCosts)
	}
	// Without the option the map stays nil.
	e2, _ := NewEngine(defs, Options{WorkingMemory: 100})
	res2, err := e2.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	if res2.RuleCosts != nil {
		t.Error("RuleCosts must be nil without Profile")
	}
}

func TestMergeResultsSumsRuleCosts(t *testing.T) {
	defs := onOffDefs(t)
	part, err := NewPartitioned(defs, Options{WorkingMemory: 100, Profile: true}, 2,
		func(e Event) int {
			if e.Key < "m" {
				return 0
			}
			return 1
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Input(ev("on", 10, "a"), ev("on", 20, "z")); err != nil {
		t.Fatal(err)
	}
	results, err := part.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeResults(results)
	if merged.RuleCosts == nil || merged.RuleCosts["power"] <= 0 {
		t.Errorf("merged RuleCosts = %v", merged.RuleCosts)
	}
	want := results[0].RuleCosts["power"] + results[1].RuleCosts["power"]
	if merged.RuleCosts["power"] != want {
		t.Errorf("merged cost = %v, want sum %v", merged.RuleCosts["power"], want)
	}
}

// Feeding the same events in any arrival order (all before the query)
// must produce identical results: recognition depends on occurrence
// times, not delivery order.
func TestQueryOrderIndependence(t *testing.T) {
	defs := onOffDefs(t)
	events := []Event{
		ev("on", 10, "a"), ev("off", 30, "a"), ev("on", 35, "a"),
		ev("on", 20, "b"), ev("off", 80, "b"),
		ev("on", 70, "a"),
	}
	run := func(order []int) *Result {
		e, _ := NewEngine(defs, Options{WorkingMemory: 1000})
		for _, i := range order {
			if err := e.Input(events[i]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Query(500)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run([]int{0, 1, 2, 3, 4, 5})
	perms := [][]int{
		{5, 4, 3, 2, 1, 0},
		{2, 0, 4, 1, 5, 3},
		{3, 5, 0, 2, 4, 1},
	}
	for _, perm := range perms {
		got := run(perm)
		for kv, l := range base.Fluents["power"] {
			if !l.Equal(got.Fluents["power"][kv]) {
				t.Fatalf("order %v: %v = %v, want %v", perm, kv, got.Fluents["power"][kv], l)
			}
		}
		if len(got.Fluents["power"]) != len(base.Fluents["power"]) {
			t.Fatalf("order %v: instance count differs", perm)
		}
	}
}
