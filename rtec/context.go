package rtec

import (
	"github.com/insight-dublin/insight/interval"
)

// List is the maximal-interval list type (alias of interval.List).
type List = interval.List

// Span is a half-open time span (alias of interval.Span).
type Span = interval.Span

// Context is the window snapshot a rule evaluates against. It exposes
// the SDEs and lower-stratum derived events inside the working memory,
// and the maximal intervals of lower-stratum fluents. Lookups outside
// the window return no data, mirroring RTEC's discarding of SDEs that
// took place before or on Q−WM.
//
// The interval lists returned by Intervals and friends may extend to
// the end of the window horizon for fluents that are still open at the
// query time; they are clipped in the engine's Result.
type Context struct {
	window Span // [Q-WM+1, Q+1)
	q      Time

	events  map[string][]Event            // by type, time-sorted
	byKey   map[string]map[string][]Event // type -> key -> time-sorted events
	fluents map[string]map[KV]List        // name -> instance -> maximal intervals
}

func newContext(q Time, window Span) *Context {
	return &Context{
		q:       q,
		window:  window,
		events:  make(map[string][]Event),
		byKey:   make(map[string]map[string][]Event),
		fluents: make(map[string]map[KV]List),
	}
}

// Window returns the working-memory span [Q−WM+1, Q+1).
func (c *Context) Window() Span { return c.window }

// QueryTime returns the current query time Q.
func (c *Context) QueryTime() Time { return c.q }

// Events returns the time-sorted occurrences of an event type inside
// the window. The returned slice is shared; do not modify.
func (c *Context) Events(typ string) []Event { return c.events[typ] }

// EventsForKey returns the time-sorted occurrences of an event type
// for one entity key. The returned slice is shared; do not modify.
func (c *Context) EventsForKey(typ, key string) []Event {
	m := c.byKey[typ]
	if m == nil {
		return nil
	}
	return m[key]
}

// EventKeys returns the distinct entity keys that have occurrences of
// the event type inside the window, in unspecified order.
func (c *Context) EventKeys(typ string) []string {
	m := c.byKey[typ]
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Intervals returns holdsFor(Fluent(Key) = true, I): the maximal
// intervals of a boolean fluent instance.
func (c *Context) Intervals(fluent, key string) List {
	return c.IntervalsValue(fluent, key, TrueValue)
}

// IntervalsValue returns holdsFor(Fluent(Key) = Value, I).
func (c *Context) IntervalsValue(fluent, key, value string) List {
	m := c.fluents[fluent]
	if m == nil {
		return nil
	}
	return m[KV{Key: key, Value: value}]
}

// FluentInstances returns every (Key, Value) instance of a fluent that
// has at least one maximal interval in the window, with its intervals.
// The returned map is shared; do not modify.
func (c *Context) FluentInstances(fluent string) map[KV]List {
	return c.fluents[fluent]
}

// HoldsAt reports holdsAt(Fluent(Key) = true, T).
func (c *Context) HoldsAt(fluent, key string, t Time) bool {
	return c.IntervalsValue(fluent, key, TrueValue).Contains(t)
}

// HoldsAtValue reports holdsAt(Fluent(Key) = Value, T).
func (c *Context) HoldsAtValue(fluent, key, value string, t Time) bool {
	return c.IntervalsValue(fluent, key, value).Contains(t)
}

// ValueAt returns the value V for which holdsAt(Fluent(Key)=V, T), if
// any. Simple fluents hold at most one value at a time.
func (c *Context) ValueAt(fluent, key string, t Time) (string, bool) {
	for kv, l := range c.fluents[fluent] {
		if kv.Key == key && l.Contains(t) {
			return kv.Value, true
		}
	}
	return "", false
}

// addEvent inserts a derived event so higher strata can read it.
// Events must be added before the stratum that reads them is
// evaluated; the engine guarantees this ordering.
func (c *Context) addEvents(typ string, events []Event) {
	if len(events) == 0 {
		return
	}
	sortEvents(events)
	c.events[typ] = events
	keyed := make(map[string][]Event)
	for _, e := range events {
		keyed[e.Key] = append(keyed[e.Key], e)
	}
	c.byKey[typ] = keyed
}

func (c *Context) setFluent(name string, instances map[KV]List) {
	c.fluents[name] = instances
}
