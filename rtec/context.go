package rtec

import (
	"sort"

	"github.com/insight-dublin/insight/interval"
)

// List is the maximal-interval list type (alias of interval.List).
type List = interval.List

// Span is a half-open time span (alias of interval.Span).
type Span = interval.Span

// Context is the window snapshot a rule evaluates against. It exposes
// the SDEs and lower-stratum derived events inside the working memory,
// and the maximal intervals of lower-stratum fluents. Lookups outside
// the window return no data, mirroring RTEC's discarding of SDEs that
// took place before or on Q−WM.
//
// SDE lookups are zero-copy views over the engine's time-indexed event
// store; derived events are filed by the engine as strata complete.
// During incremental evaluation the engine hands rules a context whose
// event visibility is narrowed to the region being recomputed (view);
// fluent lookups are never narrowed — interval lists always cover the
// whole window.
//
// A Context is safe for concurrent readers; the engine only writes to
// it at stratum barriers.
//
// The interval lists returned by Intervals and friends may extend to
// the end of the window horizon for fluents that are still open at the
// query time; they are clipped in the engine's Result.
type Context struct {
	window Span // [Q-WM+1, Q+1)
	q      Time
	view   Span // event visibility, ⊆ [Q-WM+1, Q+1); normally the full window

	store        sdeStore                      // SDE buckets (read-only during a query); may be nil
	derived      map[string][]Event            // derived events by type, time-sorted
	derivedByKey map[string]map[string][]Event // type -> key -> time-sorted events
	fluents      map[string]map[KV]List        // name -> instance -> maximal intervals
}

// Rows is a zero-copy window view: the time-sorted events of one type
// (or one type and key) inside the window, iterable without
// materializing Event values. Over the row store it wraps the shared
// event slice; over the column store it wraps the resident segment
// plus a row-id sub-slice, and At builds the lightweight column view
// on demand — rules that only need times, keys or single attributes
// never pay for an Event at all.
//
// A Rows view is valid for the duration of the query that produced it;
// do not retain it across queries (eviction and compaction may reuse
// the underlying storage).
type Rows struct {
	evs []Event // row store and derived events
	seg *colSeg // column store; nil when evs is the backing
	ids []int32 // row ids into seg, (time, arrival)-sorted
}

// Len returns the number of events in the view.
func (r Rows) Len() int {
	if r.seg != nil {
		return len(r.ids)
	}
	return len(r.evs)
}

// At returns the i-th event in (time, arrival) order.
func (r Rows) At(i int) Event {
	if r.seg != nil {
		return r.seg.blk.Event(int(r.ids[i]))
	}
	return r.evs[i]
}

// TimeAt returns the i-th event's occurrence time without
// materializing the event.
func (r Rows) TimeAt(i int) Time {
	if r.seg != nil {
		return Time(r.seg.blk.Times[r.ids[i]])
	}
	return r.evs[i].Time
}

// KeyAt returns the i-th event's entity key without materializing the
// event.
func (r Rows) KeyAt(i int) string {
	if r.seg != nil {
		return r.seg.blk.Key(int(r.ids[i]))
	}
	return r.evs[i].Key
}

// Slice materializes the view as an event slice. Over the row store
// this is the shared backing slice (zero-copy, do not modify); over
// the column store it allocates — columnar-aware rules should iterate
// the view instead.
func (r Rows) Slice() []Event {
	if r.seg == nil {
		return r.evs
	}
	out := make([]Event, len(r.ids))
	for i, id := range r.ids {
		out[i] = r.seg.blk.Event(int(id))
	}
	return out
}

func newContext(q Time, window Span) *Context {
	return &Context{
		q:            q,
		window:       window,
		view:         Span{Start: window.Start, End: q + 1},
		derived:      make(map[string][]Event),
		derivedByKey: make(map[string]map[string][]Event),
		fluents:      make(map[string]map[KV]List),
	}
}

func newStoreContext(q Time, window Span, store sdeStore) *Context {
	c := newContext(q, window)
	c.store = store
	return c
}

// withView returns a shallow copy of the context whose event lookups
// are restricted to the given span (intersected with the window). The
// copy shares the underlying event and fluent data.
func (c *Context) withView(view Span) *Context {
	cc := *c
	cc.view = view.Intersect(c.view)
	return &cc
}

// Window returns the working-memory span [Q−WM+1, Q+1).
func (c *Context) Window() Span { return c.window }

// QueryTime returns the current query time Q.
func (c *Context) QueryTime() Time { return c.q }

// Rows returns the window view of an event type: the time-sorted
// occurrences inside the window, iterable without materializing
// events. This is the columnar-aware counterpart of Events.
func (c *Context) Rows(typ string) Rows {
	if evs, ok := c.derived[typ]; ok {
		return Rows{evs: sliceSpan(evs, c.view)}
	}
	if c.store != nil {
		if b := c.store.bucket(typ); b != nil {
			return b.rows(c.view)
		}
	}
	return Rows{}
}

// RowsForKey is Rows restricted to one entity key.
func (c *Context) RowsForKey(typ, key string) Rows {
	if m, ok := c.derivedByKey[typ]; ok {
		return Rows{evs: sliceSpan(m[key], c.view)}
	}
	if c.store != nil {
		if b := c.store.bucket(typ); b != nil {
			return b.rowsForKey(key, c.view)
		}
	}
	return Rows{}
}

// Events returns the time-sorted occurrences of an event type inside
// the window. The returned slice is shared; do not modify. Over the
// column store the slice is materialized per call — columnar-aware
// rules should use Rows instead.
func (c *Context) Events(typ string) []Event {
	return c.Rows(typ).Slice()
}

// EventsForKey returns the time-sorted occurrences of an event type
// for one entity key. The returned slice is shared; do not modify.
// Over the column store the slice is materialized per call —
// columnar-aware rules should use RowsForKey instead.
func (c *Context) EventsForKey(typ, key string) []Event {
	return c.RowsForKey(typ, key).Slice()
}

// EventKeys returns the distinct entity keys that have occurrences of
// the event type inside the window, sorted: rule derivation iterates
// these keys while appending transitions and derived events, so the
// order must be run-stable for recognition output to be
// deterministic.
func (c *Context) EventKeys(typ string) []string {
	if m, ok := c.derivedByKey[typ]; ok {
		var out []string
		for k, evs := range m {
			if len(sliceSpan(evs, c.view)) > 0 {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	if c.store != nil {
		if b := c.store.bucket(typ); b != nil {
			return b.keysInSpan(c.view)
		}
	}
	return nil
}

// Intervals returns holdsFor(Fluent(Key) = true, I): the maximal
// intervals of a boolean fluent instance.
func (c *Context) Intervals(fluent, key string) List {
	return c.IntervalsValue(fluent, key, TrueValue)
}

// IntervalsValue returns holdsFor(Fluent(Key) = Value, I).
func (c *Context) IntervalsValue(fluent, key, value string) List {
	m := c.fluents[fluent]
	if m == nil {
		return nil
	}
	return m[KV{Key: key, Value: value}]
}

// FluentInstances returns every (Key, Value) instance of a fluent that
// has at least one maximal interval in the window, with its intervals.
// The returned map is shared; do not modify.
func (c *Context) FluentInstances(fluent string) map[KV]List {
	return c.fluents[fluent]
}

// HoldsAt reports holdsAt(Fluent(Key) = true, T).
func (c *Context) HoldsAt(fluent, key string, t Time) bool {
	return c.IntervalsValue(fluent, key, TrueValue).Contains(t)
}

// HoldsAtValue reports holdsAt(Fluent(Key) = Value, T).
func (c *Context) HoldsAtValue(fluent, key, value string, t Time) bool {
	return c.IntervalsValue(fluent, key, value).Contains(t)
}

// ValueAt returns the value V for which holdsAt(Fluent(Key)=V, T), if
// any. Simple fluents hold at most one value at a time.
func (c *Context) ValueAt(fluent, key string, t Time) (string, bool) {
	for kv, l := range c.fluents[fluent] {
		if kv.Key == key && l.Contains(t) {
			return kv.Value, true
		}
	}
	return "", false
}

// addEvents inserts derived events so higher strata can read them.
// Events must be added before the stratum that reads them is
// evaluated; the engine guarantees this ordering (strata are barriers).
func (c *Context) addEvents(typ string, events []Event) {
	if len(events) == 0 {
		return
	}
	sortEvents(events)
	c.derived[typ] = events
	keyed := make(map[string][]Event)
	for _, e := range events {
		keyed[e.Key] = append(keyed[e.Key], e)
	}
	c.derivedByKey[typ] = keyed
}

func (c *Context) setFluent(name string, instances map[KV]List) {
	c.fluents[name] = instances
}
