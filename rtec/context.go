package rtec

import (
	"sort"

	"github.com/insight-dublin/insight/interval"
)

// List is the maximal-interval list type (alias of interval.List).
type List = interval.List

// Span is a half-open time span (alias of interval.Span).
type Span = interval.Span

// Context is the window snapshot a rule evaluates against. It exposes
// the SDEs and lower-stratum derived events inside the working memory,
// and the maximal intervals of lower-stratum fluents. Lookups outside
// the window return no data, mirroring RTEC's discarding of SDEs that
// took place before or on Q−WM.
//
// SDE lookups are zero-copy views over the engine's time-indexed event
// store; derived events are filed by the engine as strata complete.
// During incremental evaluation the engine hands rules a context whose
// event visibility is narrowed to the region being recomputed (view);
// fluent lookups are never narrowed — interval lists always cover the
// whole window.
//
// A Context is safe for concurrent readers; the engine only writes to
// it at stratum barriers.
//
// The interval lists returned by Intervals and friends may extend to
// the end of the window horizon for fluents that are still open at the
// query time; they are clipped in the engine's Result.
type Context struct {
	window Span // [Q-WM+1, Q+1)
	q      Time
	view   Span // event visibility, ⊆ [Q-WM+1, Q+1); normally the full window

	store        *eventStore                   // SDE buckets (read-only during a query); may be nil
	derived      map[string][]Event            // derived events by type, time-sorted
	derivedByKey map[string]map[string][]Event // type -> key -> time-sorted events
	fluents      map[string]map[KV]List        // name -> instance -> maximal intervals
}

func newContext(q Time, window Span) *Context {
	return &Context{
		q:            q,
		window:       window,
		view:         Span{Start: window.Start, End: q + 1},
		derived:      make(map[string][]Event),
		derivedByKey: make(map[string]map[string][]Event),
		fluents:      make(map[string]map[KV]List),
	}
}

func newStoreContext(q Time, window Span, store *eventStore) *Context {
	c := newContext(q, window)
	c.store = store
	return c
}

// withView returns a shallow copy of the context whose event lookups
// are restricted to the given span (intersected with the window). The
// copy shares the underlying event and fluent data.
func (c *Context) withView(view Span) *Context {
	cc := *c
	cc.view = view.Intersect(c.view)
	return &cc
}

// Window returns the working-memory span [Q−WM+1, Q+1).
func (c *Context) Window() Span { return c.window }

// QueryTime returns the current query time Q.
func (c *Context) QueryTime() Time { return c.q }

// Events returns the time-sorted occurrences of an event type inside
// the window. The returned slice is shared; do not modify.
func (c *Context) Events(typ string) []Event {
	if evs, ok := c.derived[typ]; ok {
		return sliceSpan(evs, c.view)
	}
	if c.store != nil {
		if b := c.store.bucket(typ); b != nil {
			return b.window(c.view)
		}
	}
	return nil
}

// EventsForKey returns the time-sorted occurrences of an event type
// for one entity key. The returned slice is shared; do not modify.
func (c *Context) EventsForKey(typ, key string) []Event {
	if m, ok := c.derivedByKey[typ]; ok {
		return sliceSpan(m[key], c.view)
	}
	if c.store != nil {
		if b := c.store.bucket(typ); b != nil {
			return b.windowForKey(key, c.view)
		}
	}
	return nil
}

// EventKeys returns the distinct entity keys that have occurrences of
// the event type inside the window, sorted: rule derivation iterates
// these keys while appending transitions and derived events, so the
// order must be run-stable for recognition output to be
// deterministic.
func (c *Context) EventKeys(typ string) []string {
	collect := func(m map[string][]Event) []string {
		var out []string
		for k, evs := range m {
			if len(sliceSpan(evs, c.view)) > 0 {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	if m, ok := c.derivedByKey[typ]; ok {
		return collect(m)
	}
	if c.store != nil {
		if b := c.store.bucket(typ); b != nil {
			return collect(b.byKey)
		}
	}
	return nil
}

// Intervals returns holdsFor(Fluent(Key) = true, I): the maximal
// intervals of a boolean fluent instance.
func (c *Context) Intervals(fluent, key string) List {
	return c.IntervalsValue(fluent, key, TrueValue)
}

// IntervalsValue returns holdsFor(Fluent(Key) = Value, I).
func (c *Context) IntervalsValue(fluent, key, value string) List {
	m := c.fluents[fluent]
	if m == nil {
		return nil
	}
	return m[KV{Key: key, Value: value}]
}

// FluentInstances returns every (Key, Value) instance of a fluent that
// has at least one maximal interval in the window, with its intervals.
// The returned map is shared; do not modify.
func (c *Context) FluentInstances(fluent string) map[KV]List {
	return c.fluents[fluent]
}

// HoldsAt reports holdsAt(Fluent(Key) = true, T).
func (c *Context) HoldsAt(fluent, key string, t Time) bool {
	return c.IntervalsValue(fluent, key, TrueValue).Contains(t)
}

// HoldsAtValue reports holdsAt(Fluent(Key) = Value, T).
func (c *Context) HoldsAtValue(fluent, key, value string, t Time) bool {
	return c.IntervalsValue(fluent, key, value).Contains(t)
}

// ValueAt returns the value V for which holdsAt(Fluent(Key)=V, T), if
// any. Simple fluents hold at most one value at a time.
func (c *Context) ValueAt(fluent, key string, t Time) (string, bool) {
	for kv, l := range c.fluents[fluent] {
		if kv.Key == key && l.Contains(t) {
			return kv.Value, true
		}
	}
	return "", false
}

// addEvents inserts derived events so higher strata can read them.
// Events must be added before the stratum that reads them is
// evaluated; the engine guarantees this ordering (strata are barriers).
func (c *Context) addEvents(typ string, events []Event) {
	if len(events) == 0 {
		return
	}
	sortEvents(events)
	c.derived[typ] = events
	keyed := make(map[string][]Event)
	for _, e := range events {
		keyed[e.Key] = append(keyed[e.Key], e)
	}
	c.derivedByKey[typ] = keyed
}

func (c *Context) setFluent(name string, instances map[KV]List) {
	c.fluents[name] = instances
}
