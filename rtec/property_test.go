package rtec

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property: with no delayed deliveries, consecutive overlapping
// windows agree on the fluent state over their overlap. Windowing may
// only change answers because of SDEs falling out of the window or
// arriving late — never for time points both windows fully observe.
func TestOverlapConsistencyProperty(t *testing.T) {
	defs := onOffDefs(t)
	const (
		wm   = Time(200)
		step = Time(50) // windows overlap by 150
		span = Time(1000)
	)
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e, err := NewEngine(defs, Options{WorkingMemory: wm, Step: step})
		if err != nil {
			t.Fatal(err)
		}
		// Random scenario over a handful of keys.
		var events []Event
		for i := 0; i < 120; i++ {
			typ := "on"
			if rng.Intn(2) == 0 {
				typ = "off"
			}
			events = append(events, ev(typ, Time(rng.Int63n(int64(span))), fmt.Sprintf("k%d", rng.Intn(4))))
		}
		if err := e.Input(events...); err != nil {
			t.Fatal(err)
		}

		type snapshot map[KV]List
		var prev snapshot
		var prevQ Time
		for q := step; q <= span; q += step {
			res, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			cur := snapshot(res.Fluents["power"])
			if prev != nil {
				// Overlap of the reported windows: both clipped views
				// cover [q-wm+1, prevQ+1).
				lo, hi := q-wm+1, prevQ+1
				if lo < prevQ-wm+1 {
					lo = prevQ - wm + 1
				}
				keys := map[KV]bool{}
				for kv := range prev {
					keys[kv] = true
				}
				for kv := range cur {
					keys[kv] = true
				}
				for kv := range keys {
					for tp := lo; tp < hi; tp++ {
						a := prev[kv].Contains(tp)
						b := cur[kv].Contains(tp)
						if a != b {
							t.Fatalf("trial %d: %v at t=%d: window@%d says %v, window@%d says %v",
								trial, kv, tp, prevQ, a, q, b)
						}
					}
				}
			}
			prev, prevQ = cur, q
		}
	}
}
