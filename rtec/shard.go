package rtec

import (
	"fmt"
	"sort"
)

// Rendezvous (highest-random-weight) shard assignment. Every key is
// hashed once per shard and owned by the shard with the highest score,
// so the mapping is a pure function of (key, shard count): no ring
// state to persist, and growing the tier from n to n+1 shards moves a
// key only when the NEW shard outscores every old one — an expected
// 1/(n+1) of the key space, each moved key landing on shard n. That is
// the minimal-movement property the reshard/rebalance machinery relies
// on (see ShardMap and the sharded tier in the root package).

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// keyHash is FNV-1a over the key bytes.
func keyHash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// shardWeight scores one (key hash, shard) pair: the splitmix64
// finalizer over the combination. FNV alone has too little avalanche
// on the 8 shard-index bytes — the argmax over shards amplifies any
// bias straight into excess key movement on reshard — so the full
// mixer does the spreading.
func shardWeight(kh uint64, shard int) uint64 {
	z := kh + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RendezvousShard maps key to a shard in [0, n): the shard whose
// (key, shard) hash scores highest, ties won by the lower index.
// Deterministic across runs and processes. n must be positive; n <= 1
// always returns 0.
func RendezvousShard(key string, n int) int {
	kh := keyHash(key)
	best, bestW := 0, shardWeight(kh, 0)
	for i := 1; i < n; i++ {
		if w := shardWeight(kh, i); w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ShardOverride pins one key to a shard, overriding its rendezvous
// assignment (the rebalancer's migration record).
type ShardOverride struct {
	Key   string
	Shard int
}

// ShardMap is a key→shard assignment: rendezvous hashing with an
// override table layered on top for rebalanced keys, and a memo of
// computed assignments. Not safe for concurrent use; the tier only
// consults it between queries (routing and rebalancing are
// single-threaded phases).
type ShardMap struct {
	n        int
	override map[string]int
	memo     map[string]int
}

// NewShardMap builds an assignment over n shards.
func NewShardMap(n int) (*ShardMap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rtec: shard count must be positive, got %d", n)
	}
	return &ShardMap{
		n:        n,
		override: make(map[string]int),
		memo:     make(map[string]int),
	}, nil
}

// N returns the shard count.
func (m *ShardMap) N() int { return m.n }

// Shard returns the shard owning key.
func (m *ShardMap) Shard(key string) int {
	if s, ok := m.override[key]; ok {
		return s
	}
	if s, ok := m.memo[key]; ok {
		return s
	}
	s := RendezvousShard(key, m.n)
	m.memo[key] = s
	return s
}

// SetOverride pins key to shard. Pinning a key to its rendezvous-native
// shard removes any override instead of recording a redundant one, so
// the override table only ever holds genuine deviations.
func (m *ShardMap) SetOverride(key string, shard int) error {
	if shard < 0 || shard >= m.n {
		return fmt.Errorf("rtec: override shard %d out of range [0,%d)", shard, m.n)
	}
	if RendezvousShard(key, m.n) == shard {
		delete(m.override, key)
		return nil
	}
	m.override[key] = shard
	return nil
}

// ClearOverrides drops every override, reverting to pure rendezvous
// assignment.
func (m *ShardMap) ClearOverrides() {
	m.override = make(map[string]int)
}

// Overrides returns the override table as (key, shard) pairs sorted by
// key — the deterministic form checkpoints persist.
func (m *ShardMap) Overrides() []ShardOverride {
	out := make([]ShardOverride, 0, len(m.override))
	for k, s := range m.override {
		out = append(out, ShardOverride{Key: k, Shard: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
