package rtec

import (
	"fmt"
	"testing"
)

func shardKeys(n int) []string {
	keys := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("bus%04d", i), fmt.Sprintf("s%04d", i))
	}
	return keys
}

func TestRendezvousShardDeterministic(t *testing.T) {
	for _, key := range shardKeys(200) {
		for n := 1; n <= 9; n++ {
			a, b := RendezvousShard(key, n), RendezvousShard(key, n)
			if a != b {
				t.Fatalf("RendezvousShard(%q, %d) unstable: %d vs %d", key, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("RendezvousShard(%q, %d) = %d out of range", key, n, a)
			}
		}
	}
}

// TestRendezvousShardCoverage: every shard owns part of the key space
// at every shard count the tier supports.
func TestRendezvousShardCoverage(t *testing.T) {
	keys := shardKeys(1000)
	for n := 1; n <= 8; n++ {
		got := make([]int, n)
		for _, key := range keys {
			got[RendezvousShard(key, n)]++
		}
		for i, c := range got {
			if c == 0 {
				t.Errorf("n=%d: shard %d owns no keys out of %d", n, i, len(keys))
			}
		}
	}
}

// TestRendezvousShardMinimalMovement pins the reshard contract: growing
// n→n+1 moves at most 1/n of the keys, and every moved key lands on the
// new shard n.
func TestRendezvousShardMinimalMovement(t *testing.T) {
	keys := shardKeys(2000)
	for n := 1; n <= 8; n++ {
		moved := 0
		for _, key := range keys {
			before, after := RendezvousShard(key, n), RendezvousShard(key, n+1)
			if before == after {
				continue
			}
			if after != n {
				t.Fatalf("n=%d→%d: key %q moved %d→%d, not to the new shard", n, n+1, key, before, after)
			}
			moved++
		}
		if limit := len(keys) / n; moved > limit {
			t.Errorf("n=%d→%d: %d of %d keys moved, want ≤ %d", n, n+1, moved, len(keys), limit)
		}
		if moved == 0 && n < 8 {
			t.Errorf("n=%d→%d: no keys moved to the new shard at all", n, n+1)
		}
	}
}

func TestShardMap(t *testing.T) {
	if _, err := NewShardMap(0); err == nil {
		t.Error("NewShardMap(0) must error")
	}
	if _, err := NewShardMap(-3); err == nil {
		t.Error("NewShardMap(-3) must error")
	}
	m, err := NewShardMap(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("N() = %d", m.N())
	}
	for _, key := range shardKeys(100) {
		if got, want := m.Shard(key), RendezvousShard(key, 4); got != want {
			t.Fatalf("Shard(%q) = %d, want rendezvous %d", key, got, want)
		}
	}

	// An override redirects exactly the pinned key.
	key := "bus0001"
	native := RendezvousShard(key, 4)
	to := (native + 1) % 4
	if err := m.SetOverride(key, to); err != nil {
		t.Fatal(err)
	}
	if got := m.Shard(key); got != to {
		t.Fatalf("overridden Shard(%q) = %d, want %d", key, got, to)
	}
	if got := m.Shard("bus0002"); got != RendezvousShard("bus0002", 4) {
		t.Fatal("override leaked to another key")
	}
	ovs := m.Overrides()
	if len(ovs) != 1 || ovs[0].Key != key || ovs[0].Shard != to {
		t.Fatalf("Overrides() = %v", ovs)
	}

	// Pinning back to the native shard removes the override.
	if err := m.SetOverride(key, native); err != nil {
		t.Fatal(err)
	}
	if len(m.Overrides()) != 0 {
		t.Fatalf("native-shard override not removed: %v", m.Overrides())
	}
	if got := m.Shard(key); got != native {
		t.Fatalf("Shard(%q) = %d after override removal, want %d", key, got, native)
	}

	// Out-of-range overrides are rejected.
	if err := m.SetOverride(key, 4); err == nil {
		t.Error("SetOverride(4) on a 4-shard map must error")
	}
	if err := m.SetOverride(key, -1); err == nil {
		t.Error("SetOverride(-1) must error")
	}

	if err := m.SetOverride(key, (native+2)%4); err != nil {
		t.Fatal(err)
	}
	m.ClearOverrides()
	if len(m.Overrides()) != 0 || m.Shard(key) != native {
		t.Fatal("ClearOverrides did not revert to rendezvous assignment")
	}
}

// FuzzShardAssign is the property pin for the assignment function:
// determinism, range safety, and minimal movement (a key either stays
// put on reshard n→n+1 or lands on the new shard n).
func FuzzShardAssign(f *testing.F) {
	f.Add("bus0001", uint8(4))
	f.Add("", uint8(1))
	f.Add("s0042", uint8(7))
	f.Add("a\x00b", uint8(2))
	f.Fuzz(func(t *testing.T, key string, rawN uint8) {
		n := int(rawN)%8 + 1
		got := RendezvousShard(key, n)
		if got < 0 || got >= n {
			t.Fatalf("RendezvousShard(%q, %d) = %d out of range", key, n, got)
		}
		if again := RendezvousShard(key, n); again != got {
			t.Fatalf("RendezvousShard(%q, %d) unstable: %d vs %d", key, n, got, again)
		}
		next := RendezvousShard(key, n+1)
		if next != got && next != n {
			t.Fatalf("reshard %d→%d moved %q from %d to %d (minimal movement violated)", n, n+1, key, got, next)
		}
	})
}
