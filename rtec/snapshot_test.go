package rtec

import (
	"fmt"
	"reflect"
	"testing"
)

// snapDefs compiles a definition set exercising every rule kind: a
// simple fluent with inertia, an event rule feeding the Fresh dedup
// set, and a static fluent over the simple one.
func snapDefs(t *testing.T) *Definitions {
	t.Helper()
	defs, err := NewBuilder().
		DeclareSDE("tick", "on", "off").
		Simple(SimpleFluent{
			Name:   "power",
			Inputs: []string{"on", "off"},
			Transitions: func(ctx *Context) []Transition {
				var out []Transition
				for _, e := range ctx.Events("on") {
					out = append(out, InitiateAt(e.Key, e.Time))
				}
				for _, e := range ctx.Events("off") {
					out = append(out, TerminateAt(e.Key, e.Time))
				}
				return out
			},
		}).
		Event(EventRule{
			Name:   "surge",
			Inputs: []string{"tick"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				for _, key := range ctx.EventKeys("tick") {
					evs := ctx.EventsForKey("tick", key)
					for i := 1; i < len(evs); i++ {
						pv, _ := evs[i-1].Float("v")
						cv, _ := evs[i].Float("v")
						if evs[i].Time-evs[i-1].Time < 10 && cv > pv {
							out = append(out, NewEvent("surge", evs[i].Time, key, nil))
						}
					}
				}
				return out
			},
		}).
		Static(StaticFluent{
			Name:   "lit",
			Inputs: []string{"power"},
			HoldsFor: func(ctx *Context) map[KV]List {
				out := make(map[KV]List)
				for kv, l := range ctx.FluentInstances("power") {
					out[kv] = l
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

// snapFeed delivers a deterministic mixed map/columnar event load for
// the window ending at query time q.
func snapFeed(t *testing.T, e *Engine, q Time) {
	t.Helper()
	base := q - 50
	if err := e.Input(
		NewEvent("on", base+5, "dev-1", map[string]any{"watts": 40, "room": "a"}),
		NewEvent("off", base+30, "dev-1", nil),
		NewEvent("on", base+35, "dev-2", map[string]any{"watts": int64(25), "dim": true}),
	); err != nil {
		t.Fatal(err)
	}
	blk := &Block{
		Type:  "tick",
		Times: []int64{int64(base + 10), int64(base + 12), int64(base + 20), int64(base + 24)},
		Keys:  []string{"m-1", "m-1", "m-2", "m-2"},
		Cols: []BCol{
			{Name: "v", Kind: ColFloat, F: []float64{1, 2, 5, 3}},
			{Name: "src", Kind: ColStr, SIdx: []uint32{0, 0, 1, 1}, Dict: []string{"scats", "bus"}},
			{Name: "ok", Kind: ColBool, B: []bool{true, false, true, true}},
			{Name: "n", Kind: ColInt, I: []int64{7, 8, 9, 10}},
		},
	}
	if err := e.InputBlock(blk); err != nil {
		t.Fatal(err)
	}
}

func resultsEqual(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if a.Q != b.Q || a.Window != b.Window {
		t.Fatalf("%s: Q/window mismatch: %d %v vs %d %v", tag, a.Q, a.Window, b.Q, b.Window)
	}
	if !reflect.DeepEqual(a.Fluents, b.Fluents) {
		t.Fatalf("%s: fluents differ:\n%v\nvs\n%v", tag, a.Fluents, b.Fluents)
	}
	if len(a.Derived) != len(b.Derived) {
		t.Fatalf("%s: derived type counts differ", tag)
	}
	for typ, evs := range a.Derived {
		if !eventsEqual(evs, b.Derived[typ]) {
			t.Fatalf("%s: derived %q differ:\n%v\nvs\n%v", tag, typ, evs, b.Derived[typ])
		}
	}
	if !eventsEqual(a.Fresh, b.Fresh) {
		t.Fatalf("%s: fresh differ:\n%v\nvs\n%v", tag, a.Fresh, b.Fresh)
	}
	if a.Stats.InputEvents != b.Stats.InputEvents ||
		a.Stats.DerivedEvents != b.Stats.DerivedEvents ||
		a.Stats.FluentPeriods != b.Stats.FluentPeriods {
		t.Fatalf("%s: stats differ: %+v vs %+v", tag, a.Stats, b.Stats)
	}
}

// eventsEqual compares events by identity (type, time, key) — derived
// events carry no attributes in these rules.
func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Time != b[i].Time || a[i].Key != b[i].Key {
			return false
		}
	}
	return true
}

// TestSnapshotRestoreEquivalence pins the recovery contract: after
// restoring a mid-run snapshot into a fresh engine, every subsequent
// query is identical to the uninterrupted engine's.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	defs := snapDefs(t)
	opts := Options{WorkingMemory: 120, Step: 50}
	orig, err := NewEngine(defs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for q := Time(50); q <= 150; q += 50 {
		snapFeed(t, orig, q)
		if _, err := orig.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewEngine(defs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// A restored engine's snapshot reproduces the original snapshot
	// byte for byte (map-backed vs view events included).
	snap2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, snap2) {
		t.Fatalf("snapshot of restored engine differs:\n%+v\nvs\n%+v", snap, snap2)
	}

	for q := Time(200); q <= 350; q += 50 {
		snapFeed(t, orig, q)
		snapFeed(t, restored, q)
		// Late arrivals exercise the dirty-watermark path on both.
		late := NewEvent("tick", q-70, "m-1", map[string]any{"v": 9.0})
		if err := orig.Input(late); err != nil {
			t.Fatal(err)
		}
		if err := restored.Input(late); err != nil {
			t.Fatal(err)
		}
		ra, err := orig.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := restored.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("q=%d", q), ra, rb)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	e, err := NewEngine(snapDefs(t), Options{WorkingMemory: 100, Step: 50})
	if err != nil {
		t.Fatal(err)
	}
	snapFeed(t, e, 50)
	if _, err := e.Query(50); err != nil {
		t.Fatal(err)
	}
	a, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated snapshots differ")
	}
	// Deterministic ordering, not just equality: types and fluents
	// sorted by name.
	for i := 1; i < len(a.Types); i++ {
		if a.Types[i-1].Type >= a.Types[i].Type {
			t.Fatalf("types not sorted: %q before %q", a.Types[i-1].Type, a.Types[i].Type)
		}
	}
	for i := 1; i < len(a.Prev); i++ {
		if a.Prev[i-1].Name >= a.Prev[i].Name {
			t.Fatalf("fluents not sorted: %q before %q", a.Prev[i-1].Name, a.Prev[i].Name)
		}
	}
}

func TestPartitionedSnapshotRestore(t *testing.T) {
	defs := snapDefs(t)
	opts := Options{WorkingMemory: 100, Step: 50}
	assign := func(ev Event) int {
		if len(ev.Key) > 0 && ev.Key[len(ev.Key)-1]%2 == 0 {
			return 0
		}
		return 1
	}
	orig, err := NewPartitioned(defs, opts, 2, assign)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ev := NewEvent("on", Time(5+i*7), fmt.Sprintf("dev-%d", i), nil)
		if err := orig.Input(ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := orig.Query(50); err != nil {
		t.Fatal(err)
	}
	snaps, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots, want 2", len(snaps))
	}
	restored, err := NewPartitioned(defs, opts, 2, assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	ra, err := orig.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := restored.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "partitioned", MergeResults(ra), MergeResults(rb))
	if err := restored.Restore(snaps[:1]); err == nil {
		t.Fatalf("partition count mismatch accepted")
	}
}

func TestRestoreValidation(t *testing.T) {
	e, err := NewEngine(snapDefs(t), Options{WorkingMemory: 100, Step: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(&EngineSnapshot{
		Types: []TypeSnapshot{{Type: "ghost"}},
	}); err == nil {
		t.Fatalf("undeclared SDE type accepted")
	}
	if err := e.Restore(&EngineSnapshot{
		Types: []TypeSnapshot{{Type: "tick", Events: []EventSnapshot{
			{Time: 20, Key: "a"}, {Time: 10, Key: "a"},
		}}},
	}); err == nil {
		t.Fatalf("unsorted snapshot events accepted")
	}
	if err := e.Restore(&EngineSnapshot{
		Prev: []FluentSnapshot{{Name: "power", Instances: []InstanceSnapshot{
			{Key: "a", Value: "true", Spans: List{sp(30, 20)}},
		}}},
	}); err == nil {
		t.Fatalf("invalid interval list accepted")
	}
	// Unsupported attribute types are a snapshot-time error.
	if err := e.Input(NewEvent("tick", 5, "a", map[string]any{"bad": []int{1}})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatalf("unsupported attribute type accepted")
	}
}
