package rtec

import (
	"strings"
	"testing"

	"github.com/insight-dublin/insight/interval"
)

func sp(a, b Time) Span { return Span{Start: a, End: b} }

// onOff defines a boolean fluent "power" initiated by "on" events and
// terminated by "off" events, keyed by the device.
func onOffDefs(t *testing.T) *Definitions {
	t.Helper()
	defs, err := NewBuilder().
		DeclareSDE("on", "off").
		Simple(SimpleFluent{
			Name:   "power",
			Inputs: []string{"on", "off"},
			Transitions: func(ctx *Context) []Transition {
				var out []Transition
				for _, e := range ctx.Events("on") {
					out = append(out, InitiateAt(e.Key, e.Time))
				}
				for _, e := range ctx.Events("off") {
					out = append(out, TerminateAt(e.Key, e.Time))
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

func ev(typ string, t Time, key string) Event { return NewEvent(typ, t, key, nil) }

func TestBuilderCompileErrors(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Builder
		wantSub string
	}{
		{
			"duplicate name",
			func() *Builder {
				return NewBuilder().DeclareSDE("a").Simple(SimpleFluent{
					Name: "a", Transitions: func(*Context) []Transition { return nil },
				})
			},
			"duplicate",
		},
		{
			"unknown input",
			func() *Builder {
				return NewBuilder().Simple(SimpleFluent{
					Name: "f", Inputs: []string{"ghost"},
					Transitions: func(*Context) []Transition { return nil },
				})
			},
			"unknown input",
		},
		{
			"nil transitions",
			func() *Builder {
				return NewBuilder().Simple(SimpleFluent{Name: "f"})
			},
			"no Transitions",
		},
		{
			"nil holdsFor",
			func() *Builder {
				return NewBuilder().Static(StaticFluent{Name: "f"})
			},
			"no HoldsFor",
		},
		{
			"nil derive",
			func() *Builder {
				return NewBuilder().Event(EventRule{Name: "f"})
			},
			"no Derive",
		},
		{
			"empty name",
			func() *Builder {
				return NewBuilder().Simple(SimpleFluent{
					Transitions: func(*Context) []Transition { return nil },
				})
			},
			"empty name",
		},
		{
			"cycle",
			func() *Builder {
				tf := func(*Context) []Transition { return nil }
				return NewBuilder().
					Simple(SimpleFluent{Name: "a", Inputs: []string{"b"}, Transitions: tf}).
					Simple(SimpleFluent{Name: "b", Inputs: []string{"a"}, Transitions: tf})
			},
			"cyclic",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build().Compile()
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestStratification(t *testing.T) {
	tf := func(*Context) []Transition { return nil }
	hf := func(*Context) map[KV]IntervalList { return nil }
	defs, err := NewBuilder().
		DeclareSDE("sde").
		Static(StaticFluent{Name: "c", Inputs: []string{"b"}, HoldsFor: hf}).
		Simple(SimpleFluent{Name: "b", Inputs: []string{"a"}, Transitions: tf}).
		Simple(SimpleFluent{Name: "a", Inputs: []string{"sde"}, Transitions: tf}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	strata := defs.Strata()
	if len(strata) != 3 {
		t.Fatalf("strata = %v, want 3 levels", strata)
	}
	if strata[0][0] != "a" || strata[1][0] != "b" || strata[2][0] != "c" {
		t.Errorf("strata order wrong: %v", strata)
	}
	if !defs.IsSDE("sde") || defs.IsSDE("a") {
		t.Error("IsSDE misclassifies")
	}
	names := defs.Names()
	if len(names) != 4 {
		t.Errorf("Names = %v", names)
	}
}

func TestEngineOptionValidation(t *testing.T) {
	defs := onOffDefs(t)
	if _, err := NewEngine(nil, Options{WorkingMemory: 10}); err == nil {
		t.Error("nil definitions must error")
	}
	if _, err := NewEngine(defs, Options{WorkingMemory: 0}); err == nil {
		t.Error("zero WM must error")
	}
	if _, err := NewEngine(defs, Options{WorkingMemory: 10, Step: -1}); err == nil {
		t.Error("negative step must error")
	}
	e, err := NewEngine(defs, Options{WorkingMemory: 10})
	if err != nil {
		t.Fatal(err)
	}
	if e.Options().Step != 10 {
		t.Errorf("default step = %d, want WM", e.Options().Step)
	}
}

func TestInputRejectsUnknownType(t *testing.T) {
	e, err := NewEngine(onOffDefs(t), Options{WorkingMemory: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Input(ev("bogus", 1, "x")); err == nil {
		t.Error("undeclared SDE type must be rejected")
	}
}

func TestSimpleFluentInertia(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 100})
	if err := e.Input(
		ev("on", 10, "tv"),
		ev("off", 30, "tv"),
		ev("on", 50, "tv"),
	); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Intervals("power", "tv")
	// Initiated at 10 -> holds from 11; terminated at 30 -> holds
	// through 30; initiated at 50 -> holds from 51 through the window
	// end (clipped at Q+1 = 100).
	want := List{sp(11, 31), sp(51, 100)}
	if !got.Equal(want) {
		t.Errorf("power intervals = %v, want %v", got, want)
	}
	if !res.HoldsAt("power", "tv", 20) || res.HoldsAt("power", "tv", 40) || !res.HoldsAt("power", "tv", 99) {
		t.Error("HoldsAt disagrees with intervals")
	}
	if res.HoldsAt("power", "radio", 20) {
		t.Error("unrelated key must not hold")
	}
}

func TestInertiaAcrossWindows(t *testing.T) {
	// Step = WM = 50: windows abut. A fluent initiated in window 1
	// and never terminated must still hold throughout window 2.
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 50, Step: 50})
	if err := e.Input(ev("on", 10, "tv")); err != nil {
		t.Fatal(err)
	}
	res1, err := e.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Intervals("power", "tv").Equal(List{sp(11, 51)}) {
		t.Fatalf("window 1 intervals = %v", res1.Intervals("power", "tv"))
	}

	// No new events at all in window 2.
	res2, err := e.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Intervals("power", "tv").Equal(List{sp(51, 101)}) {
		t.Errorf("window 2 intervals = %v, want [51, 101) (inertia)", res2.Intervals("power", "tv"))
	}

	// Termination in window 3 closes it.
	if err := e.Input(ev("off", 120, "tv")); err != nil {
		t.Fatal(err)
	}
	res3, err := e.Query(150)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Intervals("power", "tv").Equal(List{sp(101, 121)}) {
		t.Errorf("window 3 intervals = %v, want [101, 121)", res3.Intervals("power", "tv"))
	}

	// Window 4: nothing holds any more.
	res4, err := e.Query(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Intervals("power", "tv")) != 0 {
		t.Errorf("window 4 intervals = %v, want empty", res4.Intervals("power", "tv"))
	}
}

// TestDelayedEvents reproduces the Figure 2 scenario: the window is
// larger than the step, so SDEs that occurred before the previous
// query time but arrived after it are incorporated at the next query.
func TestDelayedEvents(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 100, Step: 50})

	// Query at 100 with no knowledge of the "on" at 80.
	if _, err := e.Query(100); err != nil {
		t.Fatal(err)
	}

	// The delayed SDE arrives after Q=100 but occurred at 80, inside
	// the next window (50, 150].
	if err := e.Input(ev("on", 80, "tv")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(150)
	if err != nil {
		t.Fatal(err)
	}
	want := List{sp(81, 151)}
	if !res.Intervals("power", "tv").Equal(want) {
		t.Errorf("delayed event not incorporated: %v, want %v", res.Intervals("power", "tv"), want)
	}
}

func TestTooOldEventsDiscarded(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 50, Step: 50})
	if _, err := e.Query(100); err != nil {
		t.Fatal(err)
	}
	// Occurred at 40 <= Q-WM = 50: permanently out of any window.
	if err := e.Input(ev("on", 40, "tv")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(150)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals("power", "tv")) != 0 {
		t.Errorf("too-old event should be discarded, got %v", res.Intervals("power", "tv"))
	}
	if res.Stats.InputEvents != 0 {
		t.Errorf("InputEvents = %d, want 0", res.Stats.InputEvents)
	}
}

func TestFutureEventsHidden(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 100, Step: 50})
	if err := e.Input(ev("on", 70, "tv")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals("power", "tv")) != 0 {
		t.Error("event after Q must not be visible yet")
	}
	res, err = e.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Intervals("power", "tv").Equal(List{sp(71, 101)}) {
		t.Errorf("event should appear at the next query: %v", res.Intervals("power", "tv"))
	}
}

func TestQueryTimesMustIncrease(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 10})
	if _, err := e.Query(10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(10); err == nil {
		t.Error("repeated query time must error")
	}
	if _, err := e.Query(5); err == nil {
		t.Error("decreasing query time must error")
	}
}

func TestMultiValueFluent(t *testing.T) {
	// A traffic light fluent with values green/red; initiating one
	// value terminates the other.
	defs, err := NewBuilder().
		DeclareSDE("setLight").
		Simple(SimpleFluent{
			Name:   "light",
			Inputs: []string{"setLight"},
			Transitions: func(ctx *Context) []Transition {
				var out []Transition
				for _, e := range ctx.Events("setLight") {
					color, _ := e.Str("color")
					out = append(out, Transition{Kind: Initiate, Key: e.Key, Value: color, Time: e.Time})
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(defs, Options{WorkingMemory: 100})
	if err := e.Input(
		NewEvent("setLight", 10, "x", map[string]any{"color": "green"}),
		NewEvent("setLight", 40, "x", map[string]any{"color": "red"}),
	); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	green := res.Fluents["light"][KV{Key: "x", Value: "green"}]
	red := res.Fluents["light"][KV{Key: "x", Value: "red"}]
	if !green.Equal(List{sp(11, 41)}) {
		t.Errorf("green = %v, want [11, 41)", green)
	}
	if !red.Equal(List{sp(41, 100)}) {
		t.Errorf("red = %v, want [41, 100)", red)
	}
}

func TestStaticFluentRelativeComplement(t *testing.T) {
	// disagreement = busC \ scatsC, the sourceDisagreement pattern.
	tf := func(evType string) func(ctx *Context) []Transition {
		return func(ctx *Context) []Transition {
			var out []Transition
			for _, e := range ctx.Events(evType) {
				up, _ := e.Bool("up")
				if up {
					out = append(out, InitiateAt(e.Key, e.Time))
				} else {
					out = append(out, TerminateAt(e.Key, e.Time))
				}
			}
			return out
		}
	}
	defs, err := NewBuilder().
		DeclareSDE("busEv", "scatsEv").
		Simple(SimpleFluent{Name: "busC", Inputs: []string{"busEv"}, Transitions: tf("busEv")}).
		Simple(SimpleFluent{Name: "scatsC", Inputs: []string{"scatsEv"}, Transitions: tf("scatsEv")}).
		Static(StaticFluent{
			Name:   "disagreement",
			Inputs: []string{"busC", "scatsC"},
			HoldsFor: func(ctx *Context) map[KV]IntervalList {
				out := make(map[KV]IntervalList)
				for kv, busI := range ctx.FluentInstances("busC") {
					scatsI := ctx.Intervals("scatsC", kv.Key)
					if d := interval.RelativeComplementAll(busI, []List{scatsI}); len(d) > 0 {
						out[kv] = d
					}
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(defs, Options{WorkingMemory: 200})
	up := map[string]any{"up": true}
	down := map[string]any{"up": false}
	if err := e.Input(
		NewEvent("busEv", 10, "i1", up),
		NewEvent("busEv", 100, "i1", down),
		NewEvent("scatsEv", 40, "i1", up),
		NewEvent("scatsEv", 70, "i1", down),
	); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(199)
	if err != nil {
		t.Fatal(err)
	}
	// bus congestion [11, 101), scats congestion [41, 71):
	// disagreement = [11, 41) ∪ [71, 101).
	got := res.Intervals("disagreement", "i1")
	want := List{sp(11, 41), sp(71, 101)}
	if !got.Equal(want) {
		t.Errorf("disagreement = %v, want %v", got, want)
	}
}

func TestDerivedEventsAndFresh(t *testing.T) {
	// "surge": derived whenever two "tick" events of the same key
	// occur within 10 time points with increasing magnitude.
	defs, err := NewBuilder().
		DeclareSDE("tick").
		Event(EventRule{
			Name:   "surge",
			Inputs: []string{"tick"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				for _, key := range ctx.EventKeys("tick") {
					evs := ctx.EventsForKey("tick", key)
					for i := 1; i < len(evs); i++ {
						prev, cur := evs[i-1], evs[i]
						pv, _ := prev.Float("v")
						cv, _ := cur.Float("v")
						if cur.Time-prev.Time < 10 && cv > pv {
							out = append(out, NewEvent("surge", cur.Time, key, nil))
						}
					}
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(defs, Options{WorkingMemory: 100, Step: 50})
	if err := e.Input(
		NewEvent("tick", 10, "a", map[string]any{"v": 1.0}),
		NewEvent("tick", 15, "a", map[string]any{"v": 2.0}), // surge@15
		NewEvent("tick", 40, "a", map[string]any{"v": 1.0}), // no surge (v down)
	); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Derived["surge"]); n != 1 {
		t.Fatalf("derived surges = %d, want 1", n)
	}
	if len(res.Fresh) != 1 || res.Fresh[0].Time != 15 {
		t.Errorf("Fresh = %v, want the surge at 15", res.Fresh)
	}

	// Next query re-recognises the same surge (still in window) but
	// it is no longer fresh; a new one is.
	if err := e.Input(NewEvent("tick", 60, "a", map[string]any{"v": 5.0}),
		NewEvent("tick", 65, "a", map[string]any{"v": 6.0})); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Derived["surge"]); n != 2 {
		t.Fatalf("derived surges = %d, want 2 (one re-recognised)", n)
	}
	if len(res.Fresh) != 1 || res.Fresh[0].Time != 65 {
		t.Errorf("Fresh = %v, want only the surge at 65", res.Fresh)
	}
	if res.Stats.DerivedEvents != 2 {
		t.Errorf("Stats.DerivedEvents = %d, want 2", res.Stats.DerivedEvents)
	}
}

func TestEventRuleFeedsSimpleFluent(t *testing.T) {
	// Derived events feeding a higher-stratum fluent: "alarm" holds
	// from the first derived "breach" until a "reset" SDE.
	defs, err := NewBuilder().
		DeclareSDE("reading", "reset").
		Event(EventRule{
			Name:   "breach",
			Inputs: []string{"reading"},
			Derive: func(ctx *Context) []Event {
				var out []Event
				for _, e := range ctx.Events("reading") {
					if v, _ := e.Float("v"); v > 100 {
						out = append(out, NewEvent("breach", e.Time, e.Key, nil))
					}
				}
				return out
			},
		}).
		Simple(SimpleFluent{
			Name:   "alarm",
			Inputs: []string{"breach", "reset"},
			Transitions: func(ctx *Context) []Transition {
				var out []Transition
				for _, e := range ctx.Events("breach") {
					out = append(out, InitiateAt(e.Key, e.Time))
				}
				for _, e := range ctx.Events("reset") {
					out = append(out, TerminateAt(e.Key, e.Time))
				}
				return out
			},
		}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(defs, Options{WorkingMemory: 100})
	if err := e.Input(
		NewEvent("reading", 10, "boiler", map[string]any{"v": 120.0}),
		NewEvent("reset", 30, "boiler", nil),
	); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Intervals("alarm", "boiler").Equal(List{sp(11, 31)}) {
		t.Errorf("alarm = %v, want [11, 31)", res.Intervals("alarm", "boiler"))
	}
}

func TestRunCallback(t *testing.T) {
	e, _ := NewEngine(onOffDefs(t), Options{WorkingMemory: 20, Step: 10})
	if err := e.Input(ev("on", 5, "tv")); err != nil {
		t.Fatal(err)
	}
	var qs []Time
	err := e.Run(10, 40, func(r *Result) error {
		qs = append(qs, r.Q)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 || qs[0] != 10 || qs[3] != 40 {
		t.Errorf("query times = %v", qs)
	}
}

func TestPartitionedEngine(t *testing.T) {
	defs := onOffDefs(t)
	part, err := NewPartitioned(defs, Options{WorkingMemory: 100}, 2, func(e Event) int {
		if e.Key < "m" {
			return 0
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if part.NumPartitions() != 2 {
		t.Fatal("partition count")
	}
	if err := part.Input(
		ev("on", 10, "alpha"), // partition 0
		ev("on", 20, "zeta"),  // partition 1
		ev("off", 50, "zeta"),
	); err != nil {
		t.Fatal(err)
	}
	results, err := part.Query(99)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatal("want two results")
	}
	merged := MergeResults(results)
	if !merged.Intervals("power", "alpha").Equal(List{sp(11, 100)}) {
		t.Errorf("alpha = %v", merged.Intervals("power", "alpha"))
	}
	if !merged.Intervals("power", "zeta").Equal(List{sp(21, 51)}) {
		t.Errorf("zeta = %v", merged.Intervals("power", "zeta"))
	}
	if merged.Stats.InputEvents != 3 {
		t.Errorf("merged InputEvents = %d, want 3", merged.Stats.InputEvents)
	}
}

func TestPartitionedErrors(t *testing.T) {
	defs := onOffDefs(t)
	if _, err := NewPartitioned(defs, Options{WorkingMemory: 10}, 0, func(Event) int { return 0 }); err == nil {
		t.Error("zero partitions must error")
	}
	if _, err := NewPartitioned(defs, Options{WorkingMemory: 10}, 2, nil); err == nil {
		t.Error("nil assign must error")
	}
	p, err := NewPartitioned(defs, Options{WorkingMemory: 10}, 2, func(Event) int { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Input(ev("on", 1, "x")); err == nil {
		t.Error("out-of-range partition must error")
	}
}

func TestEventAttributeAccessors(t *testing.T) {
	e := NewEvent("move", 5, "bus1", map[string]any{
		"delay": int64(400),
		"lon":   -6.26,
		"line":  "r10",
		"cong":  true,
		"count": 7, // plain int
	})
	if v, ok := e.Int("delay"); !ok || v != 400 {
		t.Errorf("Int(delay) = %v, %v", v, ok)
	}
	if v, ok := e.Int("count"); !ok || v != 7 {
		t.Errorf("Int(count) = %v, %v", v, ok)
	}
	if v, ok := e.Float("lon"); !ok || v != -6.26 {
		t.Errorf("Float(lon) = %v, %v", v, ok)
	}
	if v, ok := e.Float("delay"); !ok || v != 400 {
		t.Errorf("Float(delay int conv) = %v, %v", v, ok)
	}
	if v, ok := e.Str("line"); !ok || v != "r10" {
		t.Errorf("Str(line) = %v, %v", v, ok)
	}
	if v, ok := e.Bool("cong"); !ok || !v {
		t.Errorf("Bool(cong) = %v, %v", v, ok)
	}
	if _, ok := e.Get("nope"); ok {
		t.Error("missing attribute must report !ok")
	}
	if _, ok := e.Float("line"); ok {
		t.Error("type mismatch must report !ok")
	}
	if got := e.String(); got != "move(bus1)@5" {
		t.Errorf("String = %q", got)
	}
}

func TestContextValueAt(t *testing.T) {
	ctx := newContext(100, sp(1, 101))
	ctx.setFluent("light", map[KV]List{
		{Key: "x", Value: "green"}: {sp(0, 50)},
		{Key: "x", Value: "red"}:   {sp(50, 100)},
	})
	if v, ok := ctx.ValueAt("light", "x", 20); !ok || v != "green" {
		t.Errorf("ValueAt(20) = %q, %v", v, ok)
	}
	if v, ok := ctx.ValueAt("light", "x", 60); !ok || v != "red" {
		t.Errorf("ValueAt(60) = %q, %v", v, ok)
	}
	if _, ok := ctx.ValueAt("light", "x", 200); ok {
		t.Error("ValueAt outside any interval must report !ok")
	}
	if _, ok := ctx.ValueAt("light", "y", 20); ok {
		t.Error("ValueAt for unknown key must report !ok")
	}
	if !ctx.HoldsAtValue("light", "x", "red", 60) {
		t.Error("HoldsAtValue(red, 60) = false")
	}
}

func TestDescribe(t *testing.T) {
	tf := func(*Context) []Transition { return nil }
	hf := func(*Context) map[KV]IntervalList { return nil }
	df := func(*Context) []Event { return nil }
	defs, err := NewBuilder().
		DeclareSDE("move", "traffic").
		Simple(SimpleFluent{Name: "congested", Inputs: []string{"traffic"}, Transitions: tf}).
		Static(StaticFluent{Name: "disagreement", Inputs: []string{"congested"}, HoldsFor: hf}).
		Event(EventRule{Name: "alarm", Inputs: []string{"disagreement"}, Derive: df}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	out := defs.Describe()
	for _, want := range []string{
		"SDE types: move, traffic",
		"simple fluent",
		"static fluent",
		"derived event",
		"stratum 1",
		"stratum 2",
		"stratum 3",
		"<- disagreement",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
