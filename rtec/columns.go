package rtec

// Columnar SDE ingestion. The transport layer moves batches of
// same-typed events as struct-of-arrays blocks; instead of decoding
// each row into an attribute map before insertion, the engine copies
// the admitted rows into an owned Block and files lightweight view
// Events whose accessors read the columns directly. The store, the
// window machinery and every CE definition see ordinary Events — the
// view is behaviourally identical to a map-backed event with the same
// attributes (accessor coercions included) — but ingestion performs a
// handful of slice copies per block rather than one map allocation plus
// per-attribute boxing per event.

// ColKind is the value type of one block column.
type ColKind uint8

const (
	// ColFloat is a float64 column.
	ColFloat ColKind = iota
	// ColInt is an int64 column.
	ColInt
	// ColBool is a bool column.
	ColBool
	// ColStr is a dictionary-encoded string column.
	ColStr
	// ColIntGo is a Go int column. The resident column store keeps it
	// distinct from ColInt so a columnarised map event returns the
	// exact boxed type the original did from Event.Get.
	ColIntGo
	// ColAny is a boxed fallback column for rows whose attribute
	// values mix types (or use a type no packed column covers). Only
	// the resident column store produces it.
	ColAny
)

// BCol is one named attribute column of a Block. Exactly one data
// slice is populated, according to Kind; string columns carry per-row
// indexes into the small Dict table of distinct values.
//
// Present optionally marks which rows carry the attribute at all; a
// nil Present means every row does (the only case the transport layer
// produces). The resident column store uses the mask when events of
// one type disagree on their attribute sets.
type BCol struct {
	Name string
	Kind ColKind

	F       []float64
	I       []int64
	B       []bool
	SIdx    []uint32
	Dict    []string
	N       []int // ColIntGo
	A       []any // ColAny
	Present []bool

	// dict indexes Dict for find-or-add interning; only the resident
	// column store maintains it (nil on transport blocks).
	//state:derived interning index over Dict, rebuilt on append
	dict map[string]uint32
}

// present reports whether the attribute is set on row.
func (c *BCol) present(row int) bool {
	return c.Present == nil || c.Present[row]
}

// Block is a columnar batch of same-typed SDEs: occurrence times and
// entity keys in flat slices, one BCol per attribute, all of equal
// length. Times is []int64 rather than []Time so transport batches
// (whose flat slices are untyped int64) convert without copying.
// Blocks handed to InputBlock are read-only from the engine's
// perspective; the engine copies what it keeps, so the caller may
// recycle the block immediately after the call returns.
type Block struct {
	Type  string
	Times []int64
	// Keys is the transport representation; resident store segments
	// keep it nil and key rows through KIdx/KDict instead (see
	// colSeg), so the restore path rebuilds the dictionary form.
	//state:derived transport form of KIdx/KDict; nil on resident segments
	Keys []string
	Cols []BCol

	// KIdx/KDict optionally dictionary-encode Keys (KIdx[i] indexes
	// KDict, one entry per row when present). The store uses them to
	// group rows by entity key with small-integer ids instead of
	// hashing the key string per row; both may be nil, the key strings
	// in Keys stay authoritative either way. KDict entries must be
	// stable for the duration of the InputBlock call — the engine only
	// reads them transiently during insertion.
	KIdx  []uint32
	KDict []string
}

// Len returns the number of rows.
func (b *Block) Len() int { return len(b.Times) }

// Key returns the entity key of row i. The resident column store
// keeps Keys nil and encodes every key through KIdx/KDict; transport
// blocks always populate Keys.
func (b *Block) Key(i int) string {
	if b.Keys == nil {
		return b.KDict[b.KIdx[i]]
	}
	return b.Keys[i]
}

// Event returns the view event of row i: an Event whose attribute
// accessors read b's columns. The view is valid for as long as the
// block is; the engine only builds views over blocks it owns.
func (b *Block) Event(i int) Event {
	return Event{Type: b.Type, Time: Time(b.Times[i]), Key: b.Key(i), blk: b, row: int32(i)}
}

// Column returns the named attribute column, or nil if the block does
// not carry it. The pointer is into b's Cols slice and is valid while
// the block is.
func (b *Block) Column(name string) *BCol {
	ci := b.colIndex(name)
	if ci < 0 {
		return nil
	}
	return &b.Cols[ci]
}

func (b *Block) colIndex(name string) int {
	for i := range b.Cols {
		if b.Cols[i].Name == name {
			return i
		}
	}
	return -1
}

// getAt is the Event.Get backend: the boxed value of one cell.
func (b *Block) getAt(name string, row int) (any, bool) {
	ci := b.colIndex(name)
	if ci < 0 {
		return nil, false
	}
	c := &b.Cols[ci]
	if !c.present(row) {
		return nil, false
	}
	switch c.Kind {
	case ColFloat:
		return c.F[row], true
	case ColInt:
		return c.I[row], true
	case ColBool:
		return c.B[row], true
	case ColIntGo:
		return c.N[row], true
	case ColAny:
		return c.A[row], true
	default:
		return c.Dict[c.SIdx[row]], true
	}
}

// floatAt mirrors the map accessor's coercions: float64 and integer
// attributes convert; strings and bools don't.
func (b *Block) floatAt(name string, row int) (float64, bool) {
	ci := b.colIndex(name)
	if ci < 0 {
		return 0, false
	}
	c := &b.Cols[ci]
	if !c.present(row) {
		return 0, false
	}
	switch c.Kind {
	case ColFloat:
		return c.F[row], true
	case ColInt:
		return float64(c.I[row]), true
	case ColIntGo:
		return float64(c.N[row]), true
	case ColAny:
		switch v := c.A[row].(type) {
		case float64:
			return v, true
		case int:
			return float64(v), true
		case int64:
			return float64(v), true
		}
	}
	return 0, false
}

// intAt mirrors the map accessor's coercions (floats truncate).
func (b *Block) intAt(name string, row int) (int64, bool) {
	ci := b.colIndex(name)
	if ci < 0 {
		return 0, false
	}
	c := &b.Cols[ci]
	if !c.present(row) {
		return 0, false
	}
	switch c.Kind {
	case ColInt:
		return c.I[row], true
	case ColFloat:
		return int64(c.F[row]), true
	case ColIntGo:
		return int64(c.N[row]), true
	case ColAny:
		switch v := c.A[row].(type) {
		case int64:
			return v, true
		case int:
			return int64(v), true
		case float64:
			return int64(v), true
		}
	}
	return 0, false
}

func (b *Block) strAt(name string, row int) (string, bool) {
	ci := b.colIndex(name)
	if ci < 0 {
		return "", false
	}
	c := &b.Cols[ci]
	if !c.present(row) {
		return "", false
	}
	switch c.Kind {
	case ColStr:
		return c.Dict[c.SIdx[row]], true
	case ColAny:
		v, ok := c.A[row].(string)
		return v, ok
	}
	return "", false
}

func (b *Block) boolAt(name string, row int) (bool, bool) {
	ci := b.colIndex(name)
	if ci < 0 {
		return false, false
	}
	c := &b.Cols[ci]
	if !c.present(row) {
		return false, false
	}
	switch c.Kind {
	case ColBool:
		return c.B[row], true
	case ColAny:
		v, ok := c.A[row].(bool)
		return v, ok
	}
	return false, false
}

// copyRows gathers the given rows of src into a freshly allocated
// block the engine owns. Column kinds and names carry over; string
// dictionaries are copied whole and the row indexes gathered, so no
// re-interning (and no hashing at all) happens per row.
func copyRows(src *Block, rows []int32) *Block {
	n := len(rows)
	dst := &Block{
		Type:  src.Type,
		Times: make([]int64, n),
		Keys:  make([]string, n),
		Cols:  make([]BCol, len(src.Cols)),
	}
	for j, r := range rows {
		dst.Times[j] = src.Times[r]
		dst.Keys[j] = src.Keys[r]
	}
	if src.KIdx != nil {
		// Gather the key ids and alias the dictionary: both are only
		// read during the insertion that immediately follows, and the
		// source block is live for that long by contract (the caller
		// may recycle it only after InputBlock returns). inputBlock
		// drops them afterwards so the owned block never pins the
		// transport dictionary.
		dst.KIdx = make([]uint32, n)
		for j, r := range rows {
			dst.KIdx[j] = src.KIdx[r]
		}
		dst.KDict = src.KDict
	}
	for ci := range src.Cols {
		sc := &src.Cols[ci]
		dc := &dst.Cols[ci]
		dc.Name, dc.Kind = sc.Name, sc.Kind
		switch sc.Kind {
		case ColFloat:
			dc.F = make([]float64, n)
			for j, r := range rows {
				dc.F[j] = sc.F[r]
			}
		case ColInt:
			dc.I = make([]int64, n)
			for j, r := range rows {
				dc.I[j] = sc.I[r]
			}
		case ColBool:
			dc.B = make([]bool, n)
			for j, r := range rows {
				dc.B[j] = sc.B[r]
			}
		case ColIntGo:
			dc.N = make([]int, n)
			for j, r := range rows {
				dc.N[j] = sc.N[r]
			}
		case ColAny:
			dc.A = make([]any, n)
			for j, r := range rows {
				dc.A[j] = sc.A[r]
			}
		default:
			dc.Dict = append([]string(nil), sc.Dict...)
			dc.SIdx = make([]uint32, n)
			for j, r := range rows {
				dc.SIdx[j] = sc.SIdx[r]
			}
		}
		if sc.Present != nil {
			dc.Present = make([]bool, n)
			for j, r := range rows {
				dc.Present[j] = sc.Present[r]
			}
		}
	}
	return dst
}
