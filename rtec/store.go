package rtec

import "sort"

// eventStore is the engine's time-indexed SDE store. Events are kept in
// per-type buckets sorted by occurrence time (ties in arrival order, so
// the ordering matches the engine's historical stable sort), with a
// parallel per-key index for the EventsForKey joins. Window extraction
// is a binary-search slice — no copying, no per-query re-sorting — and
// eviction is an amortised O(log n) prefix trim.
//
// The store also tracks, per type, the earliest occurrence time among
// events that arrived late (at or before the last query time) since
// that query: the "dirty watermark" the incremental evaluator consults
// to decide how much of a cached overlap result is still valid —
// everything the late region can influence must be recomputed, the
// rest is reusable.
type eventStore struct {
	types map[string]*typeEvents
}

type typeEvents struct {
	events []Event            // time-sorted, arrival-stable
	byKey  map[string][]Event // per entity key, time-sorted
	// lateMin is the earliest occurrence time among events that
	// arrived at or before the engine's last query time, since that
	// query. MaxTime means no late arrivals.
	lateMin Time
}

func newEventStore() *eventStore {
	return &eventStore{types: make(map[string]*typeEvents)}
}

func (s *eventStore) bucket(typ string) *typeEvents { return s.types[typ] }

// insert files an event, preserving time order (equal times keep
// arrival order). late marks events whose occurrence time is at or
// before the last query time — they land in a region earlier queries
// already evaluated.
func (s *eventStore) insert(ev Event, late bool) {
	b := s.types[ev.Type]
	if b == nil {
		b = &typeEvents{byKey: make(map[string][]Event), lateMin: MaxTime}
		s.types[ev.Type] = b
	}
	b.events = insertSorted(b.events, ev)
	b.byKey[ev.Key] = insertSorted(b.byKey[ev.Key], ev)
	if late && ev.Time < b.lateMin {
		b.lateMin = ev.Time
	}
}

// insertSorted places ev after every event with Time <= ev.Time. The
// common case — in-order arrival — is an O(1) append.
func insertSorted(evs []Event, ev Event) []Event {
	n := len(evs)
	if n == 0 || evs[n-1].Time <= ev.Time {
		return append(evs, ev)
	}
	i := sort.Search(n, func(i int) bool { return evs[i].Time > ev.Time })
	evs = append(evs, Event{})
	copy(evs[i+1:], evs[i:])
	evs[i] = ev
	return evs
}

// evict permanently discards events with Time <= cutoff (RTEC's
// working-memory windowing).
func (s *eventStore) evict(cutoff Time) {
	for typ, b := range s.types {
		b.events = trimBefore(b.events, cutoff)
		for key, evs := range b.byKey {
			t := trimBefore(evs, cutoff)
			if len(t) == 0 {
				delete(b.byKey, key)
			} else {
				b.byKey[key] = t
			}
		}
		if len(b.events) == 0 && len(b.byKey) == 0 && b.lateMin == MaxTime {
			delete(s.types, typ)
		}
	}
}

// trimBefore drops the prefix of events with Time <= cutoff. When the
// dead prefix dominates, the survivors are copied into a fresh slice so
// the backing array can be reclaimed.
func trimBefore(evs []Event, cutoff Time) []Event {
	if len(evs) == 0 || evs[0].Time > cutoff {
		return evs
	}
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Time > cutoff })
	if i == len(evs) {
		return nil
	}
	if i*2 >= len(evs) {
		out := make([]Event, len(evs)-i)
		copy(out, evs[i:])
		return out
	}
	return evs[i:]
}

// window returns the stored events of a type with occurrence time in
// span [Start, End), as a shared sub-slice of the bucket.
func (b *typeEvents) window(span Span) []Event {
	return sliceSpan(b.events, span)
}

// windowForKey is window restricted to one entity key.
func (b *typeEvents) windowForKey(key string, span Span) []Event {
	return sliceSpan(b.byKey[key], span)
}

// sliceSpan restricts a time-sorted slice to [span.Start, span.End).
func sliceSpan(evs []Event, span Span) []Event {
	if len(evs) == 0 || span.Empty() {
		return nil
	}
	lo := 0
	if evs[0].Time < span.Start {
		lo = sort.Search(len(evs), func(i int) bool { return evs[i].Time >= span.Start })
	}
	hi := len(evs)
	if hi > lo && evs[hi-1].Time >= span.End {
		hi = lo + sort.Search(hi-lo, func(i int) bool { return evs[lo+i].Time >= span.End })
	}
	if lo >= hi {
		return nil
	}
	return evs[lo:hi]
}

// dirtyFloor returns the earliest late-arrival time across the given
// SDE types, or MaxTime if none of them received late events since the
// last query. Cached rule outputs the late region can influence (at or
// after floor − effective lookahead) must be recomputed.
func (s *eventStore) dirtyFloor(sdeTypes map[string]bool) Time {
	floor := MaxTime
	for typ := range sdeTypes {
		if b := s.types[typ]; b != nil && b.lateMin < floor {
			floor = b.lateMin
		}
	}
	return floor
}

// clearDirty resets the late watermarks; the engine calls it once per
// completed query.
func (s *eventStore) clearDirty() {
	for _, b := range s.types {
		b.lateMin = MaxTime
	}
}
