package rtec

import "sort"

// eventStore is the engine's time-indexed SDE store. Events are kept in
// per-type buckets sorted by occurrence time (ties in arrival order, so
// the ordering matches the engine's historical stable sort), with a
// parallel per-key index for the EventsForKey joins. Window extraction
// is a binary-search slice — no copying, no per-query re-sorting — and
// eviction is an amortised O(log n) prefix trim.
//
// The store also tracks, per type, the earliest occurrence time among
// events that arrived late (at or before the last query time) since
// that query: the "dirty watermark" the incremental evaluator consults
// to decide how much of a cached overlap result is still valid —
// everything the late region can influence must be recomputed, the
// rest is reusable.
type eventStore struct {
	types map[string]*typeEvents
	// mergeScratch is the reusable overlap buffer of mergeBlock;
	// kidCnt/kidEnd/kidOrder are the reusable per-key grouping buffers
	// of insertKeyGroups.
	mergeScratch []Event
	kidCnt       []int32
	kidEnd       []int32
	kidOrder     []int32
}

type typeEvents struct {
	events []Event            // time-sorted, arrival-stable
	byKey  map[string][]Event // per entity key, time-sorted
	// lateMin is the earliest occurrence time among events that
	// arrived at or before the engine's last query time, since that
	// query. MaxTime means no late arrivals.
	lateMin Time
}

func newEventStore() *eventStore {
	return &eventStore{types: make(map[string]*typeEvents)}
}

func (s *eventStore) bucket(typ string) *typeEvents { return s.types[typ] }

// insert files an event, preserving time order (equal times keep
// arrival order). late marks events whose occurrence time is at or
// before the last query time — they land in a region earlier queries
// already evaluated.
func (s *eventStore) insert(ev Event, late bool) {
	b := s.types[ev.Type]
	if b == nil {
		b = &typeEvents{byKey: make(map[string][]Event), lateMin: MaxTime}
		s.types[ev.Type] = b
	}
	b.events = insertSorted(b.events, ev)
	b.byKey[ev.Key] = insertSorted(b.byKey[ev.Key], ev)
	if late && ev.Time < b.lateMin {
		b.lateMin = ev.Time
	}
}

// insertBlock files every row of an engine-owned block whose rows are
// time-sorted (ties in arrival order — the engine sorts admitted rows
// stably before gathering them). The resulting store state is exactly
// what row-by-row insert produces: the time-sorted, arrival-stable
// order of a bucket is unique, so insertion order never shows. Sorting
// first is what makes the type bucket cheap to maintain — one bulk
// merge per block instead of a binary search and an O(overlap) shift
// per row — and it turns the per-key appends into insertSorted's O(1)
// fast path, since each key's rows now arrive in time order.
func (s *eventStore) insertBlock(blk *Block, started bool, lastQ Time) {
	n := blk.Len()
	if n == 0 {
		return
	}
	b := s.types[blk.Type]
	if b == nil {
		b = &typeEvents{byKey: make(map[string][]Event), lateMin: MaxTime}
		s.types[blk.Type] = b
	}
	s.mergeBlock(b, blk)
	if blk.KIdx != nil {
		s.insertKeyGroups(b, blk)
	} else {
		for i := 0; i < n; i++ {
			// Inline insertSorted's fast path: the block's rows reach
			// each key in time order, so the per-key append almost
			// never needs the binary-search shift — and skipping the
			// call avoids copying the Event argument twice.
			key := blk.Keys[i]
			kb := b.byKey[key]
			if m := len(kb); m == 0 || kb[m-1].Time <= Time(blk.Times[i]) {
				b.byKey[key] = append(kb, blk.Event(i))
			} else {
				b.byKey[key] = insertSorted(kb, blk.Event(i))
			}
		}
	}
	if started {
		for i := 0; i < n; i++ {
			if t := Time(blk.Times[i]); t <= lastQ && t < b.lateMin {
				b.lateMin = t
			}
		}
	}
}

// insertKeyGroups files the block's rows into the per-key index using
// the key dictionary: rows are grouped by key id with a counting pass
// (no hashing), and the byKey map is touched once per distinct key
// instead of once per row. Row order is preserved within each group,
// so every key's sub-sequence arrives time-sorted and the resulting
// per-key slices are exactly what the per-row loop produces.
func (s *eventStore) insertKeyGroups(b *typeEvents, blk *Block) {
	n := blk.Len()
	nk := len(blk.KDict)
	cnt := resizeInt32(&s.kidCnt, nk)
	for _, kid := range blk.KIdx {
		cnt[kid]++
	}
	end := resizeInt32(&s.kidEnd, nk)
	sum := int32(0)
	for k, c := range cnt {
		sum += c
		end[k] = sum
	}
	order := resizeInt32(&s.kidOrder, n)
	for i := n - 1; i >= 0; i-- {
		kid := blk.KIdx[i]
		end[kid]--
		order[end[kid]] = int32(i)
	}
	// end[k] is now the start of group k; its length is cnt[k].
	for k := 0; k < nk; k++ {
		c := cnt[k]
		if c == 0 {
			continue
		}
		rows := order[end[k] : end[k]+c]
		kb := b.byKey[blk.KDict[k]]
		for _, i := range rows {
			if m := len(kb); m == 0 || kb[m-1].Time <= Time(blk.Times[i]) {
				kb = append(kb, blk.Event(int(i)))
			} else {
				kb = insertSorted(kb, blk.Event(int(i)))
			}
		}
		b.byKey[blk.KDict[k]] = kb
	}
}

// resizeInt32 sizes the reusable buffer to n zeroed entries.
func resizeInt32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
		return *buf
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return *buf
}

// mergeBlock merges the time-sorted rows of blk into the type bucket's
// time-sorted events. The common case — the block lands entirely after
// the stored events — is a pure bulk append; otherwise only the
// overlapping tail (mediator-delay jitter, typically a few dozen
// events) is re-merged, with existing events kept ahead of new ones on
// time ties to preserve arrival order.
func (s *eventStore) mergeBlock(b *typeEvents, blk *Block) {
	n := blk.Len()
	evs := b.events
	if len(evs) == 0 || evs[len(evs)-1].Time <= Time(blk.Times[0]) {
		base := len(evs)
		if need := base + n; need > cap(evs) {
			grown := make([]Event, base, max(need, 2*cap(evs)))
			copy(grown, evs)
			evs = grown
		}
		evs = evs[:base+n]
		for i := 0; i < n; i++ {
			evs[base+i] = blk.Event(i)
		}
		b.events = evs
		return
	}
	cut := sort.Search(len(evs), func(i int) bool { return evs[i].Time > Time(blk.Times[0]) })
	s.mergeScratch = append(s.mergeScratch[:0], evs[cut:]...)
	tail := s.mergeScratch
	evs = evs[:cut]
	i, j := 0, 0
	for i < len(tail) && j < n {
		if tail[i].Time <= Time(blk.Times[j]) {
			evs = append(evs, tail[i])
			i++
		} else {
			evs = append(evs, blk.Event(j))
			j++
		}
	}
	evs = append(evs, tail[i:]...)
	for ; j < n; j++ {
		evs = append(evs, blk.Event(j))
	}
	b.events = evs
	// Drop the scratch's event references (they pin view blocks past
	// eviction otherwise); the backing array is reused next merge.
	clear(s.mergeScratch)
}

// insertSorted places ev after every event with Time <= ev.Time. The
// common case — in-order arrival — is an O(1) append.
func insertSorted(evs []Event, ev Event) []Event {
	n := len(evs)
	if n == 0 || evs[n-1].Time <= ev.Time {
		return append(evs, ev)
	}
	i := sort.Search(n, func(i int) bool { return evs[i].Time > ev.Time })
	evs = append(evs, Event{})
	copy(evs[i+1:], evs[i:])
	evs[i] = ev
	return evs
}

// evict permanently discards events with Time <= cutoff (RTEC's
// working-memory windowing).
func (s *eventStore) evict(cutoff Time) {
	for typ, b := range s.types {
		b.events = trimBefore(b.events, cutoff)
		for key, evs := range b.byKey {
			t := trimBefore(evs, cutoff)
			if len(t) == 0 {
				delete(b.byKey, key)
			} else {
				b.byKey[key] = t
			}
		}
		if len(b.events) == 0 && len(b.byKey) == 0 && b.lateMin == MaxTime {
			delete(s.types, typ)
		}
	}
}

// trimBefore drops the prefix of events with Time <= cutoff. When the
// dead prefix dominates, the survivors are copied into a fresh slice so
// the backing array can be reclaimed.
func trimBefore(evs []Event, cutoff Time) []Event {
	if len(evs) == 0 || evs[0].Time > cutoff {
		return evs
	}
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Time > cutoff })
	if i == len(evs) {
		return nil
	}
	if i*2 >= len(evs) {
		out := make([]Event, len(evs)-i)
		copy(out, evs[i:])
		return out
	}
	return evs[i:]
}

// window returns the stored events of a type with occurrence time in
// span [Start, End), as a shared sub-slice of the bucket.
func (b *typeEvents) window(span Span) []Event {
	return sliceSpan(b.events, span)
}

// windowForKey is window restricted to one entity key.
func (b *typeEvents) windowForKey(key string, span Span) []Event {
	return sliceSpan(b.byKey[key], span)
}

// sliceSpan restricts a time-sorted slice to [span.Start, span.End).
func sliceSpan(evs []Event, span Span) []Event {
	if len(evs) == 0 || span.Empty() {
		return nil
	}
	lo := 0
	if evs[0].Time < span.Start {
		lo = sort.Search(len(evs), func(i int) bool { return evs[i].Time >= span.Start })
	}
	hi := len(evs)
	if hi > lo && evs[hi-1].Time >= span.End {
		hi = lo + sort.Search(hi-lo, func(i int) bool { return evs[lo+i].Time >= span.End })
	}
	if lo >= hi {
		return nil
	}
	return evs[lo:hi]
}

// dirtyFloor returns the earliest late-arrival time across the given
// SDE types, or MaxTime if none of them received late events since the
// last query. Cached rule outputs the late region can influence (at or
// after floor − effective lookahead) must be recomputed.
func (s *eventStore) dirtyFloor(sdeTypes map[string]bool) Time {
	floor := MaxTime
	for typ := range sdeTypes {
		if b := s.types[typ]; b != nil && b.lateMin < floor {
			floor = b.lateMin
		}
	}
	return floor
}

// clearDirty resets the late watermarks; the engine calls it once per
// completed query.
func (s *eventStore) clearDirty() {
	for _, b := range s.types {
		b.lateMin = MaxTime
	}
}
