package rtec

import (
	"fmt"
	"sort"
)

// sdeStore is the engine's working memory: the time-indexed SDE
// buckets a query window is extracted from. Two implementations
// exist — the row-resident eventStore (the original, retained as the
// equivalence reference) and the columnar-resident columnStore — and
// both maintain the exact same observable contract:
//
//   - per-type buckets ordered by (occurrence time, arrival), so the
//     order is unique and insertion strategy never shows;
//   - a per-key index whose per-key sub-sequences follow the same
//     order;
//   - the per-type "dirty watermark" (lateMin): the earliest
//     occurrence time among events that arrived at or before the last
//     query time, which the incremental evaluator consults through
//     dirtyFloor.
//
// Query-visible behaviour (window contents, key sets, dirty floors,
// snapshots) must be bit-identical across implementations; the
// randomized store-equivalence tests pin this.
type sdeStore interface {
	// insert files one event; late marks events landing at or before
	// the last query time.
	insert(ev Event, late bool)
	// insertRows files the given rows of a caller-owned block. The
	// rows must be time-sorted (ties in arrival order); the store
	// copies what it keeps, so the caller may recycle src afterwards.
	insertRows(src *Block, rows []int32, started bool, lastQ Time)
	// bucket returns the type's bucket view, or nil if the store holds
	// no events of the type.
	bucket(typ string) sdeBucket
	// evict permanently discards events with Time <= cutoff.
	evict(cutoff Time)
	dirtyFloor(sdeTypes map[string]bool) Time
	clearDirty()
	// residentBytes estimates the heap resident in the store's
	// long-lived structures (events, indexes, columns, dictionaries).
	// O(stored events); the engine only calls it under Profile.
	residentBytes() uint64
	// snapshotTypes flattens every bucket to the canonical row-oriented
	// snapshot form, types sorted by name — identical engine states
	// produce identical snapshots regardless of store implementation.
	snapshotTypes() ([]TypeSnapshot, error)
	// restoreType rebuilds one bucket from its snapshot (events
	// must be time-sorted; the caller has validated type and
	// uniqueness).
	restoreType(ts TypeSnapshot) error
}

// sdeBucket is the read-only window view of one type's bucket.
type sdeBucket interface {
	// rows returns the events with occurrence time in span, as a
	// zero-copy view in (time, arrival) order.
	rows(span Span) Rows
	// rowsForKey is rows restricted to one entity key.
	rowsForKey(key string, span Span) Rows
	// keysInSpan returns the distinct entity keys with events in span,
	// sorted.
	keysInSpan(span Span) []string
	// countInSpan returns the number of events in span.
	countInSpan(span Span) int
}

// newSDEStore builds the store implementation opts.Store selects.
func newSDEStore(kind StoreKind) sdeStore {
	if kind == StoreColumn {
		return newColumnStore()
	}
	return newEventStore()
}

// eventStore is the engine's time-indexed SDE store. Events are kept in
// per-type buckets sorted by occurrence time (ties in arrival order, so
// the ordering matches the engine's historical stable sort), with a
// parallel per-key index for the EventsForKey joins. Window extraction
// is a binary-search slice — no copying, no per-query re-sorting — and
// eviction is an amortised O(log n) prefix trim.
//
// The store also tracks, per type, the earliest occurrence time among
// events that arrived late (at or before the last query time) since
// that query: the "dirty watermark" the incremental evaluator consults
// to decide how much of a cached overlap result is still valid —
// everything the late region can influence must be recomputed, the
// rest is reusable.
type eventStore struct {
	types map[string]*typeEvents
	// mergeScratch is the reusable overlap buffer of mergeBlock;
	// kidCnt/kidEnd/kidOrder are the reusable per-key grouping buffers
	// of insertKeyGroups.
	mergeScratch []Event //state:transient reusable scratch
	kidCnt       []int32 //state:transient reusable scratch
	kidEnd       []int32 //state:transient reusable scratch
	kidOrder     []int32 //state:transient reusable scratch
}

type typeEvents struct {
	events []Event // time-sorted, arrival-stable
	// byKey indexes events per entity key, time-sorted.
	//state:derived rebuilt from events as they are filed
	byKey map[string][]Event
	// lateMin is the earliest occurrence time among events that
	// arrived at or before the engine's last query time, since that
	// query. MaxTime means no late arrivals.
	lateMin Time
}

func newEventStore() *eventStore {
	return &eventStore{types: make(map[string]*typeEvents)}
}

// bucket returns the type's bucket as an sdeBucket view; the untyped
// nil on a miss matters — returning a nil *typeEvents inside the
// interface would defeat the engine's nil checks.
func (s *eventStore) bucket(typ string) sdeBucket {
	b := s.types[typ]
	if b == nil {
		return nil
	}
	return b
}

// insert files an event, preserving time order (equal times keep
// arrival order). late marks events whose occurrence time is at or
// before the last query time — they land in a region earlier queries
// already evaluated.
func (s *eventStore) insert(ev Event, late bool) {
	b := s.types[ev.Type]
	if b == nil {
		b = &typeEvents{byKey: make(map[string][]Event), lateMin: MaxTime}
		s.types[ev.Type] = b
	}
	b.events = insertSorted(b.events, ev)
	b.byKey[ev.Key] = insertSorted(b.byKey[ev.Key], ev)
	if late && ev.Time < b.lateMin {
		b.lateMin = ev.Time
	}
}

// insertRows gathers the admitted rows into a block the store owns and
// bulk-files it. The key dictionary is only needed to group the
// insertion, so it is dropped afterwards — the long-lived owned block
// must not pin the caller's table.
func (s *eventStore) insertRows(src *Block, rows []int32, started bool, lastQ Time) {
	if len(rows) == 0 {
		return
	}
	owned := copyRows(src, rows)
	s.insertBlock(owned, started, lastQ)
	owned.KIdx, owned.KDict = nil, nil
}

// insertBlock files every row of an engine-owned block whose rows are
// time-sorted (ties in arrival order — the engine sorts admitted rows
// stably before gathering them). The resulting store state is exactly
// what row-by-row insert produces: the time-sorted, arrival-stable
// order of a bucket is unique, so insertion order never shows. Sorting
// first is what makes the type bucket cheap to maintain — one bulk
// merge per block instead of a binary search and an O(overlap) shift
// per row — and it turns the per-key appends into insertSorted's O(1)
// fast path, since each key's rows now arrive in time order.
func (s *eventStore) insertBlock(blk *Block, started bool, lastQ Time) {
	n := blk.Len()
	if n == 0 {
		return
	}
	b := s.types[blk.Type]
	if b == nil {
		b = &typeEvents{byKey: make(map[string][]Event), lateMin: MaxTime}
		s.types[blk.Type] = b
	}
	s.mergeBlock(b, blk)
	if blk.KIdx != nil {
		s.insertKeyGroups(b, blk)
	} else {
		for i := 0; i < n; i++ {
			// Inline insertSorted's fast path: the block's rows reach
			// each key in time order, so the per-key append almost
			// never needs the binary-search shift — and skipping the
			// call avoids copying the Event argument twice.
			key := blk.Keys[i]
			kb := b.byKey[key]
			if m := len(kb); m == 0 || kb[m-1].Time <= Time(blk.Times[i]) {
				b.byKey[key] = append(kb, blk.Event(i))
			} else {
				b.byKey[key] = insertSorted(kb, blk.Event(i))
			}
		}
	}
	if started {
		for i := 0; i < n; i++ {
			if t := Time(blk.Times[i]); t <= lastQ && t < b.lateMin {
				b.lateMin = t
			}
		}
	}
}

// insertKeyGroups files the block's rows into the per-key index using
// the key dictionary: rows are grouped by key id with a counting pass
// (no hashing), and the byKey map is touched once per distinct key
// instead of once per row. Row order is preserved within each group,
// so every key's sub-sequence arrives time-sorted and the resulting
// per-key slices are exactly what the per-row loop produces.
func (s *eventStore) insertKeyGroups(b *typeEvents, blk *Block) {
	n := blk.Len()
	nk := len(blk.KDict)
	cnt := resizeInt32(&s.kidCnt, nk)
	for _, kid := range blk.KIdx {
		cnt[kid]++
	}
	end := resizeInt32(&s.kidEnd, nk)
	sum := int32(0)
	for k, c := range cnt {
		sum += c
		end[k] = sum
	}
	order := resizeInt32(&s.kidOrder, n)
	for i := n - 1; i >= 0; i-- {
		kid := blk.KIdx[i]
		end[kid]--
		order[end[kid]] = int32(i)
	}
	// end[k] is now the start of group k; its length is cnt[k].
	for k := 0; k < nk; k++ {
		c := cnt[k]
		if c == 0 {
			continue
		}
		rows := order[end[k] : end[k]+c]
		kb := b.byKey[blk.KDict[k]]
		for _, i := range rows {
			if m := len(kb); m == 0 || kb[m-1].Time <= Time(blk.Times[i]) {
				kb = append(kb, blk.Event(int(i)))
			} else {
				kb = insertSorted(kb, blk.Event(int(i)))
			}
		}
		b.byKey[blk.KDict[k]] = kb
	}
}

// Scratch buffers are sized by the largest merge overlap or block ever
// seen; one oversized burst (a delayed region flushing at once) must
// not pin that high-water mark forever. Buffers above the floor that a
// use fills to less than a quarter of capacity are reallocated at
// twice the need — the next burst pays one allocation, steady state
// pays none.
const (
	scratchEventFloor = 1 << 10 // Events (~72 B each)
	scratchInt32Floor = 1 << 12 // int32 ids
)

// resizeInt32 sizes the reusable buffer to n zeroed entries, decaying
// oversized capacity left behind by an earlier burst.
func resizeInt32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n || (cap(*buf) > scratchInt32Floor && cap(*buf) > 4*n) {
		*buf = make([]int32, n, max(n, min(cap(*buf)/2, 2*n)))
		return *buf
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return *buf
}

// mergeBlock merges the time-sorted rows of blk into the type bucket's
// time-sorted events. The common case — the block lands entirely after
// the stored events — is a pure bulk append; otherwise only the
// overlapping tail (mediator-delay jitter, typically a few dozen
// events) is re-merged, with existing events kept ahead of new ones on
// time ties to preserve arrival order.
func (s *eventStore) mergeBlock(b *typeEvents, blk *Block) {
	n := blk.Len()
	evs := b.events
	if len(evs) == 0 || evs[len(evs)-1].Time <= Time(blk.Times[0]) {
		base := len(evs)
		if need := base + n; need > cap(evs) {
			grown := make([]Event, base, max(need, 2*cap(evs)))
			copy(grown, evs)
			evs = grown
		}
		evs = evs[:base+n]
		for i := 0; i < n; i++ {
			evs[base+i] = blk.Event(i)
		}
		b.events = evs
		return
	}
	cut := sort.Search(len(evs), func(i int) bool { return evs[i].Time > Time(blk.Times[0]) })
	s.mergeScratch = append(s.mergeScratch[:0], evs[cut:]...)
	tail := s.mergeScratch
	evs = evs[:cut]
	i, j := 0, 0
	for i < len(tail) && j < n {
		if tail[i].Time <= Time(blk.Times[j]) {
			evs = append(evs, tail[i])
			i++
		} else {
			evs = append(evs, blk.Event(j))
			j++
		}
	}
	evs = append(evs, tail[i:]...)
	for ; j < n; j++ {
		evs = append(evs, blk.Event(j))
	}
	b.events = evs
	if cap(s.mergeScratch) > scratchEventFloor && cap(s.mergeScratch) > 4*len(tail) {
		// Decay the high-water mark an oversized overlap left behind;
		// dropping the whole array also drops its event references.
		s.mergeScratch = make([]Event, 0, 2*len(tail))
		return
	}
	// Drop the scratch's event references (they pin view blocks past
	// eviction otherwise); the backing array is reused next merge.
	clear(s.mergeScratch)
}

// insertSorted places ev after every event with Time <= ev.Time. The
// common case — in-order arrival — is an O(1) append.
func insertSorted(evs []Event, ev Event) []Event {
	n := len(evs)
	if n == 0 || evs[n-1].Time <= ev.Time {
		return append(evs, ev)
	}
	i := sort.Search(n, func(i int) bool { return evs[i].Time > ev.Time })
	evs = append(evs, Event{})
	copy(evs[i+1:], evs[i:])
	evs[i] = ev
	return evs
}

// evict permanently discards events with Time <= cutoff (RTEC's
// working-memory windowing).
func (s *eventStore) evict(cutoff Time) {
	for typ, b := range s.types {
		b.events = trimBefore(b.events, cutoff)
		for key, evs := range b.byKey {
			t := trimBefore(evs, cutoff)
			if len(t) == 0 {
				delete(b.byKey, key)
			} else {
				b.byKey[key] = t
			}
		}
		if len(b.events) == 0 && len(b.byKey) == 0 && b.lateMin == MaxTime {
			delete(s.types, typ)
		}
	}
}

// trimBefore drops the prefix of events with Time <= cutoff. When the
// dead prefix dominates, the survivors are copied into a fresh slice so
// the backing array can be reclaimed.
func trimBefore(evs []Event, cutoff Time) []Event {
	if len(evs) == 0 || evs[0].Time > cutoff {
		return evs
	}
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Time > cutoff })
	if i == len(evs) {
		return nil
	}
	if i*2 >= len(evs) {
		out := make([]Event, len(evs)-i)
		copy(out, evs[i:])
		return out
	}
	// The re-slice shares the backing array, so the dead prefix would
	// stay reachable until the next copy-threshold trim — clear its
	// entries so evicted attr maps and view blocks are collectable now.
	clear(evs[:i])
	return evs[i:]
}

// window returns the stored events of a type with occurrence time in
// span [Start, End), as a shared sub-slice of the bucket.
func (b *typeEvents) window(span Span) []Event {
	return sliceSpan(b.events, span)
}

// windowForKey is window restricted to one entity key.
func (b *typeEvents) windowForKey(key string, span Span) []Event {
	return sliceSpan(b.byKey[key], span)
}

// rows wraps the window slice as a Rows view (sdeBucket).
func (b *typeEvents) rows(span Span) Rows {
	return Rows{evs: b.window(span)}
}

func (b *typeEvents) rowsForKey(key string, span Span) Rows {
	return Rows{evs: b.windowForKey(key, span)}
}

func (b *typeEvents) keysInSpan(span Span) []string {
	var out []string
	for k, evs := range b.byKey {
		if len(sliceSpan(evs, span)) > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (b *typeEvents) countInSpan(span Span) int {
	return len(sliceSpan(b.events, span))
}

// sliceSpan restricts a time-sorted slice to [span.Start, span.End).
func sliceSpan(evs []Event, span Span) []Event {
	if len(evs) == 0 || span.Empty() {
		return nil
	}
	lo := 0
	if evs[0].Time < span.Start {
		lo = sort.Search(len(evs), func(i int) bool { return evs[i].Time >= span.Start })
	}
	hi := len(evs)
	if hi > lo && evs[hi-1].Time >= span.End {
		hi = lo + sort.Search(hi-lo, func(i int) bool { return evs[lo+i].Time >= span.End })
	}
	if lo >= hi {
		return nil
	}
	return evs[lo:hi]
}

// dirtyFloor returns the earliest late-arrival time across the given
// SDE types, or MaxTime if none of them received late events since the
// last query. Cached rule outputs the late region can influence (at or
// after floor − effective lookahead) must be recomputed.
func (s *eventStore) dirtyFloor(sdeTypes map[string]bool) Time {
	floor := MaxTime
	for typ := range sdeTypes {
		if b := s.types[typ]; b != nil && b.lateMin < floor {
			floor = b.lateMin
		}
	}
	return floor
}

// clearDirty resets the late watermarks; the engine calls it once per
// completed query.
func (s *eventStore) clearDirty() {
	for _, b := range s.types {
		b.lateMin = MaxTime
	}
}

// Per-entry cost constants for the resident-bytes estimates, fixed so
// the accounting is platform-independent (64-bit layout assumed).
const (
	sizeEvent   = 72 // Event struct: 2 string headers, Time, map ptr, blk ptr, row
	sizeString  = 16 // string header
	sizeSlice   = 24 // slice header
	sizeMapSlot = 48 // rough per-entry map overhead incl. buckets
	sizeBox     = 16 // boxed interface value on the heap
)

// residentBytes estimates the long-lived heap the store keeps per
// event: the per-type event slices, the duplicated per-key index, the
// attribute payloads (map allocations for map-backed events, pinned
// column blocks for view events) and the key index itself. It is an
// estimate — close enough to compare store implementations, not an
// allocator audit.
func (s *eventStore) residentBytes() uint64 {
	var total uint64
	blocks := make(map[*Block]bool)
	for typ, b := range s.types {
		total += uint64(len(typ)) + sizeMapSlot + sizeSlice
		total += uint64(cap(b.events)) * sizeEvent
		for key, evs := range b.byKey {
			total += uint64(len(key)) + sizeMapSlot + uint64(cap(evs))*sizeEvent
		}
		for i := range b.events {
			ev := &b.events[i]
			if ev.blk != nil {
				if !blocks[ev.blk] {
					blocks[ev.blk] = true
					total += blockResidentBytes(ev.blk)
				}
				continue
			}
			if ev.Attrs != nil {
				total += sizeMapSlot // map header
				for name := range ev.Attrs {
					total += uint64(len(name)) + sizeMapSlot + sizeBox
				}
			}
		}
	}
	return total
}

// blockResidentBytes estimates the heap pinned by one owned block.
func blockResidentBytes(b *Block) uint64 {
	total := uint64(cap(b.Times)) * 8
	total += uint64(cap(b.Keys)) * sizeString
	for i := range b.Keys {
		total += uint64(len(b.Keys[i]))
	}
	total += uint64(cap(b.KIdx)) * 4
	for i := range b.KDict {
		total += sizeString + uint64(len(b.KDict[i]))
	}
	for ci := range b.Cols {
		c := &b.Cols[ci]
		total += uint64(len(c.Name))
		total += uint64(cap(c.F))*8 + uint64(cap(c.I))*8 + uint64(cap(c.B)) + uint64(cap(c.N))*8
		total += uint64(cap(c.SIdx))*4 + uint64(cap(c.A))*sizeBox + uint64(cap(c.Present))
		for i := range c.Dict {
			total += sizeString + uint64(len(c.Dict[i]))
		}
	}
	return total
}

// snapshotTypes flattens the buckets to the canonical snapshot form,
// types sorted by name.
func (s *eventStore) snapshotTypes() ([]TypeSnapshot, error) {
	types := make([]string, 0, len(s.types))
	for typ := range s.types {
		types = append(types, typ)
	}
	sort.Strings(types)
	var out []TypeSnapshot
	for _, typ := range types {
		b := s.types[typ]
		ts := TypeSnapshot{Type: typ, LateMin: b.lateMin, Events: make([]EventSnapshot, 0, len(b.events))}
		for _, ev := range b.events {
			es, err := snapshotEvent(ev)
			if err != nil {
				return nil, fmt.Errorf("rtec: snapshot of %s event at %d: %w", typ, int64(ev.Time), err)
			}
			ts.Events = append(ts.Events, es)
		}
		out = append(out, ts)
	}
	return out, nil
}

// restoreType rebuilds one bucket from its snapshot; events must be
// time-sorted (snapshots are taken in store order).
func (s *eventStore) restoreType(ts TypeSnapshot) error {
	b := &typeEvents{byKey: make(map[string][]Event), lateMin: ts.LateMin}
	s.types[ts.Type] = b
	prev := Time(MinTime)
	for i, es := range ts.Events {
		if es.Time < prev {
			return fmt.Errorf("rtec: snapshot events of %q not time-sorted at index %d", ts.Type, i)
		}
		prev = es.Time
		ev, err := restoreEvent(ts.Type, es)
		if err != nil {
			return err
		}
		b.events = append(b.events, ev)
		// Per-key subsequences of a time-sorted bucket are
		// time-sorted, so in-order appends rebuild byKey exactly.
		b.byKey[ev.Key] = append(b.byKey[ev.Key], ev)
	}
	return nil
}
