package insight

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// durableConfig is the system configuration durable runs use in these
// tests: columnar (the WAL speaks the columnar codec), crowdless
// (replay must not re-query participants), unpaced with a strict
// watermark (deterministic and fast — no degradation possible, so
// recognition output is a pure function of the SDE collection).
// The column-resident store is selected so the whole durability suite
// — checkpoints, crash recovery, fingerprint equivalence — runs
// against the block-native working memory (checkpoints themselves are
// store-representation-independent, see rtec snapshots).
func durableConfig(city *dublin.City) Config {
	return Config{
		City:              city,
		Seed:              7,
		WorkingMemory:     1800,
		Step:              900,
		Store:             rtec.StoreColumn,
		ColumnarTransport: true,
		UnpacedReplay:     true,
		Traffic: traffic.Config{
			NoisyPolicy: traffic.Pessimistic,
			Adaptive:    true,
		},
	}
}

func durableSystem(t *testing.T, city *dublin.City) *System {
	t.Helper()
	sys, err := New(durableConfig(city))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDurableMatchesPlain: the durable pipeline — WAL, checkpoints and
// all — must recognise exactly what the plain pipeline recognises, and
// must not leak transport buffers.
func TestDurableMatchesPlain(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	city := testCity(t)

	plainPipe, err := durableSystem(t, city).BuildPipeline(from, until)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainPipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 {
		t.Fatal("plain run produced no reports")
	}

	dir := t.TempDir()
	before := streams.LiveBatches()
	pipe, info, err := durableSystem(t, city).BuildDurablePipeline(from, until, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.Resumed || info.ReplayedRecords != 0 || info.SkippedEnvelopes != 0 {
		t.Fatalf("fresh directory but RecoveryInfo = %+v", info)
	}
	durable, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if live := streams.LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d: durable run leaked transport buffers", live, before)
	}
	if len(durable) != len(plain) {
		t.Fatalf("durable run fired %d boundaries, plain fired %d", len(durable), len(plain))
	}
	for i := range plain {
		if g, w := durable[i].Fingerprint(), plain[i].Fingerprint(); g != w {
			t.Errorf("q=%d diverged:\n  durable: %s\n  plain:   %s", int64(plain[i].Q), g, w)
		}
	}

	// The run left its durability artifacts behind: checkpoints in the
	// root, WAL segments underneath.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".ck") {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Error("completed durable run left no checkpoint files")
	}
	if ckpts > ckptKeep {
		t.Errorf("checkpoint GC kept %d files, want at most %d", ckpts, ckptKeep)
	}
	segs, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil || len(segs) == 0 {
		t.Errorf("no WAL segments after durable run (err=%v)", err)
	}

	// Resuming a completed run must change nothing: the cursors skip
	// every envelope, recognition state is already final, and the union
	// of reports stays consistent with the baseline.
	pipe2, info2, err := durableSystem(t, city).BuildDurablePipeline(from, until, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Resumed {
		t.Fatal("second build in the same directory did not resume")
	}
	if info2.SkippedEnvelopes+info2.ReplayedRecords == 0 {
		t.Fatalf("resume neither skipped nor replayed anything: %+v", info2)
	}
	rerun, err := pipe2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byQ := make(map[Time]string, len(plain))
	for _, rep := range plain {
		byQ[rep.Q] = rep.Fingerprint()
	}
	for _, rep := range rerun {
		want, ok := byQ[rep.Q]
		if !ok {
			t.Errorf("resumed run invented q=%d", int64(rep.Q))
			continue
		}
		if got := rep.Fingerprint(); got != want {
			t.Errorf("resumed q=%d diverged:\n  resumed: %s\n  plain:   %s", int64(rep.Q), got, want)
		}
	}
}

// TestDurableRejectsUnsupportedSystems pins the preconditions: no
// columnar transport and crowdsourcing-enabled systems must refuse to
// build a durable pipeline instead of corrupting recovery semantics.
func TestDurableRejectsUnsupportedSystems(t *testing.T) {
	city := testCity(t)
	cfg := durableConfig(city)
	cfg.ColumnarTransport = false
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.BuildDurablePipeline(7*3600, 8*3600, DurableOptions{Dir: t.TempDir()}); err == nil {
		t.Error("per-item transport accepted")
	}

	cfg = durableConfig(city)
	cfg.Participants = testParticipants(city, 4)
	sys, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.BuildDurablePipeline(7*3600, 8*3600, DurableOptions{Dir: t.TempDir()}); err == nil {
		t.Error("crowdsourcing-enabled system accepted")
	}

	sys = durableSystem(t, city)
	if _, _, err := sys.BuildDurablePipeline(7*3600, 8*3600, DurableOptions{}); err == nil {
		t.Error("empty Dir accepted")
	}
}

// TestCrashEquivalence is the durability gate: a campaign of injected
// kills — torn WAL records at 20+ points across the window, torn,
// post-rename-corrupted and after-rename checkpoint crashes, and a
// combined torn-checkpoint-plus-torn-tail epoch — after which the
// union of everything the crashing runs emitted must fingerprint
// bit-identically to one uninterrupted run.
func TestCrashEquivalence(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	city, err := dublin.NewCity(dublin.Config{
		Seed:             42,
		NumBuses:         24,
		NumSensors:       24,
		Hotspots:         8,
		NoisyBusFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCrashCampaign(context.Background(), CampaignOptions{
		// A finer step halves the batch span cap, roughly doubling the
		// number of WAL records in the window — enough that 20 kill
		// epochs (each of which must durably advance past at least one
		// record) can spread across the log without exhausting it.
		NewSystem: func() (*System, error) {
			cfg := durableConfig(city)
			cfg.Step = 450
			return New(cfg)
		},
		From:  from,
		Until: until,
		Dir:   t.TempDir(),
		Kills: 20,
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) > 0 {
		t.Errorf("crash equivalence violated (%d divergences):\n%s",
			len(res.Mismatches), strings.Join(res.Mismatches, "\n"))
	}
	if !res.Completed {
		t.Error("campaign never completed")
	}
	if res.WALKills < 20 {
		t.Errorf("WAL kills = %d, want >= 20", res.WALKills)
	}
	if res.TornCheckpoints < 1 || res.AfterCheckpoints < 1 || res.CorruptCheckpoints < 1 {
		t.Errorf("checkpoint crash modes = torn %d / after %d / corrupt %d, want >= 1 each",
			res.TornCheckpoints, res.AfterCheckpoints, res.CorruptCheckpoints)
	}
	if res.CombinedEpochs < 1 {
		t.Error("no combined torn-checkpoint + torn-tail epoch ran")
	}
	if res.BaselineRecords < 50 {
		t.Errorf("baseline appended only %d WAL records -- too few to spread 20 kills across", res.BaselineRecords)
	}

	// Incremental recovery: at least one resumed epoch must have
	// replayed a strict, non-empty subset of the log — recovery work is
	// proportional to the post-checkpoint tail, not the whole stream.
	incremental := false
	for i, ep := range res.Epochs {
		if ep.Recovery.Resumed && ep.Recovery.ReplayedRecords > 0 && ep.Recovery.ReplayedRecords < res.BaselineRecords {
			incremental = true
		}
		// The epoch after the combined crash must have seen both
		// artifacts: a torn WAL tail, with the torn checkpoint's temp
		// file ignored.
		if ep.Fault == "combined" && i+1 < len(res.Epochs) {
			if res.Epochs[i+1].Recovery.TornBytes == 0 {
				t.Error("recovery after the combined epoch saw no torn WAL tail")
			}
		}
	}
	if !incremental {
		t.Error("no epoch demonstrated incremental recovery (0 < replayed < total)")
	}

	// The corrupt-checkpoint epoch must have forced a later recovery
	// onto the CRC fallback path.
	sawCorruptFallback := false
	for _, ep := range res.Epochs {
		if ep.Recovery.CorruptCheckpoints > 0 {
			sawCorruptFallback = true
		}
	}
	if !sawCorruptFallback {
		t.Error("no recovery fell back past a corrupt checkpoint")
	}
}
