// Command gpbench measures the GP traffic-model linear algebra at city
// scale: kernel build (regularized-Laplacian inversion), fit,
// full-graph prediction and hyperparameter grid search, each timed in
// two modes —
//
//	serial:  the retained reference kernels (linalg Options.Reference)
//	         and a single-worker grid search — the seed's code path,
//	blocked: the cache-blocked, multi-core kernels and the parallel
//	         (alpha, fold) grid search.
//
// The report is a wall-clock table with per-stage speedups; `make
// bench-gp` records the same stages as a `go test -bench` JSON stream
// (BENCH_gp.json) for later comparison.
//
// Usage:
//
//	gpbench [-gridx 26] [-gridy 20] [-runs 3] [-seed 11] [-workers 0] [-block 64]
//
// The defaults build a 520-vertex Dublin street graph, the n≈512 scale
// the blocked kernels are tuned for.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/gp"
	"github.com/insight-dublin/insight/internal/linalg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpbench: ")
	var (
		gridX   = flag.Int("gridx", 26, "street grid width")
		gridY   = flag.Int("gridy", 20, "street grid height")
		runs    = flag.Int("runs", 3, "repetitions per stage; best run is reported")
		seed    = flag.Int64("seed", 11, "city seed")
		workers = flag.Int("workers", 0, "worker pool size for the blocked mode (0 = GOMAXPROCS)")
		block   = flag.Int("block", 0, "block size for the blocked mode (0 = default)")
	)
	flag.Parse()

	g := citygraph.GenerateDublin(citygraph.DublinConfig{GridX: *gridX, GridY: *gridY, Seed: *seed})
	n := g.NumVertices()
	fmt.Printf("graph: %d vertices, %d edges; GOMAXPROCS=%d, runs=%d (best reported)\n\n",
		n, g.NumEdges(), runtime.GOMAXPROCS(0), *runs)

	obsFit := observations(g, 2)
	obsSearch := observations(g, 4)
	alphas := []float64{0.5, 2, 8}
	betas := []float64{0.1, 1, 5}

	modes := []struct {
		name    string
		opts    linalg.Options
		workers int
	}{
		{name: "serial", opts: linalg.Options{Reference: true}, workers: 1},
		{name: "blocked", opts: linalg.Options{BlockSize: *block, Workers: *workers}, workers: *workers},
	}

	type stage struct {
		name string
		run  func(searchWorkers int) error
	}
	var (
		kernel *gp.Kernel
		reg    *gp.Regression
	)
	stages := []stage{
		{name: "kernel build", run: func(int) error {
			var err error
			kernel, err = gp.RegularizedLaplacian(g, 2, 1)
			return err
		}},
		{name: fmt.Sprintf("fit (%d obs)", len(obsFit)), run: func(int) error {
			var err error
			reg, err = gp.Fit(kernel, obsFit, 1)
			return err
		}},
		{name: "predict all", run: func(int) error {
			_, err := reg.PredictAll()
			return err
		}},
		{name: fmt.Sprintf("grid search %dx%d (%d obs)", len(alphas), len(betas), len(obsSearch)), run: func(w int) error {
			_, err := gp.GridSearchWith(g, obsSearch, alphas, betas, 1, 4, 1, gp.SearchOptions{Workers: w})
			return err
		}},
	}

	// best[stage][mode]
	best := make([][]time.Duration, len(stages))
	for si, st := range stages {
		best[si] = make([]time.Duration, len(modes))
		for mi, m := range modes {
			prev := linalg.SetDefaultOptions(m.opts)
			elapsed := time.Duration(math.MaxInt64)
			for r := 0; r < *runs; r++ {
				start := time.Now()
				if err := st.run(m.workers); err != nil {
					linalg.SetDefaultOptions(prev)
					log.Fatalf("%s (%s): %v", st.name, m.name, err)
				}
				if d := time.Since(start); d < elapsed {
					elapsed = d
				}
			}
			linalg.SetDefaultOptions(prev)
			best[si][mi] = elapsed
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "stage\tserial\tblocked\tspeedup\n")
	var totSerial, totBlocked time.Duration
	for si, st := range stages {
		s, b := best[si][0], best[si][1]
		totSerial += s
		totBlocked += b
		fmt.Fprintf(w, "%s\t%v\t%v\t%.2fx\n", st.name, s.Round(time.Microsecond), b.Round(time.Microsecond),
			float64(s)/float64(b))
	}
	fmt.Fprintf(w, "total\t%v\t%v\t%.2fx\n", totSerial.Round(time.Microsecond), totBlocked.Round(time.Microsecond),
		float64(totSerial)/float64(totBlocked))
	w.Flush()
}

func observations(g *citygraph.Graph, every int) []gp.Observation {
	var obs []gp.Observation
	for i := 0; i < g.NumVertices(); i += every {
		obs = append(obs, gp.Observation{Vertex: i, Value: 300 + 150*math.Sin(float64(i)/17)})
	}
	return obs
}
