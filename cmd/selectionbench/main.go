// Command selectionbench compares the crowdsourcing worker-selection
// policies the paper sketches ("selects the list of workers to be
// queried based on the selected policy (e.g. location, reliability,
// etc)", Section 5.3). Participants are scattered over the city and
// can only judge congestion they can actually see: beyond a visibility
// radius their answers are uniform guesses. Policies therefore trade
// panel size (cost) against how informed and how reliable the panel
// is.
//
// Policies compared, per disagreement task:
//
//	all              query every online participant
//	nearest-5        the 5 closest participants
//	nearest-10       the 10 closest participants
//	reliable-5       the 5 with the best EM reliability estimate,
//	                 regardless of location
//	near+reliable    the 5 best-rated among the 15 closest
//	near+deadline    nearest-10 filtered by the comm+comp < deadline
//	                 admission test of Section 5.3
//
// Usage:
//
//	selectionbench [-participants 400] [-tasks 400] [-visibility 800]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

type volunteer struct {
	participant crowd.Participant
	sim         *crowd.SimulatedParticipant
	guess       *rand.Rand
	network     qee.Network
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("selectionbench: ")
	var (
		nParticipants = flag.Int("participants", 400, "registered volunteers")
		nTasks        = flag.Int("tasks", 400, "disagreement tasks")
		visibility    = flag.Float64("visibility", 800, "how far a volunteer can see, meters")
		deadline      = flag.Duration("deadline", 3*time.Second, "deadline for the admission-test policy")
		seed          = flag.Int64("seed", 11, "simulation seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	city, err := dublin.NewCity(dublin.Config{Seed: *seed, NumBuses: 1, NumSensors: 200})
	if err != nil {
		log.Fatal(err)
	}
	// Volunteers loiter around intersections (people cluster where
	// traffic does), jittered a few hundred meters, with varied
	// reliability, think time and connectivity.
	vols := make([]volunteer, *nParticipants)
	roster := crowd.NewRoster()
	profile := qee.PaperProfile()
	for i := range vols {
		at := city.Intersections()[rng.Intn(len(city.Intersections()))].Pos
		pos := geo.At(
			at.Lat+(rng.Float64()*2-1)*0.003, // ±330 m
			at.Lon+(rng.Float64()*2-1)*0.005, // ±330 m at Dublin's latitude
		)
		errProb := 0.05 + rng.Float64()*0.45
		id := fmt.Sprintf("vol%03d", i)
		vols[i] = volunteer{
			participant: crowd.Participant{
				ID: id, Pos: pos, Online: true,
				ComputeTime: time.Duration(1+rng.Intn(5)) * time.Second,
			},
			sim:     crowd.NewSimulatedParticipant(id, errProb, rng.Int63()),
			guess:   rand.New(rand.NewSource(rng.Int63())),
			network: qee.Network(rng.Intn(3)),
		}
		if err := roster.Register(vols[i].participant); err != nil {
			log.Fatal(err)
		}
	}
	byID := make(map[string]*volunteer, len(vols))
	for i := range vols {
		byID[vols[i].participant.ID] = &vols[i]
	}
	commEstimate := func(p crowd.Participant) time.Duration {
		v := byID[p.ID]
		return profile.Push[v.network] + profile.Comm[v.network]
	}

	// Task sites: SCATS intersections; truth: the city's rush-hour field.
	inters := city.Intersections()
	labels := []string{traffic.Positive, traffic.Negative}

	nearestThenReliable := func(est *crowd.Estimator) crowd.Selection {
		return func(candidates []crowd.Participant, pos geo.Point) []crowd.Participant {
			shortlist := crowd.SelectNearest(15, 0)(candidates, pos)
			return crowd.SelectMostReliable(5, est)(shortlist, pos)
		}
	}

	fmt.Printf("worker selection policies — %d volunteers, %d tasks, visibility %.0f m\n\n",
		*nParticipants, *nTasks, *visibility)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tqueried/task\taccuracy\tmean confidence")

	type namedPolicy struct {
		name string
		mk   func(est *crowd.Estimator) crowd.Selection
	}
	policies := []namedPolicy{
		{"all", func(*crowd.Estimator) crowd.Selection { return crowd.SelectAll }},
		{"nearest-5", func(*crowd.Estimator) crowd.Selection { return crowd.SelectNearest(5, 0) }},
		{"nearest-10", func(*crowd.Estimator) crowd.Selection { return crowd.SelectNearest(10, 0) }},
		{"reliable-5 (no location)", func(est *crowd.Estimator) crowd.Selection {
			return crowd.SelectMostReliable(5, est)
		}},
		{"nearest-15 then reliable-5", nearestThenReliable},
		{"nearest-10 + deadline test", func(*crowd.Estimator) crowd.Selection {
			return crowd.DeadlineFeasible(crowd.SelectNearest(10, 0), commEstimate, *deadline)
		}},
	}

	for _, p := range policies {
		taskRng := rand.New(rand.NewSource(*seed + 99)) // same tasks for every policy
		est := crowd.NewEstimator(crowd.EstimatorOptions{})
		sel := p.mk(est)
		queried, correct := 0, 0
		var confidence float64
		for t := 0; t < *nTasks; t++ {
			in := inters[taskRng.Intn(len(inters))]
			at := 7*3600 + taskRng.Int63n(2*3600) // rush hour snapshot
			truth := traffic.Negative
			if city.IsCongested(in.Pos, rtec.Time(at)) {
				truth = traffic.Positive
			}
			panel := sel(roster.Online(), in.Pos)
			queried += len(panel)
			task := crowd.Task{ID: fmt.Sprintf("t%d", t), Labels: labels}
			for _, member := range panel {
				v := byID[member.ID]
				var answer crowd.Answer
				if geo.Distance(v.participant.Pos, in.Pos) > *visibility {
					// Too far to see the street: a pure guess.
					answer = crowd.Answer{Participant: member.ID, Label: labels[v.guess.Intn(2)]}
				} else {
					answer = v.sim.Answer(labels, truth)
				}
				task.Answers = append(task.Answers, answer)
			}
			if len(task.Answers) == 0 {
				continue
			}
			verdict, err := est.Process(task)
			if err != nil {
				log.Fatal(err)
			}
			confidence += verdict.Confidence
			if verdict.Best == truth {
				correct++
			}
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f%%\t%.3f\n",
			p.name,
			float64(queried)/float64(*nTasks),
			100*float64(correct)/float64(*nTasks),
			confidence/float64(*nTasks))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShapes to check: querying everyone costs two orders of magnitude")
	fmt.Println("more and DROWNS the informed answers in blind guesses (EM's constant")
	fmt.Println("per-participant error model cannot express location-dependent")
	fmt.Println("blindness); reliability without location fares no better; selecting")
	fmt.Println("by location dominates, and tight deadlines cost accuracy by")
	fmt.Println("excluding well-placed but slow participants.")
}
