// Command delaybench quantifies the design choice behind Figure 2 of
// the paper: making the working memory larger than the step so that
// SDEs which arrive late (mediator delays) are still incorporated at a
// later query time.
//
// For each WM/step ratio it reports (a) the fraction of SDEs that are
// never seen by any query — they occurred inside some window but had
// not arrived by its query time and had fallen out by the next — and
// (b) the accuracy of scatsCongestion recognition against ground
// truth, which the losses degrade.
//
// Usage:
//
//	delaybench [-step 5m] [-maxdelay 2m] [-hours 2] [-ratios 1,2,3] [-batch]
//
// With -batch the SDEs reach the engine as columnar blocks — each
// boundary delivers the newly-arrived rows of every stream with one
// InputBlockRows call per touched block — instead of one Input call
// per event. The loss accounting and the recognised fluents are
// bit-identical either way (the columnar path is an ingest
// optimisation, not a semantic change), so the table must not move.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/eval"
	"github.com/insight-dublin/insight/interval"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("delaybench: ")
	var (
		step     = flag.Duration("step", 5*time.Minute, "query step")
		maxDelay = flag.Duration("maxdelay", 2*time.Minute, "maximum mediator delay")
		hours    = flag.Float64("hours", 2, "monitored duration (from 07:00)")
		ratios   = flag.String("ratios", "1,2,3", "WM/step ratios to compare")
		buses    = flag.Int("buses", 120, "bus fleet size")
		sensors  = flag.Int("sensors", 120, "SCATS sensor count")
		seed     = flag.Int64("seed", 2, "simulation seed")
		batch    = flag.Bool("batch", false, "deliver SDEs as columnar blocks instead of per-item events")
	)
	flag.Parse()

	city, err := dublin.NewCity(dublin.Config{
		Seed:       *seed,
		NumBuses:   *buses,
		NumSensors: *sensors,
		MaxDelay:   rtec.Time(maxDelay.Seconds()),
	})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := city.Registry(150)
	if err != nil {
		log.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}

	from := rtec.Time(7 * 3600)
	until := from + rtec.Time(*hours*3600)
	stepT := rtec.Time(step.Seconds())
	sdes := city.Collect(from, until)
	var bstreams []dublin.BatchedStream
	if *batch {
		bstreams = city.CollectBatches(from, until, 512, 0)
		defer func() {
			for _, bs := range bstreams {
				for _, bt := range bs.Batches {
					bt.Release()
				}
			}
		}()
	}
	fmt.Printf("Figure 2 ablation — delayed SDEs vs working memory size\n")
	fmt.Printf("%d SDEs over %.1f h, mediator delay up to %s, step %s", len(sdes), *hours, maxDelay, step)
	if *batch {
		fmt.Printf(", columnar delivery")
	}
	fmt.Printf("\n\n")

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "WM/step\tlost SDEs\tlost %\tscats F1\tscats recall")
	for _, part := range strings.Split(*ratios, ",") {
		ratio, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || ratio < 1 {
			log.Fatalf("invalid ratio %q", part)
		}
		wm := stepT * rtec.Time(ratio)

		// (a) Exact loss count from the query schedule: an SDE is
		// processed iff some query time Q >= its arrival has the
		// occurrence inside (Q-WM, Q].
		lost := 0
		for _, sde := range sdes {
			if !coveredByAnyQuery(sde, from, until, stepT, wm) {
				lost++
			}
		}

		// (b) Recognition accuracy with that window.
		engine, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: wm, Step: stepT})
		if err != nil {
			log.Fatal(err)
		}
		recognised := eval.NewTimeline()
		cursor := 0
		var feeds []blockFeed
		if *batch {
			feeds = newBlockFeeds(bstreams)
		}
		for q := from + stepT; q <= until; q += stepT {
			if *batch {
				for si := range feeds {
					if err := feeds[si].feedUntil(engine, q); err != nil {
						log.Fatal(err)
					}
				}
			} else {
				for cursor < len(sdes) && sdes[cursor].Arrival <= q {
					if err := engine.Input(sdes[cursor].Event); err != nil {
						log.Fatal(err)
					}
					cursor++
				}
			}
			res, err := engine.Query(q)
			if err != nil {
				log.Fatal(err)
			}
			for kv, l := range res.Fluents[traffic.ScatsCongestion] {
				recognised.Add(kv.Key, l)
			}
		}
		var keys []string
		sensorPos := make(map[string]int)
		for i := range city.Sensors() {
			s := &city.Sensors()[i]
			keys = append(keys, s.ID)
			sensorPos[s.ID] = i
		}
		conf, err := eval.Score(keys, recognised.Get,
			func(key string, tm interval.Time) bool {
				s := &city.Sensors()[sensorPos[key]]
				return city.IsCongested(s.Pos, tm)
			},
			interval.Span{Start: from, End: until}, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%.2f%%\t%.3f\t%.3f\n",
			ratio, lost, 100*float64(lost)/float64(len(sdes)), conf.F1(), conf.Recall())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShape to check: with WM = step, every SDE delayed past its query")
	fmt.Println("time is lost for good; WM = 2-3x step recovers effectively all of")
	fmt.Println("them (Figure 2), at the recognition cost measured by rtecbench.")
}

// blockFeed walks the arrival-ordered rows of one batched stream for
// sliding-window delivery: each feedUntil call hands the engine the
// newly-arrived rows as block slices.
type blockFeed struct {
	blocks []*rtec.Block
	arrs   [][]int64
	bi, ri int
	rows   []int32
}

// newBlockFeeds builds one cursor per batched stream; the blocks alias
// the batches, so the batches must stay live while the feeds are used.
func newBlockFeeds(bstreams []dublin.BatchedStream) []blockFeed {
	feeds := make([]blockFeed, len(bstreams))
	for si, bs := range bstreams {
		for _, bt := range bs.Batches {
			feeds[si].blocks = append(feeds[si].blocks, dublin.Block(bt))
			feeds[si].arrs = append(feeds[si].arrs, bt.Arrivals)
		}
	}
	return feeds
}

// feedUntil delivers every remaining row with arrival <= q, one
// InputBlockRows call per touched block.
func (c *blockFeed) feedUntil(engine *rtec.Engine, q rtec.Time) error {
	for c.bi < len(c.blocks) {
		blk := c.blocks[c.bi]
		arr := c.arrs[c.bi]
		c.rows = c.rows[:0]
		for c.ri < blk.Len() && rtec.Time(arr[c.ri]) <= q {
			c.rows = append(c.rows, int32(c.ri))
			c.ri++
		}
		if len(c.rows) > 0 {
			if err := engine.InputBlockRows(blk, c.rows); err != nil {
				return err
			}
		}
		if c.ri < blk.Len() {
			return nil // head of this block is beyond q
		}
		c.bi++
		c.ri = 0
	}
	return nil
}

// coveredByAnyQuery reports whether the SDE is inside the working
// memory of at least one query at which it has already arrived.
func coveredByAnyQuery(sde dublin.SDE, from, until, step, wm rtec.Time) bool {
	// First query time at or after the arrival.
	k := (sde.Arrival - from + step - 1) / step
	if k < 1 {
		k = 1
	}
	q := from + k*step
	// The occurrence leaves the window once occurrence <= Q-WM, so
	// only the first eligible query can matter beyond the range check.
	for ; q <= until; q += step {
		if sde.Event.Time > q-wm && sde.Event.Time <= q {
			return true
		}
		if sde.Event.Time <= q-wm {
			return false
		}
	}
	return false
}
