// Command veracitybench scores the paper's veracity-handling policies
// against ground truth — the experiment the recorded Dublin streams
// could not support. A synthetic city with a configurable fraction of
// faulty buses (and optionally miscalibrated SCATS sensors) is
// monitored under four configurations:
//
//	static          rule-set (3): every bus report is trusted
//	self-adaptive   rule-sets (3′)+(5): disagreeing buses are
//	                discarded until they agree again
//	crowd-assisted  rule-sets (3′)+(5) plus crowdsourced verdicts that
//	                rehabilitate buses the crowd proves right
//	crowd-validated rule-sets (3′)+(4): buses become unreliable only
//	                after the crowd confirms the SCATS sensors
//
// For each configuration the recognised busCongestion intervals are
// compared, per SCATS intersection, with the ground-truth congestion
// field, and precision/recall/F1 are reported.
//
// Usage:
//
//	veracitybench [-buses 150] [-sensors 150] [-noisy 0.3] [-hours 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/eval"
	"github.com/insight-dublin/insight/interval"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("veracitybench: ")
	var (
		buses        = flag.Int("buses", 150, "bus fleet size")
		sensors      = flag.Int("sensors", 150, "SCATS sensor count")
		noisy        = flag.Float64("noisy", 0.3, "fraction of faulty buses")
		noisyScats   = flag.Float64("noisyscats", 0.1, "fraction of miscalibrated SCATS sensors")
		hours        = flag.Float64("hours", 3, "monitored duration (from 07:00)")
		participants = flag.Int("participants", 24, "crowd volunteers for the crowd-validated run")
		seed         = flag.Int64("seed", 5, "simulation seed")
	)
	flag.Parse()

	mkCity := func() *dublin.City {
		city, err := dublin.NewCity(dublin.Config{
			Seed:               *seed,
			NumBuses:           *buses,
			NumSensors:         *sensors,
			NoisyBusFraction:   *noisy,
			NoisyScatsFraction: *noisyScats,
		})
		if err != nil {
			log.Fatal(err)
		}
		return city
	}

	from := rtec.Time(7 * 3600)
	until := from + rtec.Time(*hours*3600)

	fmt.Printf("veracity handling vs ground truth — %d buses (%.0f%% faulty), %d sensors (%.0f%% miscalibrated), %.1f h\n\n",
		*buses, *noisy*100, *sensors, *noisyScats*100, *hours)

	type config struct {
		name  string
		cfg   traffic.Config
		crowd bool
	}
	configs := []config{
		{"static (rule-set 3)", traffic.Config{}, false},
		{"self-adaptive (3'+5)", traffic.Config{Adaptive: true, NoisyPolicy: traffic.Pessimistic}, false},
		{"crowd-assisted (3'+5+crowd)", traffic.Config{Adaptive: true, NoisyPolicy: traffic.Pessimistic}, true},
		{"crowd-validated (3'+4+crowd)", traffic.Config{Adaptive: true, NoisyPolicy: traffic.CrowdValidated}, true},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tprecision\trecall\tF1\taccuracy\tnoisy-bus flags")
	for _, c := range configs {
		city := mkCity()
		var vols []insight.SimParticipant
		if c.crowd {
			inters := city.Intersections()
			for i := 0; i < *participants && len(inters) > 0; i++ {
				vols = append(vols, insight.SimParticipant{
					ID:        fmt.Sprintf("vol%02d", i),
					Pos:       inters[(i*5)%len(inters)].Pos,
					ErrorProb: 0.1,
					Network:   qee.Network(i % 3),
				})
			}
		}
		sys, err := insight.New(insight.Config{
			City:          city,
			Seed:          *seed,
			WorkingMemory: 1800,
			Step:          900,
			Traffic:       c.cfg,
			Participants:  vols,
		})
		if err != nil {
			log.Fatal(err)
		}

		recognised := eval.NewTimeline()
		noisyFlags := 0
		err = sys.Run(context.Background(), from, until, func(r *insight.Report) error {
			// Accumulate each intersection's busCongestion view of
			// the newly covered step (avoid re-counting the window
			// overlap in the flag tally; the timeline unions anyway).
			for kv, l := range r.Result.Fluents[traffic.BusCongestion] {
				recognised.Add(kv.Key, l)
			}
			noisyFlags += len(r.NoisyBuses)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}

		// Score per SCATS intersection against the ground-truth field.
		var keys []string
		for _, in := range city.Intersections() {
			keys = append(keys, in.ID)
		}
		reg := sys.Registry()
		conf, err := eval.Score(keys,
			recognised.Get,
			func(key string, tm interval.Time) bool {
				in, _ := reg.Lookup(key)
				return city.IsCongested(in.Pos, tm)
			},
			interval.Span{Start: from, End: until}, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%d\n",
			c.name, conf.Precision(), conf.Recall(), conf.F1(), conf.Accuracy(), noisyFlags)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShapes to check: static recognition suffers the faulty buses' false")
	fmt.Println("reports (markedly lower precision and F1); discarding unreliable")
	fmt.Println("sources (3'+5) recovers precision; crowd assistance rehabilitates")
	fmt.Println("wrongly flagged buses (fewer noisy-bus flags at equal accuracy);")
	fmt.Println("rule-set (4) — noisy only after crowd confirmation — trades some")
	fmt.Println("precision back for recall.")
}
