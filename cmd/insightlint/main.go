// Command insightlint runs the repository's static-analysis suite
// (internal/analysis) over every package in the module and prints
// findings as
//
//	file:line:col: [rule] message
//
// exiting nonzero when anything fires. It is stdlib-only: packages are
// loaded with go/parser, type-checked with go/types against compiled
// stdlib export data, and each rule is a pure function over the loaded
// package.
//
// Usage:
//
//	insightlint [-only rule,rule] [-skip rule,rule] [-list] [-json] [-C dir]
//
// With -json the findings are printed as one JSON document on stdout
// (file/line/col/rule/message per finding, plus per-rule counts) for
// tooling; the exit status is unchanged.
//
// Suppress an individual finding with a trailing or preceding comment
//
//	//lint:allow rule justification
//
// or a whole declaration by putting the comment in its doc comment.
// See the "Static analysis" section of DESIGN.md for the rule
// catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/insight-dublin/insight/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated list: run only these analyzers")
	skip := flag.String("skip", "", "comma-separated list: skip these analyzers")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	asJSON := flag.Bool("json", false, "print findings as a JSON document on stdout")
	dir := flag.String("C", ".", "module root (or any directory inside it)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(*dir, *only, *skip, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "insightlint:", err)
		os.Exit(2)
	}
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the -json document: the run's shape, the findings in
// the same order the text mode prints them, and per-rule counts.
type jsonReport struct {
	Packages  int            `json:"packages"`
	Analyzers []string       `json:"analyzers"`
	Findings  []jsonFinding  `json:"findings"`
	Counts    map[string]int `json:"counts"`
}

func run(dir, only, skip string, asJSON bool) error {
	analyzers, err := analysis.Select(only, skip)
	if err != nil {
		return err
	}
	if len(analyzers) == 0 {
		return fmt.Errorf("no analyzers selected")
	}
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return err
	}
	diags := analysis.Run(pkgs, analyzers)
	for i := range diags {
		// Module-root-relative paths keep the output stable across
		// checkouts (and clickable from the repo root).
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	if asJSON {
		report := jsonReport{
			Packages: len(pkgs),
			Findings: []jsonFinding{},
			Counts:   make(map[string]int),
		}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
			report.Counts[d.Rule]++
		}
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	fmt.Fprintf(os.Stderr, "insightlint: %d packages, %d analyzers, %d findings\n",
		len(pkgs), len(analyzers), len(diags))
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}
