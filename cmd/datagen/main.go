// Command datagen emits the synthetic Dublin streams as CSV files in
// the spirit of the dublinked.ie exports the paper's evaluation used,
// and prints dataset statistics for comparison against Section 7
// (942 buses every 20-30 s — a bus SDE every ~2 s in aggregate — and
// 966 SCATS sensors every 6 minutes).
//
// Usage:
//
//	datagen [-from 7h] [-duration 1h] [-out .] [-stats]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		from      = flag.Duration("from", 7*time.Hour, "start time of day")
		duration  = flag.Duration("duration", time.Hour, "stream duration")
		outDir    = flag.String("out", ".", "output directory")
		statsOnly = flag.Bool("stats", false, "print statistics only, write no files")
		buses     = flag.Int("buses", 942, "bus fleet size")
		sensors   = flag.Int("sensors", 966, "SCATS sensor count")
		incidents = flag.Int("incidents", 0, "random daily traffic incidents to inject")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	city, err := dublin.NewCity(dublin.Config{
		Seed: *seed, NumBuses: *buses, NumSensors: *sensors, Incidents: *incidents,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := rtec.Time(from.Seconds())
	end := start + rtec.Time(duration.Seconds())
	sdes := city.Collect(start, end)

	st := dublin.ComputeStats(sdes)
	fmt.Print(st.String())
	fmt.Printf("paper reference: 942 buses every 20-30 s (new SDE every ~2 s), 966 SCATS sensors every 6 min\n")

	if *statsOnly {
		return
	}

	busPath := filepath.Join(*outDir, "bus_sdes.csv")
	scatsPath := filepath.Join(*outDir, "scats_sdes.csv")
	if err := writeFile(busPath, func(f *os.File) error { return dublin.WriteBusCSV(f, sdes) }); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(scatsPath, func(f *os.File) error { return dublin.WriteScatsCSV(f, sdes) }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", busPath, scatsPath)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}
