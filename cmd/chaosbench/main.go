// Command chaosbench runs the Dublin pipeline under deterministic
// fault injection and measures how recognition degrades relative to
// the fault-free run: whether every query boundary still produces a
// report, which input streams were flagged degraded, how far the
// boundary watermark lagged, and how precision/recall of the
// recognised congested intersections (fault-free run as reference)
// suffer per fault profile.
//
// Profiles:
//
//	stall-scats  the scats-north mediator dies after its first SDE
//	stall-recover the scats-north mediator stalls, then reconnects
//	drop         every stream loses 10% of its SDEs
//	dup          every stream duplicates 10% of its SDEs
//	delay        every stream reorders 20% of its SDEs
//	flaky-proc   input validation fails 5% of items (skip-item
//	             supervision dead-letters them)
//
// Usage:
//
//	chaosbench [-buses 60] [-sensors 60] [-hours 1] [-staleness 1800]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/eval"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosbench: ")
	var (
		buses     = flag.Int("buses", 60, "bus fleet size")
		sensors   = flag.Int("sensors", 60, "SCATS sensor count")
		hours     = flag.Float64("hours", 1, "monitored duration (from 07:00)")
		staleness = flag.Int64("staleness", 1800, "watermark staleness bound (s); 0 disables liveness")
		seed      = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	from := rtec.Time(7 * 3600)
	until := from + rtec.Time(*hours*3600)

	mkSystem := func() *insight.System {
		city, err := dublin.NewCity(dublin.Config{
			Seed:             *seed,
			NumBuses:         *buses,
			NumSensors:       *sensors,
			Hotspots:         15,
			NoisyBusFraction: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Crowdless on purpose: the crowd engine's shared random
		// sequence would couple the regions and blur the fault
		// attribution this benchmark is after.
		sys, err := insight.New(insight.Config{
			City:               city,
			Seed:               7,
			WorkingMemory:      1800,
			Step:               900,
			WatermarkStaleness: rtec.Time(*staleness),
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	run := func(chaos insight.ChaosConfig) (*insight.Pipeline, []*insight.Report) {
		pipe, err := mkSystem().BuildChaosPipeline(from, until, chaos)
		if err != nil {
			log.Fatal(err)
		}
		reports, err := pipe.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return pipe, reports
	}

	fmt.Printf("pipeline under chaos — %d buses, %d sensors, %.1f h, staleness %d s\n\n",
		*buses, *sensors, *hours, *staleness)

	_, baseline := run(insight.ChaosConfig{})
	boundaries := len(baseline)
	basePositives := positives(baseline)

	everyStream := func(spec streams.FaultSpec) map[string]streams.FaultSpec {
		ids := []string{"bus", "scats-central", "scats-north", "scats-west", "scats-south"}
		out := make(map[string]streams.FaultSpec, len(ids))
		for i, id := range ids {
			s := spec
			s.Seed = spec.Seed + int64(i)*101
			out[id] = s
		}
		return out
	}

	profiles := []struct {
		name  string
		chaos insight.ChaosConfig
	}{
		{"stall-scats", insight.ChaosConfig{Streams: map[string]streams.FaultSpec{
			"scats-north": {Seed: 1, StallAfter: 1, StallFor: 0},
		}}},
		{"stall-recover", insight.ChaosConfig{Streams: map[string]streams.FaultSpec{
			"scats-north": {Seed: 1, StallAfter: 10, StallFor: 90},
		}}},
		{"drop", insight.ChaosConfig{Streams: everyStream(streams.FaultSpec{Seed: 2, DropProb: 0.10})}},
		{"dup", insight.ChaosConfig{Streams: everyStream(streams.FaultSpec{Seed: 3, DupProb: 0.10})}},
		{"delay", insight.ChaosConfig{Streams: everyStream(streams.FaultSpec{Seed: 4, DelayProb: 0.20, DelayMax: 16})}},
		{"flaky-proc", insight.ChaosConfig{InputErrProb: 0.05, Seed: 5}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "profile\treports\tdegraded\tprec\trecall\tmean lag\tinjected\tdead letters")
	fmt.Fprintf(w, "fault-free\t%d/%d\t0\t1.000\t1.000\t%s\t-\t0\n",
		boundaries, boundaries, meanLag(baseline))

	for _, p := range profiles {
		pipe, reports := run(p.chaos)

		var conf eval.Confusion
		degradedReports := 0
		for _, rep := range reports {
			if len(rep.DegradedStreams) > 0 {
				degradedReports++
			}
		}
		seen := positives(reports)
		for key := range seen {
			if basePositives[key] {
				conf.TP++
			} else {
				conf.FP++
			}
		}
		for key := range basePositives {
			if !seen[key] {
				conf.FN++
			}
		}

		injected := 0
		for _, cs := range pipe.Chaos {
			st := cs.Stats()
			injected += st.Dropped + st.Duplicated + st.Delayed + st.Stalled
		}
		for _, cp := range pipe.ChaosProcs {
			injected += cp.Stats().Errors
		}
		dead := len(pipe.Topology.DeadLetters())

		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%.3f\t%.3f\t%s\t%d\t%d\n",
			p.name, len(reports), boundaries, degradedReports,
			conf.Precision(), conf.Recall(), meanLag(reports), injected, dead)
	}
	w.Flush()

	fmt.Println("\nreports: query boundaries answered / expected — liveness means no profile may lose one")
	fmt.Println("degraded: reports flagging at least one degraded input stream")
	fmt.Println("prec/recall: recognised congested intersections vs the fault-free run, per boundary")
	fmt.Println("mean lag: average gap between the fastest stream's watermark and the fired boundary")
}

// positives collects every recognised situation as a "Q/type/key"
// fact: congested intersections, bus congestion areas and noisy
// buses, per query boundary. The fault-free facts are the accuracy
// reference.
func positives(reports []*insight.Report) map[string]bool {
	out := make(map[string]bool)
	for _, rep := range reports {
		q := int64(rep.Q)
		for _, in := range rep.CongestedIntersections {
			out[fmt.Sprintf("%d/int/%s", q, in)] = true
		}
		for _, area := range rep.BusCongestionAreas {
			out[fmt.Sprintf("%d/area/%s", q, area)] = true
		}
		for _, bus := range rep.NoisyBuses {
			out[fmt.Sprintf("%d/bus/%s", q, bus)] = true
		}
	}
	return out
}

func meanLag(reports []*insight.Report) string {
	if len(reports) == 0 {
		return "-"
	}
	var sum int64
	for _, rep := range reports {
		sum += int64(rep.WatermarkLag)
	}
	return fmt.Sprintf("%d s", sum/int64(len(reports)))
}
