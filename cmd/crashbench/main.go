// Command crashbench runs the crash-equivalence campaign — the same
// kill → recover → resume loop behind TestCrashEquivalence — and
// measures what recovery costs: per-epoch wall time to rebuild a
// pipeline from the latest checkpoint plus WAL replay, how many log
// records and SDE rows each recovery re-consumed, and whether the
// union of reports across all crashed epochs fingerprints identically
// to one uninterrupted run.
//
// Each epoch arms one injected failure (a mid-record WAL tear, a
// torn/fsync-crashed/corrupted checkpoint, or a combined torn
// checkpoint + torn log tail), runs until it fires, and hands the
// surviving disk state to the next epoch. Results go to stdout as a
// table and to -out as JSON for EXPERIMENTS.md.
//
// Usage:
//
//	crashbench [-buses 24] [-sensors 24] [-hours 1] [-kills 20]
//	           [-seed 42] [-out BENCH_recovery.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

type epochRow struct {
	Epoch           int     `json:"epoch"`
	Fault           string  `json:"fault"`
	Resumed         bool    `json:"resumed"`
	CheckpointQ     int64   `json:"checkpoint_q"`
	ReplayedRecords int     `json:"replayed_records"`
	ReplayedEvents  int     `json:"replayed_events"`
	TornBytes       int64   `json:"torn_bytes"`
	CorruptCkpts    int     `json:"corrupt_checkpoints"`
	Reemitted       int     `json:"reemitted_reports"`
	RecoveryMillis  float64 `json:"recovery_millis"`
	Reports         int     `json:"reports"`
	Completed       bool    `json:"completed"`
}

type benchOut struct {
	Config struct {
		Buses   int     `json:"buses"`
		Sensors int     `json:"sensors"`
		Hours   float64 `json:"hours"`
		Kills   int     `json:"kills"`
		Seed    int64   `json:"seed"`
	} `json:"config"`
	Summary struct {
		Epochs             int     `json:"epochs"`
		WALKills           int     `json:"wal_kills"`
		TornCheckpoints    int     `json:"torn_checkpoints"`
		AfterCheckpoints   int     `json:"after_checkpoints"`
		CorruptCheckpoints int     `json:"corrupt_checkpoints"`
		CombinedEpochs     int     `json:"combined_epochs"`
		BaselineRecords    int     `json:"baseline_records"`
		Mismatches         int     `json:"mismatches"`
		Completed          bool    `json:"completed"`
		MeanRecoveryMillis float64 `json:"mean_recovery_millis"`
		MaxRecoveryMillis  float64 `json:"max_recovery_millis"`
		MeanReplayRecords  float64 `json:"mean_replayed_records"`
	} `json:"summary"`
	Epochs []epochRow `json:"epochs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crashbench: ")
	var (
		buses   = flag.Int("buses", 24, "bus fleet size")
		sensors = flag.Int("sensors", 24, "SCATS sensor count")
		hours   = flag.Float64("hours", 1, "monitored duration (from 07:00)")
		kills   = flag.Int("kills", 20, "minimum WAL crash points before the campaign may complete")
		seed    = flag.Int64("seed", 42, "simulation seed")
		out     = flag.String("out", "BENCH_recovery.json", "JSON output path (empty disables)")
	)
	flag.Parse()

	from := rtec.Time(7 * 3600)
	until := from + rtec.Time(*hours*3600)

	city, err := dublin.NewCity(dublin.Config{
		Seed:             *seed,
		NumBuses:         *buses,
		NumSensors:       *sensors,
		Hotspots:         8,
		NoisyBusFraction: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "crashbench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	res, err := insight.RunCrashCampaign(context.Background(), insight.CampaignOptions{
		// Step 450 (vs the usual 900) halves the batch span cap and so
		// roughly doubles the WAL record count — the kill schedule needs
		// the headroom to spread -kills crash points across the log.
		NewSystem: func() (*insight.System, error) {
			return insight.New(insight.Config{
				City:              city,
				Seed:              7,
				WorkingMemory:     1800,
				Step:              450,
				ColumnarTransport: true,
				UnpacedReplay:     true,
				Traffic: traffic.Config{
					NoisyPolicy: traffic.Pessimistic,
					Adaptive:    true,
				},
			})
		},
		From:  from,
		Until: until,
		Dir:   dir,
		Kills: *kills,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crash-equivalence campaign — %d buses, %d sensors, %.1f h, %d WAL kills minimum\n\n",
		*buses, *sensors, *hours, *kills)

	var bench benchOut
	bench.Config.Buses = *buses
	bench.Config.Sensors = *sensors
	bench.Config.Hours = *hours
	bench.Config.Kills = *kills
	bench.Config.Seed = *seed

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "epoch\tfault\tresumed\tckpt q\treplayed\tevents\ttorn B\trecovery\treports")
	var sumMillis, sumReplay float64
	resumed := 0
	for i, ep := range res.Epochs {
		row := epochRow{
			Epoch:           i,
			Fault:           ep.Fault,
			Resumed:         ep.Recovery.Resumed,
			CheckpointQ:     int64(ep.Recovery.CheckpointQ),
			ReplayedRecords: ep.Recovery.ReplayedRecords,
			ReplayedEvents:  ep.Recovery.ReplayedEvents,
			TornBytes:       ep.Recovery.TornBytes,
			CorruptCkpts:    ep.Recovery.CorruptCheckpoints,
			Reemitted:       ep.Recovery.ReemittedReports,
			RecoveryMillis:  ep.RecoveryMillis,
			Reports:         ep.Reports,
			Completed:       ep.Completed,
		}
		bench.Epochs = append(bench.Epochs, row)
		sumMillis += ep.RecoveryMillis
		if bench.Summary.MaxRecoveryMillis < ep.RecoveryMillis {
			bench.Summary.MaxRecoveryMillis = ep.RecoveryMillis
		}
		if ep.Recovery.Resumed {
			resumed++
			sumReplay += float64(ep.Recovery.ReplayedRecords)
		}
		fmt.Fprintf(w, "%d\t%s\t%v\t%d\t%d\t%d\t%d\t%.2f ms\t%d\n",
			i, ep.Fault, ep.Recovery.Resumed, int64(ep.Recovery.CheckpointQ),
			ep.Recovery.ReplayedRecords, ep.Recovery.ReplayedEvents,
			ep.Recovery.TornBytes, ep.RecoveryMillis, ep.Reports)
	}
	w.Flush()

	bench.Summary.Epochs = len(res.Epochs)
	bench.Summary.WALKills = res.WALKills
	bench.Summary.TornCheckpoints = res.TornCheckpoints
	bench.Summary.AfterCheckpoints = res.AfterCheckpoints
	bench.Summary.CorruptCheckpoints = res.CorruptCheckpoints
	bench.Summary.CombinedEpochs = res.CombinedEpochs
	bench.Summary.BaselineRecords = res.BaselineRecords
	bench.Summary.Mismatches = len(res.Mismatches)
	bench.Summary.Completed = res.Completed
	if len(res.Epochs) > 0 {
		bench.Summary.MeanRecoveryMillis = sumMillis / float64(len(res.Epochs))
	}
	if resumed > 0 {
		bench.Summary.MeanReplayRecords = sumReplay / float64(resumed)
	}

	fmt.Printf("\n%d epochs: %d WAL kills, %d/%d/%d torn/after/corrupt checkpoints, %d combined\n",
		len(res.Epochs), res.WALKills, res.TornCheckpoints, res.AfterCheckpoints,
		res.CorruptCheckpoints, res.CombinedEpochs)
	fmt.Printf("recovery: mean %.2f ms, max %.2f ms; mean replay %.1f of %d baseline records\n",
		bench.Summary.MeanRecoveryMillis, bench.Summary.MaxRecoveryMillis,
		bench.Summary.MeanReplayRecords, res.BaselineRecords)
	if len(res.Mismatches) > 0 {
		for _, m := range res.Mismatches {
			fmt.Println("MISMATCH:", m)
		}
		log.Fatalf("crash equivalence violated: %d divergences", len(res.Mismatches))
	}
	fmt.Println("crash equivalence holds: crashed-run reports fingerprint identically to the uninterrupted run")

	if *out != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}
