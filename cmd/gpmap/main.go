// Command gpmap regenerates Figures 7-9 of the paper: the Dublin
// street network (Figure 7 is the raw map, Figure 8 the extracted
// graph with SCATS locations as black dots, Figure 9 the Gaussian
// Process traffic-flow estimates shaded green → red).
//
// It emits SVG files:
//
//	fig7-8_network.svg   street network with SCATS sensor dots
//	fig9_estimates.svg   GP flow estimates at every junction
//
// Usage:
//
//	gpmap [-out .] [-sensors 966] [-hour 8] [-grid 4] [-alpha 0] [-beta 0]
//
// With -alpha/-beta left at 0 the hyperparameters are chosen by grid
// search within [0, 10] (the paper's procedure); pass explicit values
// to skip the search.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/gp"
	"github.com/insight-dublin/insight/rtec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpmap: ")
	var (
		outDir  = flag.String("out", ".", "output directory")
		sensors = flag.Int("sensors", 966, "SCATS sensor count")
		hour    = flag.Float64("hour", 8, "time of day for the snapshot (hours)")
		grid    = flag.Int("grid", 4, "grid-search points per hyperparameter axis")
		alpha   = flag.Float64("alpha", 0, "kernel alpha (0 = grid search)")
		beta    = flag.Float64("beta", 0, "kernel beta (0 = grid search)")
		noise   = flag.Float64("noise", 2500, "observation noise variance σ²")
		seed    = flag.Int64("seed", 1, "city seed")
	)
	flag.Parse()

	city, err := dublin.NewCity(dublin.Config{Seed: *seed, NumBuses: 1, NumSensors: *sensors})
	if err != nil {
		log.Fatal(err)
	}
	g := city.Graph()
	fmt.Printf("street network: %d junctions, %d segments (synthetic OSM substitute)\n",
		g.NumVertices(), g.NumEdges())

	// Figures 7-8: the network with SCATS locations as black dots.
	sensorVertices := make([]int, 0, len(city.Sensors()))
	seen := make(map[int]bool)
	for _, s := range city.Sensors() {
		if !seen[s.Vertex] {
			seen[s.Vertex] = true
			sensorVertices = append(sensorVertices, s.Vertex)
		}
	}
	if err := renderSVG(filepath.Join(*outDir, "fig7-8_network.svg"), g, citygraph.RenderOptions{
		Sensors: sensorVertices,
		Title: fmt.Sprintf("Street network and SCATS locations (%d sensors on %d junctions)",
			len(city.Sensors()), len(sensorVertices)),
	}); err != nil {
		log.Fatal(err)
	}

	// Aggregate one emission round of sensor readings at the chosen
	// time of day ("the sensor readings are aggregated within fixed
	// time intervals").
	at := rtec.Time(*hour * 3600)
	perVertex := make(map[int][]float64)
	for i := range city.Sensors() {
		s := &city.Sensors()[i]
		_, flow := city.SensorReading(s, at)
		perVertex[s.Vertex] = append(perVertex[s.Vertex], flow)
	}
	var obs []gp.Observation
	for v, flows := range perVertex {
		var sum float64
		for _, f := range flows {
			sum += f
		}
		obs = append(obs, gp.Observation{Vertex: v, Value: sum / float64(len(flows))})
	}
	fmt.Printf("observations: %d junctions with sensors (of %d)\n", len(obs), g.NumVertices())

	// Hyperparameters: explicit or by grid search within [0, 10].
	a, b := *alpha, *beta
	if a == 0 || b == 0 {
		gridVals := gp.DefaultGrid(*grid)
		res, err := gp.GridSearch(g, obs, gridVals, gridVals, *noise, 4, *seed)
		if err != nil {
			log.Fatal(err)
		}
		a, b = res.Alpha, res.Beta
		fmt.Printf("grid search: alpha=%.2f beta=%.2f (CV RMSE %.1f over %d candidates)\n",
			a, b, res.RMSE, res.Evaluated)
	}

	kernel, err := gp.RegularizedLaplacian(g, a, b)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := gp.Fit(kernel, obs, *noise)
	if err != nil {
		log.Fatal(err)
	}
	all := make([]int, g.NumVertices())
	for i := range all {
		all[i] = i
	}
	values, variances, err := reg.Predict(all)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 9: green = low flow estimate, red = high.
	if err := renderSVG(filepath.Join(*outDir, "fig9_estimates.svg"), g, citygraph.RenderOptions{
		Values:  values,
		Sensors: sensorVertices,
		Title: fmt.Sprintf("GP traffic flow estimates at %02.0f:00 (alpha=%.2f beta=%.2f)",
			*hour, a, b),
	}); err != nil {
		log.Fatal(err)
	}

	// Companion uncertainty map: predictive standard deviation per
	// junction — green where the model is confident (near sensors),
	// red in the sparsely covered areas the component exists for.
	stddev := make([]float64, len(variances))
	for i, v := range variances {
		stddev[i] = math.Sqrt(v)
	}
	if err := renderSVG(filepath.Join(*outDir, "fig9b_uncertainty.svg"), g, citygraph.RenderOptions{
		Values:  stddev,
		Sensors: sensorVertices,
		Title:   "GP predictive uncertainty (red = sparse coverage)",
	}); err != nil {
		log.Fatal(err)
	}

	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("flow estimates: min %.0f, max %.0f veh/h across %d junctions\n", lo, hi, len(values))
	fmt.Printf("wrote %s, %s and %s\n",
		filepath.Join(*outDir, "fig7-8_network.svg"),
		filepath.Join(*outDir, "fig9_estimates.svg"),
		filepath.Join(*outDir, "fig9b_uncertainty.svg"))
}

func renderSVG(path string, g *citygraph.Graph, opts citygraph.RenderOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.RenderSVG(f, opts); err != nil {
		return err
	}
	return f.Close()
}
