// Command shardbench measures the scaling of the N-way sharded
// recognition tier on the 10× Dublin profile (dublin.Profile10x: ~10×
// the paper's junctions, 9420 buses, 9660 SCATS sensors).
//
// For each shard count it replays the same rush-hour stream through a
// sharded system with serial shard evaluation (Config.ShardSerialEval)
// and reads the modeled cluster critical path off the tier: per query
// boundary, the slowest shard's evaluation time plus the reduce stage
// — what a deployment with one node per shard would spend, measured
// exactly even on a single-core host. Recognition throughput is the
// fed SDE count over that critical path; the headline number is the
// median speedup at 8 shards over 1, committed to BENCH_shard.json by
// `make bench-shard`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

type shardPoint struct {
	Shards           int     `json:"shards"`
	Reps             int     `json:"reps"`
	Events           int     `json:"events"`
	Boundaries       int     `json:"boundaries"`
	CriticalNsAll    []int64 `json:"criticalNsAll"`
	MedianCriticalNs int64   `json:"medianCriticalNs"`
	EventsPerSec     float64 `json:"eventsPerSec"`
	SpeedupVs1       float64 `json:"speedupVs1"`
}

type benchOutput struct {
	Profile    string       `json:"profile"`
	Seed       int64        `json:"seed"`
	SpanSec    int64        `json:"spanSec"`
	StepSec    int64        `json:"stepSec"`
	Store      string       `json:"store"`
	Points     []shardPoint `json:"points"`
	Speedup8v1 float64      `json:"speedup8v1"`
}

func main() {
	out := flag.String("out", "", "write JSON results to this file")
	span := flag.Int64("span", 1800, "simulated stream span in seconds")
	reps := flag.Int("reps", 3, "repetitions per shard count (median reported)")
	flag.Parse()

	const from = insight.Time(7 * 3600)
	const step = insight.Time(900)
	until := from + insight.Time(*span)

	fmt.Printf("building 10x Dublin profile (9420 buses, 9660 sensors)...\n")
	city, err := dublin.NewCity(dublin.Profile10x(42))
	if err != nil {
		log.Fatal(err)
	}

	run := func(shards int) (critical time.Duration, events, boundaries int) {
		sys, err := insight.New(insight.Config{
			City:            city,
			Seed:            7,
			WorkingMemory:   1800,
			Step:            step,
			Shards:          shards,
			Store:           rtec.StoreColumn,
			ShardSerialEval: true,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		err = sys.Run(context.Background(), from, until, func(r *insight.Report) error {
			events += r.FedEvents
			boundaries++
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys.ShardCriticalPath(), events, boundaries
	}

	res := benchOutput{
		Profile: "dublin.Profile10x(42)",
		Seed:    7,
		SpanSec: int64(*span),
		StepSec: int64(step),
		Store:   "column",
	}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		pt := shardPoint{Shards: n, Reps: *reps}
		for r := 0; r < *reps; r++ {
			crit, events, boundaries := run(n)
			pt.CriticalNsAll = append(pt.CriticalNsAll, crit.Nanoseconds())
			pt.Events, pt.Boundaries = events, boundaries
		}
		sorted := append([]int64(nil), pt.CriticalNsAll...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pt.MedianCriticalNs = sorted[len(sorted)/2]
		pt.EventsPerSec = float64(pt.Events) / (float64(pt.MedianCriticalNs) / 1e9)
		if n == 1 {
			base = float64(pt.MedianCriticalNs)
		}
		pt.SpeedupVs1 = base / float64(pt.MedianCriticalNs)
		res.Points = append(res.Points, pt)
		fmt.Printf("shards=%d  events=%d  boundaries=%d  critical=%v  throughput=%.0f ev/s  speedup=%.2fx\n",
			n, pt.Events, pt.Boundaries, time.Duration(pt.MedianCriticalNs), pt.EventsPerSec, pt.SpeedupVs1)
	}
	res.Speedup8v1 = res.Points[len(res.Points)-1].SpeedupVs1
	fmt.Printf("speedup at 8 shards vs 1: %.2fx\n", res.Speedup8v1)

	if *out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
