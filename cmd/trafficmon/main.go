// Command trafficmon runs the full INSIGHT pipeline (Figure 1 of the
// paper) over the synthetic Dublin streams: distributed complex event
// recognition, crowdsourced disagreement resolution with online EM,
// and periodic operator reports. Think of it as the demo the paper
// presents, on a terminal instead of an interactive map.
//
// Usage:
//
//	trafficmon [-from 7h] [-duration 2h] [-step 5m] [-wm 10m]
//	           [-buses 235] [-sensors 240] [-participants 20]
//	           [-adaptive] [-json]
//	           [-http :8080 [-pace 1s]]     # live operator dashboard
//	           [-buscsv f1 -scatscsv f2]    # replay recorded streams
//
// With -http the operator dashboard of the paper's output requirement
// ("a simple, intuitive interactive map to present all traffic
// information and alerts") is served while monitoring runs, paced by
// -pace per step. With -buscsv/-scatscsv the SDEs are replayed from
// CSV files written by cmd/datagen instead of being generated live
// (the city configuration must match the one the files were generated
// with for ground-truth-dependent components to stay consistent).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dashboard"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficmon: ")
	var (
		from         = flag.Duration("from", 7*time.Hour, "start time of day")
		duration     = flag.Duration("duration", 2*time.Hour, "monitoring duration")
		step         = flag.Duration("step", 5*time.Minute, "query step")
		wm           = flag.Duration("wm", 20*time.Minute, "working memory (trend CEs need > 2 SCATS periods = 12 min)")
		buses        = flag.Int("buses", 235, "bus fleet size (default: quarter scale)")
		sensors      = flag.Int("sensors", 240, "SCATS sensor count")
		participants = flag.Int("participants", 20, "crowdsourcing volunteers (0 disables)")
		adaptive     = flag.Bool("adaptive", true, "self-adaptive recognition (rule-set 3')")
		jsonOut      = flag.Bool("json", false, "emit reports as JSON lines")
		incidents    = flag.Int("incidents", 0, "random daily traffic incidents to inject")
		rules        = flag.Bool("rules", false, "print the compiled CE definition set and exit")
		seed         = flag.Int64("seed", 1, "simulation seed")
		httpAddr     = flag.String("http", "", "serve the operator dashboard on this address")
		pace         = flag.Duration("pace", time.Second, "wall-clock delay per step in dashboard mode")
		busCSV       = flag.String("buscsv", "", "replay bus SDEs from this CSV instead of generating")
		scatsCSV     = flag.String("scatscsv", "", "replay SCATS SDEs from this CSV instead of generating")
	)
	flag.Parse()

	city, err := dublin.NewCity(dublin.Config{
		Seed: *seed, NumBuses: *buses, NumSensors: *sensors, Incidents: *incidents,
	})
	if err != nil {
		log.Fatal(err)
	}

	var vols []insight.SimParticipant
	inters := city.Intersections()
	for i := 0; i < *participants && len(inters) > 0; i++ {
		vols = append(vols, insight.SimParticipant{
			ID:        fmt.Sprintf("vol%02d", i),
			Pos:       inters[(i*7)%len(inters)].Pos,
			ErrorProb: 0.05 + 0.02*float64(i%10),
			Network:   qee.Network(i % 3),
		})
	}

	sys, err := insight.New(insight.Config{
		City:          city,
		Seed:          *seed,
		WorkingMemory: rtec.Time(wm.Seconds()),
		Step:          rtec.Time(step.Seconds()),
		Participants:  vols,
		Traffic: traffic.Config{
			Adaptive:    *adaptive,
			NoisyPolicy: traffic.Pessimistic,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if *rules {
		fmt.Print(sys.Definitions().Describe())
		return
	}

	start := rtec.Time(from.Seconds())
	end := start + rtec.Time(duration.Seconds())
	fmt.Printf("monitoring Dublin %02d:00-%02d:%02d — %d buses, %d sensors, %d volunteers, adaptive=%v\n",
		int(from.Hours()), int(end)/3600, int(end)%3600/60, *buses, *sensors, len(vols), *adaptive)

	// Optional dashboard.
	var dash *dashboard.Server
	if *httpAddr != "" {
		dash, err = dashboard.New(city, sys.Registry())
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			log.Printf("dashboard on http://%s/", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, dash.Handler()); err != nil {
				log.Fatal(err)
			}
		}()
	}

	enc := json.NewEncoder(os.Stdout)
	handle := func(r *insight.Report) error {
		if dash != nil {
			dash.Update(r)
			if flows, err := sys.SparsityMap(2, 1, 2500); err == nil {
				dash.UpdateFlows(flows)
			}
			time.Sleep(*pace)
		}
		if *jsonOut {
			return enc.Encode(r)
		}
		fmt.Print(r.String())
		return nil
	}

	if *busCSV != "" || *scatsCSV != "" {
		sdes, err := readReplay(*busCSV, *scatsCSV)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d recorded SDEs\n", len(sdes))
		err = sys.RunReplay(context.Background(), sdes, start, end, handle)
	} else {
		err = sys.Run(context.Background(), start, end, handle)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *participants > 0 {
		fmt.Println("\nparticipant reliability estimates (online EM):")
		est := sys.Estimator()
		for _, id := range est.Participants() {
			fmt.Printf("  %s: error probability %.3f (%d queries)\n",
				id, est.ErrorProb(id), est.Queries(id))
		}
	}
}

// readReplay loads and merges recorded SDE files.
func readReplay(busPath, scatsPath string) ([]dublin.SDE, error) {
	var out []dublin.SDE
	load := func(path string, read func(f *os.File) ([]dublin.SDE, error)) error {
		if path == "" {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sdes, err := read(f)
		if err != nil {
			return err
		}
		out = append(out, sdes...)
		return nil
	}
	if err := load(busPath, func(f *os.File) ([]dublin.SDE, error) { return dublin.ReadBusCSV(f) }); err != nil {
		return nil, err
	}
	if err := load(scatsPath, func(f *os.File) ([]dublin.SDE, error) { return dublin.ReadScatsCSV(f) }); err != nil {
		return nil, err
	}
	return out, nil
}
