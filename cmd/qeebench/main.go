// Command qeebench regenerates Figure 6 of the paper: the latency of
// the individual steps of the crowdsourcing query execution engine —
// task trigger, push notification, task communication — per connection
// type (2G, 3G, WiFi), averaged over repeated executions.
//
// Usage:
//
//	qeebench [-runs 10] [-workers 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qeebench: ")
	var (
		runs    = flag.Int("runs", 10, "task executions per connection type (paper: 10)")
		workers = flag.Int("workers", 1, "map workers per execution")
		seed    = flag.Int64("seed", 3, "latency sampling seed")
	)
	flag.Parse()

	fmt.Printf("Figure 6 — crowdsourcing query execution engine latency\n")
	fmt.Printf("averages over %d task executions per connection type\n\n", *runs)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\ttrigger\tpush notification\tcommunication\tend-to-end")
	for _, network := range qee.Networks {
		engine := qee.NewEngine(qee.Options{Seed: *seed})
		var selected []crowd.Participant
		for i := 0; i < *workers; i++ {
			id := fmt.Sprintf("%s-w%d", network, i)
			if err := engine.Connect(qee.Device{
				Participant: crowd.Participant{ID: id},
				Network:     network,
				Respond: func(qee.Query) (string, time.Duration) {
					// Human response time excluded, as in the paper:
					// "We do not present the latency of the human
					// responses."
					return "congestion", 0
				},
			}); err != nil {
				log.Fatal(err)
			}
			selected = append(selected, crowd.Participant{ID: id})
		}
		var execs []*qee.Execution
		for r := 0; r < *runs; r++ {
			exec, err := engine.Execute(context.Background(), qee.Query{
				ID:      fmt.Sprintf("q%d", r),
				Answers: []string{"congestion", "no congestion"},
			}, selected)
			if err != nil {
				log.Fatal(err)
			}
			execs = append(execs, exec)
		}
		for _, avg := range qee.AverageByNetwork(execs) {
			endToEnd := avg.Trigger + avg.Push + avg.Comm
			fmt.Fprintf(w, "%s\t%d ms\t%d ms\t%d ms\t%d ms\n",
				avg.Network,
				avg.Trigger.Milliseconds(), avg.Push.Milliseconds(),
				avg.Comm.Milliseconds(), endToEnd.Milliseconds())
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShapes to check against the paper: trigger time is small (38-55 ms)")
	fmt.Println("and network-independent; 2G dominates push (≈467 ms) and communication")
	fmt.Println("(≈423 ms); end-to-end stays under one second even on 2G.")
}
