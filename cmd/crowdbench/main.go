// Command crowdbench regenerates Figure 5 of the paper: the online
// Expectation-Maximization estimation of participant quality. Ten
// simulated participants with the paper's error probabilities answer
// 1000 queries with four possible answers each; the tool prints the
// estimate trajectories, the relative estimation errors, the peaked-
// posterior statistic ("94% of posteriors > 0.99" in the paper) and a
// batch-EM comparison.
//
// Usage:
//
//	crowdbench [-queries 1000] [-trace 100] [-csv trace.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"github.com/insight-dublin/insight/crowd"
)

// paperProbs are the error probabilities of Section 7.2.
var paperProbs = []float64{0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9}

var labels = []string{"congestion", "no congestion", "accident", "roadworks"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crowdbench: ")
	var (
		queries = flag.Int("queries", 1000, "number of crowdsourcing queries")
		trace   = flag.Int("trace", 100, "print estimates every N queries")
		csvPath = flag.String("csv", "", "optional CSV file for the full trajectories")
		seed    = flag.Int64("seed", 7, "simulation seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	sims := make([]*crowd.SimulatedParticipant, len(paperProbs))
	ids := make([]string, len(paperProbs))
	for i, p := range paperProbs {
		ids[i] = fmt.Sprintf("p%d", i+1)
		sims[i] = crowd.NewSimulatedParticipant(ids[i], p, rng.Int63())
	}
	est := crowd.NewEstimator(crowd.EstimatorOptions{})

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		csv = f
		fmt.Fprint(csv, "query")
		for _, id := range ids {
			fmt.Fprintf(csv, ",%s", id)
		}
		fmt.Fprintln(csv)
	}

	fmt.Printf("Figure 5 — online EM estimation of participant quality\n")
	fmt.Printf("%d participants, 4 answers, %d queries, p̂₀ = 0.25\n\n", len(paperProbs), *queries)

	var tasks []crowd.Task // retained for the batch-EM comparison
	peaked := 0
	for q := 1; q <= *queries; q++ {
		truth := labels[rng.Intn(len(labels))]
		task := crowd.Task{ID: fmt.Sprintf("q%d", q), Labels: labels}
		for _, sp := range sims {
			task.Answers = append(task.Answers, sp.Answer(labels, truth))
		}
		tasks = append(tasks, task)
		v, err := est.Process(task)
		if err != nil {
			log.Fatal(err)
		}
		if v.Peaked(0.99) {
			peaked++
		}
		if csv != nil {
			fmt.Fprintf(csv, "%d", q)
			for _, id := range ids {
				fmt.Fprintf(csv, ",%.4f", est.ErrorProb(id))
			}
			fmt.Fprintln(csv)
		}
		if *trace > 0 && q%*trace == 0 {
			fmt.Printf("after %4d queries:", q)
			for _, id := range ids {
				fmt.Printf(" %.2f", est.ErrorProb(id))
			}
			fmt.Println()
		}
	}

	fmt.Printf("\nfinal estimates vs truth (relative error):\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "participant\ttrue p\testimate\trel. error")
	for i, id := range ids {
		got := est.ErrorProb(id)
		rel := (got - paperProbs[i]) / paperProbs[i]
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%+.1f%%\n", id, paperProbs[i], got, 100*rel)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npeaked posteriors (max > 0.99): %.1f%% of %d queries (paper: 94%%)\n",
		100*float64(peaked)/float64(*queries), *queries)

	ordered := true
	for i := 0; i+1 < len(ids); i++ {
		if paperProbs[i+1]-paperProbs[i] >= 0.04 &&
			est.ErrorProb(ids[i]) >= est.ErrorProb(ids[i+1]) {
			ordered = false
		}
	}
	fmt.Printf("quality ordering correct (ignoring near-ties): %v\n", ordered)

	// Ablation: batch EM over the full history. Accuracy is similar,
	// but it must revisit every answer at each iteration — unusable
	// on an unbounded stream (the paper's argument for online EM).
	batch, iters, err := crowd.BatchEM(tasks, crowd.EstimatorOptions{}, 50, 1e-5)
	if err != nil {
		log.Fatal(err)
	}
	var onlineMAE, batchMAE float64
	for i, id := range ids {
		onlineMAE += math.Abs(est.ErrorProb(id) - paperProbs[i])
		batchMAE += math.Abs(batch[id] - paperProbs[i])
	}
	onlineMAE /= float64(len(ids))
	batchMAE /= float64(len(ids))
	fmt.Printf("\nbatch EM comparison: %d iterations over %d stored tasks\n", iters, len(tasks))
	fmt.Printf("mean absolute error: online %.4f, batch %.4f\n", onlineMAE, batchMAE)
	fmt.Printf("online EM memory: O(participants); batch EM memory: O(all answers)\n")

	// Ablation: the stochastic-approximation schedule. The running
	// average (γ_t = 1/(t+1)) converges on stationary participants;
	// the paper's literal γ_t = t/(t+1) weights recent posteriors
	// heavily; a constant step trades asymptotic variance for the
	// ability to track drifting participants.
	fmt.Printf("\ngamma schedule ablation (same %d queries, stationary participants):\n", *queries)
	schedules := []struct {
		name  string
		gamma crowd.GammaFunc
	}{
		{"1/(t+1) running average", crowd.DefaultGamma},
		{"t/(t+1) paper schedule", crowd.PaperGamma},
		{"constant 0.05", crowd.ConstantGamma(0.05)},
	}
	for _, sched := range schedules {
		est2 := crowd.NewEstimator(crowd.EstimatorOptions{Gamma: sched.gamma})
		for _, task := range tasks {
			if _, err := est2.Process(task); err != nil {
				log.Fatal(err)
			}
		}
		var mae float64
		for i, id := range ids {
			mae += math.Abs(est2.ErrorProb(id) - paperProbs[i])
		}
		fmt.Printf("  %-24s MAE %.4f\n", sched.name, mae/float64(len(ids)))
	}
	fmt.Println("\nNote: read literally (as the weight on the NEW observation), the")
	fmt.Println("paper's γ_t = t/(t+1) cannot converge — the estimate just chases the")
	fmt.Println("latest posterior. Figure 5's convergence is only reproducible when")
	fmt.Println("γ_t weights the OLD estimate, i.e. an update weight of 1/(t+1); that")
	fmt.Println("reading is this tool's default.")
}
