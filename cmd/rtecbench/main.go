// Command rtecbench regenerates Figure 4 of the paper: average CE
// recognition time as a function of the working memory size, for
// static and self-adaptive event recognition, with the stream
// partitioned over the four Dublin regions.
//
// Usage:
//
//	rtecbench [-buses 942] [-sensors 966] [-runs 3] [-wm 10,30,50,70,90,110] [-step 0] [-full]
//
// The defaults reproduce the paper's full scale (942 buses, 966 SCATS
// sensors); recognition times then land in the same regime as the
// paper's Prolog implementation (single-digit seconds at WM = 110 min).
//
// With -step N the benchmark switches to the sliding-window regime of
// Figure 2 (WM > step): SDEs are delivered by arrival time and a query
// runs every N minutes over one monitored hour; the reported figure is
// the average per-query recognition time. -full disables the engine's
// incremental overlap caching (Options.ForceFullRecompute), which is
// the baseline to compare -step runs against.
//
// With -batch the benchmark instead compares the two ingest paths into
// the RTEC store for one working-memory window (the first -wm entry):
// the captured map path — every delivered batch row decoded into an
// attribute map and fed as one event — against the columnar path that
// appends the column blocks directly. Both feed the same delivered
// batches, the recognition query runs after each measured feed, and
// the CE output of the two paths is checked for equality before the
// ratios are printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// storeKind is the working-memory representation every benchmark mode
// builds its engines with (-store flag).
var storeKind rtec.StoreKind

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtecbench: ")
	var (
		buses   = flag.Int("buses", 942, "bus fleet size")
		sensors = flag.Int("sensors", 966, "SCATS sensor count")
		runs    = flag.Int("runs", 3, "measurement repetitions per point")
		wmList  = flag.String("wm", "10,30,50,70,90,110", "working memory sizes in minutes")
		seed    = flag.Int64("seed", 1, "city seed")
		profile = flag.Bool("profile", false, "print the per-rule cost breakdown of the largest window")
		stepMin = flag.Int("step", 0, "query step in minutes; 0 = one window per measurement, >0 = sliding-window regime")
		full    = flag.Bool("full", false, "disable incremental overlap caching (full recompute baseline)")
		batch   = flag.Bool("batch", false, "compare map-decode vs columnar-block ingest (uses the first -wm entry)")
		store   = flag.String("store", "row", "RTEC working-memory store: row (per-event records) or column (resident column blocks)")
	)
	flag.Parse()

	switch *store {
	case "row":
		storeKind = rtec.StoreRow
	case "column":
		storeKind = rtec.StoreColumn
	default:
		log.Fatalf("invalid -store %q (want row or column)", *store)
	}

	var wms []int
	for _, part := range strings.Split(*wmList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			log.Fatalf("invalid -wm entry %q", part)
		}
		wms = append(wms, v)
	}

	city, err := dublin.NewCity(dublin.Config{Seed: *seed, NumBuses: *buses, NumSensors: *sensors})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := city.Registry(150)
	if err != nil {
		log.Fatal(err)
	}

	if *batch {
		runBatch(city, reg, rtec.Time(wms[0]*60), *buses, *sensors, *runs)
		return
	}

	if *stepMin > 0 {
		fmt.Printf("Sliding-window recognition (step = %d min, one monitored hour", *stepMin)
		if *full {
			fmt.Printf(", full recompute")
		}
		fmt.Printf(")\n")
	} else {
		fmt.Printf("Figure 4 — CE recognition time vs working memory\n")
	}
	fmt.Printf("city: %d buses, %d SCATS sensors, 4 partitions, %d runs/point\n\n", *buses, *sensors, *runs)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *stepMin > 0 {
		fmt.Fprintln(w, "WM\tSDEs\tqueries\tstatic/query\tself-adaptive/query\toverhead")
	} else {
		fmt.Fprintln(w, "WM\tSDEs\tstatic\tself-adaptive\toverhead")
	}
	for _, wmMin := range wms {
		wm := rtec.Time(wmMin * 60)
		from := rtec.Time(7 * 3600) // morning rush
		if *stepMin > 0 {
			step := rtec.Time(*stepMin * 60)
			sdes := city.Collect(from, from+3600)
			queries := int(3600 / step)
			staticT := measureSliding(reg, false, wm, step, from, sdes, *runs, *full)
			adaptiveT := measureSliding(reg, true, wm, step, from, sdes, *runs, *full)
			overhead := 100 * (adaptiveT.Seconds() - staticT.Seconds()) / staticT.Seconds()
			fmt.Fprintf(w, "%d min\t%dK\t%d\t%.0fms\t%.0fms\t%+.1f%%\n",
				wmMin, len(sdes)/1000, queries,
				1000*staticT.Seconds()/float64(queries), 1000*adaptiveT.Seconds()/float64(queries), overhead)
			continue
		}
		sdes := city.Collect(from, from+wm)
		events := make([]rtec.Event, len(sdes))
		for i, s := range sdes {
			events[i] = s.Event
		}
		staticT := measure(reg, false, wm, from, events, *runs, *full)
		adaptiveT := measure(reg, true, wm, from, events, *runs, *full)
		overhead := 100 * (adaptiveT.Seconds() - staticT.Seconds()) / staticT.Seconds()
		fmt.Fprintf(w, "%d min\t%dK\t%.2fs\t%.2fs\t%+.1f%%\n",
			wmMin, len(events)/1000, staticT.Seconds(), adaptiveT.Seconds(), overhead)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShapes to check against the paper: time grows ~linearly with WM;")
	fmt.Println("self-adaptive recognition has minimal overhead; every point stays")
	fmt.Println("well below the window length (real-time recognition).")

	if *profile {
		wm := rtec.Time(wms[len(wms)-1] * 60)
		from := rtec.Time(7 * 3600)
		sdes := city.Collect(from, from+wm)
		events := make([]rtec.Event, len(sdes))
		for i, s := range sdes {
			events[i] = s.Event
		}
		defs, err := traffic.Build(traffic.Config{
			Registry: reg, Adaptive: true, NoisyPolicy: traffic.Pessimistic,
		})
		if err != nil {
			log.Fatal(err)
		}
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: wm, Profile: true, Store: storeKind},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			log.Fatal(err)
		}
		results, err := part.Query(from + wm)
		if err != nil {
			log.Fatal(err)
		}
		merged := rtec.MergeResults(results)
		type cost struct {
			name string
			d    time.Duration
		}
		var costs []cost
		var total time.Duration
		for name, d := range merged.RuleCosts {
			costs = append(costs, cost{name, d})
			total += d
		}
		sort.Slice(costs, func(i, j int) bool { return costs[i].d > costs[j].d })
		fmt.Printf("\nper-rule cost at WM = %d min (self-adaptive; total work %.2fs across partitions):\n",
			wms[len(wms)-1], total.Seconds())
		for _, c := range costs {
			fmt.Printf("  %-22s %8.0f ms  (%4.1f%%)\n",
				c.name, c.d.Seconds()*1000, 100*c.d.Seconds()/total.Seconds())
		}
	}
}

// runBatch is the -batch mode: the same delivered SDE batches of one
// working-memory window enter the partitioned RTEC store through the
// captured map path (decode each row into an attribute map, feed the
// resulting event) and through the columnar path (append the column
// blocks directly). Reported times are best-of-runs wall clock of the
// feed phase; allocation counts come from runtime.MemStats deltas and
// are deterministic. The recognition query runs after every measured
// feed and the derived CE output of the two paths is compared before
// anything is printed.
func runBatch(city *dublin.City, reg *traffic.Registry, wm rtec.Time, buses, sensors, runs int) {
	from := rtec.Time(7 * 3600)
	defs, err := traffic.Build(traffic.Config{Registry: reg, NoisyPolicy: traffic.Pessimistic})
	if err != nil {
		log.Fatal(err)
	}
	bstreams := city.CollectBatches(from, from+wm, 512, 0)
	var batches []*streams.Batch
	var blocks []*rtec.Block
	n := 0
	for _, bs := range bstreams {
		for _, b := range bs.Batches {
			batches = append(batches, b)
			blocks = append(blocks, dublin.Block(b))
			n += b.Len()
		}
	}
	newPart := func() *rtec.Partitioned {
		// Profile turns on the resident-store accounting; it only adds
		// work inside Query, which the feed timer never covers.
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: wm, Profile: true, Store: storeKind},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		part.SetBlockAssign(dublin.PartitionOfBlock)
		return part
	}
	feedMap := func(part *rtec.Partitioned) {
		for _, b := range batches {
			rows := b.Len()
			for r := 0; r < rows; r++ {
				attrs := make(map[string]any, len(b.Cols))
				for ci := range b.Cols {
					c := &b.Cols[ci]
					attrs[c.Name] = c.Value(r)
				}
				if err := part.Input(rtec.NewEvent(b.Type, rtec.Time(b.Times[r]), b.Keys[r], attrs)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	feedColumnar := func(part *rtec.Partitioned) {
		for _, blk := range blocks {
			if err := part.InputBlock(blk); err != nil {
				log.Fatal(err)
			}
		}
	}
	type outcome struct {
		best       time.Duration
		allocsPerE float64
		resident   uint64
		fp         string
	}
	measureFeed := func(feed func(*rtec.Partitioned)) outcome {
		var out outcome
		for r := 0; r < runs; r++ {
			part := newPart()
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			feed(part)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			if r == 0 || elapsed < out.best {
				out.best = elapsed
			}
			out.allocsPerE = float64(m1.Mallocs-m0.Mallocs) / float64(n)
			res, err := part.Query(from + wm)
			if err != nil {
				log.Fatal(err)
			}
			merged := rtec.MergeResults(res)
			out.resident = merged.Stats.ResidentBytes
			fp := derivedFingerprint(merged)
			if out.fp == "" {
				out.fp = fp
			} else if fp != out.fp {
				log.Fatalf("CE output varies between runs of the same path")
			}
		}
		return out
	}

	fmt.Printf("Ingest path — map decode vs columnar blocks\n")
	fmt.Printf("city: %d buses, %d SCATS sensors, 4 partitions; WM = %d min, %d SDEs, best of %d runs\n\n",
		buses, sensors, int(wm)/60, n, runs)
	mapOut := measureFeed(feedMap)
	colOut := measureFeed(feedColumnar)
	if mapOut.fp != colOut.fp {
		log.Fatalf("CE output differs between the map and columnar paths")
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "path\ttime\tns/SDE\tSDE/s\tallocs/SDE\tres-B/SDE")
	row := func(name string, o outcome) {
		perE := float64(o.best.Nanoseconds()) / float64(n)
		fmt.Fprintf(w, "%s\t%.1fms\t%.0f\t%.0fK\t%.2f\t%.0f\n",
			name, o.best.Seconds()*1000, perE, float64(n)/o.best.Seconds()/1000, o.allocsPerE,
			float64(o.resident)/float64(n))
	}
	row("map", mapOut)
	row("columnar", colOut)
	fmt.Fprintf(w, "ratio\t%.1fx\t\t\t%.1fx\n",
		mapOut.best.Seconds()/colOut.best.Seconds(), mapOut.allocsPerE/colOut.allocsPerE)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCE output: identical on both paths (%d derived-event fingerprint bytes)\n", len(colOut.fp))
	for _, b := range batches {
		b.Release()
	}
}

// derivedFingerprint renders the recognition output of one query as a
// canonical string: derived events, fresh events and fluent intervals.
// Equal fingerprints mean the two ingest paths recognised exactly the
// same complex events.
func derivedFingerprint(res *rtec.Result) string {
	var sb strings.Builder
	types := make([]string, 0, len(res.Derived))
	for typ := range res.Derived {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		for _, ev := range res.Derived[typ] {
			fmt.Fprintf(&sb, "derived %s|%s|%d\n", ev.Type, ev.Key, ev.Time)
		}
	}
	for _, ev := range res.Fresh {
		fmt.Fprintf(&sb, "fresh %s|%s|%d\n", ev.Type, ev.Key, ev.Time)
	}
	fluents := make([]string, 0, len(res.Fluents))
	for name := range res.Fluents {
		fluents = append(fluents, name)
	}
	sort.Strings(fluents)
	for _, name := range fluents {
		insts := res.Fluents[name]
		keys := make([]rtec.KV, 0, len(insts))
		for kv := range insts {
			keys = append(keys, kv)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Key != keys[j].Key {
				return keys[i].Key < keys[j].Key
			}
			return keys[i].Value < keys[j].Value
		})
		for _, kv := range keys {
			fmt.Fprintf(&sb, "fluent %s|%s=%s|%s\n", name, kv.Key, kv.Value, insts[kv].String())
		}
	}
	return sb.String()
}

func measure(reg *traffic.Registry, adaptive bool, wm, from rtec.Time, events []rtec.Event, runs int, full bool) time.Duration {
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: wm, ForceFullRecompute: full, Store: storeKind},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := part.Query(from + wm); err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
	}
	return total / time.Duration(runs)
}

// measureSliding runs the WM > step regime: SDEs are delivered by
// mediator arrival time, a query fires every step over one monitored
// hour, and the returned duration is the total recognition time of the
// hour (divide by the query count for a per-query average).
func measureSliding(reg *traffic.Registry, adaptive bool, wm, step, from rtec.Time, sdes []dublin.SDE, runs int, full bool) time.Duration {
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: step, ForceFullRecompute: full, Store: storeKind},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		cursor := 0
		for q := from + step; q <= from+3600; q += step {
			for cursor < len(sdes) && sdes[cursor].Arrival <= q {
				if err := part.Input(sdes[cursor].Event); err != nil {
					log.Fatal(err)
				}
				cursor++
			}
			start := time.Now()
			if _, err := part.Query(q); err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
		}
	}
	return total / time.Duration(runs)
}
