// Command rtecbench regenerates Figure 4 of the paper: average CE
// recognition time as a function of the working memory size, for
// static and self-adaptive event recognition, with the stream
// partitioned over the four Dublin regions.
//
// Usage:
//
//	rtecbench [-buses 942] [-sensors 966] [-runs 3] [-wm 10,30,50,70,90,110]
//
// The defaults reproduce the paper's full scale (942 buses, 966 SCATS
// sensors); recognition times then land in the same regime as the
// paper's Prolog implementation (single-digit seconds at WM = 110 min).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtecbench: ")
	var (
		buses   = flag.Int("buses", 942, "bus fleet size")
		sensors = flag.Int("sensors", 966, "SCATS sensor count")
		runs    = flag.Int("runs", 3, "measurement repetitions per point")
		wmList  = flag.String("wm", "10,30,50,70,90,110", "working memory sizes in minutes")
		seed    = flag.Int64("seed", 1, "city seed")
		profile = flag.Bool("profile", false, "print the per-rule cost breakdown of the largest window")
	)
	flag.Parse()

	var wms []int
	for _, part := range strings.Split(*wmList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			log.Fatalf("invalid -wm entry %q", part)
		}
		wms = append(wms, v)
	}

	city, err := dublin.NewCity(dublin.Config{Seed: *seed, NumBuses: *buses, NumSensors: *sensors})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := city.Registry(150)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 4 — CE recognition time vs working memory\n")
	fmt.Printf("city: %d buses, %d SCATS sensors, 4 partitions, %d runs/point\n\n", *buses, *sensors, *runs)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "WM\tSDEs\tstatic\tself-adaptive\toverhead")
	for _, wmMin := range wms {
		wm := rtec.Time(wmMin * 60)
		from := rtec.Time(7 * 3600) // morning rush
		sdes := city.Collect(from, from+wm)
		events := make([]rtec.Event, len(sdes))
		for i, s := range sdes {
			events[i] = s.Event
		}
		staticT := measure(reg, false, wm, from, events, *runs)
		adaptiveT := measure(reg, true, wm, from, events, *runs)
		overhead := 100 * (adaptiveT.Seconds() - staticT.Seconds()) / staticT.Seconds()
		fmt.Fprintf(w, "%d min\t%dK\t%.2fs\t%.2fs\t%+.1f%%\n",
			wmMin, len(events)/1000, staticT.Seconds(), adaptiveT.Seconds(), overhead)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShapes to check against the paper: time grows ~linearly with WM;")
	fmt.Println("self-adaptive recognition has minimal overhead; every point stays")
	fmt.Println("well below the window length (real-time recognition).")

	if *profile {
		wm := rtec.Time(wms[len(wms)-1] * 60)
		from := rtec.Time(7 * 3600)
		sdes := city.Collect(from, from+wm)
		events := make([]rtec.Event, len(sdes))
		for i, s := range sdes {
			events[i] = s.Event
		}
		defs, err := traffic.Build(traffic.Config{
			Registry: reg, Adaptive: true, NoisyPolicy: traffic.Pessimistic,
		})
		if err != nil {
			log.Fatal(err)
		}
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: wm, Profile: true},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			log.Fatal(err)
		}
		results, err := part.Query(from + wm)
		if err != nil {
			log.Fatal(err)
		}
		merged := rtec.MergeResults(results)
		type cost struct {
			name string
			d    time.Duration
		}
		var costs []cost
		var total time.Duration
		for name, d := range merged.RuleCosts {
			costs = append(costs, cost{name, d})
			total += d
		}
		sort.Slice(costs, func(i, j int) bool { return costs[i].d > costs[j].d })
		fmt.Printf("\nper-rule cost at WM = %d min (self-adaptive; total work %.2fs across partitions):\n",
			wms[len(wms)-1], total.Seconds())
		for _, c := range costs {
			fmt.Printf("  %-22s %8.0f ms  (%4.1f%%)\n",
				c.name, c.d.Seconds()*1000, 100*c.d.Seconds()/total.Seconds())
		}
	}
}

func measure(reg *traffic.Registry, adaptive bool, wm, from rtec.Time, events []rtec.Event, runs int) time.Duration {
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		part, err := rtec.NewPartitioned(defs, rtec.Options{WorkingMemory: wm, Step: wm},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := part.Query(from + wm); err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
	}
	return total / time.Duration(runs)
}
