// Command rtecbench regenerates Figure 4 of the paper: average CE
// recognition time as a function of the working memory size, for
// static and self-adaptive event recognition, with the stream
// partitioned over the four Dublin regions.
//
// Usage:
//
//	rtecbench [-buses 942] [-sensors 966] [-runs 3] [-wm 10,30,50,70,90,110] [-step 0] [-full]
//
// The defaults reproduce the paper's full scale (942 buses, 966 SCATS
// sensors); recognition times then land in the same regime as the
// paper's Prolog implementation (single-digit seconds at WM = 110 min).
//
// With -step N the benchmark switches to the sliding-window regime of
// Figure 2 (WM > step): SDEs are delivered by arrival time and a query
// runs every N minutes over one monitored hour; the reported figure is
// the average per-query recognition time. -full disables the engine's
// incremental overlap caching (Options.ForceFullRecompute), which is
// the baseline to compare -step runs against.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtecbench: ")
	var (
		buses   = flag.Int("buses", 942, "bus fleet size")
		sensors = flag.Int("sensors", 966, "SCATS sensor count")
		runs    = flag.Int("runs", 3, "measurement repetitions per point")
		wmList  = flag.String("wm", "10,30,50,70,90,110", "working memory sizes in minutes")
		seed    = flag.Int64("seed", 1, "city seed")
		profile = flag.Bool("profile", false, "print the per-rule cost breakdown of the largest window")
		stepMin = flag.Int("step", 0, "query step in minutes; 0 = one window per measurement, >0 = sliding-window regime")
		full    = flag.Bool("full", false, "disable incremental overlap caching (full recompute baseline)")
	)
	flag.Parse()

	var wms []int
	for _, part := range strings.Split(*wmList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			log.Fatalf("invalid -wm entry %q", part)
		}
		wms = append(wms, v)
	}

	city, err := dublin.NewCity(dublin.Config{Seed: *seed, NumBuses: *buses, NumSensors: *sensors})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := city.Registry(150)
	if err != nil {
		log.Fatal(err)
	}

	if *stepMin > 0 {
		fmt.Printf("Sliding-window recognition (step = %d min, one monitored hour", *stepMin)
		if *full {
			fmt.Printf(", full recompute")
		}
		fmt.Printf(")\n")
	} else {
		fmt.Printf("Figure 4 — CE recognition time vs working memory\n")
	}
	fmt.Printf("city: %d buses, %d SCATS sensors, 4 partitions, %d runs/point\n\n", *buses, *sensors, *runs)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *stepMin > 0 {
		fmt.Fprintln(w, "WM\tSDEs\tqueries\tstatic/query\tself-adaptive/query\toverhead")
	} else {
		fmt.Fprintln(w, "WM\tSDEs\tstatic\tself-adaptive\toverhead")
	}
	for _, wmMin := range wms {
		wm := rtec.Time(wmMin * 60)
		from := rtec.Time(7 * 3600) // morning rush
		if *stepMin > 0 {
			step := rtec.Time(*stepMin * 60)
			sdes := city.Collect(from, from+3600)
			queries := int(3600 / step)
			staticT := measureSliding(reg, false, wm, step, from, sdes, *runs, *full)
			adaptiveT := measureSliding(reg, true, wm, step, from, sdes, *runs, *full)
			overhead := 100 * (adaptiveT.Seconds() - staticT.Seconds()) / staticT.Seconds()
			fmt.Fprintf(w, "%d min\t%dK\t%d\t%.0fms\t%.0fms\t%+.1f%%\n",
				wmMin, len(sdes)/1000, queries,
				1000*staticT.Seconds()/float64(queries), 1000*adaptiveT.Seconds()/float64(queries), overhead)
			continue
		}
		sdes := city.Collect(from, from+wm)
		events := make([]rtec.Event, len(sdes))
		for i, s := range sdes {
			events[i] = s.Event
		}
		staticT := measure(reg, false, wm, from, events, *runs, *full)
		adaptiveT := measure(reg, true, wm, from, events, *runs, *full)
		overhead := 100 * (adaptiveT.Seconds() - staticT.Seconds()) / staticT.Seconds()
		fmt.Fprintf(w, "%d min\t%dK\t%.2fs\t%.2fs\t%+.1f%%\n",
			wmMin, len(events)/1000, staticT.Seconds(), adaptiveT.Seconds(), overhead)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShapes to check against the paper: time grows ~linearly with WM;")
	fmt.Println("self-adaptive recognition has minimal overhead; every point stays")
	fmt.Println("well below the window length (real-time recognition).")

	if *profile {
		wm := rtec.Time(wms[len(wms)-1] * 60)
		from := rtec.Time(7 * 3600)
		sdes := city.Collect(from, from+wm)
		events := make([]rtec.Event, len(sdes))
		for i, s := range sdes {
			events[i] = s.Event
		}
		defs, err := traffic.Build(traffic.Config{
			Registry: reg, Adaptive: true, NoisyPolicy: traffic.Pessimistic,
		})
		if err != nil {
			log.Fatal(err)
		}
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: wm, Profile: true},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			log.Fatal(err)
		}
		results, err := part.Query(from + wm)
		if err != nil {
			log.Fatal(err)
		}
		merged := rtec.MergeResults(results)
		type cost struct {
			name string
			d    time.Duration
		}
		var costs []cost
		var total time.Duration
		for name, d := range merged.RuleCosts {
			costs = append(costs, cost{name, d})
			total += d
		}
		sort.Slice(costs, func(i, j int) bool { return costs[i].d > costs[j].d })
		fmt.Printf("\nper-rule cost at WM = %d min (self-adaptive; total work %.2fs across partitions):\n",
			wms[len(wms)-1], total.Seconds())
		for _, c := range costs {
			fmt.Printf("  %-22s %8.0f ms  (%4.1f%%)\n",
				c.name, c.d.Seconds()*1000, 100*c.d.Seconds()/total.Seconds())
		}
	}
}

func measure(reg *traffic.Registry, adaptive bool, wm, from rtec.Time, events []rtec.Event, runs int, full bool) time.Duration {
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: wm, ForceFullRecompute: full},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		if err := part.Input(events...); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := part.Query(from + wm); err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
	}
	return total / time.Duration(runs)
}

// measureSliding runs the WM > step regime: SDEs are delivered by
// mediator arrival time, a query fires every step over one monitored
// hour, and the returned duration is the total recognition time of the
// hour (divide by the query count for a per-query average).
func measureSliding(reg *traffic.Registry, adaptive bool, wm, step, from rtec.Time, sdes []dublin.SDE, runs int, full bool) time.Duration {
	defs, err := traffic.Build(traffic.Config{
		Registry:    reg,
		Adaptive:    adaptive,
		NoisyPolicy: traffic.Pessimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		part, err := rtec.NewPartitioned(defs,
			rtec.Options{WorkingMemory: wm, Step: step, ForceFullRecompute: full},
			4, func(e rtec.Event) int { return dublin.PartitionOf(e) })
		if err != nil {
			log.Fatal(err)
		}
		cursor := 0
		for q := from + step; q <= from+3600; q += step {
			for cursor < len(sdes) && sdes[cursor].Arrival <= q {
				if err := part.Input(sdes[cursor].Event); err != nil {
					log.Fatal(err)
				}
				cursor++
			}
			start := time.Now()
			if _, err := part.Query(q); err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
		}
	}
	return total / time.Duration(runs)
}
