package dashboard

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/traffic"
)

func testServer(t *testing.T) (*Server, *insight.System, *dublin.City) {
	t.Helper()
	city, err := dublin.NewCity(dublin.Config{
		Seed: 42, NumBuses: 40, NumSensors: 40, NoisyBusFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := insight.New(insight.Config{
		City:          city,
		WorkingMemory: 1800,
		Step:          900,
		Traffic:       traffic.Config{Adaptive: true, NoisyPolicy: traffic.Pessimistic},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(city, sys.Registry())
	if err != nil {
		t.Fatal(err)
	}
	return srv, sys, city
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil inputs must error")
	}
}

func TestDashboardBeforeFirstReport(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()

	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK {
		t.Errorf("index status = %d", res.StatusCode)
	}
	if !strings.Contains(body, "waiting for the first report") {
		t.Error("index should state that no report exists yet")
	}
	res, _ = get(t, h, "/api/report")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("report status = %d, want 503", res.StatusCode)
	}
	res, _ = get(t, h, "/api/flows")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("flows status = %d, want 503", res.StatusCode)
	}
	// The map renders even without data.
	res, body = get(t, h, "/map.svg")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "<svg") {
		t.Errorf("map status = %d", res.StatusCode)
	}
}

func TestDashboardWithLiveData(t *testing.T) {
	srv, sys, _ := testServer(t)
	h := srv.Handler()

	// Drive a morning-rush step through the system.
	var last *insight.Report
	err := sys.Run(context.Background(), 7*3600, 8*3600, func(r *insight.Report) error {
		last = r
		srv.Update(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no reports produced")
	}
	flows, err := sys.SparsityMap(2, 1, 2500)
	if err != nil {
		t.Fatal(err)
	}
	srv.UpdateFlows(flows)

	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", res.StatusCode)
	}
	if !strings.Contains(body, "query time") || !strings.Contains(body, "map.svg") {
		t.Error("index missing live content")
	}

	res, body = get(t, h, "/map.svg")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("map status = %d", res.StatusCode)
	}
	if !strings.Contains(body, "<line") {
		t.Error("map missing street segments")
	}
	if len(last.CongestedIntersections) > 0 && !strings.Contains(body, `stroke="#d00"`) {
		t.Error("congested intersections should be highlighted")
	}
	if !strings.Contains(body, `fill="black"`) {
		t.Error("sensor dots missing from flow-shaded map")
	}

	res, body = get(t, h, "/api/report")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", res.StatusCode)
	}
	var decoded struct {
		Q         int64
		FedEvents int
	}
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if decoded.Q != int64(last.Q) || decoded.FedEvents == 0 {
		t.Errorf("report JSON = %+v", decoded)
	}

	res, body = get(t, h, "/api/flows")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("flows status = %d", res.StatusCode)
	}
	var flowsOut struct{ Values []float64 }
	if err := json.Unmarshal([]byte(body), &flowsOut); err != nil {
		t.Fatalf("flows not JSON: %v", err)
	}
	if len(flowsOut.Values) == 0 {
		t.Error("flow JSON empty")
	}
}

func TestDashboardMethodRouting(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodPost, "/api/report", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Result().StatusCode)
	}
	// Unknown path.
	res, _ := get(t, h, "/nope")
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", res.StatusCode)
	}
}
