// Package dashboard is the operator-facing output of the system: "an
// important requirement is to have a simple, intuitive interactive map
// to present all traffic information and alerts" (Section 2 of Artikis
// et al., EDBT 2014). It serves, over HTTP:
//
//	/            an auto-refreshing HTML page: the city map with the
//	             latest alerts, crowd resolutions and statistics
//	/map.svg     the live city map — GP flow shading, SCATS sensor
//	             dots, red rings on congested intersections
//	/api/report  the latest operator report as JSON
//	/api/flows   the latest flow estimates as JSON
//
// The server holds only the most recent state; feed it from a
// System.Run callback (see cmd/trafficmon -http).
package dashboard

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sync"

	insight "github.com/insight-dublin/insight"
	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/traffic"
)

// Server renders the operator dashboard. Create with New, feed with
// Update/UpdateFlows, mount with Handler.
type Server struct {
	city        *dublin.City      //state:transient render-only config, injected at construction
	registry    *traffic.Registry //state:transient render-only config, injected at construction
	interVertex map[string]int    //state:derived intersection ID -> street-graph vertex, built in New

	mu     sync.RWMutex
	report *insight.Report
	flows  *insight.FlowEstimate
}

// New builds a dashboard over the monitored city.
func New(city *dublin.City, registry *traffic.Registry) (*Server, error) {
	if city == nil || registry == nil {
		return nil, fmt.Errorf("dashboard: city and registry are required")
	}
	s := &Server{
		city:        city,
		registry:    registry,
		interVertex: make(map[string]int),
	}
	for i := range city.Sensors() {
		sensor := &city.Sensors()[i]
		s.interVertex[sensor.Intersection] = sensor.Vertex
	}
	return s, nil
}

// Update publishes the latest operator report.
func (s *Server) Update(r *insight.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.report = r
}

// UpdateFlows publishes the latest traffic-model estimates.
func (s *Server) UpdateFlows(f *insight.FlowEstimate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flows = f
}

// snapshot returns the current state under the read lock.
func (s *Server) snapshot() (*insight.Report, *insight.FlowEstimate) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.report, s.flows
}

// Handler returns the HTTP handler serving the dashboard.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.serveIndex)
	mux.HandleFunc("GET /map.svg", s.serveMap)
	mux.HandleFunc("GET /api/report", s.serveReport)
	mux.HandleFunc("GET /api/flows", s.serveFlows)
	return mux
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>INSIGHT Dublin — traffic monitor</title>
<style>
  body { font-family: sans-serif; margin: 1.5em; }
  table { border-collapse: collapse; }
  td, th { border: 1px solid #ccc; padding: 2px 8px; font-size: 13px; text-align: left; }
  .kind { font-weight: bold; }
  img { border: 1px solid #ccc; max-width: 100%; }
</style>
</head>
<body>
<h1>INSIGHT Dublin — traffic monitor</h1>
{{if .Report}}
<p>query time <b>{{.Report.Q}}</b> — {{.Report.FedEvents}} SDEs,
{{len .Report.CongestedIntersections}} congested intersections,
{{len .Report.Disagreements}} source disagreements,
{{len .Report.NoisyBuses}} unreliable buses,
recognition {{.Report.Stats.Elapsed}}</p>
<img src="/map.svg" alt="city map">
<h2>Alerts</h2>
<table>
<tr><th>time</th><th>kind</th><th>key</th><th>detail</th></tr>
{{range .Report.Alerts}}
<tr><td>{{.Time}}</td><td class="kind">{{.Kind}}</td><td>{{.Key}}</td><td>{{.Text}}</td></tr>
{{else}}
<tr><td colspan="4">none</td></tr>
{{end}}
</table>
<h2>Crowd resolutions</h2>
<table>
<tr><th>intersection</th><th>verdict</th><th>confidence</th><th>participants</th></tr>
{{range .Report.CrowdRounds}}
<tr><td>{{.Intersection}}</td><td>{{.Verdict.Best}}</td><td>{{printf "%.2f" .Verdict.Confidence}}</td><td>{{.Queried}}</td></tr>
{{else}}
<tr><td colspan="4">none</td></tr>
{{end}}
</table>
{{else}}
<p>waiting for the first report…</p>
{{end}}
</body>
</html>`))

func (s *Server) serveIndex(w http.ResponseWriter, _ *http.Request) {
	report, _ := s.snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, struct{ Report *insight.Report }{report}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) serveMap(w http.ResponseWriter, _ *http.Request) {
	report, flows := s.snapshot()
	g := s.city.Graph()

	opts := citygraph.RenderOptions{Width: 900}
	if flows != nil && len(flows.Values) == g.NumVertices() {
		opts.Values = flows.Values
		opts.Sensors = flows.ObservedVertices
	}
	if report != nil {
		opts.Title = fmt.Sprintf("query time %d — %d alerts", int64(report.Q), len(report.Alerts))
		seen := make(map[int]bool)
		for _, id := range report.CongestedIntersections {
			if v, ok := s.intersectionVertex(id); ok && !seen[v] {
				seen[v] = true
				opts.Highlights = append(opts.Highlights, v)
			}
		}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	if err := g.RenderSVG(w, opts); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// intersectionVertex maps an intersection ID to its street-graph
// vertex.
func (s *Server) intersectionVertex(id string) (int, bool) {
	v, ok := s.interVertex[id]
	return v, ok
}

func (s *Server) serveReport(w http.ResponseWriter, _ *http.Request) {
	report, _ := s.snapshot()
	w.Header().Set("Content-Type", "application/json")
	if report == nil {
		http.Error(w, `{"error": "no report yet"}`, http.StatusServiceUnavailable)
		return
	}
	if err := json.NewEncoder(w).Encode(report); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) serveFlows(w http.ResponseWriter, _ *http.Request) {
	_, flows := s.snapshot()
	w.Header().Set("Content-Type", "application/json")
	if flows == nil {
		http.Error(w, `{"error": "no flow estimates yet"}`, http.StatusServiceUnavailable)
		return
	}
	if err := json.NewEncoder(w).Encode(flows); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
