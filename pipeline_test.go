package insight

import (
	"context"
	"testing"

	"github.com/insight-dublin/insight/traffic"
)

// TestPipelineMatchesDirectRun drives the same city through the
// Streams data-flow graph (Section 3 architecture) and through the
// direct Run loop, and checks the recognition outcomes agree: the
// pipeline's watermark punctuation must deliver exactly the SDEs that
// have arrived by each query time, like the synchronous loop does.
func TestPipelineMatchesDirectRun(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600

	mkSystem := func() *System {
		city := testCity(t)
		sys, err := New(Config{
			City:          city,
			Seed:          7,
			WorkingMemory: 1800,
			Step:          900,
			Participants:  testParticipants(city, 8),
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// Direct run.
	direct := mkSystem()
	var directReports []*Report
	if err := direct.Run(context.Background(), from, until, func(r *Report) error {
		directReports = append(directReports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Pipeline run.
	pipelined := mkSystem()
	pipe, err := pipelined.BuildPipeline(from, until)
	if err != nil {
		t.Fatal(err)
	}
	pipeReports, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(pipeReports) != len(directReports) {
		t.Fatalf("pipeline produced %d reports, direct run %d", len(pipeReports), len(directReports))
	}
	for i := range pipeReports {
		pr, dr := pipeReports[i], directReports[i]
		if pr.Q != dr.Q {
			t.Fatalf("report %d query time %d vs %d", i, pr.Q, dr.Q)
		}
		if pr.Stats.InputEvents != dr.Stats.InputEvents {
			t.Errorf("Q=%d: pipeline saw %d SDEs, direct %d", pr.Q, pr.Stats.InputEvents, dr.Stats.InputEvents)
		}
		if got, want := join(pr.CongestedIntersections), join(dr.CongestedIntersections); got != want {
			t.Errorf("Q=%d: congested intersections %q vs %q", pr.Q, got, want)
		}
		if got, want := join(pr.Disagreements), join(dr.Disagreements); got != want {
			t.Errorf("Q=%d: disagreements %q vs %q", pr.Q, got, want)
		}
		if got, want := join(pr.NoisyBuses), join(dr.NoisyBuses); got != want {
			t.Errorf("Q=%d: noisy buses %q vs %q", pr.Q, got, want)
		}
		if len(pr.CrowdRounds) != len(dr.CrowdRounds) {
			t.Errorf("Q=%d: crowd rounds %d vs %d", pr.Q, len(pr.CrowdRounds), len(dr.CrowdRounds))
		}
	}

	// The traffic modelling service is reachable from the topology.
	svc, ok := pipe.Topology.LookupService("trafficModel")
	if !ok {
		t.Fatal("trafficModel service not registered")
	}
	flowMap, ok := svc.(TrafficModelService)
	if !ok {
		t.Fatalf("trafficModel service has type %T", svc)
	}
	est, err := flowMap(MapConfig{Alpha: 2, Beta: 1, SensorNoise: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Values) == 0 {
		t.Error("traffic model service produced no estimates")
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + ","
	}
	return out
}
