package crowd

import (
	"math"
	"math/rand"
	"testing"
)

func TestRewardPolicies(t *testing.T) {
	p := ProportionalReward(10)
	if got := p(0.9); math.Abs(got-9) > 1e-12 {
		t.Errorf("ProportionalReward(0.9) = %v", got)
	}
	if got := p(-0.1); got != 0 {
		t.Errorf("negative posterior must pay 0, got %v", got)
	}
	th := ThresholdReward(5, 0.8)
	if th(0.85) != 5 || th(0.79) != 0 {
		t.Error("ThresholdReward boundary wrong")
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(nil); err == nil {
		t.Error("nil policy must error")
	}
	l, err := NewLedger(ProportionalReward(1))
	if err != nil {
		t.Fatal(err)
	}
	// Malformed verdict.
	if err := l.Credit(Task{ID: "t"}, Verdict{Labels: []string{"a"}, Posterior: []float64{0.5, 0.5}}); err == nil {
		t.Error("mismatched verdict must error")
	}
	// Answer outside the verdict's labels.
	bad := Task{ID: "t", Answers: []Answer{{"p", "zzz"}}}
	if err := l.Credit(bad, Verdict{Labels: []string{"a", "b"}, Posterior: []float64{0.5, 0.5}}); err == nil {
		t.Error("foreign answer must error")
	}
}

func TestLedgerCreditsByPosterior(t *testing.T) {
	est := NewEstimator(EstimatorOptions{})
	ledger, err := NewLedger(ProportionalReward(1))
	if err != nil {
		t.Fatal(err)
	}
	task := Task{
		ID:     "t1",
		Labels: []string{"yes", "no"},
		Answers: []Answer{
			{"majority1", "yes"}, {"majority2", "yes"}, {"outvoted", "no"},
		},
	}
	verdict, err := est.Process(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Credit(task, verdict); err != nil {
		t.Fatal(err)
	}
	if !(ledger.Earned("majority1") > ledger.Earned("outvoted")) {
		t.Errorf("majority must out-earn the outvoted: %v vs %v",
			ledger.Earned("majority1"), ledger.Earned("outvoted"))
	}
	if ledger.Tasks("majority1") != 1 || ledger.Tasks("outvoted") != 1 {
		t.Error("task counts wrong")
	}
	if ledger.Earned("stranger") != 0 || ledger.Tasks("stranger") != 0 {
		t.Error("unseen participants must have empty balances")
	}
}

// Over many tasks, reliable participants must earn more than
// unreliable ones — the paper's "quality may be a factor in the
// computation of the reward".
func TestRewardsTrackQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	good := NewSimulatedParticipant("good", 0.05, rng.Int63())
	mid := NewSimulatedParticipant("mid", 0.4, rng.Int63())
	bad := NewSimulatedParticipant("bad", 0.85, rng.Int63())
	est := NewEstimator(EstimatorOptions{})
	ledger, err := NewLedger(ProportionalReward(1))
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"congestion", "no congestion", "accident", "roadworks"}
	for q := 0; q < 300; q++ {
		truth := labels[rng.Intn(len(labels))]
		task := Task{ID: "t", Labels: labels, Answers: []Answer{
			good.Answer(labels, truth), mid.Answer(labels, truth), bad.Answer(labels, truth),
		}}
		verdict, err := est.Process(task)
		if err != nil {
			t.Fatal(err)
		}
		if err := ledger.Credit(task, verdict); err != nil {
			t.Fatal(err)
		}
	}
	balances := ledger.Balances()
	if len(balances) != 3 {
		t.Fatalf("balances = %v", balances)
	}
	if balances[0].Participant != "good" || balances[2].Participant != "bad" {
		t.Errorf("earning order wrong: %v", balances)
	}
	if !(ledger.Earned("good") > 1.5*ledger.Earned("bad")) {
		t.Errorf("reliable participant should earn much more: %v vs %v",
			ledger.Earned("good"), ledger.Earned("bad"))
	}
}
