package crowd

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/insight-dublin/insight/geo"
)

var fourLabels = []string{"congestion", "no congestion", "accident", "roadworks"}

// PaperParticipants are the ten simulated participants of Section 7.2.
var paperErrorProbs = []float64{0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9}

func TestTaskValidation(t *testing.T) {
	cases := []struct {
		name string
		task Task
	}{
		{"one label", Task{ID: "t", Labels: []string{"a"}}},
		{"duplicate labels", Task{ID: "t", Labels: []string{"a", "a"}}},
		{"prior length", Task{ID: "t", Labels: []string{"a", "b"}, Prior: []float64{1}}},
		{"negative prior", Task{ID: "t", Labels: []string{"a", "b"}, Prior: []float64{-1, 2}}},
		{"zero prior", Task{ID: "t", Labels: []string{"a", "b"}, Prior: []float64{0, 0}}},
		{"answer off label set", Task{ID: "t", Labels: []string{"a", "b"}, Answers: []Answer{{"p1", "c"}}}},
	}
	e := NewEstimator(EstimatorOptions{})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := e.Posterior(c.task); err == nil {
				t.Error("want validation error")
			}
			if _, err := e.Process(c.task); err == nil {
				t.Error("want validation error from Process too")
			}
		})
	}
}

// Hand-computed Bayes check: binary task, one participant with known
// error probability.
func TestPosteriorBayesRule(t *testing.T) {
	e := NewEstimator(EstimatorOptions{InitialErrorProb: 0.2})
	task := Task{
		ID:      "t1",
		Labels:  []string{"yes", "no"},
		Answers: []Answer{{Participant: "p1", Label: "yes"}},
	}
	v, err := e.Posterior(task)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform prior; P(yes|answer yes) = 0.8 / (0.8 + 0.2) = 0.8.
	if math.Abs(v.Posterior[0]-0.8) > 1e-12 {
		t.Errorf("P(yes) = %v, want 0.8", v.Posterior[0])
	}
	if v.Best != "yes" || math.Abs(v.Confidence-0.8) > 1e-12 {
		t.Errorf("Best = %q (%v)", v.Best, v.Confidence)
	}
}

func TestPosteriorUsesPrior(t *testing.T) {
	e := NewEstimator(EstimatorOptions{InitialErrorProb: 0.25})
	// A heavily skewed prior should dominate a single answer: the CE
	// component can set it from how many buses reported congestion
	// (Section 5.1).
	task := Task{
		ID:      "t1",
		Labels:  []string{"yes", "no"},
		Prior:   []float64{0.95, 0.05},
		Answers: []Answer{{Participant: "p1", Label: "no"}},
	}
	v, err := e.Posterior(task)
	if err != nil {
		t.Fatal(err)
	}
	// P(yes) ∝ 0.95·0.25, P(no) ∝ 0.05·0.75 → yes still wins.
	if v.Best != "yes" {
		t.Errorf("Best = %q, want prior to dominate", v.Best)
	}
}

func TestPosteriorMajority(t *testing.T) {
	e := NewEstimator(EstimatorOptions{InitialErrorProb: 0.25})
	task := Task{
		ID:     "t1",
		Labels: fourLabels,
		Answers: []Answer{
			{"p1", "congestion"},
			{"p2", "congestion"},
			{"p3", "accident"},
		},
	}
	v, err := e.Posterior(task)
	if err != nil {
		t.Fatal(err)
	}
	if v.Best != "congestion" {
		t.Errorf("Best = %q, want majority answer", v.Best)
	}
	var sum float64
	for _, p := range v.Posterior {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posterior sums to %v", sum)
	}
}

func TestProcessUpdatesEstimates(t *testing.T) {
	e := NewEstimator(EstimatorOptions{})
	if got := e.ErrorProb("new"); got != 0.25 {
		t.Errorf("initial estimate = %v, want paper's 0.25", got)
	}
	task := Task{
		ID:     "t1",
		Labels: []string{"yes", "no"},
		Answers: []Answer{
			{"good", "yes"}, {"good2", "yes"}, {"good3", "yes"},
			{"bad", "no"},
		},
	}
	if _, err := e.Process(task); err != nil {
		t.Fatal(err)
	}
	if e.Queries("good") != 1 || e.Queries("bad") != 1 {
		t.Error("query counts not updated")
	}
	if !(e.ErrorProb("bad") > e.ErrorProb("good")) {
		t.Errorf("outvoted participant must look worse: bad=%v good=%v",
			e.ErrorProb("bad"), e.ErrorProb("good"))
	}
	if got := len(e.Participants()); got != 4 {
		t.Errorf("Participants = %d, want 4", got)
	}
}

// The paper's estimation experiment (Figure 5): ten participants with
// known error probabilities, four possible answers, every participant
// answers every query. The estimates must converge to the true values
// and the quality ordering must be essentially correct after enough
// queries.
func TestOnlineEMConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	participants := make([]*SimulatedParticipant, len(paperErrorProbs))
	for i, p := range paperErrorProbs {
		participants[i] = NewSimulatedParticipant(participantID(i), p, rng.Int63())
	}
	e := NewEstimator(EstimatorOptions{})

	peaked, total := 0, 0
	for q := 0; q < 1000; q++ {
		truth := fourLabels[rng.Intn(len(fourLabels))]
		task := Task{ID: "q", Labels: fourLabels}
		for _, sp := range participants {
			task.Answers = append(task.Answers, sp.Answer(fourLabels, truth))
		}
		v, err := e.Process(task)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if v.Peaked(0.99) {
			peaked++
		}
	}

	for i, want := range paperErrorProbs {
		got := e.ErrorProb(participantID(i))
		if math.Abs(got-want) > 0.08 {
			t.Errorf("participant %d: estimate %.3f, true %.3f", i+1, got, want)
		}
	}
	// Ordering check, allowing swaps between near-ties as the paper
	// observes (participants 2-3 and 6-7 have close probabilities).
	for i := 0; i+1 < len(paperErrorProbs); i++ {
		gap := paperErrorProbs[i+1] - paperErrorProbs[i]
		if gap < 0.04 {
			continue // near-tie: ordering not required
		}
		if e.ErrorProb(participantID(i)) >= e.ErrorProb(participantID(i+1)) {
			t.Errorf("ordering violated between %d (%.3f) and %d (%.3f)",
				i+1, e.ErrorProb(participantID(i)), i+2, e.ErrorProb(participantID(i+1)))
		}
	}
	// The paper reports 94% of posteriors peaked above 0.99 — with 10
	// participants and 4 labels the fused answer is almost always
	// certain.
	if frac := float64(peaked) / float64(total); frac < 0.85 {
		t.Errorf("peaked fraction = %.2f, want ≥ 0.85 (paper: 0.94)", frac)
	}
}

func participantID(i int) string { return string(rune('A' + i)) }

func TestEstimatesStayClamped(t *testing.T) {
	e := NewEstimator(EstimatorOptions{})
	// A participant who is always right must not reach exactly 0.
	for q := 0; q < 200; q++ {
		task := Task{
			ID:     "t",
			Labels: []string{"a", "b"},
			Answers: []Answer{
				{"saint", "a"}, {"w1", "a"}, {"w2", "a"},
			},
		}
		if _, err := e.Process(task); err != nil {
			t.Fatal(err)
		}
	}
	p := e.ErrorProb("saint")
	if p <= 0 || p >= 1 {
		t.Errorf("estimate out of open interval: %v", p)
	}
	if p > 0.05 {
		t.Errorf("always-right participant estimate = %v, want near 0", p)
	}
}

func TestGammaSchedules(t *testing.T) {
	if g := DefaultGamma(1); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("DefaultGamma(1) = %v, want 0.5", g)
	}
	if g := DefaultGamma(99); math.Abs(g-0.01) > 1e-12 {
		t.Errorf("DefaultGamma(99) = %v, want 0.01", g)
	}
	if g := PaperGamma(1); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("PaperGamma(1) = %v, want 0.5", g)
	}
	if g := PaperGamma(3); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("PaperGamma(3) = %v, want 0.75", g)
	}
}

func TestBatchEMMatchesOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trueProbs := []float64{0.1, 0.3, 0.6}
	sims := make([]*SimulatedParticipant, len(trueProbs))
	for i, p := range trueProbs {
		sims[i] = NewSimulatedParticipant(participantID(i), p, rng.Int63())
	}
	var tasks []Task
	for q := 0; q < 400; q++ {
		truth := fourLabels[rng.Intn(len(fourLabels))]
		task := Task{ID: "t", Labels: fourLabels}
		for _, sp := range sims {
			task.Answers = append(task.Answers, sp.Answer(fourLabels, truth))
		}
		tasks = append(tasks, task)
	}
	est, iters, err := BatchEM(tasks, EstimatorOptions{}, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Error("batch EM did no iterations")
	}
	for i, want := range trueProbs {
		got := est[participantID(i)]
		if math.Abs(got-want) > 0.1 {
			t.Errorf("batch EM participant %d: %.3f, true %.3f", i, got, want)
		}
	}
}

func TestBatchEMValidation(t *testing.T) {
	if _, _, err := BatchEM([]Task{{ID: "t", Labels: []string{"a"}}}, EstimatorOptions{}, 10, 1e-6); err == nil {
		t.Error("invalid task must error")
	}
}

func TestSimulatedParticipantDistribution(t *testing.T) {
	sp := NewSimulatedParticipant("p", 0.4, 99)
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if a := sp.Answer(fourLabels, "congestion"); a.Label != "congestion" {
			wrong++
		}
	}
	if f := float64(wrong) / n; math.Abs(f-0.4) > 0.02 {
		t.Errorf("wrong fraction = %.3f, want ≈ 0.4", f)
	}
	// Two-label degenerate case: wrong answers must be the other label.
	if a := NewSimulatedParticipant("p", 1.0, 1).Answer([]string{"a", "b"}, "a"); a.Label != "b" {
		t.Errorf("always-wrong answer = %q, want b", a.Label)
	}
	// Single label: nothing wrong to pick.
	if a := NewSimulatedParticipant("p", 1.0, 1).Answer([]string{"a"}, "a"); a.Label != "a" {
		t.Errorf("single-label answer = %q", a.Label)
	}
}

func TestRoster(t *testing.T) {
	r := NewRoster()
	if err := r.Register(Participant{}); err == nil {
		t.Error("empty ID must error")
	}
	for _, p := range []Participant{
		{ID: "a", Pos: geo.At(53.35, -6.26), Online: true},
		{ID: "b", Pos: geo.At(53.36, -6.27), Online: false},
		{ID: "c", Pos: geo.At(53.30, -6.20), Online: true},
	} {
		if err := r.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	on := r.Online()
	if len(on) != 2 || on[0].ID != "a" || on[1].ID != "c" {
		t.Errorf("Online = %v", on)
	}
	if err := r.SetOnline("b", true); err != nil {
		t.Fatal(err)
	}
	if len(r.Online()) != 3 {
		t.Error("b should now be online")
	}
	if err := r.SetLocation("a", geo.At(53.40, -6.30)); err != nil {
		t.Fatal(err)
	}
	if p, _ := r.Get("a"); p.Pos.Lat != 53.40 {
		t.Error("SetLocation lost")
	}
	if err := r.SetLocation("nope", geo.At(0, 0)); err == nil {
		t.Error("unknown participant must error")
	}
	if err := r.SetOnline("nope", true); err == nil {
		t.Error("unknown participant must error")
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
}

func TestSelectNearest(t *testing.T) {
	task := geo.At(53.3500, -6.2600)
	candidates := []Participant{
		{ID: "far", Pos: geo.At(53.40, -6.10)},
		{ID: "near1", Pos: geo.At(53.3502, -6.2600)},
		{ID: "near2", Pos: geo.At(53.3510, -6.2600)},
		{ID: "mid", Pos: geo.At(53.3600, -6.2600)},
	}
	got := SelectNearest(2, 0)(candidates, task)
	if len(got) != 2 || got[0].ID != "near1" || got[1].ID != "near2" {
		t.Errorf("SelectNearest(2) = %v", got)
	}
	// Distance bound excludes everyone beyond 500 m.
	got = SelectNearest(0, 500)(candidates, task)
	if len(got) != 2 {
		t.Errorf("SelectNearest(bound 500m) = %v", got)
	}
	// SelectAll passes everything through.
	if got := SelectAll(candidates, task); len(got) != 4 {
		t.Errorf("SelectAll = %v", got)
	}
}

func TestSelectMostReliable(t *testing.T) {
	e := NewEstimator(EstimatorOptions{})
	// Make "good" trusted and "bad" distrusted via processed tasks.
	for i := 0; i < 50; i++ {
		_, err := e.Process(Task{
			ID:     "t",
			Labels: []string{"a", "b"},
			Answers: []Answer{
				{"good", "a"}, {"w1", "a"}, {"bad", "b"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	candidates := []Participant{{ID: "bad"}, {ID: "good"}, {ID: "unseen"}}
	got := SelectMostReliable(2, e)(candidates, geo.Point{})
	if len(got) != 2 || got[0].ID != "good" {
		t.Errorf("SelectMostReliable = %v", got)
	}
	for _, p := range got {
		if p.ID == "bad" {
			t.Error("least reliable participant must be dropped")
		}
	}
}

func TestDeadlineFeasible(t *testing.T) {
	comm := func(p Participant) time.Duration {
		if p.ID == "slowlink" {
			return 900 * time.Millisecond
		}
		return 150 * time.Millisecond
	}
	candidates := []Participant{
		{ID: "ok", ComputeTime: 100 * time.Millisecond},
		{ID: "slowlink", ComputeTime: 100 * time.Millisecond},
		{ID: "slowbrain", ComputeTime: 2 * time.Second},
	}
	got := DeadlineFeasible(SelectAll, comm, 500*time.Millisecond)(candidates, geo.Point{})
	if len(got) != 1 || got[0].ID != "ok" {
		t.Errorf("DeadlineFeasible = %v", got)
	}
}

func TestConstantGamma(t *testing.T) {
	g := ConstantGamma(0.1)
	if g(1) != 0.1 || g(1000) != 0.1 {
		t.Error("ConstantGamma must be constant")
	}
}

func TestDriftingParticipant(t *testing.T) {
	d := NewDriftingParticipant("d", 0.0, 1.0, 3, 1)
	if d.ErrorProb() != 0 {
		t.Error("before the switch the participant is perfect")
	}
	for i := 0; i < 3; i++ {
		if a := d.Answer(fourLabels, "congestion"); a.Label != "congestion" {
			t.Errorf("answer %d should be truthful", i)
		}
	}
	if d.ErrorProb() != 1 {
		t.Error("after the switch the participant always errs")
	}
	if a := d.Answer(fourLabels, "congestion"); a.Label == "congestion" {
		t.Error("post-switch answer should be wrong")
	}
	if a := d.Answer([]string{"only"}, "only"); a.Label != "only" {
		t.Error("single-label fallback")
	}
}

// A constant-step schedule tracks reliability drift; the running
// average cannot. This is the sequential-estimation scenario the paper
// cites as motivation (time-varying annotator accuracy).
func TestOnlineEMTracksDrift(t *testing.T) {
	run := func(gamma GammaFunc) float64 {
		rng := rand.New(rand.NewSource(31))
		// Four reliable anchors so the posterior stays accurate, plus
		// one participant that degrades halfway through.
		anchors := make([]*SimulatedParticipant, 4)
		for i := range anchors {
			anchors[i] = NewSimulatedParticipant(participantID(i), 0.1, rng.Int63())
		}
		drifter := NewDriftingParticipant("drifter", 0.05, 0.85, 500, rng.Int63())
		e := NewEstimator(EstimatorOptions{Gamma: gamma})
		for q := 0; q < 1000; q++ {
			truth := fourLabels[rng.Intn(len(fourLabels))]
			task := Task{ID: "t", Labels: fourLabels}
			for _, a := range anchors {
				task.Answers = append(task.Answers, a.Answer(fourLabels, truth))
			}
			task.Answers = append(task.Answers, drifter.Answer(fourLabels, truth))
			if _, err := e.Process(task); err != nil {
				t.Fatal(err)
			}
		}
		return e.ErrorProb("drifter")
	}

	tracking := run(ConstantGamma(0.05))
	averaging := run(DefaultGamma)

	// The true post-switch error probability is 0.85. The tracking
	// schedule must be close; the running average is stuck near the
	// lifetime mean (~0.45).
	if math.Abs(tracking-0.85) > 0.12 {
		t.Errorf("constant-gamma estimate = %.3f, want ≈ 0.85", tracking)
	}
	if averaging > 0.7 {
		t.Errorf("running-average estimate = %.3f — should lag well below the true 0.85", averaging)
	}
	if !(tracking > averaging) {
		t.Errorf("tracking (%v) must exceed averaging (%v) after upward drift", tracking, averaging)
	}
}
