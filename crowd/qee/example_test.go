package qee_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/geo"
)

// One crowdsourcing query through the MapReduce execution engine:
// connect devices, execute the map phase, read the reduce counts.
func Example() {
	engine := qee.NewEngine(qee.Options{Seed: 1})
	answers := map[string]string{"anna": "yes", "brian": "yes", "ciara": "no"}
	for id, label := range answers {
		label := label
		if err := engine.Connect(qee.Device{
			Participant: crowd.Participant{ID: id},
			Network:     qee.ThreeG,
			Respond: func(qee.Query) (string, time.Duration) {
				return label, 2 * time.Second
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	exec, err := engine.Execute(context.Background(), qee.Query{
		ID:       "q1",
		Question: "Is there a traffic congestion at O'Connell Bridge?",
		Answers:  []string{"yes", "no"},
		Pos:      geo.At(53.3472, -6.2592),
	}, []crowd.Participant{{ID: "anna"}, {ID: "brian"}, {ID: "ciara"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduce counts: yes=%d no=%d\n", exec.Counts["yes"], exec.Counts["no"])
	// Output:
	// reduce counts: yes=2 no=1
}

// A smartphone-sensor MapReduce round (Section 5.3): devices sample
// their current speed; the reduce phase aggregates.
func ExampleEngine_ExecuteSensor() {
	engine := qee.NewEngine(qee.Options{Seed: 1})
	speeds := map[string]float64{"taxi1": 14, "taxi2": 22, "taxi3": 18}
	for id, v := range speeds {
		v := v
		if err := engine.ConnectSensor(qee.Device{
			Participant: crowd.Participant{ID: id},
			Network:     qee.WiFi,
		}, func(qee.SensorQuery) (float64, time.Duration) { return v, 0 }); err != nil {
			log.Fatal(err)
		}
	}
	agg, err := engine.ExecuteSensor(context.Background(), qee.SensorQuery{
		ID:     "speed@quays",
		Metric: "speed-kmh",
	}, []crowd.Participant{{ID: "taxi1"}, {ID: "taxi2"}, {ID: "taxi3"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d samples, mean %.0f km/h (min %.0f, max %.0f)\n",
		agg.Count, agg.Mean, agg.Min, agg.Max)
	// Output:
	// 3 samples, mean 18 km/h (min 14, max 22)
}
