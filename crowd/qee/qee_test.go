package qee

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/geo"
)

func fixedResponder(label string) func(Query) (string, time.Duration) {
	return func(Query) (string, time.Duration) { return label, 0 }
}

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Options{Seed: 1})
	devices := []Device{
		{Participant: crowd.Participant{ID: "w1"}, Network: WiFi, Respond: fixedResponder("yes")},
		{Participant: crowd.Participant{ID: "w2"}, Network: ThreeG, Respond: fixedResponder("yes")},
		{Participant: crowd.Participant{ID: "w3"}, Network: TwoG, Respond: fixedResponder("no")},
	}
	for _, d := range devices {
		if err := e.Connect(d); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func selected(ids ...string) []crowd.Participant {
	out := make([]crowd.Participant, len(ids))
	for i, id := range ids {
		out[i] = crowd.Participant{ID: id}
	}
	return out
}

var testQuery = Query{
	ID:       "q1",
	Question: "Is there a traffic congestion at O'Connell Bridge?",
	Answers:  []string{"yes", "no"},
	Pos:      geo.At(53.3472, -6.2592),
}

func TestConnectValidation(t *testing.T) {
	e := NewEngine(Options{})
	if err := e.Connect(Device{}); err == nil {
		t.Error("empty participant ID must error")
	}
	if err := e.Connect(Device{Participant: crowd.Participant{ID: "x"}}); err == nil {
		t.Error("nil Respond must error")
	}
}

func TestDevicesAndDisconnect(t *testing.T) {
	e := testEngine(t)
	if got := e.Devices(); len(got) != 3 || got[0] != "w1" {
		t.Errorf("Devices = %v", got)
	}
	e.Disconnect("w2")
	if got := e.Devices(); len(got) != 2 {
		t.Errorf("after Disconnect: %v", got)
	}
}

func TestExecuteMapReduce(t *testing.T) {
	e := testEngine(t)
	exec, err := e.Execute(context.Background(), testQuery, selected("w1", "w2", "w3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Answers) != 3 {
		t.Fatalf("answers = %v", exec.Answers)
	}
	if exec.Counts["yes"] != 2 || exec.Counts["no"] != 1 {
		t.Errorf("reduce counts = %v", exec.Counts)
	}
	if len(exec.Timings) != 3 {
		t.Fatalf("timings = %v", exec.Timings)
	}
	for _, tm := range exec.Timings {
		if tm.Trigger < 38*time.Millisecond || tm.Trigger > 55*time.Millisecond {
			t.Errorf("trigger %v out of the paper's 38-55 ms band", tm.Trigger)
		}
		if tm.Push <= 0 || tm.Comm <= 0 {
			t.Errorf("non-positive step latency: %+v", tm)
		}
		if tm.Missed {
			t.Errorf("no deadline set, nothing should be missed: %+v", tm)
		}
	}
}

func TestExecuteSkipsDisconnected(t *testing.T) {
	e := testEngine(t)
	exec, err := e.Execute(context.Background(), testQuery, selected("w1", "ghost"))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Answers) != 1 || exec.Answers[0].Participant != "w1" {
		t.Errorf("answers = %v", exec.Answers)
	}
}

func TestExecuteNoWorkers(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Execute(context.Background(), testQuery, selected("ghost")); err == nil {
		t.Error("no connected workers must error")
	}
	if _, err := e.Execute(context.Background(), Query{ID: "bad", Answers: []string{"only"}}, selected("w1")); err == nil {
		t.Error("single-answer query must error")
	}
}

func TestExecuteDeadline(t *testing.T) {
	e := NewEngine(Options{Seed: 3})
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "slow"},
		Network:     TwoG,
		Respond: func(Query) (string, time.Duration) {
			return "yes", 10 * time.Second // human takes far too long
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "fast"},
		Network:     WiFi,
		Respond:     fixedResponder("yes"),
	}); err != nil {
		t.Fatal(err)
	}
	q := testQuery
	q.Deadline = 2 * time.Second
	exec, err := e.Execute(context.Background(), q, selected("slow", "fast"))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Answers) != 1 || exec.Answers[0].Participant != "fast" {
		t.Errorf("in-deadline answers = %v", exec.Answers)
	}
	missed := 0
	for _, tm := range exec.Timings {
		if tm.Missed {
			missed++
			if tm.Participant != "slow" {
				t.Errorf("wrong worker missed: %+v", tm)
			}
		}
	}
	if missed != 1 {
		t.Errorf("missed = %d, want 1", missed)
	}
	if exec.Counts["yes"] != 1 {
		t.Errorf("reduce must exclude missed answers: %v", exec.Counts)
	}
}

func TestLatencyProfileShape(t *testing.T) {
	// Averages over many executions must reproduce the Figure 6
	// decomposition: 2G slowest on push and comm, trigger flat across
	// networks, end-to-end under a second even on 2G.
	e := testEngine(t)
	var execs []*Execution
	for i := 0; i < 200; i++ {
		exec, err := e.Execute(context.Background(), testQuery, selected("w1", "w2", "w3"))
		if err != nil {
			t.Fatal(err)
		}
		execs = append(execs, exec)
	}
	avgs := AverageByNetwork(execs)
	if len(avgs) != 3 {
		t.Fatalf("AverageByNetwork = %v", avgs)
	}
	byNet := make(map[Network]StepAverages)
	for _, a := range avgs {
		byNet[a.Network] = a
	}
	within := func(got, want time.Duration, tolFrac float64) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= float64(want)*tolFrac
	}
	if !within(byNet[TwoG].Push, 467*time.Millisecond, 0.10) {
		t.Errorf("2G push avg = %v, want ≈ 467 ms", byNet[TwoG].Push)
	}
	if !within(byNet[ThreeG].Push, 169*time.Millisecond, 0.10) {
		t.Errorf("3G push avg = %v, want ≈ 169 ms", byNet[ThreeG].Push)
	}
	if !within(byNet[WiFi].Comm, 182*time.Millisecond, 0.10) {
		t.Errorf("WiFi comm avg = %v, want ≈ 182 ms", byNet[WiFi].Comm)
	}
	if byNet[TwoG].Push <= byNet[ThreeG].Push || byNet[TwoG].Comm <= byNet[WiFi].Comm {
		t.Error("2G must be the slowest network")
	}
	// Trigger time is network-independent: all within the 38-55 band.
	for n, a := range byNet {
		if a.Trigger < 38*time.Millisecond || a.Trigger > 55*time.Millisecond {
			t.Errorf("%v trigger avg = %v outside band", n, a.Trigger)
		}
		endToEnd := a.Trigger + a.Push + a.Comm
		if endToEnd >= time.Second {
			t.Errorf("%v end-to-end = %v, paper promises < 1 s", n, endToEnd)
		}
	}
}

func TestEstimateComm(t *testing.T) {
	e := testEngine(t)
	d2g, ok := e.EstimateComm("w3")
	if !ok {
		t.Fatal("w3 should be connected")
	}
	dwifi, _ := e.EstimateComm("w1")
	if d2g <= dwifi {
		t.Errorf("2G estimate (%v) must exceed WiFi (%v)", d2g, dwifi)
	}
	if _, ok := e.EstimateComm("ghost"); ok {
		t.Error("unknown participant must report !ok")
	}
}

func TestExecutionToTask(t *testing.T) {
	e := testEngine(t)
	exec, err := e.Execute(context.Background(), testQuery, selected("w1", "w3"))
	if err != nil {
		t.Fatal(err)
	}
	task := exec.Task(nil)
	if task.ID != "q1" || len(task.Labels) != 2 || len(task.Answers) != 2 {
		t.Errorf("Task = %+v", task)
	}
	// Feed it to the estimator end-to-end.
	est := crowd.NewEstimator(crowd.EstimatorOptions{})
	v, err := est.Process(task)
	if err != nil {
		t.Fatal(err)
	}
	if v.Best != "yes" && v.Best != "no" {
		t.Errorf("verdict = %+v", v)
	}
}

func TestNetworkString(t *testing.T) {
	if TwoG.String() != "2G" || ThreeG.String() != "3G" || WiFi.String() != "WiFi" {
		t.Error("network names wrong")
	}
	if Network(9).String() != "network(9)" {
		t.Error("unknown network name wrong")
	}
}

func TestRealTimeExecution(t *testing.T) {
	e := NewEngine(Options{Seed: 5, RealTime: true})
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "w"},
		Network:     WiFi,
		Respond:     fixedResponder("yes"),
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	exec, err := e.Execute(context.Background(), testQuery, selected("w"))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(exec.Answers) != 1 {
		t.Fatalf("answers = %v", exec.Answers)
	}
	// WiFi trigger+push+comm ≈ 400 ms; require at least half that to
	// show the engine really slept.
	if elapsed < 200*time.Millisecond {
		t.Errorf("real-time execution returned too fast: %v", elapsed)
	}
}

func TestRealTimeCancellation(t *testing.T) {
	e := NewEngine(Options{Seed: 5, RealTime: true})
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "w"},
		Network:     TwoG,
		Respond: func(Query) (string, time.Duration) {
			return "yes", 5 * time.Second
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := e.Execute(ctx, testQuery, selected("w")); err == nil {
		t.Error("cancelled execution must report the context error")
	}
}

func TestConnectSensorValidation(t *testing.T) {
	e := NewEngine(Options{})
	if err := e.ConnectSensor(Device{}, nil); err == nil {
		t.Error("empty ID must error")
	}
	if err := e.ConnectSensor(Device{Participant: crowd.Participant{ID: "x"}}, nil); err == nil {
		t.Error("nil reader must error")
	}
}

func TestExecuteSensorAggregates(t *testing.T) {
	e := NewEngine(Options{Seed: 9})
	speeds := map[string]float64{"w1": 12, "w2": 30, "w3": 18}
	for id, v := range speeds {
		v := v
		err := e.ConnectSensor(Device{
			Participant: crowd.Participant{ID: id},
			Network:     WiFi,
		}, func(SensorQuery) (float64, time.Duration) { return v, 0 })
		if err != nil {
			t.Fatal(err)
		}
	}
	q := SensorQuery{ID: "speed@bridge", Metric: "speed-kmh", Pos: geo.At(53.34, -6.26)}
	agg, err := e.ExecuteSensor(context.Background(), q, selected("w1", "w2", "w3"))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 3 {
		t.Fatalf("Count = %d", agg.Count)
	}
	if agg.Mean != 20 || agg.Min != 12 || agg.Max != 30 {
		t.Errorf("aggregate = %+v", agg)
	}
	if agg.Readings["w2"] != 30 {
		t.Errorf("Readings = %v", agg.Readings)
	}
	if len(agg.Timings) != 3 {
		t.Errorf("Timings = %v", agg.Timings)
	}
}

func TestExecuteSensorDeadline(t *testing.T) {
	e := NewEngine(Options{Seed: 9})
	if err := e.ConnectSensor(Device{
		Participant: crowd.Participant{ID: "slow"}, Network: TwoG,
	}, func(SensorQuery) (float64, time.Duration) { return 99, 10 * time.Second }); err != nil {
		t.Fatal(err)
	}
	if err := e.ConnectSensor(Device{
		Participant: crowd.Participant{ID: "fast"}, Network: WiFi,
	}, func(SensorQuery) (float64, time.Duration) { return 10, 0 }); err != nil {
		t.Fatal(err)
	}
	agg, err := e.ExecuteSensor(context.Background(), SensorQuery{
		ID: "q", Metric: "speed", Deadline: 2 * time.Second,
	}, selected("slow", "fast"))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 1 || agg.Mean != 10 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestExecuteSensorErrors(t *testing.T) {
	e := NewEngine(Options{})
	if _, err := e.ExecuteSensor(context.Background(), SensorQuery{ID: "q", Metric: "m"}, selected("ghost")); err == nil {
		t.Error("no sensor workers must error")
	}
	if err := e.ConnectSensor(Device{
		Participant: crowd.Participant{ID: "w"}, Network: WiFi,
	}, func(SensorQuery) (float64, time.Duration) { return 1, 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteSensor(context.Background(), SensorQuery{ID: "q"}, selected("w")); err == nil {
		t.Error("metric-less query must error")
	}
}

func TestSensorCapableDeviceAlsoAnswersQuestions(t *testing.T) {
	e := NewEngine(Options{Seed: 2})
	if err := e.ConnectSensor(Device{
		Participant: crowd.Participant{ID: "dual"},
		Network:     ThreeG,
		Respond:     fixedResponder("yes"),
	}, func(SensorQuery) (float64, time.Duration) { return 3, 0 }); err != nil {
		t.Fatal(err)
	}
	exec, err := e.Execute(context.Background(), testQuery, selected("dual"))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Answers) != 1 {
		t.Errorf("dual device must answer questions too: %v", exec.Answers)
	}
}

// TestExecuteDeadWorkerCannotHangRound: a device whose Respond blocks
// forever must not stall Execute. With a ResponseTimeout set, the
// round gives up on the dead worker after its bounded retries, marks
// it Failed, and reduces the healthy workers' answers as usual.
func TestExecuteDeadWorkerCannotHangRound(t *testing.T) {
	e := NewEngine(Options{
		Seed:            3,
		ResponseTimeout: 20 * time.Millisecond,
		RespondRetries:  2,
	})
	hang := make(chan struct{}) // never closed: a hung device
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "dead"},
		Network:     TwoG,
		Respond: func(Query) (string, time.Duration) {
			<-hang
			return "yes", 0
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w1", "w2"} {
		if err := e.Connect(Device{
			Participant: crowd.Participant{ID: id},
			Network:     WiFi,
			Respond:     fixedResponder("yes"),
		}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var exec *Execution
	var err error
	go func() {
		defer close(done)
		exec, err = e.Execute(context.Background(), testQuery, selected("dead", "w1", "w2"))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Execute hung behind the dead worker")
	}
	if err != nil {
		t.Fatal(err)
	}

	if len(exec.Timings) != 3 {
		t.Fatalf("Timings = %d entries, want 3 (the dead worker is reported, not dropped)", len(exec.Timings))
	}
	var deadTiming *StepTiming
	for i := range exec.Timings {
		if exec.Timings[i].Participant == "dead" {
			deadTiming = &exec.Timings[i]
		} else if exec.Timings[i].Failed {
			t.Errorf("healthy worker %s marked Failed", exec.Timings[i].Participant)
		}
	}
	if deadTiming == nil {
		t.Fatal("dead worker missing from Timings")
	}
	if !deadTiming.Failed {
		t.Error("dead worker not marked Failed")
	}
	if deadTiming.Attempts != 3 {
		t.Errorf("dead worker Attempts = %d, want 3 (1 + 2 retries)", deadTiming.Attempts)
	}
	// The reduce phase excludes the failure and keeps the answers.
	if len(exec.Answers) != 2 || exec.Counts["yes"] != 2 {
		t.Errorf("Answers = %v, Counts = %v: want the 2 healthy answers reduced", exec.Answers, exec.Counts)
	}
}

// TestRespondRetryRecovers: a device that times out once and then
// answers is retried rather than declared dead.
func TestRespondRetryRecovers(t *testing.T) {
	e := NewEngine(Options{
		Seed:            3,
		ResponseTimeout: 50 * time.Millisecond,
		RespondRetries:  3,
	})
	var mu sync.Mutex
	calls := 0
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "flaky"},
		Network:     ThreeG,
		Respond: func(Query) (string, time.Duration) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				time.Sleep(2 * time.Second) // blows the first attempt's timeout
			}
			return "no", 0
		},
	}); err != nil {
		t.Fatal(err)
	}
	exec, err := e.Execute(context.Background(), testQuery, selected("flaky"))
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Timings) != 1 {
		t.Fatalf("Timings = %d entries, want 1", len(exec.Timings))
	}
	ti := exec.Timings[0]
	if ti.Failed {
		t.Error("recovered worker marked Failed")
	}
	if ti.Attempts < 2 {
		t.Errorf("Attempts = %d, want at least 2 (first timed out)", ti.Attempts)
	}
	if exec.Counts["no"] != 1 {
		t.Errorf("Counts = %v, want the retried answer reduced", exec.Counts)
	}
}

// TestRespondContextCancellation: cancelling the round releases a
// worker parked on a dead device without waiting out the retries.
func TestRespondContextCancellation(t *testing.T) {
	e := NewEngine(Options{
		Seed:            3,
		ResponseTimeout: 10 * time.Second, // longer than the test allows
	})
	hang := make(chan struct{})
	if err := e.Connect(Device{
		Participant: crowd.Participant{ID: "dead"},
		Network:     TwoG,
		Respond: func(Query) (string, time.Duration) {
			<-hang
			return "yes", 0
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Execute(ctx, testQuery, selected("dead"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Execute = nil error after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute not released by cancellation")
	}
	close(hang)
}
