// Package qee implements the crowdsourcing query execution engine of
// Section 5.3: it communicates queries to participants' mobile devices
// and aggregates their answers with a MapReduce-style decomposition —
// each selected worker processes a map task (answer one question) and
// the intermediate results are merged by a reduce step.
//
// The real deployment pushes tasks through Google Cloud Messaging to
// Android phones on 2G/3G/WiFi links. Offline, this package simulates
// the communication fabric with latency profiles calibrated to the
// measurements of the paper's Figure 6 (trigger 38–55 ms regardless of
// network; push notification 467/169/184 ms and task communication
// 423/171/182 ms on 2G/3G/WiFi). Executions are timed on a virtual
// clock by default, so regenerating the figure takes microseconds; set
// Options.RealTime to actually sleep the sampled latencies.
package qee

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/geo"
)

// Network is the connection type of a participant's device.
type Network int

// Connection types measured in the paper.
const (
	TwoG Network = iota
	ThreeG
	WiFi
)

// String returns the conventional network name.
func (n Network) String() string {
	switch n {
	case TwoG:
		return "2G"
	case ThreeG:
		return "3G"
	case WiFi:
		return "WiFi"
	}
	return fmt.Sprintf("network(%d)", int(n))
}

// Networks lists all supported connection types.
var Networks = []Network{TwoG, ThreeG, WiFi}

// LatencyProfile holds the mean latencies of each step of a query
// execution per network type, plus a relative jitter applied when
// sampling.
type LatencyProfile struct {
	// TriggerMin/TriggerMax bound the task-trigger latency (worker
	// selection + task assignment inside the engine; no device
	// communication, hence network-independent).
	TriggerMin, TriggerMax time.Duration
	// Push is the mean push-notification latency per network: the
	// engine sends the notification to the cloud messaging server,
	// which forwards it to the device.
	Push map[Network]time.Duration
	// Comm is the mean task-communication latency per network: the
	// device retrieves the task and sends the answer back.
	Comm map[Network]time.Duration
	// Jitter is the relative standard deviation of the sampled push
	// and communication latencies (default 0.15).
	Jitter float64
}

// PaperProfile is calibrated to the means reported in Figure 6.
func PaperProfile() LatencyProfile {
	return LatencyProfile{
		TriggerMin: 38 * time.Millisecond,
		TriggerMax: 55 * time.Millisecond,
		Push: map[Network]time.Duration{
			TwoG:   467 * time.Millisecond,
			ThreeG: 169 * time.Millisecond,
			WiFi:   184 * time.Millisecond,
		},
		Comm: map[Network]time.Duration{
			TwoG:   423 * time.Millisecond,
			ThreeG: 171 * time.Millisecond,
			WiFi:   182 * time.Millisecond,
		},
		Jitter: 0.15,
	}
}

// Query is a crowdsourcing question in the paper's form:
// query_q = {Question_q, [answer_1, ..., answer_n]}.
type Query struct {
	ID       string
	Question string
	Answers  []string
	// Pos is the disagreement location the query is about.
	Pos geo.Point
	// Deadline is the real-time response requirement deadline_q;
	// zero means no deadline.
	Deadline time.Duration
}

// Device is a participant's simulated mobile client: its network type
// and its answering behaviour.
type Device struct {
	Participant crowd.Participant
	Network     Network
	// Respond produces the participant's answer to a query and the
	// human think time (opening the task and choosing an answer).
	// The paper excludes think time from its latency figure; the
	// engine reports it separately.
	Respond func(q Query) (label string, think time.Duration)
}

// StepTiming is the latency decomposition of one worker's map task,
// matching Figure 6's three measured steps.
type StepTiming struct {
	Participant string
	Network     Network
	Trigger     time.Duration // select worker + assign task
	Push        time.Duration // push notification via the cloud messaging hop
	Comm        time.Duration // task retrieval + answer upload
	Think       time.Duration // human response time (not part of Figure 6)
	// Missed reports that the worker's answer arrived after the
	// query deadline and was excluded from the reduce phase.
	Missed bool
	// Failed reports that the worker produced no answer at all within
	// the engine's ResponseTimeout across all attempts (a dead or hung
	// device); it is excluded from the reduce phase.
	Failed bool
	// Attempts is the number of Respond attempts made (1 unless the
	// engine retried after timeouts).
	Attempts int
}

// Total returns the end-to-end latency of the worker's map task.
func (s StepTiming) Total() time.Duration { return s.Trigger + s.Push + s.Comm + s.Think }

// Execution is the outcome of one query: the answers collected by the
// map phase, the label counts produced by the reduce phase, and the
// per-worker timing decomposition.
type Execution struct {
	Query   Query
	Answers []crowd.Answer
	// Counts is the reduce output: answers per label.
	Counts map[string]int
	// Timings has one entry per queried worker, including those that
	// missed the deadline.
	Timings []StepTiming
}

// Task converts the execution into a crowd.Task for the EM estimator,
// using the given prior (nil = uniform).
func (e *Execution) Task(prior []float64) crowd.Task {
	return crowd.Task{
		ID:      e.Query.ID,
		Labels:  e.Query.Answers,
		Prior:   prior,
		Answers: e.Answers,
	}
}

// Options configures the engine.
type Options struct {
	// Profile is the latency model; zero value means PaperProfile.
	Profile LatencyProfile
	// Seed drives latency sampling.
	Seed int64
	// RealTime makes Execute actually sleep the sampled latencies
	// (for end-to-end demos); by default time is virtual.
	RealTime bool
	// ResponseTimeout bounds the wall-clock time one device's Respond
	// call may take before the engine gives up on it for this attempt.
	// 0 (the default) waits forever — a dead worker then hangs the
	// round. The abandoned Respond goroutine is orphaned, not killed;
	// its eventual answer is discarded.
	ResponseTimeout time.Duration
	// RespondRetries is the number of extra Respond attempts after a
	// timeout before the worker is marked Failed and excluded from the
	// reduce phase. Default 0 (one attempt only).
	RespondRetries int
}

// Engine executes crowdsourcing queries against registered devices.
// It is safe for concurrent use.
type Engine struct {
	mu      sync.Mutex
	devices map[string]Device
	sensors map[string]sensorDevice
	profile LatencyProfile
	rng     *rand.Rand
	real    bool
	timeout time.Duration
	retries int
}

// NewEngine builds a query execution engine.
func NewEngine(opts Options) *Engine {
	p := opts.Profile
	if p.Push == nil {
		p = PaperProfile()
	}
	if p.Jitter == 0 {
		p.Jitter = 0.15
	}
	return &Engine{
		devices: make(map[string]Device),
		profile: p,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		real:    opts.RealTime,
		timeout: opts.ResponseTimeout,
		retries: opts.RespondRetries,
	}
}

// Connect registers a device, the analogue of the participant
// connecting to the cloud messaging service and identifying as a map
// worker.
func (e *Engine) Connect(d Device) error {
	if d.Participant.ID == "" {
		return fmt.Errorf("qee: device with empty participant ID")
	}
	if d.Respond == nil {
		return fmt.Errorf("qee: device %q has no Respond function", d.Participant.ID)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.devices[d.Participant.ID] = d
	return nil
}

// Disconnect removes a device.
func (e *Engine) Disconnect(participantID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.devices, participantID)
}

// Devices returns the connected participant IDs, sorted.
func (e *Engine) Devices() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.devices))
	for id := range e.devices {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EstimateComm returns the expected communication time for a
// participant from the profile of their current network — the
// comm_iq estimate of the deadline admission test, which "can be
// estimated from the communication time of the tasks executed
// previously in the participant's current location".
func (e *Engine) EstimateComm(participantID string) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.devices[participantID]
	if !ok {
		return 0, false
	}
	return e.profile.Push[d.Network] + e.profile.Comm[d.Network], true
}

// sample draws a jittered latency around the mean.
func (e *Engine) sample(mean time.Duration) time.Duration {
	e.mu.Lock()
	f := 1 + e.rng.NormFloat64()*e.profile.Jitter
	e.mu.Unlock()
	if f < 0.2 {
		f = 0.2
	}
	return time.Duration(float64(mean) * f)
}

func (e *Engine) sampleTrigger() time.Duration {
	// profile is write-once at construction; the mutex below guards rng,
	// not the profile reads.
	lo, hi := e.profile.TriggerMin, e.profile.TriggerMax //lint:allow lockguard profile is immutable after New
	if hi <= lo {
		return lo
	}
	e.mu.Lock()
	d := lo + time.Duration(e.rng.Int63n(int64(hi-lo)))
	e.mu.Unlock()
	return d
}

// respond obtains one worker's answer, bounded by the engine's
// ResponseTimeout per attempt and retried up to RespondRetries times.
// It reports failed = true when every attempt timed out (or the
// context ended): a dead device cannot hang the round. An attempt's
// Respond goroutine that outlives its timeout is abandoned; a late
// answer is discarded.
func (e *Engine) respond(ctx context.Context, w Device, q Query) (label string, think time.Duration, failed bool, attempts int) {
	if e.timeout <= 0 {
		label, think = w.Respond(q)
		return label, think, false, 1
	}
	type answer struct {
		label string
		think time.Duration
	}
	maxAttempts := e.retries + 1
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		ch := make(chan answer, 1)
		go func() {
			l, th := w.Respond(q)
			ch <- answer{l, th}
		}()
		timer := time.NewTimer(e.timeout)
		select {
		case a := <-ch:
			timer.Stop()
			return a.label, a.think, false, attempt
		case <-ctx.Done():
			timer.Stop()
			return "", 0, true, attempt
		case <-timer.C:
		}
	}
	return "", 0, true, maxAttempts
}

// Execute runs the query against the selected participants: the map
// phase dispatches one task per worker (concurrently, as the paper
// uses MapReduce "to maximize parallelism"), and the reduce phase
// merges the in-deadline answers into label counts. Workers that are
// not connected are skipped; workers whose end-to-end time exceeds the
// deadline are marked Missed and excluded from the reduce output, and
// workers whose device never answers within the engine's
// ResponseTimeout (after its bounded retries) are marked Failed and
// likewise excluded — a dead participant cannot hang the round.
func (e *Engine) Execute(ctx context.Context, q Query, selected []crowd.Participant) (*Execution, error) {
	if len(q.Answers) < 2 {
		return nil, fmt.Errorf("qee: query %q needs at least two possible answers", q.ID)
	}
	var workers []Device
	e.mu.Lock()
	for _, p := range selected {
		if d, ok := e.devices[p.ID]; ok {
			workers = append(workers, d)
		}
	}
	e.mu.Unlock()
	if len(workers) == 0 {
		return nil, fmt.Errorf("qee: no connected workers for query %q", q.ID)
	}

	type mapResult struct {
		answer crowd.Answer
		timing StepTiming
	}
	results := make(chan mapResult, len(workers))
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w Device) {
			defer wg.Done()
			t := StepTiming{Participant: w.Participant.ID, Network: w.Network}
			t.Trigger = e.sampleTrigger()
			t.Push = e.sample(e.profile.Push[w.Network])
			label, think, failed, attempts := e.respond(ctx, w, q)
			t.Attempts = attempts
			if failed {
				t.Failed = true
				results <- mapResult{timing: t}
				return
			}
			t.Think = think
			t.Comm = e.sample(e.profile.Comm[w.Network])
			if e.real {
				select {
				case <-time.After(t.Total()):
				case <-ctx.Done():
					return
				}
			}
			if q.Deadline > 0 && t.Total() > q.Deadline {
				t.Missed = true
			}
			results <- mapResult{
				answer: crowd.Answer{Participant: w.Participant.ID, Label: label},
				timing: t,
			}
		}(w)
	}
	wg.Wait()
	close(results)

	exec := &Execution{Query: q, Counts: make(map[string]int)}
	for r := range results {
		exec.Timings = append(exec.Timings, r.timing)
		if r.timing.Missed || r.timing.Failed {
			continue
		}
		exec.Answers = append(exec.Answers, r.answer)
		exec.Counts[r.answer.Label]++ // reduce step
	}
	sort.Slice(exec.Timings, func(i, j int) bool {
		return exec.Timings[i].Participant < exec.Timings[j].Participant
	})
	sort.Slice(exec.Answers, func(i, j int) bool {
		return exec.Answers[i].Participant < exec.Answers[j].Participant
	})
	if ctx.Err() != nil {
		return exec, ctx.Err()
	}
	return exec, nil
}

// StepAverages aggregates timing decompositions per network, the
// aggregation behind Figure 6.
type StepAverages struct {
	Network Network
	Count   int
	Trigger time.Duration
	Push    time.Duration
	Comm    time.Duration
}

// AverageByNetwork averages the step timings of the executions per
// network type.
func AverageByNetwork(execs []*Execution) []StepAverages {
	sums := make(map[Network]*StepAverages)
	for _, ex := range execs {
		for _, t := range ex.Timings {
			s := sums[t.Network]
			if s == nil {
				s = &StepAverages{Network: t.Network}
				sums[t.Network] = s
			}
			s.Count++
			s.Trigger += t.Trigger
			s.Push += t.Push
			s.Comm += t.Comm
		}
	}
	var out []StepAverages
	for _, n := range Networks {
		if s, ok := sums[n]; ok {
			out = append(out, StepAverages{
				Network: n,
				Count:   s.Count,
				Trigger: s.Trigger / time.Duration(s.Count),
				Push:    s.Push / time.Duration(s.Count),
				Comm:    s.Comm / time.Duration(s.Count),
			})
		}
	}
	return out
}
