package qee

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/geo"
)

// Beyond multiple-choice questions, the paper notes the MapReduce
// decomposition pays off for richer tasks: "we could employ the
// sensors of the smartphones to extract data, such as their current
// speed or local humidity, as a Map task, and aggregate the
// intermediate data ... at the Reduce phase" (Section 5.3). SensorQuery
// implements that: each map worker samples a numeric reading from its
// device; the reduce phase aggregates the in-deadline readings.

// SensorQuery asks the selected participants' devices for a numeric
// reading (speed, humidity, noise level, ...).
type SensorQuery struct {
	ID string
	// Metric names what is sampled, e.g. "speed-kmh".
	Metric string
	// Pos is the location of interest.
	Pos geo.Point
	// Deadline bounds the collection; zero means none.
	Deadline time.Duration
}

// SensorReader extends a Device with a numeric sampling capability.
// Register it with ConnectSensor.
type SensorReader func(q SensorQuery) (value float64, think time.Duration)

// SensorAggregate is the reduce output of a sensor query.
type SensorAggregate struct {
	Query SensorQuery
	// Readings maps each in-deadline participant to their sample.
	Readings map[string]float64
	Count    int
	Mean     float64
	Min, Max float64
	// Timings covers every queried worker, like Execution.Timings.
	Timings []StepTiming
}

type sensorDevice struct {
	device Device
	read   SensorReader
}

// ConnectSensor registers a device capable of answering sensor
// queries. The device's Respond function may be nil if it only serves
// sensor tasks.
func (e *Engine) ConnectSensor(d Device, read SensorReader) error {
	if d.Participant.ID == "" {
		return fmt.Errorf("qee: device with empty participant ID")
	}
	if read == nil {
		return fmt.Errorf("qee: device %q has no sensor reader", d.Participant.ID)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sensors == nil {
		e.sensors = make(map[string]sensorDevice)
	}
	e.sensors[d.Participant.ID] = sensorDevice{device: d, read: read}
	// Sensor-capable devices are also plain devices when they can
	// answer questions.
	if d.Respond != nil {
		e.devices[d.Participant.ID] = d
	}
	return nil
}

// ExecuteSensor runs a sensor-sampling MapReduce round: one map task
// per selected participant (sample the metric), one reduce step
// (aggregate count/mean/min/max over the in-deadline samples).
func (e *Engine) ExecuteSensor(ctx context.Context, q SensorQuery, selected []crowd.Participant) (*SensorAggregate, error) {
	if q.Metric == "" {
		return nil, fmt.Errorf("qee: sensor query %q without metric", q.ID)
	}
	var workers []sensorDevice
	e.mu.Lock()
	for _, p := range selected {
		if d, ok := e.sensors[p.ID]; ok {
			workers = append(workers, d)
		}
	}
	e.mu.Unlock()
	if len(workers) == 0 {
		return nil, fmt.Errorf("qee: no sensor-capable workers for query %q", q.ID)
	}

	type mapResult struct {
		id     string
		value  float64
		timing StepTiming
	}
	results := make(chan mapResult, len(workers))
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w sensorDevice) {
			defer wg.Done()
			t := StepTiming{Participant: w.device.Participant.ID, Network: w.device.Network}
			t.Trigger = e.sampleTrigger()
			t.Push = e.sample(e.profile.Push[w.device.Network])
			value, think := w.read(q)
			t.Think = think
			t.Comm = e.sample(e.profile.Comm[w.device.Network])
			if e.real {
				select {
				case <-time.After(t.Total()):
				case <-ctx.Done():
					return
				}
			}
			if q.Deadline > 0 && t.Total() > q.Deadline {
				t.Missed = true
			}
			results <- mapResult{id: w.device.Participant.ID, value: value, timing: t}
		}(w)
	}
	wg.Wait()
	close(results)

	agg := &SensorAggregate{
		Query:    q,
		Readings: make(map[string]float64),
		Min:      math.Inf(1),
		Max:      math.Inf(-1),
	}
	var sum float64
	for r := range results {
		agg.Timings = append(agg.Timings, r.timing)
		if r.timing.Missed {
			continue
		}
		agg.Readings[r.id] = r.value
		agg.Count++
		sum += r.value
		agg.Min = math.Min(agg.Min, r.value)
		agg.Max = math.Max(agg.Max, r.value)
	}
	if agg.Count > 0 {
		agg.Mean = sum / float64(agg.Count)
	} else {
		agg.Min, agg.Max = 0, 0
	}
	sort.Slice(agg.Timings, func(i, j int) bool {
		return agg.Timings[i].Participant < agg.Timings[j].Participant
	})
	if ctx.Err() != nil {
		return agg, ctx.Err()
	}
	return agg, nil
}
