package crowd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/insight-dublin/insight/geo"
)

// Participant is a registered crowdsourcing volunteer: "each
// participant i ∈ U registers with the query execution engine using a
// mobile device" (Section 5.3).
type Participant struct {
	ID  string
	Pos geo.Point
	// Online reports whether the participant is currently reachable
	// (connected to the push notification service).
	Online bool
	// ComputeTime is the expected time the participant needs to
	// process a task, estimated "from the past executed tasks".
	ComputeTime time.Duration
}

// Roster is the registry of participants. It is safe for concurrent
// use: the query execution engine reads it while location updates
// stream in.
type Roster struct {
	mu           sync.RWMutex
	participants map[string]Participant
}

// NewRoster returns an empty roster.
func NewRoster() *Roster {
	return &Roster{participants: make(map[string]Participant)}
}

// Register adds or replaces a participant.
func (r *Roster) Register(p Participant) error {
	if p.ID == "" {
		return fmt.Errorf("crowd: participant with empty ID")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.participants[p.ID] = p
	return nil
}

// SetLocation updates a participant's position.
func (r *Roster) SetLocation(id string, pos geo.Point) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.participants[id]
	if !ok {
		return fmt.Errorf("crowd: unknown participant %q", id)
	}
	p.Pos = pos
	r.participants[id] = p
	return nil
}

// SetOnline updates a participant's connectivity.
func (r *Roster) SetOnline(id string, online bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.participants[id]
	if !ok {
		return fmt.Errorf("crowd: unknown participant %q", id)
	}
	p.Online = online
	r.participants[id] = p
	return nil
}

// Get returns a participant by ID.
func (r *Roster) Get(id string) (Participant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.participants[id]
	return p, ok
}

// Online returns the currently reachable participants, sorted by ID
// for determinism.
func (r *Roster) Online() []Participant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Participant, 0, len(r.participants))
	for _, p := range r.participants {
		if p.Online {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered participants.
func (r *Roster) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.participants)
}

// Selection is a worker-selection policy: given the online candidates
// and the task location it returns the participants to query. The
// paper selects "one or more humans ... close to the sensors that
// disagree", possibly filtered by reliability or deadline
// feasibility.
type Selection func(candidates []Participant, taskPos geo.Point) []Participant

// SelectAll queries every online participant (the policy of the
// estimation experiment in Section 7.2: "All participants were
// queried about each sensor disagreement").
func SelectAll(candidates []Participant, _ geo.Point) []Participant {
	return candidates
}

// SelectNearest returns a policy that picks the k participants closest
// to the disagreement location, optionally restricted to maxMeters
// (0 = no distance bound).
func SelectNearest(k int, maxMeters float64) Selection {
	return func(candidates []Participant, taskPos geo.Point) []Participant {
		type scored struct {
			p Participant
			d float64
		}
		eligible := make([]scored, 0, len(candidates))
		for _, p := range candidates {
			d := geo.Distance(p.Pos, taskPos)
			if maxMeters > 0 && d > maxMeters {
				continue
			}
			eligible = append(eligible, scored{p, d})
		}
		sort.Slice(eligible, func(i, j int) bool {
			if eligible[i].d != eligible[j].d { //lint:allow floateq exact compare inside a comparator: any consistent order is correct, ties fall through to ID
				return eligible[i].d < eligible[j].d
			}
			return eligible[i].p.ID < eligible[j].p.ID
		})
		if k > 0 && len(eligible) > k {
			eligible = eligible[:k]
		}
		out := make([]Participant, len(eligible))
		for i, s := range eligible {
			out[i] = s.p
		}
		return out
	}
}

// SelectMostReliable returns a policy that picks the k participants
// with the lowest estimated error probability according to the online
// EM estimator.
func SelectMostReliable(k int, est *Estimator) Selection {
	return func(candidates []Participant, _ geo.Point) []Participant {
		out := append([]Participant(nil), candidates...)
		sort.Slice(out, func(i, j int) bool {
			pi, pj := est.ErrorProb(out[i].ID), est.ErrorProb(out[j].ID)
			if pi != pj { //lint:allow floateq exact compare inside a comparator: any consistent order is correct, ties fall through to ID
				return pi < pj
			}
			return out[i].ID < out[j].ID
		})
		if k > 0 && len(out) > k {
			out = out[:k]
		}
		return out
	}
}

// DeadlineFeasible wraps a policy with the real-time admission test of
// Section 5.3: a participant is queried only if
// comm_iq + comp_iq < deadline_q, with the communication time
// estimated by the supplied function (typically from the query
// execution engine's per-network history).
func DeadlineFeasible(inner Selection, commEstimate func(Participant) time.Duration, deadline time.Duration) Selection {
	return func(candidates []Participant, taskPos geo.Point) []Participant {
		feasible := make([]Participant, 0, len(candidates))
		for _, p := range candidates {
			if commEstimate(p)+p.ComputeTime < deadline {
				feasible = append(feasible, p)
			}
		}
		return inner(feasible, taskPos)
	}
}
