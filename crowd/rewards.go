package crowd

import (
	"fmt"
	"sort"
)

// The paper notes that "correctly estimating the quality of
// participants ... is also important for rewarding a participant.
// Indeed, a participant's quality may be a factor in the computation
// of the reward he receives for his contribution" (Section 7.2).
// Ledger implements that accounting: each processed task pays every
// answering participant in proportion to how much probability the
// fused posterior assigns to their answer, scaled by a base rate.

// RewardPolicy computes the payment for one answer given the fused
// verdict. posterior is the probability the verdict assigns to the
// participant's own answer.
type RewardPolicy func(posterior float64) float64

// ProportionalReward pays base × P(answer | all answers): confident
// agreement with the fused outcome earns close to base; answers the
// crowd overrules earn close to nothing. It never pays negative
// amounts (penalising volunteers drives them away).
func ProportionalReward(base float64) RewardPolicy {
	return func(posterior float64) float64 {
		if posterior < 0 {
			return 0
		}
		return base * posterior
	}
}

// ThresholdReward pays base for answers the fused posterior backs with
// at least minPosterior, nothing otherwise (a simpler scheme platforms
// like Mechanical Turk use: accept or reject).
func ThresholdReward(base, minPosterior float64) RewardPolicy {
	return func(posterior float64) float64 {
		if posterior >= minPosterior {
			return base
		}
		return 0
	}
}

// Ledger accumulates rewards across tasks.
type Ledger struct {
	policy RewardPolicy
	earned map[string]float64
	tasks  map[string]int
}

// NewLedger builds a ledger with the given policy.
func NewLedger(policy RewardPolicy) (*Ledger, error) {
	if policy == nil {
		return nil, fmt.Errorf("crowd: nil reward policy")
	}
	return &Ledger{
		policy: policy,
		earned: make(map[string]float64),
		tasks:  make(map[string]int),
	}, nil
}

// Credit applies the policy to every answer of a fused task. Call it
// with the verdict returned by Estimator.Process for the same task.
func (l *Ledger) Credit(task Task, verdict Verdict) error {
	if len(verdict.Labels) != len(verdict.Posterior) {
		return fmt.Errorf("crowd: malformed verdict for task %q", task.ID)
	}
	for _, a := range task.Answers {
		idx := labelIndex(verdict.Labels, a.Label)
		if idx < 0 {
			return fmt.Errorf("crowd: answer %q of task %q not among verdict labels", a.Label, task.ID)
		}
		l.earned[a.Participant] += l.policy(verdict.Posterior[idx])
		l.tasks[a.Participant]++
	}
	return nil
}

// Earned returns a participant's accumulated reward.
func (l *Ledger) Earned(participant string) float64 { return l.earned[participant] }

// Tasks returns how many tasks a participant was paid for.
func (l *Ledger) Tasks(participant string) int { return l.tasks[participant] }

// Balance is one row of the ledger.
type Balance struct {
	Participant string
	Earned      float64
	Tasks       int
}

// Balances returns all rows, highest earners first (ties by ID).
func (l *Ledger) Balances() []Balance {
	out := make([]Balance, 0, len(l.earned))
	for id, e := range l.earned {
		out = append(out, Balance{Participant: id, Earned: e, Tasks: l.tasks[id]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Earned != out[j].Earned { //lint:allow floateq exact compare inside a comparator: any consistent order is correct, ties fall through to ID
			return out[i].Earned > out[j].Earned
		}
		return out[i].Participant < out[j].Participant
	})
	return out
}
