package crowd

import (
	"fmt"
	"math"
	"sort"
)

// GammaFunc is the stochastic approximation schedule γ_1, γ_2, ... of
// the online EM update; it must satisfy Σγ_t = ∞ and Σγ_t² < ∞.
type GammaFunc func(t int) float64

// DefaultGamma is the schedule used in the paper's evaluation:
// γ_t = t/(t+1)... scaled per update count. The paper (Section 7.2)
// uses γ_t = t/(t+1); note this is the weight on the NEW observation,
// so early answers move the estimate a lot and later ones less — the
// first update (t = 1) has weight 1/2.
func DefaultGamma(t int) float64 { return 1 / (float64(t) + 1) }

// PaperGamma is the literal γ_t = t/(t+1) schedule quoted in Section
// 7.2. It weights the new observation by t/(t+1), which converges in
// practice on stationary participants (the estimate is dominated by
// recent posteriors once they are confident).
func PaperGamma(t int) float64 { return float64(t) / (float64(t) + 1) }

// EstimatorOptions configures the online EM estimator.
type EstimatorOptions struct {
	// InitialErrorProb is the initial estimate p̂_i for a newly seen
	// participant. The paper initializes to 0.25, biasing "towards
	// trustful participants": an unbiased 0.75 initialisation with a
	// uniform prior would be a fixed point and never update.
	InitialErrorProb float64
	// Gamma is the stochastic approximation schedule. Default:
	// DefaultGamma (γ_t = 1/(t+1), i.e. a running average).
	Gamma GammaFunc
	// MinErrorProb / MaxErrorProb clamp the estimates away from the
	// degenerate 0 and 1 values, where the likelihood would assign
	// zero probability to possible worlds. Defaults: 1e-4, 1−1e-4.
	MinErrorProb float64
	MaxErrorProb float64
}

func (o EstimatorOptions) withDefaults() EstimatorOptions {
	if o.InitialErrorProb == 0 {
		o.InitialErrorProb = 0.25
	}
	if o.Gamma == nil {
		o.Gamma = DefaultGamma
	}
	if o.MinErrorProb == 0 {
		o.MinErrorProb = 1e-4
	}
	if o.MaxErrorProb == 0 {
		o.MaxErrorProb = 1 - 1e-4
	}
	return o
}

// Estimator is the online EM estimator of Algorithm 1: it fuses the
// answers of each task into a posterior over the labels (the E
// sufficient statistics, lines 3–8), emits the MAP verdict (line 10),
// and updates the error probability estimate of every answering
// participant with a per-participant stochastic approximation step
// (lines 11–14). Tasks are then forgotten — memory is O(participants),
// independent of the number of disagreements processed.
//
// Estimator is not safe for concurrent use.
type Estimator struct {
	opts  EstimatorOptions
	state map[string]*participantState
}

type participantState struct {
	errorProb float64
	queries   int // t_i: times this participant has been queried
}

// NewEstimator builds an online EM estimator.
func NewEstimator(opts EstimatorOptions) *Estimator {
	return &Estimator{
		opts:  opts.withDefaults(),
		state: make(map[string]*participantState),
	}
}

// ErrorProb returns the current estimate p̂_i for a participant. New
// participants report the initial estimate.
func (e *Estimator) ErrorProb(participant string) float64 {
	if s, ok := e.state[participant]; ok {
		return s.errorProb
	}
	return e.opts.InitialErrorProb
}

// Queries returns how many tasks the participant has answered.
func (e *Estimator) Queries(participant string) int {
	if s, ok := e.state[participant]; ok {
		return s.queries
	}
	return 0
}

// Participants returns the IDs seen so far, sorted.
func (e *Estimator) Participants() []string {
	out := make([]string, 0, len(e.state))
	for id := range e.state {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Posterior computes the posterior distribution over a task's labels
// given its answers and the current participant estimates, without
// updating any estimate (pure inference by Bayes rule; lines 3–8 of
// Algorithm 1).
func (e *Estimator) Posterior(task Task) (Verdict, error) {
	if err := task.validate(); err != nil {
		return Verdict{}, err
	}
	k := len(task.Labels)
	alpha := make([]float64, k)
	for j := range alpha {
		if task.Prior != nil {
			alpha[j] = task.Prior[j]
		} else {
			alpha[j] = 1.0 / float64(k)
		}
	}
	// Work in log space to stay stable with many answers.
	logAlpha := make([]float64, k)
	for j, a := range alpha {
		if a == 0 {
			logAlpha[j] = math.Inf(-1)
		} else {
			logAlpha[j] = math.Log(a)
		}
	}
	for _, ans := range task.Answers {
		p := e.clamp(e.ErrorProb(ans.Participant))
		yi := labelIndex(task.Labels, ans.Label)
		for j := range logAlpha {
			if j == yi {
				logAlpha[j] += math.Log(1 - p)
			} else {
				logAlpha[j] += math.Log(p / float64(k-1))
			}
		}
	}
	// Normalize via log-sum-exp.
	maxLog := math.Inf(-1)
	for _, l := range logAlpha {
		if l > maxLog {
			maxLog = l
		}
	}
	post := make([]float64, k)
	var sum float64
	for j, l := range logAlpha {
		post[j] = math.Exp(l - maxLog)
		sum += post[j]
	}
	best, bestP := 0, 0.0
	for j := range post {
		post[j] /= sum
		if post[j] > bestP {
			best, bestP = j, post[j]
		}
	}
	return Verdict{
		TaskID:     task.ID,
		Labels:     task.Labels,
		Posterior:  post,
		Best:       task.Labels[best],
		Confidence: bestP,
	}, nil
}

// Process fuses a task and updates the answering participants'
// estimates (the full Algorithm 1 step). The task can be discarded by
// the caller afterwards.
func (e *Estimator) Process(task Task) (Verdict, error) {
	v, err := e.Posterior(task)
	if err != nil {
		return Verdict{}, err
	}
	// Lines 11–14: per-participant stochastic approximation with the
	// participant-specific step count t_i.
	for _, ans := range task.Answers {
		s := e.state[ans.Participant]
		if s == nil {
			s = &participantState{errorProb: e.opts.InitialErrorProb}
			e.state[ans.Participant] = s
		}
		s.queries++
		gamma := e.opts.Gamma(s.queries)
		yi := labelIndex(task.Labels, ans.Label)
		// 1 − α(y_{i,t}): the posterior probability that the answer
		// was wrong.
		wrong := 1 - v.Posterior[yi]
		s.errorProb = e.clamp((1-gamma)*s.errorProb + gamma*wrong)
	}
	return v, nil
}

func (e *Estimator) clamp(p float64) float64 {
	if p < e.opts.MinErrorProb {
		return e.opts.MinErrorProb
	}
	if p > e.opts.MaxErrorProb {
		return e.opts.MaxErrorProb
	}
	return p
}

// BatchEM estimates participant error probabilities from a complete
// task history with the classical batch EM algorithm (Dempster et al.
// 1977), the baseline the paper argues against for streams: it must
// re-read every answer at each iteration, so its cost per update grows
// with the history. It returns the estimates and the number of
// iterations performed.
func BatchEM(tasks []Task, opts EstimatorOptions, maxIters int, tol float64) (map[string]float64, int, error) {
	opts = opts.withDefaults()
	if maxIters <= 0 {
		maxIters = 100
	}
	if tol <= 0 {
		tol = 1e-6
	}
	for _, t := range tasks {
		if err := t.validate(); err != nil {
			return nil, 0, err
		}
	}
	est := make(map[string]float64)
	counts := make(map[string]int)
	for _, t := range tasks {
		for _, a := range t.Answers {
			est[a.Participant] = opts.InitialErrorProb
			counts[a.Participant]++
		}
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		// E-step: posteriors under current estimates; M-step
		// accumulator: expected number of wrong answers.
		wrongSum := make(map[string]float64, len(est))
		scratch := &Estimator{opts: opts, state: make(map[string]*participantState, len(est))}
		for id, p := range est {
			scratch.state[id] = &participantState{errorProb: p}
		}
		for _, t := range tasks {
			v, err := scratch.Posterior(t)
			if err != nil {
				return nil, 0, err
			}
			for _, a := range t.Answers {
				yi := labelIndex(t.Labels, a.Label)
				wrongSum[a.Participant] += 1 - v.Posterior[yi]
			}
		}
		var delta float64
		for id := range est {
			next := wrongSum[id] / float64(counts[id])
			next = scratch.clamp(next)
			delta = math.Max(delta, math.Abs(next-est[id]))
			est[id] = next
		}
		if delta < tol {
			iters++
			break
		}
	}
	return est, iters, nil
}

// String renders the estimator state for diagnostics.
func (e *Estimator) String() string {
	ids := e.Participants()
	s := "crowd.Estimator{"
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s: p=%.3f (n=%d)", id, e.state[id].errorProb, e.state[id].queries)
	}
	return s + "}"
}

// ConstantGamma returns a fixed-step schedule γ_t = c. It does not
// satisfy the Σγ² < ∞ convergence condition — the estimate keeps a
// bounded variance forever — but that is exactly what tracking
// participants with TIME-VARYING reliability requires: a running
// average (DefaultGamma) weighs ancient answers equally and can never
// forget, while a constant step forgets at rate (1-c) per answer.
func ConstantGamma(c float64) GammaFunc {
	return func(int) float64 { return c }
}
