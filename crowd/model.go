// Package crowd implements the crowdsourcing component of Artikis et
// al. (EDBT 2014, Section 5): fusing answers from imperfect human
// participants to resolve sensor source disagreements.
//
// The model (Section 5.1): each source disagreement is an unobserved
// categorical variable X_t with labels Val(X_t) and a prior P(X_t);
// participant i has a constant but unknown probability p_i of
// answering with a wrong label, choosing uniformly among the wrong
// labels; answers are independent across participants and tasks.
//
// Estimation (Section 5.2): participant error probabilities are
// estimated with an online Expectation-Maximization algorithm
// (Algorithm 1 of the paper, after Cappé & Moulines 2009) that
// processes one disagreement at a time and then forgets it — the batch
// EM alternative, provided here as a baseline, needs the full answer
// history at every step and cannot keep up with an unbounded stream.
package crowd

import (
	"fmt"
	"math/rand"
)

// Task is one crowdsourcing query about a source disagreement event
// X_t: the possible labels, an optional prior over them, and the
// collected answers from the queried participants u_t.
type Task struct {
	// ID identifies the disagreement (e.g. intersection + time).
	ID string
	// Labels is Val(X_t), the possible answers presented to every
	// queried participant. Must have at least two entries.
	Labels []string
	// Prior is P(X_t) over Labels. Nil means uniform. Must sum to ~1.
	Prior []float64
	// Answers holds one answer per queried participant.
	Answers []Answer
}

// Answer is participant Participant's label choice for a task.
type Answer struct {
	Participant string
	Label       string
}

// Verdict is the fused outcome of a task: the posterior distribution
// over the labels and the maximum a-posteriori label.
type Verdict struct {
	TaskID string
	// Labels echoes the task's label set.
	Labels []string
	// Posterior is P(X_t = labels[j] | answers), normalized.
	Posterior []float64
	// Best is the MAP label and Confidence its posterior probability.
	Best       string
	Confidence float64
}

// Peaked reports whether the posterior concentrates nearly all mass on
// one label. The paper reports that "most of the time (94% in this
// experiment) the posterior probability distribution is very peaked:
// the probability of one of the 4 explanations is greater than 0.99".
func (v Verdict) Peaked(threshold float64) bool { return v.Confidence > threshold }

func (t Task) validate() error {
	if len(t.Labels) < 2 {
		return fmt.Errorf("crowd: task %q needs at least two labels", t.ID)
	}
	seen := make(map[string]bool, len(t.Labels))
	for _, l := range t.Labels {
		if seen[l] {
			return fmt.Errorf("crowd: task %q has duplicate label %q", t.ID, l)
		}
		seen[l] = true
	}
	if t.Prior != nil {
		if len(t.Prior) != len(t.Labels) {
			return fmt.Errorf("crowd: task %q prior has %d entries for %d labels", t.ID, len(t.Prior), len(t.Labels))
		}
		var sum float64
		for _, p := range t.Prior {
			if p < 0 {
				return fmt.Errorf("crowd: task %q has negative prior", t.ID)
			}
			sum += p
		}
		if sum < 1e-9 {
			return fmt.Errorf("crowd: task %q prior sums to zero", t.ID)
		}
	}
	for _, a := range t.Answers {
		if !seen[a.Label] {
			return fmt.Errorf("crowd: task %q answer %q not among labels", t.ID, a.Label)
		}
	}
	return nil
}

// labelIndex returns the index of label in labels, or -1.
func labelIndex(labels []string, label string) int {
	for i, l := range labels {
		if l == label {
			return i
		}
	}
	return -1
}

// SimulatedParticipant draws answers according to the paper's
// participant model: with probability 1−ErrorProb it gives the true
// label; otherwise it picks one of the other labels uniformly at
// random. The evaluation of Section 7.2 simulates ten such
// participants.
type SimulatedParticipant struct {
	ID        string
	ErrorProb float64
	rng       *rand.Rand
}

// NewSimulatedParticipant creates a participant with the given error
// probability and deterministic seed.
func NewSimulatedParticipant(id string, errorProb float64, seed int64) *SimulatedParticipant {
	return &SimulatedParticipant{ID: id, ErrorProb: errorProb, rng: rand.New(rand.NewSource(seed))}
}

// Answer produces the participant's answer to a task whose true label
// is trueLabel.
func (s *SimulatedParticipant) Answer(labels []string, trueLabel string) Answer {
	if s.rng.Float64() >= s.ErrorProb {
		return Answer{Participant: s.ID, Label: trueLabel}
	}
	// Uniform over the wrong labels.
	wrong := make([]string, 0, len(labels)-1)
	for _, l := range labels {
		if l != trueLabel {
			wrong = append(wrong, l)
		}
	}
	if len(wrong) == 0 {
		return Answer{Participant: s.ID, Label: trueLabel}
	}
	return Answer{Participant: s.ID, Label: wrong[s.rng.Intn(len(wrong))]}
}

// DriftingParticipant is a participant whose error probability changes
// over time — the time-varying annotator accuracy scenario the paper
// cites (Donmez et al., SDM 2010) as motivation for sequential
// estimation. Before SwitchAfter answers it errs with probability
// Before; afterwards with probability After.
type DriftingParticipant struct {
	ID          string
	Before      float64
	After       float64
	SwitchAfter int
	answered    int
	rng         *rand.Rand
}

// NewDriftingParticipant creates a drifting participant.
func NewDriftingParticipant(id string, before, after float64, switchAfter int, seed int64) *DriftingParticipant {
	return &DriftingParticipant{
		ID: id, Before: before, After: after, SwitchAfter: switchAfter,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// ErrorProb returns the participant's current true error probability.
func (d *DriftingParticipant) ErrorProb() float64 {
	if d.answered < d.SwitchAfter {
		return d.Before
	}
	return d.After
}

// Answer produces the participant's answer to a task whose true label
// is trueLabel, advancing the drift clock.
func (d *DriftingParticipant) Answer(labels []string, trueLabel string) Answer {
	p := d.ErrorProb()
	d.answered++
	if d.rng.Float64() >= p {
		return Answer{Participant: d.ID, Label: trueLabel}
	}
	wrong := make([]string, 0, len(labels)-1)
	for _, l := range labels {
		if l != trueLabel {
			wrong = append(wrong, l)
		}
	}
	if len(wrong) == 0 {
		return Answer{Participant: d.ID, Label: trueLabel}
	}
	return Answer{Participant: d.ID, Label: wrong[d.rng.Intn(len(wrong))]}
}
