package crowd_test

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/crowd"
)

// One online-EM step (Algorithm 1 of the paper): fuse answers about a
// source disagreement and update the participants' error estimates.
func ExampleEstimator_Process() {
	est := crowd.NewEstimator(crowd.EstimatorOptions{})
	verdict, err := est.Process(crowd.Task{
		ID:     "oconnell-bridge@t=600",
		Labels: []string{"congestion", "no congestion"},
		Answers: []crowd.Answer{
			{Participant: "anna", Label: "no congestion"},
			{Participant: "brian", Label: "no congestion"},
			{Participant: "ciara", Label: "congestion"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", verdict.Best)
	fmt.Printf("outvoted participant now looks worse: %.3f > %.3f\n",
		est.ErrorProb("ciara"), est.ErrorProb("anna"))
	// Output:
	// verdict: no congestion
	// outvoted participant now looks worse: 0.500 > 0.250
}

// The prior from the CE component (Section 5.1): if most buses report
// congestion, the crowd needs stronger evidence to overturn it.
func ExampleEstimator_Posterior() {
	est := crowd.NewEstimator(crowd.EstimatorOptions{})
	task := crowd.Task{
		ID:     "x",
		Labels: []string{"congestion", "no congestion"},
		// 3 of 4 buses said congestion.
		Prior:   []float64{0.75, 0.25},
		Answers: []crowd.Answer{{Participant: "p", Label: "no congestion"}},
	}
	v, err := est.Posterior(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MAP label:", v.Best)
	// Output:
	// MAP label: congestion
}
