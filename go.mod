module github.com/insight-dublin/insight

go 1.22
