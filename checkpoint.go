package insight

// Checkpointed recovery for the durable pipeline. A checkpoint is one
// atomically-written file capturing everything the monitoring process
// needs to resume recognition from a query boundary: the boundary
// cursor, the per-stream consumption cursors, the WAL offset from
// which consumption must be replayed, the engines' restorable state
// (rtec.EngineSnapshot), the rows consumed but not yet admitted past a
// boundary, the system's latest sensor/crowd readings, and the reports
// that were fired but not yet acknowledged by the operator sink.
//
// Atomicity. The file is written to a .tmp sibling, fsynced, renamed
// into place and the directory fsynced — a crash leaves either the
// previous checkpoint set or the new one, never a half-visible file
// under the final name. Contents are guarded by a CRC32C over the
// body, so a checkpoint corrupted after the rename (torn sector, bit
// rot, or the chaos harness's injected corruption) is detected at load
// time and recovery falls back to the previous retained checkpoint.
//
// Encoding reuses the WAL codec vocabulary (wal.Append* and the
// sticky-error wal.Decoder); the engine snapshots and unacked reports
// ride along as length-prefixed JSON blobs — both are plain exported
// data whose JSON round-trip is exact (Go prints float64 in shortest
// round-trippable form).

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams/wal"
)

const (
	ckptMagic  = "INSCKPT1"
	ckptFormat = 1
	// ckptKeep is how many recent checkpoints GC retains. Two, so a
	// checkpoint corrupted after its rename always leaves a valid
	// predecessor to fall back to.
	ckptKeep = 2
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// CheckpointCrash selects an injected failure mode for one checkpoint
// write — the chaos harness's failpoints for the checkpoint path,
// mirroring wal.Failpoint for the log path. Every mode ends the run
// with wal.ErrCrashPoint (the simulated kill).
type CheckpointCrash int

const (
	// CrashNone writes the checkpoint normally.
	CrashNone CheckpointCrash = iota
	// CrashTornCheckpoint dies halfway through the temp file: the torn
	// .tmp artifact is ignored by recovery, which resumes from the
	// previous checkpoint.
	CrashTornCheckpoint
	// CrashAfterCheckpoint dies right after the atomic rename: the
	// checkpoint is durable but the epoch still ends, so recovery must
	// resume from it with an (almost) empty replay.
	CrashAfterCheckpoint
	// CrashCorruptCheckpoint completes the write, then flips one bit in
	// the renamed file before dying: the CRC check must reject it and
	// recovery must fall back to the previous checkpoint.
	CrashCorruptCheckpoint
)

// streamCursor is one input stream's consumption state at a
// checkpoint: how many batch envelopes of the stream have been
// consumed since the window origin (the resume skip count) and the
// stream's arrival watermark.
type streamCursor struct {
	id        string
	consumed  int64
	watermark Time
}

// trafficSnap and crowdSnap persist the System's latest-reading maps
// feeding the GP sparsity service.
type trafficSnap struct {
	sensor string
	vertex int
	flow   float64
	t      Time
}

type crowdSnap struct {
	inter     string
	vertex    int
	congested bool
	t         Time
}

// checkpoint is the decoded in-memory form of one checkpoint file.
type checkpoint struct {
	nextQ     Time
	walOffset int64
	cursors   []streamCursor // sorted by stream id
	// pendingBatches are the consumed-but-unadmitted rows, re-encoded
	// as WAL batch payloads in exact pending order (consecutive rows of
	// one retained batch form one mini-batch).
	pendingBatches [][]byte
	engines        []*rtec.EngineSnapshot
	traffic        []trafficSnap // sorted by sensor
	crowd          []crowdSnap   // sorted by intersection
	reports        [][]byte      // JSON of fired-but-unacked reports, ascending Q
}

// encode renders the checkpoint file bytes: magic, CRC32C(body), body.
func (c *checkpoint) encode() []byte {
	body := []byte{ckptFormat}
	body = wal.AppendVarint(body, int64(c.nextQ))
	body = wal.AppendUvarint(body, uint64(c.walOffset))
	body = wal.AppendUvarint(body, uint64(len(c.cursors)))
	for _, cur := range c.cursors {
		body = wal.AppendString(body, cur.id)
		body = wal.AppendUvarint(body, uint64(cur.consumed))
		body = wal.AppendVarint(body, int64(cur.watermark))
	}
	body = wal.AppendUvarint(body, uint64(len(c.pendingBatches)))
	for _, pb := range c.pendingBatches {
		body = wal.AppendUvarint(body, uint64(len(pb)))
		body = append(body, pb...)
	}
	body = wal.AppendUvarint(body, uint64(len(c.engines)))
	for _, es := range c.engines {
		blob, err := json.Marshal(es)
		if err != nil {
			// EngineSnapshot is plain exported data; Marshal cannot fail.
			panic(fmt.Sprintf("insight: marshal engine snapshot: %v", err))
		}
		body = wal.AppendUvarint(body, uint64(len(blob)))
		body = append(body, blob...)
	}
	body = wal.AppendUvarint(body, uint64(len(c.traffic)))
	for _, ts := range c.traffic {
		body = wal.AppendString(body, ts.sensor)
		body = wal.AppendVarint(body, int64(ts.vertex))
		body = wal.AppendFloat(body, ts.flow)
		body = wal.AppendVarint(body, int64(ts.t))
	}
	body = wal.AppendUvarint(body, uint64(len(c.crowd)))
	for _, cs := range c.crowd {
		body = wal.AppendString(body, cs.inter)
		body = wal.AppendVarint(body, int64(cs.vertex))
		body = wal.AppendBool(body, cs.congested)
		body = wal.AppendVarint(body, int64(cs.t))
	}
	body = wal.AppendUvarint(body, uint64(len(c.reports)))
	for _, rb := range c.reports {
		body = wal.AppendUvarint(body, uint64(len(rb)))
		body = append(body, rb...)
	}

	out := make([]byte, 0, len(ckptMagic)+4+len(body))
	out = append(out, ckptMagic...)
	crc := crc32.Checksum(body, ckptCRC)
	out = append(out, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	return append(out, body...)
}

// decodeCheckpoint validates and parses checkpoint file bytes.
func decodeCheckpoint(data []byte) (*checkpoint, error) {
	if len(data) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("insight: checkpoint of %d bytes is shorter than its header", len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("insight: bad checkpoint magic %q", data[:len(ckptMagic)])
	}
	crcB := data[len(ckptMagic) : len(ckptMagic)+4]
	want := uint32(crcB[0]) | uint32(crcB[1])<<8 | uint32(crcB[2])<<16 | uint32(crcB[3])<<24
	body := data[len(ckptMagic)+4:]
	if got := crc32.Checksum(body, ckptCRC); got != want {
		return nil, fmt.Errorf("insight: checkpoint CRC mismatch (got %08x, want %08x)", got, want)
	}
	d := wal.NewDecoder(body)
	if d.Len() < 1 || body[0] != ckptFormat {
		return nil, fmt.Errorf("insight: unknown checkpoint format")
	}
	d.Skip(1)
	c := &checkpoint{}
	c.nextQ = Time(d.Varint())
	c.walOffset = int64(d.Uvarint())
	nc := d.Count()
	for i := 0; i < nc; i++ {
		c.cursors = append(c.cursors, streamCursor{
			id:        d.String(),
			consumed:  int64(d.Uvarint()),
			watermark: Time(d.Varint()),
		})
	}
	np := d.Count()
	for i := 0; i < np; i++ {
		c.pendingBatches = append(c.pendingBatches, d.Bytes(d.Count()))
	}
	ne := d.Count()
	for i := 0; i < ne; i++ {
		blob := d.Bytes(d.Count())
		if d.Err() != nil {
			break
		}
		var es rtec.EngineSnapshot
		if err := json.Unmarshal(blob, &es); err != nil {
			return nil, fmt.Errorf("insight: checkpoint engine snapshot: %w", err)
		}
		c.engines = append(c.engines, &es)
	}
	nt := d.Count()
	for i := 0; i < nt; i++ {
		c.traffic = append(c.traffic, trafficSnap{
			sensor: d.String(),
			vertex: int(d.Varint()),
			flow:   d.Float(),
			t:      Time(d.Varint()),
		})
	}
	ncr := d.Count()
	for i := 0; i < ncr; i++ {
		c.crowd = append(c.crowd, crowdSnap{
			inter:     d.String(),
			vertex:    int(d.Varint()),
			congested: d.Bool(),
			t:         Time(d.Varint()),
		})
	}
	nr := d.Count()
	for i := 0; i < nr; i++ {
		c.reports = append(c.reports, d.Bytes(d.Count()))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("insight: %d trailing bytes after checkpoint body", d.Len())
	}
	return c, nil
}

// checkpointName renders the file name of the checkpoint taken with
// boundary cursor q. Names sort lexicographically in q order.
func checkpointName(q Time) string {
	return fmt.Sprintf("ckpt-%016d.ck", int64(q))
}

// parseCheckpointName extracts q from a checkpoint file name.
func parseCheckpointName(name string) (Time, bool) {
	var q int64
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ck") {
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "ckpt-%d.ck", &q); err != nil {
		return 0, false
	}
	return Time(q), true
}

// writeCheckpointFile atomically persists encoded checkpoint bytes for
// boundary cursor q under dir: temp file, fsync, rename, directory
// fsync. A non-CrashNone mode injects the corresponding failure and
// returns wal.ErrCrashPoint.
func writeCheckpointFile(dir string, q Time, data []byte, crash CheckpointCrash) error {
	path := filepath.Join(dir, checkpointName(q))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if crash == CrashTornCheckpoint {
		if _, err := f.Write(data[:len(data)/2]); err != nil {
			return closeDrop(f, err)
		}
		if err := f.Sync(); err != nil {
			return closeDrop(f, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return fmt.Errorf("insight: killed mid-checkpoint %s (torn temp file): %w", checkpointName(q), wal.ErrCrashPoint)
	}
	if _, err := f.Write(data); err != nil {
		return closeDrop(f, err)
	}
	if err := f.Sync(); err != nil {
		return closeDrop(f, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	switch crash {
	case CrashAfterCheckpoint:
		return fmt.Errorf("insight: killed after checkpoint %s became durable: %w", checkpointName(q), wal.ErrCrashPoint)
	case CrashCorruptCheckpoint:
		if err := flipBit(path); err != nil {
			return err
		}
		return fmt.Errorf("insight: killed after corrupting checkpoint %s: %w", checkpointName(q), wal.ErrCrashPoint)
	}
	return nil
}

// closeDrop closes f after a failed write, preferring the write error.
func closeDrop(f *os.File, err error) error {
	if cerr := f.Close(); cerr != nil && err == nil {
		return cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return closeDrop(d, err)
	}
	return d.Close()
}

// flipBit corrupts one byte in the middle of the file at path — the
// chaos harness's post-rename corruption injection.
func flipBit(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	data[len(data)/2] ^= 0x40
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return closeDrop(f, err)
	}
	if err := f.Sync(); err != nil {
		return closeDrop(f, err)
	}
	return f.Close()
}

// listCheckpoints returns the checkpoint files under dir, newest (by
// boundary cursor) first.
func listCheckpoints(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if _, ok := parseCheckpointName(ent.Name()); ok {
			names = append(names, ent.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// loadLatestCheckpoint scans dir newest-first and returns the first
// checkpoint that decodes cleanly, counting the corrupt ones it had to
// skip. A nil checkpoint with nil error means a fresh start.
func loadLatestCheckpoint(dir string) (ck *checkpoint, q Time, corrupt int, err error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, err
	}
	for _, name := range names {
		data, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			return nil, 0, corrupt, rerr
		}
		c, derr := decodeCheckpoint(data)
		if derr != nil {
			corrupt++
			continue
		}
		q, _ := parseCheckpointName(name)
		return c, q, corrupt, nil
	}
	return nil, 0, corrupt, nil
}

// gcCheckpoints removes all but the ckptKeep newest checkpoints (and
// any leftover temp files), then returns the WAL offset of the oldest
// retained checkpoint — the front-truncation point for the log. A
// negative return means no safe truncation point is known (e.g. the
// oldest retained file is corrupt).
func gcCheckpoints(dir string) (int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return -1, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".ck.tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return -1, err
			}
			continue
		}
		if _, ok := parseCheckpointName(name); ok {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names[min(len(names), ckptKeep):] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return -1, err
		}
	}
	if len(names) == 0 {
		return -1, nil
	}
	oldest := names[min(len(names), ckptKeep)-1]
	data, err := os.ReadFile(filepath.Join(dir, oldest))
	if err != nil {
		return -1, err
	}
	c, err := decodeCheckpoint(data)
	if err != nil {
		return -1, nil // corrupt retained checkpoint: no safe truncation
	}
	return c.walOffset, nil
}
