package insight

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// Pipeline assembles the system as a Streams data-flow graph, the
// architecture of Section 3 of the paper:
//
//   - input handling processes: "all SDEs emitted by buses form one
//     stream, while the SDEs emitted by vehicle detectors of a SCATS
//     system are referenced by four streams, one per region of Dublin
//     city" — five sources feeding one SDE queue;
//   - an event processing process whose processor embeds the RTEC
//     engines, triggered by watermark punctuation: a query time fires
//     once every input stream's arrival clock has passed it, which is
//     exactly when all SDEs arriving by that query time have been
//     merged (delayed SDEs are then handled by WM > step as usual);
//   - a crowdsourcing process whose processor turns fresh disagreement
//     CEs into participant queries and merges the responses;
//   - the traffic modelling procedure registered as a Streams service.
//
// Reports flow to the returned collector sink, one item per query time
// under key "report".
type Pipeline struct {
	Topology *streams.Topology
	Reports  *streams.CollectorSink
	// Chaos holds the per-stream fault injectors of a chaos pipeline
	// (empty for BuildPipeline), keyed by stream id.
	Chaos map[string]*streams.ChaosSource
	// ChaosProcs holds the error-injecting input processors of a chaos
	// pipeline with InputErrProb > 0, keyed by stream id.
	ChaosProcs map[string]*streams.ChaosProcessor
	system     *System
	// durable is the checkpoint coordinator of a durable pipeline
	// (nil for BuildPipeline/BuildChaosPipeline).
	durable *durableRuntime
}

// pipelineStreamIDs are the paper's five input streams: one for all
// buses, one per SCATS region of Dublin city.
var pipelineStreamIDs = []string{"bus", "scats-central", "scats-north", "scats-west", "scats-south"}

// Item attribute keys used by the pipeline.
const (
	itemEvent   = "event"   // rtec.Event payload
	itemArrival = "arrival" // arrival time (int64)
	itemSource  = "source"  // originating stream id
	itemEOF     = "eof"     // end-of-stream punctuation
	itemReport  = "report"  // *Report payload
)

// ChaosConfig configures deterministic fault injection for
// BuildChaosPipeline.
type ChaosConfig struct {
	// Streams maps input stream ids ("bus", "scats-central",
	// "scats-north", "scats-west", "scats-south") to the faults
	// injected into that stream.
	Streams map[string]streams.FaultSpec
	// InputErrProb injects processor errors into the per-stream input
	// validation processors with this probability. The input processes
	// are then supervised with SkipItem, so affected SDEs are
	// dead-lettered (visible via Topology.DeadLetters) instead of
	// aborting the topology.
	InputErrProb float64
	// Seed drives the injected-error sampling; each stream's FaultSpec
	// carries its own seed.
	Seed int64
	// InputSupervision overrides the supervision policy of the
	// per-stream input processes when InputErrProb > 0. Nil means
	// SkipItem (faulty SDEs are dead-lettered). Note the zero Strategy
	// is FailFast, so a non-nil policy must be fully specified.
	InputSupervision *streams.SupervisionPolicy
}

// BuildPipeline constructs the Figure 1 data-flow graph over the
// system for SDEs occurring in [from, until). Run it with
// Pipeline.Topology.Run; afterwards Pipeline.Reports holds one item
// per query time.
func (s *System) BuildPipeline(from, until Time) (*Pipeline, error) {
	return s.buildPipeline(from, until, ChaosConfig{}, nil)
}

// BuildChaosPipeline is BuildPipeline with deterministic fault
// injection on the input streams — the harness behind cmd/chaosbench.
// Pipeline.Chaos exposes the per-stream injectors for fault
// accounting.
func (s *System) BuildChaosPipeline(from, until Time, chaos ChaosConfig) (*Pipeline, error) {
	return s.buildPipeline(from, until, chaos, nil)
}

func (s *System) buildPipeline(from, until Time, chaos ChaosConfig, dur *durableRuntime) (*Pipeline, error) {
	// Split into the paper's five input streams, each arrival-ordered
	// (the global collection is arrival-sorted, so per-stream order is
	// kept). With ColumnarTransport the generator emits typed batches
	// natively — no per-event map is ever built on the ingest path;
	// batch spans are capped at Step/2 (the pacer slack) so at most one
	// query boundary can land inside a batch and watermark punctuation
	// keeps its per-item granularity.
	streamIDs := pipelineStreamIDs
	perStream := make(map[string][]streams.Item, len(streamIDs))
	if s.cfg.ColumnarTransport {
		for _, bs := range s.city.CollectBatches(from, until, 512, s.cfg.Step/2) {
			items := make([]streams.Item, 0, len(bs.Batches))
			for _, b := range bs.Batches {
				items = append(items, streams.BatchItem(b))
			}
			perStream[bs.ID] = items
		}
	} else {
		for _, sde := range s.city.Collect(from, until) {
			id := "bus"
			if sde.Event.Type == traffic.TrafficType {
				id = "scats-" + geo.Region(dublin.PartitionOf(sde.Event)).String()
			}
			perStream[id] = append(perStream[id], streams.Item{
				itemEvent:   sde.Event,
				itemArrival: int64(sde.Arrival),
				itemSource:  id,
			})
		}
	}
	// End-of-stream punctuation: one trailing marker per stream lifts
	// that stream's watermark past the final boundary as soon as it
	// ends. Query boundaries that still become due simultaneously at
	// the very end are drained by the event processor's Flush when the
	// merge queue is exhausted — no padding heuristic needed.
	top := streams.NewTopology()
	chaosSources := make(map[string]*streams.ChaosSource)
	// Replay pacing: align the five sources on a shared virtual clock
	// so no producer goroutine races a whole window ahead of the rest —
	// the arrival interleaving a live deployment would deliver, and the
	// ground the watermark staleness rule stands on. Chaos injection
	// wraps *outside* the pacing, so a stalled mediator keeps pulling
	// (and advancing the clock) while swallowing its items, exactly
	// like a dead mediator whose upstream keeps transmitting.
	pacer := streams.NewPacer(int64(s.cfg.Step) / 2)
	arrivalOf := func(it streams.Item) (int64, bool) {
		if b, isBatch := streams.ItemBatch(it); isBatch {
			if b.Len() == 0 || b.Arrivals == nil {
				return 0, false
			}
			// Pace on the batch's first arrival; the Step/2 span cap
			// keeps the whole batch within the pacer slack.
			return b.Arrivals[0], true
		}
		if it.Bool(itemEOF) {
			return 0, false
		}
		return it.Int(itemArrival), true
	}
	for _, id := range streamIDs {
		items := perStream[id]
		if dur != nil {
			// Recovery: the cursors already account for these envelopes —
			// the WAL replay re-consumed the ones past the checkpoint — so
			// the source must not re-ingest them. The collection is
			// deterministic, so skipping a count is skipping those exact
			// envelopes.
			skip := int(dur.consumed[id])
			if skip > len(items) {
				return nil, fmt.Errorf("insight: recovery cursor for %q consumed %d envelopes but the collection replays only %d", id, skip, len(items))
			}
			for _, it := range items[:skip] {
				if b, isBatch := streams.ItemBatch(it); isBatch {
					b.Release()
				}
			}
			dur.skipped += skip
			items = items[skip:]
		}
		items = append(items, streams.Item{itemSource: id, itemEOF: true})
		var src streams.Source = streams.NewSliceSource(items...)
		if !s.cfg.UnpacedReplay {
			src = streams.NewPacedSource(src, pacer, id, int64(from), arrivalOf)
		}
		if spec, faulty := chaos.Streams[id]; faulty {
			// Child seed per stream: the fault sequence each stream
			// experiences is a function of (spec seed, stream id) alone,
			// independent of how the scheduler interleaves the streams.
			cs := streams.NewChaosSource(src, spec.ForStream(id))
			chaosSources[id] = cs
			src = cs
		}
		if err := top.AddStream(id, src); err != nil {
			return nil, err
		}
	}

	sdeQueue := "sdes"
	if _, err := top.AddQueue(sdeQueue, 4096); err != nil {
		return nil, err
	}
	reportQueue := "reports"
	if _, err := top.AddQueue(reportQueue, 64); err != nil {
		return nil, err
	}
	sink := streams.NewCollectorSink()
	var opSink streams.Sink = sink
	if dur != nil {
		// Reports acknowledge on arrival at the operator: the checkpoint
		// coordinator stops carrying them for re-emission.
		opSink = &ackingSink{inner: sink, st: dur.st}
	}
	if err := top.AddSink("operator", opSink); err != nil {
		return nil, err
	}

	// Durable runs interpose the write-ahead log between the validators
	// and the SDE queue: one single-writer append process, so the log's
	// record order is exactly the monitoring process's consumption
	// order, and a consumed envelope is always durable.
	inputOut := sdeQueue
	if dur != nil {
		inputOut = "ingest"
		if _, err := top.AddQueue(inputOut, 4096); err != nil {
			return nil, err
		}
		if err := top.AddProcess("wal-append", inputOut, sdeQueue, &walAppender{log: dur.log, st: dur.st}); err != nil {
			return nil, err
		}
	}

	// Input handling processes: one per stream, validating and
	// forwarding into the shared SDE queue. The validator is
	// batch-aware: batch envelopes are schema-checked and forwarded
	// whole instead of being expanded into per-row items.
	validate := sdeValidator{}
	chaosProcs := make(map[string]*streams.ChaosProcessor)
	for _, id := range streamIDs {
		proc := streams.Processor(validate)
		if chaos.InputErrProb > 0 {
			cp := streams.NewChaosProcessor(validate, streams.FaultSpec{
				Seed:    chaos.Seed,
				ErrProb: chaos.InputErrProb,
			}.ForStream(id))
			chaosProcs[id] = cp
			proc = cp
		}
		if err := top.AddProcess("input-"+id, id, inputOut, proc); err != nil {
			return nil, err
		}
		if chaos.InputErrProb > 0 {
			// Injected input faults are contained by supervision: with
			// the default SkipItem they cost the affected SDE, never the
			// topology; a caller-supplied policy (e.g. Restart, under
			// which ChaosProcessor's per-attempt redraw makes the fault
			// transient) overrides it.
			policy := streams.SupervisionPolicy{Strategy: streams.SkipItem}
			if chaos.InputSupervision != nil {
				policy = *chaos.InputSupervision
			}
			if err := top.Supervise("input-"+id, policy); err != nil {
				return nil, err
			}
		}
	}

	// The monitoring process: a sequence of two processors, as in the
	// Streams idiom of "processes comprise a sequence of processors".
	// The first embeds the RTEC engines with watermark punctuation and
	// emits a report item per query boundary; the second is the
	// crowdsourcing processor — it resolves the fresh disagreements of
	// each report and feeds the verdicts back into the engines before
	// the next boundary is evaluated, exactly like the synchronous
	// loop (and like the paper's feedback edge in Figure 1).
	rtecProc := newRTECProcessor(s, from, until)
	if dur != nil {
		// The durable processor already exists: recovery restored its
		// engines, cursors and pending rows and replayed the log tail
		// through it before the topology was wired.
		rtecProc = dur.proc
	}
	crowdProc := streams.ProcessorFunc(func(it streams.Item) (streams.Item, error) {
		rep, ok := it[itemReport].(*Report)
		if !ok {
			return nil, fmt.Errorf("insight: report item without payload")
		}
		if s.qeeEngine != nil {
			rounds, err := s.resolveDisagreements(context.Background(), rep.Q, rep.Result)
			if err != nil {
				return nil, err
			}
			rep.CrowdRounds = rounds
		}
		return it, nil
	})
	if err := top.AddProcess("monitoring", sdeQueue, reportQueue, rtecProc, crowdProc); err != nil {
		return nil, err
	}

	// Output handling: forward finished reports to the operator sink.
	forward := streams.ProcessorFunc(func(it streams.Item) (streams.Item, error) { return it, nil })
	if err := top.AddProcess("operator-output", reportQueue, "operator", forward); err != nil {
		return nil, err
	}

	// Traffic modelling as a Streams service (Section 3: "the
	// procedure for making congestion estimates at locations with low
	// sensor coverage is wrapped as a Streams service").
	if err := top.RegisterService("trafficModel", TrafficModelService(s.FlowMap)); err != nil {
		return nil, err
	}

	return &Pipeline{Topology: top, Reports: sink, Chaos: chaosSources, ChaosProcs: chaosProcs, system: s, durable: dur}, nil
}

// newRTECProcessor constructs the monitoring processor over the window
// [from, until). Every stream's watermark starts at the window origin:
// a stream that never reports holds the watermark at `from` (and, with
// a staleness bound, is eventually declared degraded) instead of being
// invisible to the minimum.
func newRTECProcessor(s *System, from, until Time) *rtecProcessor {
	p := &rtecProcessor{
		system:     s,
		step:       s.cfg.Step,
		nextQ:      from + s.cfg.Step,
		until:      until,
		staleness:  s.cfg.WatermarkStaleness,
		watermarks: make(map[string]Time, len(pipelineStreamIDs)),
		degraded:   make(map[string]bool),
	}
	for _, id := range pipelineStreamIDs {
		p.watermarks[id] = from
	}
	return p
}

// TrafficModelService is the service type under which the traffic
// modelling procedure is registered in the pipeline topology.
type TrafficModelService func(MapConfig) (*FlowEstimate, error)

// sdeValidator is the input-handling processor: it checks per-item
// SDEs carry an event payload and batch envelopes satisfy the
// row-length invariant, forwarding both unchanged.
type sdeValidator struct{}

// Process validates one per-item SDE (or EOF punctuation).
func (sdeValidator) Process(it streams.Item) (streams.Item, error) {
	if it.Bool(itemEOF) {
		return it, nil
	}
	if _, ok := it[itemEvent].(rtec.Event); !ok {
		return nil, fmt.Errorf("insight: SDE item without event payload")
	}
	return it, nil
}

// ProcessBatch validates a batch envelope and forwards it whole.
func (sdeValidator) ProcessBatch(b *streams.Batch) ([]streams.Item, error) {
	if err := b.Check(); err != nil {
		return nil, err
	}
	if b.Len() > 0 && b.Arrivals == nil {
		return nil, fmt.Errorf("insight: SDE batch %q without arrival column", b.Type)
	}
	return []streams.Item{streams.BatchItem(b)}, nil
}

// rtecProcessor embeds the partitioned RTEC engines in the streams
// framework. It forwards every SDE to the engines and fires query
// evaluations when the minimum arrival watermark across the *live*
// input streams passes a query boundary — at that point every SDE
// arriving by the boundary has been merged into the queue and
// consumed.
//
// Watermark liveness: with a positive staleness bound, a stream whose
// watermark trails the most advanced stream by more than the bound is
// declared degraded and excluded from the minimum, so a silent SCATS
// region cannot freeze city-wide recognition; the exclusion is
// surfaced on every report fired while it holds. A recovered stream
// rejoins the minimum, and its late SDEs re-enter recognition through
// the ordinary delayed-arrival path (they sit in pending until a
// boundary with arrival <= Q admits them, where the engines' dirty
// watermark revises the affected window) — recognition semantics stay
// exact, only boundary release timing adapts.
type rtecProcessor struct {
	system *System
	step   Time
	nextQ  Time
	until  Time
	// staleness is the per-stream liveness bound; 0 disables
	// degradation (a silent stream then blocks query boundaries until
	// end of stream, the strict-watermark behaviour).
	staleness  Time
	watermarks map[string]Time
	degraded   map[string]bool
	// pending buffers consumed SDEs until a query boundary admits
	// them: at query time Q exactly the SDEs with arrival <= Q may
	// have been delivered to the engines, as in a live deployment.
	pending []pendingSDE
	// pendingRows is the columnar counterpart of pending: row
	// references into retained transport batches, in exact consumption
	// order across streams, so boundary admission files events into
	// the engine stores in the same order the per-item path would.
	pendingRows []rowRef
	// runRows is the reusable row buffer admitRows flushes in
	// consecutive same-block runs.
	runRows []int32
	// due holds evaluated reports awaiting emission: a processor maps
	// one item to at most one item, so simultaneous boundaries drain
	// one per subsequent item; whatever is still due when the input
	// ends is released by Flush.
	due []streams.Item
	// durable, when non-nil, is the checkpoint coordinator of a durable
	// pipeline: consumption and boundary events are recorded as they
	// happen, and checkpoints are written at the processor's safe
	// points (never mid-batch, where rows past the firing one are in
	// neither the engines nor pendingRows yet).
	durable *durableRuntime
}

type pendingSDE struct {
	event   rtec.Event
	arrival Time
}

// pendingBlock retains one consumed transport batch until every row
// has been admitted past a query boundary; the aliased rtec block is
// what admission feeds to the engines. The batch is released (and the
// alias dropped) when the last row is admitted, or by Flush for rows
// beyond the final boundary.
type pendingBlock struct {
	batch   *streams.Batch
	blk     *rtec.Block
	pending int // rows not yet admitted
}

// rowRef addresses one not-yet-admitted row of a retained batch.
type rowRef struct {
	pb  *pendingBlock
	row int32
}

// Process implements streams.Processor. SDE items are consumed; when
// query boundaries become due their report items are emitted, one per
// processed item.
func (p *rtecProcessor) Process(it streams.Item) (streams.Item, error) {
	src := it.String(itemSource)
	if it.Bool(itemEOF) {
		p.watermarks[src] = p.until + p.step // unblock the final boundaries
	} else {
		ev, _ := it[itemEvent].(rtec.Event)
		arrival := Time(it.Int(itemArrival))
		p.pending = append(p.pending, pendingSDE{event: ev, arrival: arrival})
		p.watermarks[src] = arrival
	}
	if err := p.fireDue(context.Background()); err != nil {
		return nil, err
	}
	if p.durable != nil {
		if err := p.durable.maybeCheckpoint(p); err != nil {
			return nil, err
		}
	}
	if len(p.due) == 0 {
		return nil, nil
	}
	rep := p.due[0]
	p.due = p.due[1:]
	return rep, nil
}

// ProcessBatch implements streams.BatchProcessor: the columnar
// counterpart of Process. Rows are consumed strictly in order — each
// row advances its stream's watermark and re-checks due boundaries
// exactly as a per-item delivery of the same event would — so the
// sequence of (admission, evaluation) steps, and with it the CE
// output, is bit-identical to per-item transport. The batch is
// retained until boundary admission has drained it.
func (p *rtecProcessor) ProcessBatch(b *streams.Batch) ([]streams.Item, error) {
	if p.durable != nil {
		// The envelope is consumed whatever recognition does with it;
		// the cursor must say so before any boundary can fire.
		p.durable.noteConsumed(b.Source)
	}
	n := b.Len()
	if n == 0 {
		b.Release()
		return nil, nil
	}
	pb := &pendingBlock{batch: b, blk: dublin.Block(b), pending: n}
	src := b.Source
	if p.batchCantFire(src, b.Arrivals[n-1]) {
		// No query boundary can become due anywhere inside this batch,
		// so the per-row watermark walk is unobservable: every row just
		// joins the pending set and the stream's watermark ends at the
		// batch's last arrival — exactly the state the per-row loop
		// leaves behind.
		for i := 0; i < n; i++ {
			p.pendingRows = append(p.pendingRows, rowRef{pb: pb, row: int32(i)})
		}
		p.watermarks[src] = Time(b.Arrivals[n-1])
	} else {
		for i := 0; i < n; i++ {
			p.pendingRows = append(p.pendingRows, rowRef{pb: pb, row: int32(i)})
			p.watermarks[src] = Time(b.Arrivals[i])
			if err := p.fireDue(context.Background()); err != nil {
				return nil, err
			}
		}
	}
	out := p.due
	p.due = nil
	if p.durable != nil {
		// Safe point: every row of every consumed record is now in the
		// engines or in pendingRows. The reports in out are re-derivable
		// if this errors — the epoch dies with them unemitted, and
		// replay from the previous checkpoint re-fires their boundaries.
		if err := p.durable.maybeCheckpoint(p); err != nil {
			return out, err
		}
	}
	return out, nil
}

// batchCantFire reports whether advancing src's arrival watermark to
// last — the batch's final row — provably cannot release any query
// boundary, in which case ProcessBatch may skip the per-row fireDue
// walk. The check is conservative: it bounds the effective watermark
// from above by giving src its final value and excluding the maximal
// possible degraded set (degradation only ever excludes the laggards,
// which raises the minimum). Degradation state itself is recomputed
// from the current watermarks on every fireDue call, so skipping the
// interim recomputations is unobservable.
func (p *rtecProcessor) batchCantFire(src string, last int64) bool {
	if p.nextQ > p.until {
		return true // no boundaries left; Flush owns the leftovers
	}
	maxW := Time(last)
	for id, w := range p.watermarks {
		if id != src && w > maxW {
			maxW = w
		}
	}
	watermark := Time(0)
	first := true
	for id, w := range p.watermarks {
		if id == src {
			w = Time(last)
		}
		if p.staleness > 0 && maxW-w > p.staleness {
			continue
		}
		if first || w < watermark {
			watermark, first = w, false
		}
	}
	if first {
		return false // every stream excluded; let fireDue decide
	}
	return watermark <= p.nextQ
}

// admitRows delivers every pending batch row with arrival <= q to the
// engines, in pending order, flushing consecutive same-block runs as
// one InputBlockRows call. Batches whose last row is admitted are
// released back to the transport pool.
func (p *rtecProcessor) admitRows(q Time) (int, error) {
	if len(p.pendingRows) == 0 {
		return 0, nil
	}
	fed := 0
	kept := p.pendingRows[:0]
	var runPB *pendingBlock
	var drained []*pendingBlock
	p.runRows = p.runRows[:0]
	flushRun := func() error {
		if runPB == nil || len(p.runRows) == 0 {
			return nil
		}
		err := p.system.engines.InputBlockRows(runPB.blk, p.runRows)
		p.runRows = p.runRows[:0]
		return err
	}
	for _, ref := range p.pendingRows {
		if Time(ref.pb.batch.Arrivals[ref.row]) > q {
			kept = append(kept, ref)
			continue
		}
		if ref.pb != runPB {
			if err := flushRun(); err != nil {
				return fed, err
			}
			runPB = ref.pb
		}
		p.runRows = append(p.runRows, ref.row)
		if ref.pb.blk.Type == traffic.TrafficType {
			//lint:allow hotalloc view Event is a stack value; noteTraffic reads two cells, no map is built
			p.system.noteTraffic(ref.pb.blk.Event(int(ref.row)))
		}
		fed++
		if ref.pb.pending--; ref.pb.pending == 0 {
			drained = append(drained, ref.pb)
		}
	}
	if err := flushRun(); err != nil {
		return fed, err
	}
	p.pendingRows = kept
	// Safe only now: the engines copied every admitted row above.
	for _, pb := range drained {
		pb.blk = nil
		pb.batch.Release()
	}
	return fed, nil
}

// fireDue evaluates every query boundary the minimum arrival watermark
// across the live input streams has passed: at that point all SDEs
// arriving by those boundaries have been consumed from the merge
// queue (modulo degraded streams, whose lateness is flagged on the
// report instead of withholding it).
func (p *rtecProcessor) fireDue(ctx context.Context) error {
	// The liveness rule: a stream trailing the most advanced one by
	// more than the staleness bound is degraded and excluded from the
	// minimum; it rejoins as soon as its watermark catches back up.
	maxW := Time(0)
	first := true
	for _, w := range p.watermarks {
		if first || w > maxW {
			maxW, first = w, false
		}
	}
	if p.staleness > 0 {
		for id, w := range p.watermarks {
			if maxW-w > p.staleness {
				p.degraded[id] = true
			} else {
				delete(p.degraded, id)
			}
		}
	}
	watermark := Time(0)
	first = true
	for id, w := range p.watermarks {
		if p.degraded[id] {
			continue
		}
		if first || w < watermark {
			watermark, first = w, false
		}
	}
	var degradedIDs []string
	for id := range p.degraded {
		degradedIDs = append(degradedIDs, id)
	}
	sort.Strings(degradedIDs)
	// Strictly greater: with equal arrival timestamps the merge queue
	// may still hold a sibling item stamped exactly at the boundary.
	for p.nextQ <= p.until && watermark > p.nextQ {
		q := p.nextQ
		p.nextQ += p.step
		// Deliver exactly the SDEs that have arrived by q.
		kept := p.pending[:0]
		fed := 0
		for _, ps := range p.pending {
			if ps.arrival <= q {
				if err := p.system.engines.Input(ps.event); err != nil {
					return err
				}
				if ps.event.Type == traffic.TrafficType {
					p.system.noteTraffic(ps.event)
				}
				fed++
			} else {
				kept = append(kept, ps)
			}
		}
		p.pending = kept
		fedRows, err := p.admitRows(q)
		if err != nil {
			return err
		}
		fed += fedRows
		rep, err := p.system.evaluate(ctx, q, fed, false)
		if err != nil {
			return err
		}
		rep.DegradedStreams = append([]string(nil), degradedIDs...)
		rep.WatermarkLag = maxW - q
		p.due = append(p.due, streams.Item{itemReport: rep})
		if p.durable != nil {
			p.durable.noteBoundary(rep)
		}
	}
	return nil
}

// Flush implements streams.Flusher: when the merge queue is
// exhausted, every input stream is over, so all remaining query
// boundaries are due — lift the watermarks past the end and release
// the backlog of reports in one go.
func (p *rtecProcessor) Flush() ([]streams.Item, error) {
	for id := range p.watermarks {
		p.watermarks[id] = p.until + p.step
	}
	if err := p.fireDue(context.Background()); err != nil {
		return nil, err
	}
	if p.durable != nil {
		// Checkpoint before the leftover rows are released: encoding
		// them needs their blocks still live.
		if err := p.durable.maybeCheckpoint(p); err != nil {
			return nil, err
		}
	}
	// Rows arriving after the final boundary are never admitted (the
	// per-item path leaves their events in pending the same way);
	// return their transport buffers to the pool.
	for _, ref := range p.pendingRows {
		if ref.pb.blk != nil {
			ref.pb.blk = nil
			ref.pb.batch.Release()
		}
	}
	p.pendingRows = nil
	out := p.due
	p.due = nil
	return out, nil
}

// Run executes the pipeline and returns the reports in query-time
// order.
func (p *Pipeline) Run(ctx context.Context) ([]*Report, error) {
	err := p.Topology.Run(ctx)
	if p.durable != nil {
		err = errors.Join(err, p.durable.log.Close())
	}
	if err != nil {
		return nil, err
	}
	items := p.Reports.Items()
	reports := make([]*Report, 0, len(items))
	for _, it := range items {
		rep, ok := it[itemReport].(*Report)
		if !ok {
			return nil, fmt.Errorf("insight: malformed report item %v", it)
		}
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Q < reports[j].Q })
	return reports, nil
}
