package insight

import (
	"context"
	"fmt"
	"sort"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// Pipeline assembles the system as a Streams data-flow graph, the
// architecture of Section 3 of the paper:
//
//   - input handling processes: "all SDEs emitted by buses form one
//     stream, while the SDEs emitted by vehicle detectors of a SCATS
//     system are referenced by four streams, one per region of Dublin
//     city" — five sources feeding one SDE queue;
//   - an event processing process whose processor embeds the RTEC
//     engines, triggered by watermark punctuation: a query time fires
//     once every input stream's arrival clock has passed it, which is
//     exactly when all SDEs arriving by that query time have been
//     merged (delayed SDEs are then handled by WM > step as usual);
//   - a crowdsourcing process whose processor turns fresh disagreement
//     CEs into participant queries and merges the responses;
//   - the traffic modelling procedure registered as a Streams service.
//
// Reports flow to the returned collector sink, one item per query time
// under key "report".
type Pipeline struct {
	Topology *streams.Topology
	Reports  *streams.CollectorSink
	system   *System
}

// Item attribute keys used by the pipeline.
const (
	itemEvent   = "event"   // rtec.Event payload
	itemArrival = "arrival" // arrival time (int64)
	itemSource  = "source"  // originating stream id
	itemEOF     = "eof"     // end-of-stream punctuation
	itemReport  = "report"  // *Report payload
)

// BuildPipeline constructs the Figure 1 data-flow graph over the
// system for SDEs occurring in [from, until). Run it with
// Pipeline.Topology.Run; afterwards Pipeline.Reports holds one item
// per query time.
func (s *System) BuildPipeline(from, until Time) (*Pipeline, error) {
	sdes := s.city.Collect(from, until)

	// Split into the paper's five input streams, each arrival-ordered
	// (Collect already sorted globally, so per-stream order is kept).
	streamIDs := []string{"bus", "scats-central", "scats-north", "scats-west", "scats-south"}
	perStream := make(map[string][]streams.Item, len(streamIDs))
	for _, sde := range sdes {
		id := "bus"
		if sde.Event.Type == traffic.TrafficType {
			id = "scats-" + geo.Region(dublin.PartitionOf(sde.Event)).String()
		}
		perStream[id] = append(perStream[id], streams.Item{
			itemEvent:   sde.Event,
			itemArrival: int64(sde.Arrival),
			itemSource:  id,
		})
	}
	// End-of-stream punctuation: enough trailing markers per stream
	// for the event processor to flush one buffered report per marker
	// once the watermarks stop advancing.
	boundaries := int((until-from)/s.cfg.Step) + 2
	top := streams.NewTopology()
	for _, id := range streamIDs {
		items := perStream[id]
		for i := 0; i < boundaries; i++ {
			items = append(items, streams.Item{itemSource: id, itemEOF: true})
		}
		if err := top.AddStream(id, streams.NewSliceSource(items...)); err != nil {
			return nil, err
		}
	}

	sdeQueue := "sdes"
	if _, err := top.AddQueue(sdeQueue, 4096); err != nil {
		return nil, err
	}
	reportQueue := "reports"
	if _, err := top.AddQueue(reportQueue, 64); err != nil {
		return nil, err
	}
	sink := streams.NewCollectorSink()
	if err := top.AddSink("operator", sink); err != nil {
		return nil, err
	}

	// Input handling processes: one per stream, validating and
	// forwarding into the shared SDE queue.
	validate := streams.ProcessorFunc(func(it streams.Item) (streams.Item, error) {
		if it.Bool(itemEOF) {
			return it, nil
		}
		if _, ok := it[itemEvent].(rtec.Event); !ok {
			return nil, fmt.Errorf("insight: SDE item without event payload")
		}
		return it, nil
	})
	for _, id := range streamIDs {
		if err := top.AddProcess("input-"+id, id, sdeQueue, validate); err != nil {
			return nil, err
		}
	}

	// The monitoring process: a sequence of two processors, as in the
	// Streams idiom of "processes comprise a sequence of processors".
	// The first embeds the RTEC engines with watermark punctuation and
	// emits a report item per query boundary; the second is the
	// crowdsourcing processor — it resolves the fresh disagreements of
	// each report and feeds the verdicts back into the engines before
	// the next boundary is evaluated, exactly like the synchronous
	// loop (and like the paper's feedback edge in Figure 1).
	rtecProc := &rtecProcessor{
		system:     s,
		step:       s.cfg.Step,
		nextQ:      from + s.cfg.Step,
		until:      until,
		watermarks: make(map[string]Time, len(streamIDs)),
		expected:   len(streamIDs),
	}
	crowdProc := streams.ProcessorFunc(func(it streams.Item) (streams.Item, error) {
		rep, ok := it[itemReport].(*Report)
		if !ok {
			return nil, fmt.Errorf("insight: report item without payload")
		}
		if s.qeeEngine != nil {
			rounds, err := s.resolveDisagreements(context.Background(), rep.Q, rep.Result)
			if err != nil {
				return nil, err
			}
			rep.CrowdRounds = rounds
		}
		return it, nil
	})
	if err := top.AddProcess("monitoring", sdeQueue, reportQueue, rtecProc, crowdProc); err != nil {
		return nil, err
	}

	// Output handling: forward finished reports to the operator sink.
	forward := streams.ProcessorFunc(func(it streams.Item) (streams.Item, error) { return it, nil })
	if err := top.AddProcess("operator-output", reportQueue, "operator", forward); err != nil {
		return nil, err
	}

	// Traffic modelling as a Streams service (Section 3: "the
	// procedure for making congestion estimates at locations with low
	// sensor coverage is wrapped as a Streams service").
	if err := top.RegisterService("trafficModel", TrafficModelService(s.FlowMap)); err != nil {
		return nil, err
	}

	return &Pipeline{Topology: top, Reports: sink, system: s}, nil
}

// TrafficModelService is the service type under which the traffic
// modelling procedure is registered in the pipeline topology.
type TrafficModelService func(MapConfig) (*FlowEstimate, error)

// rtecProcessor embeds the partitioned RTEC engines in the streams
// framework. It forwards every SDE to the engines and fires query
// evaluations when the minimum arrival watermark across the input
// streams passes a query boundary — at that point every SDE arriving
// by the boundary has been merged into the queue and consumed.
type rtecProcessor struct {
	system     *System
	step       Time
	nextQ      Time
	until      Time
	watermarks map[string]Time
	expected   int
	// pending buffers consumed SDEs until a query boundary admits
	// them: at query time Q exactly the SDEs with arrival <= Q may
	// have been delivered to the engines, as in a live deployment.
	pending []pendingSDE
	// due holds evaluated reports awaiting emission: a processor maps
	// one item to at most one item, so simultaneous boundaries drain
	// one per subsequent item (the punctuation padding guarantees
	// enough of them).
	due []streams.Item
}

type pendingSDE struct {
	event   rtec.Event
	arrival Time
}

// Process implements streams.Processor. SDE items are consumed; when
// query boundaries become due their report items are emitted, one per
// processed item.
func (p *rtecProcessor) Process(it streams.Item) (streams.Item, error) {
	src := it.String(itemSource)
	if it.Bool(itemEOF) {
		p.watermarks[src] = p.until + p.step // unblock the final boundaries
	} else {
		ev, _ := it[itemEvent].(rtec.Event)
		arrival := Time(it.Int(itemArrival))
		p.pending = append(p.pending, pendingSDE{event: ev, arrival: arrival})
		p.watermarks[src] = arrival
	}
	if err := p.fireDue(context.Background()); err != nil {
		return nil, err
	}
	if len(p.due) == 0 {
		return nil, nil
	}
	rep := p.due[0]
	p.due = p.due[1:]
	return rep, nil
}

// fireDue evaluates every query boundary the minimum arrival watermark
// across the input streams has passed: at that point all SDEs arriving
// by those boundaries have been consumed from the merge queue.
func (p *rtecProcessor) fireDue(ctx context.Context) error {
	if len(p.watermarks) < p.expected {
		return nil // not every stream has reported yet
	}
	watermark := Time(0)
	first := true
	for _, w := range p.watermarks {
		if first || w < watermark {
			watermark, first = w, false
		}
	}
	// Strictly greater: with equal arrival timestamps the merge queue
	// may still hold a sibling item stamped exactly at the boundary.
	for p.nextQ <= p.until && watermark > p.nextQ {
		q := p.nextQ
		p.nextQ += p.step
		// Deliver exactly the SDEs that have arrived by q.
		kept := p.pending[:0]
		fed := 0
		for _, ps := range p.pending {
			if ps.arrival <= q {
				if err := p.system.engines.Input(ps.event); err != nil {
					return err
				}
				if ps.event.Type == traffic.TrafficType {
					p.system.noteTraffic(ps.event)
				}
				fed++
			} else {
				kept = append(kept, ps)
			}
		}
		p.pending = kept
		rep, err := p.system.evaluate(ctx, q, fed, false)
		if err != nil {
			return err
		}
		p.due = append(p.due, streams.Item{itemReport: rep})
	}
	return nil
}

// Run executes the pipeline and returns the reports in query-time
// order.
func (p *Pipeline) Run(ctx context.Context) ([]*Report, error) {
	if err := p.Topology.Run(ctx); err != nil {
		return nil, err
	}
	items := p.Reports.Items()
	reports := make([]*Report, 0, len(items))
	for _, it := range items {
		rep, ok := it[itemReport].(*Report)
		if !ok {
			return nil, fmt.Errorf("insight: malformed report item %v", it)
		}
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Q < reports[j].Q })
	return reports, nil
}
