package traffic

import (
	"testing"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.DensityThreshold != 0.35 || cfg.FlowThreshold != 600 {
		t.Errorf("threshold defaults: %+v", cfg)
	}
	if cfg.MinCongestedSensors != 2 {
		t.Errorf("MinCongestedSensors default = %d", cfg.MinCongestedSensors)
	}
	if cfg.DelayIncreaseSeconds != 60 || cfg.DelayIncreaseWindow != 90 {
		t.Errorf("delayIncrease defaults: %+v", cfg)
	}
	if cfg.CrowdWindow != 600 {
		t.Errorf("CrowdWindow default = %d", cfg.CrowdWindow)
	}
	if cfg.TrendEpsilon != 0.10 {
		t.Errorf("TrendEpsilon default = %v", cfg.TrendEpsilon)
	}
}

func TestBuildWithExtension(t *testing.T) {
	defs, err := BuildWith(Config{Registry: testRegistry(t)}, func(b *rtec.Builder) {
		b.Event(rtec.EventRule{
			Name:   "customAlert",
			Inputs: []string{ScatsIntCongestion},
			Derive: func(ctx *rtec.Context) []rtec.Event {
				var out []rtec.Event
				for kv, l := range ctx.FluentInstances(ScatsIntCongestion) {
					for _, span := range l {
						out = append(out, rtec.NewEvent("customAlert", span.Start, kv.Key, nil))
					}
				}
				return out
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 3600})
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, e,
		congestedReading(100, "s1", "i1"),
		congestedReading(100, "s2", "i1"),
	)
	res := query(t, e, 3599)
	if len(res.Derived["customAlert"]) != 1 {
		t.Errorf("custom CE not recognised: %v", res.Derived["customAlert"])
	}
}

func TestBuildWithExtensionNameClash(t *testing.T) {
	_, err := BuildWith(Config{Registry: testRegistry(t)}, func(b *rtec.Builder) {
		b.Event(rtec.EventRule{
			Name:   Disagree, // clashes with the library definition
			Inputs: []string{MoveType},
			Derive: func(*rtec.Context) []rtec.Event { return nil },
		})
	})
	if err == nil {
		t.Error("extension clashing with a library name must fail to compile")
	}
}

func TestTrendFromZeroBaseline(t *testing.T) {
	e := newEngine(t, Config{})
	mustInput(t, e,
		Traffic(100, "s1", "i1", "A1", 0.0, 0),   // zero flow and density
		Traffic(460, "s1", "i1", "A1", 0.2, 500), // both now positive
		Traffic(820, "s1", "i1", "A1", 0.2, 500), // unchanged
	)
	res := query(t, e, 3599)
	flow := res.Fluents[FlowTrend]
	if !flow[rtec.KV{Key: "s1", Value: TrendRising}].Contains(500) {
		t.Error("0 -> positive must count as rising")
	}
	if !flow[rtec.KV{Key: "s1", Value: TrendSteady}].Contains(900) {
		t.Error("unchanged reading must be steady")
	}
	// Zero to zero is steady, not rising.
	e2 := newEngine(t, Config{})
	mustInput(t, e2,
		Traffic(100, "s1", "i1", "A1", 0.0, 0),
		Traffic(460, "s1", "i1", "A1", 0.0, 0),
	)
	res2 := query(t, e2, 3599)
	if !res2.Fluents[FlowTrend][rtec.KV{Key: "s1", Value: TrendSteady}].Contains(500) {
		t.Error("0 -> 0 must be steady")
	}
}

func TestDelayIncreaseExactThresholds(t *testing.T) {
	e := newEngine(t, Config{}) // d = 60, t = 90
	mustInput(t, e,
		Move(100, "b1", "r", "o", 0, nearI1, 0, false),
		Move(190, "b1", "r", "o", 100, nearI1, 0, false), // dt = 90: NOT < t
		Move(200, "b1", "r", "o", 160, nearI1, 0, false), // growth = 60: NOT > d
		Move(210, "b1", "r", "o", 221, nearI1, 0, false), // growth 61 in 10 s: fires
	)
	res := query(t, e, 3599)
	evs := res.Derived[DelayIncrease]
	if len(evs) != 1 || evs[0].Time != 210 {
		t.Errorf("delayIncrease = %v, want exactly the third pair", evs)
	}
}

func TestMoveEventMissingCoordinates(t *testing.T) {
	// A malformed move SDE without coordinates must be skipped, not
	// crash the rules.
	e := newEngine(t, Config{Adaptive: true, NoisyPolicy: Pessimistic})
	bad := rtec.NewEvent(MoveType, 100, "b1", map[string]any{"congested": true})
	if err := e.Input(bad); err != nil {
		t.Fatal(err)
	}
	res := query(t, e, 3599)
	if len(res.Fluents[BusCongestion]) != 0 {
		t.Error("coordinate-less move must not create congestion")
	}
	if len(res.Derived[Disagree]) != 0 {
		t.Error("coordinate-less move must not disagree")
	}
}

func TestBusOnIntersectionBoundaryBothSides(t *testing.T) {
	// A bus exactly at the close-threshold distance is still "close"
	// (the predicate is <=).
	reg, err := NewRegistry([]Intersection{{ID: "i", Pos: posI1, Sensors: []string{"s"}}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Find a point very near 100 m north of posI1.
	at := geo.At(posI1.Lat+100/111195.0, posI1.Lon)
	d := geo.Distance(posI1, at)
	if d > 100 {
		// Nudge inside the threshold.
		at = geo.At(posI1.Lat+99/111195.0, posI1.Lon)
	}
	defs, err := Build(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 1000})
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, e, Move(100, "b", "r", "o", 0, at, 0, true))
	res := query(t, e, 999)
	if !res.HoldsAt(BusCongestion, "i", 200) {
		t.Error("bus just inside the close threshold must report congestion")
	}
}

func TestNoisyCrowdAtWindowEdgeExcluded(t *testing.T) {
	// dt == CrowdWindow exactly: the condition is 0 < T'-T < threshold,
	// strictly, so the verdict is ignored.
	e := newEngine(t, Config{NoisyPolicy: CrowdValidated, CrowdWindow: 100})
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		CrowdVerdict(200, "i1", Negative), // dt = 100 == window
	)
	res := query(t, e, 3599)
	if res.HoldsAt(Noisy, "b1", 300) {
		t.Error("crowd verdict exactly at the window edge must be excluded")
	}

	// dt == 0: also excluded (0 < T'-T).
	e2 := newEngine(t, Config{NoisyPolicy: CrowdValidated, CrowdWindow: 100})
	mustInput(t, e2,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		CrowdVerdict(100, "i1", Negative),
	)
	res2 := query(t, e2, 3599)
	if res2.HoldsAt(Noisy, "b1", 300) {
		t.Error("crowd verdict simultaneous with the disagreement must be excluded")
	}
}

func TestMultipleIntersectionsWithinCloseRange(t *testing.T) {
	// Two intersections within the close radius of the same bus
	// position: both receive busCongestion and both can disagree.
	posNear := geo.At(53.3500, -6.2600)
	posNear2 := geo.At(53.3504, -6.2600) // ~45 m away
	reg, err := NewRegistry([]Intersection{
		{ID: "a", Pos: posNear, Sensors: []string{"sa"}},
		{ID: "b", Pos: posNear2, Sensors: []string{"sb"}},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := Build(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 1000})
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, e, Move(100, "bus", "r", "o", 0, posNear, 0, true))
	res := query(t, e, 999)
	if !res.HoldsAt(BusCongestion, "a", 200) || !res.HoldsAt(BusCongestion, "b", 200) {
		t.Error("both nearby intersections must be marked")
	}
	if len(res.Derived[Disagree]) != 2 {
		t.Errorf("expected two disagree events, got %v", res.Derived[Disagree])
	}
}

func TestStructuredIntersectionCongestion(t *testing.T) {
	// An intersection with two approaches: north (sensors sN1, sN2)
	// and south (sensor sS1). Structured definition with
	// MinCongestedApproaches = 2: congestion requires BOTH approaches,
	// but any one sensor congests its approach.
	reg, err := NewRegistry([]Intersection{{
		ID:      "x",
		Pos:     posI1,
		Sensors: []string{"sN1", "sN2", "sS1"},
		SensorApproach: map[string]string{
			"sN1": "north", "sN2": "north", "sS1": "south",
		},
	}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := Build(Config{Registry: reg, StructuredIntersections: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 3600})
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, e,
		// Both north sensors congested: only ONE approach.
		congestedReading(100, "sN1", "x"),
		congestedReading(100, "sN2", "x"),
		// South joins later.
		congestedReading(500, "sS1", "x"),
	)
	res := query(t, e, 3599)

	if !res.HoldsAt(ScatsApproachCongestion, ApproachKey("x", "north"), 200) {
		t.Error("north approach must be congested from its sensors")
	}
	if res.HoldsAt(ScatsApproachCongestion, ApproachKey("x", "south"), 200) {
		t.Error("south approach must not be congested yet")
	}
	if res.HoldsAt(ScatsIntCongestion, "x", 200) {
		t.Error("one congested approach of two must not congest the intersection")
	}
	if !res.HoldsAt(ScatsIntCongestion, "x", 600) {
		t.Error("both approaches congested must congest the intersection")
	}

	// Compare with the FLAT definition: n=2 sensors is already met at
	// t=200 (both north sensors) even though only one approach is
	// affected — the structured definition is strictly more demanding
	// here.
	flatDefs, err := Build(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := rtec.NewEngine(flatDefs, rtec.Options{WorkingMemory: 3600})
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, fe,
		congestedReading(100, "sN1", "x"),
		congestedReading(100, "sN2", "x"),
		congestedReading(500, "sS1", "x"),
	)
	fres := query(t, fe, 3599)
	if !fres.HoldsAt(ScatsIntCongestion, "x", 200) {
		t.Error("flat definition should already fire on two sensors of one approach")
	}
}

func TestStructuredWithoutApproachMap(t *testing.T) {
	// Sensors without approach labels each form their own approach:
	// the structured definition then degrades to per-sensor counting.
	reg, err := NewRegistry([]Intersection{{
		ID: "y", Pos: posI2, Sensors: []string{"a", "b"},
	}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := Build(Config{Registry: reg, StructuredIntersections: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 3600})
	if err != nil {
		t.Fatal(err)
	}
	mustInput(t, e,
		congestedReading(100, "a", "y"),
		congestedReading(400, "b", "y"),
	)
	res := query(t, e, 3599)
	if res.HoldsAt(ScatsIntCongestion, "y", 200) {
		t.Error("one of two implicit approaches must not suffice")
	}
	if !res.HoldsAt(ScatsIntCongestion, "y", 500) {
		t.Error("both implicit approaches congested must congest the intersection")
	}
}

func TestCongestionInTheMake(t *testing.T) {
	e := newEngine(t, Config{}) // pre-threshold 0.20, congested at 0.35/600
	mustInput(t, e,
		Traffic(100, "s1", "i1", "A1", 0.10, 1300), // calm
		Traffic(460, "s1", "i1", "A1", 0.16, 1200), // rising but below pre-threshold
		Traffic(820, "s1", "i1", "A1", 0.25, 1000), // rising AND elevated → in-the-make
		Traffic(1180, "s1", "i1", "A1", 0.60, 300), // fully congested → no longer "in the make"
	)
	res := query(t, e, 3599)
	got := res.Intervals(CongestionInMake, "s1")
	want := rtec.List{{Start: 821, End: 1181}}
	if !got.Equal(want) {
		t.Errorf("congestionInTheMake = %v, want %v", got, want)
	}
	// And the full congestion takes over afterwards.
	if !res.HoldsAt(ScatsCongestion, "s1", 1300) {
		t.Error("scatsCongestion must hold once thresholds are crossed")
	}
}

func TestCongestionInTheMakeRequiresRisingTrend(t *testing.T) {
	e := newEngine(t, Config{})
	mustInput(t, e,
		Traffic(100, "s1", "i1", "A1", 0.30, 1000), // elevated from the start
		Traffic(460, "s1", "i1", "A1", 0.30, 1000), // steady, not rising
	)
	res := query(t, e, 3599)
	if len(res.Intervals(CongestionInMake, "s1")) != 0 {
		t.Errorf("steady density must not count as in-the-make: %v",
			res.Intervals(CongestionInMake, "s1"))
	}
}

func TestRushIntervals(t *testing.T) {
	rush := [][2]float64{{7, 10}, {16, 19}}
	day := rtec.Time(24 * 3600)
	// A span covering a day and a half starting at midnight.
	got := rushIntervals(rush, rtec.Span{Start: 0, End: day + day/2})
	want := rtec.List{
		{Start: 7 * 3600, End: 10 * 3600},
		{Start: 16 * 3600, End: 19 * 3600},
		{Start: day + 7*3600, End: day + 10*3600},
	}
	// The second day's evening window is beyond the span but included
	// by day granularity; normalize both and compare coverage at
	// sample points instead of exact lists.
	for _, probe := range []struct {
		t    rtec.Time
		want bool
	}{
		{8 * 3600, true}, {12 * 3600, false}, {17 * 3600, true},
		{23 * 3600, false}, {day + 8*3600, true}, {day + 11*3600, false},
	} {
		if got.Contains(probe.t) != probe.want {
			t.Errorf("rush at %d = %v, want %v", probe.t, got.Contains(probe.t), probe.want)
		}
	}
	_ = want
}

func TestUnusualCongestion(t *testing.T) {
	e := newEngine(t, Config{}) // rush: 7-10 and 16-19
	// Congestion at 03:00 (unusual) and at 08:00 (expected), same
	// intersection on different days? Use the same window: WM is 3600
	// in newEngine; use two separate engines instead.
	mustInput(t, e,
		congestedReading(3*3600, "s1", "i1"),
		congestedReading(3*3600, "s2", "i1"),
		freeReading(3*3600+900, "s1", "i1"),
		freeReading(3*3600+900, "s2", "i1"),
	)
	res := query(t, e, 3*3600+1800)
	if !res.HoldsAt(UnusualCongestion, "i1", 3*3600+600) {
		t.Error("night congestion must be unusual")
	}

	e2 := newEngine(t, Config{})
	mustInput(t, e2,
		congestedReading(8*3600, "s1", "i1"),
		congestedReading(8*3600, "s2", "i1"),
	)
	res2 := query(t, e2, 8*3600+1800)
	if !res2.HoldsAt(ScatsIntCongestion, "i1", 8*3600+600) {
		t.Fatal("rush congestion must be recognised")
	}
	if res2.HoldsAt(UnusualCongestion, "i1", 8*3600+600) {
		t.Error("rush-hour congestion must NOT be unusual")
	}
}

func TestUnusualCongestionCrossesRushBoundary(t *testing.T) {
	// Congestion starting inside the morning rush and persisting past
	// its end becomes unusual exactly at 10:00.
	e := newEngine(t, Config{})
	mustInput(t, e,
		congestedReading(9*3600+2700, "s1", "i1"), // 09:45
		congestedReading(9*3600+2700, "s2", "i1"),
	)
	res := query(t, e, 10*3600+1200) // 10:20
	if res.HoldsAt(UnusualCongestion, "i1", 9*3600+3000) {
		t.Error("09:50 congestion is still within rush")
	}
	if !res.HoldsAt(UnusualCongestion, "i1", 10*3600+600) {
		t.Error("10:10 congestion must be unusual")
	}
}
