package traffic

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/insight-dublin/insight/rtec"
)

// TestIncrementalEquivalenceDublin drives a seeded synthetic Dublin
// stream (move + traffic + crowd SDEs, with arrival delays) through
// the full-recompute and incremental engines over the real CE
// definition set and asserts identical recognition at every query
// time, for both noisy policies and both busCongestion variants.
func TestIncrementalEquivalenceDublin(t *testing.T) {
	const (
		wm   = rtec.Time(1800)
		step = rtec.Time(450) // WM = 4·Step
	)
	configs := []struct {
		name string
		cfg  Config
	}{
		{"crowd-validated", Config{NoisyPolicy: CrowdValidated}},
		{"pessimistic-adaptive", Config{NoisyPolicy: Pessimistic, Adaptive: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Registry = testRegistry(t)
			defs, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(force bool) *rtec.Engine {
				e, err := rtec.NewEngine(defs, rtec.Options{
					WorkingMemory:      wm,
					Step:               step,
					ForceFullRecompute: force,
				})
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			full, inc := mk(true), mk(false)

			rng := rand.New(rand.NewSource(99))
			type timed struct {
				ev      rtec.Event
				arrival rtec.Time
			}
			var stream []timed
			buses := []string{"b1", "b2", "b3"}
			sensors := []struct{ sensor, inter string }{
				{"s1", "i1"}, {"s2", "i1"}, {"s3", "i2"},
			}
			for i := 0; i < 900; i++ {
				tm := rtec.Time(rng.Int63n(6*int64(wm))) + 1
				delay := rtec.Time(rng.Int63n(int64(step)))
				var ev rtec.Event
				switch rng.Intn(5) {
				case 0, 1: // bus move near an intersection or far away
					pos := nearI1
					switch rng.Intn(3) {
					case 1:
						pos = nearI2
					case 2:
						pos = farAway
					}
					ev = Move(tm, buses[rng.Intn(len(buses))], "L1", "op", rng.Int63n(300), pos, 1, rng.Intn(2) == 0)
				case 2, 3: // sensor reading around the thresholds
					s := sensors[rng.Intn(len(sensors))]
					ev = Traffic(tm, s.sensor, s.inter, "A1", 0.1+0.5*rng.Float64(), 200+1000*rng.Float64())
				default: // crowd verdict
					val := Negative
					if rng.Intn(2) == 0 {
						val = Positive
					}
					ev = CrowdVerdict(tm, []string{"i1", "i2"}[rng.Intn(2)], val)
				}
				stream = append(stream, timed{ev: ev, arrival: tm + delay})
			}
			sort.SliceStable(stream, func(i, j int) bool { return stream[i].arrival < stream[j].arrival })

			canon := func(evs []rtec.Event) []string {
				out := make([]string, len(evs))
				for i, e := range evs {
					out[i] = fmt.Sprintf("%s|%s|%d|%v", e.Type, e.Key, int64(e.Time), e.Attrs)
				}
				sort.Strings(out)
				return out
			}

			cursor := 0
			for q := wm; q <= 6*wm; q += step {
				for cursor < len(stream) && stream[cursor].arrival <= q {
					mustInput(t, full, stream[cursor].ev)
					mustInput(t, inc, stream[cursor].ev)
					cursor++
				}
				want := query(t, full, q)
				got := query(t, inc, q)
				if !reflect.DeepEqual(got.Fluents, want.Fluents) {
					t.Fatalf("fluents diverge at q=%d", q)
				}
				if len(got.Derived) != len(want.Derived) {
					t.Fatalf("derived type sets diverge at q=%d", q)
				}
				for typ := range want.Derived {
					if !reflect.DeepEqual(canon(got.Derived[typ]), canon(want.Derived[typ])) {
						t.Fatalf("derived %q diverge at q=%d", typ, q)
					}
				}
				if !reflect.DeepEqual(canon(got.Fresh), canon(want.Fresh)) {
					t.Fatalf("fresh diverge at q=%d", q)
				}
			}
		})
	}
}
