// Package traffic contains the complex event definitions of the
// INSIGHT Dublin deployment (Section 4.3 of Artikis et al., EDBT
// 2014), expressed over the rtec engine:
//
//   - scatsCongestion — congestion at a single SCATS sensor, from
//     density/flow thresholds (rule-set 2);
//   - scatsIntCongestion — congestion at a SCATS intersection, when at
//     least n of its sensors are congested;
//   - busCongestion — congestion at an area of interest reported by
//     buses (rule-set 3), with the self-adaptive variant that discards
//     unreliable buses (rule-set 3′);
//   - sourceDisagreement — maximal intervals during which buses and
//     SCATS sensors disagree on congestion (the trigger for
//     crowdsourcing);
//   - disagree / agree — instantaneous bus-vs-SCATS (dis)agreement
//     events;
//   - noisy — the bus-unreliability fluent, in both the
//     crowd-validated form (rule-set 4) and the pessimistic form
//     (rule-set 5);
//   - delayIncrease — sharp increase in a bus's delay (Section 4.1);
//   - flowTrend / densityTrend — per-sensor trend fluents for
//     proactive decision-making;
//   - congestionInTheMake — elevated, still-rising density that has
//     not crossed the congestion thresholds yet (the proactive
//     monitoring of Section 1);
//   - unusualCongestion — intersection congestion outside the expected
//     rush hours (the INSIGHT project's unusual-event detection goal);
//   - scatsApproachCongestion — the structured sensor → approach →
//     intersection congestion hierarchy (Config.StructuredIntersections);
//   - noisyScats — crowd-based SCATS reliability evaluation (sketched
//     at the end of Section 4.3).
//
// The package also defines the SDE vocabulary: constructors for the
// move (bus), traffic (SCATS) and crowd input events, and the
// intersection registry that ties sensors and coordinates together.
package traffic

import (
	"fmt"
	"math"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
)

// SDE type names.
const (
	// MoveType is the bus SDE: move(Bus, Line, Operator, Delay)
	// combined with the simultaneous gps(Bus, Lon, Lat, Direction,
	// Congestion) fluent sample of formalisation (1). The Dublin bus
	// feed delivers both in one record, so the Go representation
	// carries the gps attributes on the move event.
	MoveType = "move"
	// TrafficType is the SCATS SDE: traffic(Int, A, S, D, F).
	TrafficType = "traffic"
	// CrowdType is the crowdsourcing verdict event:
	// crowd(LonInt, LatInt, Val).
	CrowdType = "crowd"
)

// Derived CE names.
const (
	ScatsCongestion         = "scatsCongestion"
	ScatsApproachCongestion = "scatsApproachCongestion"
	ScatsIntCongestion      = "scatsIntCongestion"
	BusCongestion           = "busCongestion"
	SourceDisagreement      = "sourceDisagreement"
	Disagree                = "disagree"
	Agree                   = "agree"
	Noisy                   = "noisy"
	DelayIncrease           = "delayIncrease"
	CongestionInMake        = "congestionInTheMake"
	UnusualCongestion       = "unusualCongestion"
	FlowTrend               = "flowTrend"
	DensityTrend            = "densityTrend"
	NoisyScats              = "noisyScats"
	// BusCongVote is the sharded decomposition of busCongestion: one
	// vote event per (bus, area) proximity match, emitted by the shard
	// owning the bus and folded back into the busCongestion fluent by
	// the reduce stage (see shard.go). Never part of the single-engine
	// rule set.
	BusCongVote = "busCongVote"
)

// Move builds a bus SDE. bus identifies the vehicle; delay is in
// seconds (positive = behind schedule); direction is 0 or 1; congested
// is the congestion flag the bus reports for its current location.
func Move(t rtec.Time, bus, line, operator string, delay int64, pos geo.Point, direction int, congested bool) rtec.Event {
	return rtec.NewEvent(MoveType, t, bus, map[string]any{
		"line":      line,
		"operator":  operator,
		"delay":     delay,
		"lon":       pos.Lon,
		"lat":       pos.Lat,
		"direction": int64(direction),
		"congested": congested,
	})
}

// Traffic builds a SCATS SDE. sensor identifies the vehicle detector,
// intersection the junction it is mounted on and approach the lane
// approach; density and flow are the measured values.
func Traffic(t rtec.Time, sensor, intersection, approach string, density, flow float64) rtec.Event {
	return rtec.NewEvent(TrafficType, t, sensor, map[string]any{
		"intersection": intersection,
		"approach":     approach,
		"density":      density,
		"flow":         flow,
	})
}

// Crowd verdict values.
const (
	Positive = "positive" // the crowd reports a congestion
	Negative = "negative" // the crowd reports no congestion
)

// CrowdVerdict builds a crowd SDE for the intersection: the output of
// the crowdsourcing component stating whether there was a congestion
// at the SCATS intersection according to the human crowd.
func CrowdVerdict(t rtec.Time, intersection string, val string) rtec.Event {
	return rtec.NewEvent(CrowdType, t, intersection, map[string]any{"value": val})
}

// Intersection describes a SCATS intersection: its identifier, its
// location (the paper's (LonInt, LatInt)) and the sensors mounted on
// its approaches.
type Intersection struct {
	ID      string
	Pos     geo.Point
	Sensors []string
	// SensorApproach optionally maps each sensor to its lane
	// approach, enabling the structured intersection-congestion
	// definition of Section 4.3 ("intersection congestion ...
	// depends on approach congestion which in turn would depend on
	// sensor congestion"). Sensors without an entry form their own
	// single-sensor approach.
	SensorApproach map[string]string
}

// approaches groups the intersection's sensors by approach label.
func (in Intersection) approaches() map[string][]string {
	out := make(map[string][]string)
	for _, s := range in.Sensors {
		label := in.SensorApproach[s]
		if label == "" {
			label = s // its own approach
		}
		out[label] = append(out[label], s)
	}
	return out
}

// Registry holds the SCATS intersections and provides the spatial
// lookup behind the paper's close/4 predicate. It is immutable after
// NewRegistry and safe for concurrent use.
type Registry struct {
	intersections []Intersection
	byID          map[string]int
	grid          map[[2]int][]int // cell -> intersection indexes
	cellLat       float64
	cellLon       float64
	closeMeters   float64
}

// NewRegistry indexes the intersections for proximity lookups with the
// given close-predicate threshold in meters.
func NewRegistry(intersections []Intersection, closeMeters float64) (*Registry, error) {
	if closeMeters <= 0 {
		return nil, fmt.Errorf("traffic: close threshold must be positive, got %v", closeMeters)
	}
	r := &Registry{
		intersections: append([]Intersection(nil), intersections...),
		byID:          make(map[string]int, len(intersections)),
		grid:          make(map[[2]int][]int),
		closeMeters:   closeMeters,
	}
	// Cell size a bit larger than the threshold: ~111.2 km per
	// degree of latitude; longitude shrinks with cos(lat) (Dublin
	// ≈ 0.6).
	r.cellLat = closeMeters / 111200.0 * 1.2
	r.cellLon = closeMeters / (111200.0 * 0.6) * 1.2
	for i, in := range r.intersections {
		if in.ID == "" {
			return nil, fmt.Errorf("traffic: intersection %d has empty ID", i)
		}
		if _, dup := r.byID[in.ID]; dup {
			return nil, fmt.Errorf("traffic: duplicate intersection %q", in.ID)
		}
		r.byID[in.ID] = i
		c := r.cell(in.Pos)
		r.grid[c] = append(r.grid[c], i)
	}
	return r, nil
}

func (r *Registry) cell(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.Lat / r.cellLat)), int(math.Floor(p.Lon / r.cellLon))}
}

// CloseMeters returns the close-predicate threshold.
func (r *Registry) CloseMeters() float64 { return r.closeMeters }

// Intersections returns all registered intersections (shared slice).
func (r *Registry) Intersections() []Intersection { return r.intersections }

// Lookup returns the intersection with the given ID.
func (r *Registry) Lookup(id string) (Intersection, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Intersection{}, false
	}
	return r.intersections[i], true
}

// CloseTo returns the intersections within the close threshold of p,
// implementing the paper's close(LonB, LatB, LonInt, LatInt)
// predicate. The spatial grid keeps the lookup O(1) in the number of
// intersections.
func (r *Registry) CloseTo(p geo.Point) []Intersection {
	c := r.cell(p)
	var out []Intersection
	for dLat := -1; dLat <= 1; dLat++ {
		for dLon := -1; dLon <= 1; dLon++ {
			for _, i := range r.grid[[2]int{c[0] + dLat, c[1] + dLon}] {
				in := r.intersections[i]
				if geo.Close(p, in.Pos, r.closeMeters) {
					out = append(out, in)
				}
			}
		}
	}
	return out
}

// ApproachKey is the fluent key of scatsApproachCongestion for one
// lane approach of an intersection.
func ApproachKey(intersection, approach string) string {
	return intersection + "/" + approach
}

// eventPos extracts the (lon, lat) attributes of a move event.
func eventPos(e rtec.Event) (geo.Point, bool) {
	lon, ok1 := e.Float("lon")
	lat, ok2 := e.Float("lat")
	if !ok1 || !ok2 {
		return geo.Point{}, false
	}
	return geo.LonLat(lon, lat), true
}
