package traffic

import (
	"fmt"
	"sort"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/interval"
	"github.com/insight-dublin/insight/rtec"
)

// NoisyPolicy selects which formalisation of the noisy(Bus) fluent the
// definition set uses.
type NoisyPolicy int

const (
	// CrowdValidated is rule-set (4): a bus becomes unreliable only
	// when it disagrees with the SCATS sensors AND the crowdsourced
	// information confirms the sensors.
	CrowdValidated NoisyPolicy = iota
	// Pessimistic is rule-set (5): a bus becomes unreliable on any
	// disagreement — "in the absence of information to the contrary,
	// the SCATS sensors are considered more trustworthy than buses" —
	// and is rehabilitated when the crowd proves it correct or when
	// it agrees with some SCATS intersection.
	Pessimistic
)

// Area is a non-SCATS location of interest for busCongestion: the
// paper defines busCongestion(Lon, Lat) for arbitrary coordinates,
// which "is very useful as there are numerous areas in the city that
// do not have SCATS sensors".
type Area struct {
	ID  string
	Pos geo.Point
}

// Config parameterizes the Dublin CE definition set.
type Config struct {
	// Registry holds the SCATS intersections. Required.
	Registry *Registry

	// ExtraAreas are additional areas of interest monitored by
	// busCongestion beyond the SCATS intersections.
	ExtraAreas []Area

	// DensityThreshold is the upper_Density_threshold of rule-set
	// (2): a sensor reading with density at or above it (and flow at
	// or below FlowThreshold) initiates scatsCongestion. Density is
	// an occupancy fraction in [0, 1]. Default 0.35.
	DensityThreshold float64
	// FlowThreshold is the lower_Flow_threshold of rule-set (2), in
	// vehicles/hour. Default 600.
	FlowThreshold float64
	// MinCongestedSensors is the n of the intersection-congestion
	// definition: an intersection is congested while at least n of
	// its sensors are congested. Intersections with fewer than n
	// sensors use all of them. Default 2.
	MinCongestedSensors int
	// StructuredIntersections switches scatsIntCongestion to the
	// structured definition of Section 4.3: sensor congestion →
	// approach congestion (any sensor of the approach) → intersection
	// congestion (at least MinCongestedApproaches approaches). It also
	// defines the scatsApproachCongestion fluent, keyed
	// "intersection/approach".
	StructuredIntersections bool
	// MinCongestedApproaches is the approach threshold of the
	// structured definition, capped by the approach count. Default 2.
	MinCongestedApproaches int

	// DelayIncreaseSeconds is the d of the delayIncrease CE: the
	// minimum delay growth between two SDEs. Default 60.
	DelayIncreaseSeconds int64
	// DelayIncreaseWindow is the t of the delayIncrease CE: the two
	// SDEs must be less than t seconds apart. Default 90.
	DelayIncreaseWindow rtec.Time

	// CrowdWindow is the threshold of rule-sets (4) and (5): the
	// crowdsourced information is used to evaluate a bus only if it
	// arrives within this period after the disagreement. Default 600.
	CrowdWindow rtec.Time

	// TrendEpsilon is the relative change between consecutive sensor
	// readings above which a flow/density trend counts as rising or
	// falling. Default 0.10.
	TrendEpsilon float64
	// PreCongestionDensity is the density above which a sensor with
	// rising density counts as congestion in-the-make (while not yet
	// congested). Default 0.20.
	PreCongestionDensity float64
	// RushHours are the daily periods (in hours, half-open) during
	// which intersection congestion is EXPECTED; congestion outside
	// them is recognised as unusualCongestion — the "unusual events
	// throughout the network" the INSIGHT project targets. Default
	// {{7, 10}, {16, 19}}.
	RushHours [][2]float64

	// NoisyPolicy selects rule-set (4) or (5). Default CrowdValidated.
	NoisyPolicy NoisyPolicy
	// Adaptive enables rule-set (3′): busCongestion discards reports
	// from buses for which noisy currently holds.
	Adaptive bool
}

func (c Config) withDefaults() Config {
	if c.DensityThreshold == 0 {
		c.DensityThreshold = 0.35
	}
	if c.FlowThreshold == 0 {
		c.FlowThreshold = 600
	}
	if c.MinCongestedSensors == 0 {
		c.MinCongestedSensors = 2
	}
	if c.MinCongestedApproaches == 0 {
		c.MinCongestedApproaches = 2
	}
	if c.DelayIncreaseSeconds == 0 {
		c.DelayIncreaseSeconds = 60
	}
	if c.DelayIncreaseWindow == 0 {
		c.DelayIncreaseWindow = 90
	}
	if c.CrowdWindow == 0 {
		c.CrowdWindow = 600
	}
	if c.TrendEpsilon == 0 {
		c.TrendEpsilon = 0.10
	}
	if c.PreCongestionDensity == 0 {
		c.PreCongestionDensity = 0.20
	}
	if c.RushHours == nil {
		c.RushHours = [][2]float64{{7, 10}, {16, 19}}
	}
	return c
}

// rushIntervals returns the absolute-time rush periods overlapping the
// span (which may cross midnight boundaries).
func rushIntervals(rush [][2]float64, span interval.Span) interval.List {
	const day = rtec.Time(24 * 3600)
	var out []interval.Span
	firstDay := (span.Start / day) * day
	if span.Start < 0 && span.Start%day != 0 {
		firstDay -= day
	}
	for d := firstDay; d < span.End; d += day {
		for _, r := range rush {
			out = append(out, interval.Span{
				Start: d + rtec.Time(r[0]*3600),
				End:   d + rtec.Time(r[1]*3600),
			})
		}
	}
	return interval.Normalize(out)
}

// Build compiles the Dublin CE definition set for the configuration.
func Build(cfg Config) (*rtec.Definitions, error) {
	return BuildWith(cfg, nil)
}

// BuildWith compiles the Dublin CE definition set and lets the caller
// register additional definitions on the same builder before
// compilation — e.g. custom complex events layered over the library
// fluents. The extension hook runs after every library definition has
// been added.
func BuildWith(cfg Config, extend func(*rtec.Builder)) (*rtec.Definitions, error) {
	return buildRules(cfg, nil, extend)
}

// buildRules is the shared builder behind Build/BuildWith (plan nil:
// the single-engine rule set, unchanged) and BuildShard (plan set: the
// shard-local variant — see shard.go for the decomposition contract).
// With a plan, three things change and nothing else:
//
//   - per-sensor fluents (flowTrend, densityTrend, congestionInTheMake)
//     are computed only for sensors the plan owns — every shard sees
//     all replicated traffic readings, but each sensor's fluent
//     instances must live in exactly one shard;
//   - busCongestion is replaced by the busCongVote event rule: the same
//     per-move proximity matches, emitted as vote events for the reduce
//     stage to fold instead of as local transitions (an area aggregates
//     buses owned by different shards, so no single shard can run the
//     fluent);
//   - sourceDisagreement is omitted: it reads busCongestion, which only
//     exists after the reduce stage; the tier computes it from the
//     reduced busCongestion and the (shard-identical) scatsIntCongestion.
func buildRules(cfg Config, plan *ShardPlan, extend func(*rtec.Builder)) (*rtec.Definitions, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("traffic: Config.Registry is required")
	}
	reg := cfg.Registry

	// Areas of interest for busCongestion: every SCATS intersection
	// plus the configured extra areas, in one spatial index.
	areaList := make([]Intersection, 0, len(reg.Intersections())+len(cfg.ExtraAreas))
	areaList = append(areaList, reg.Intersections()...)
	for _, a := range cfg.ExtraAreas {
		areaList = append(areaList, Intersection{ID: a.ID, Pos: a.Pos})
	}
	areas, err := NewRegistry(areaList, reg.CloseMeters())
	if err != nil {
		return nil, fmt.Errorf("traffic: building area index: %w", err)
	}

	b := rtec.NewBuilder().DeclareSDE(MoveType, TrafficType, CrowdType)

	// --- scatsCongestion: rule-set (2) --------------------------------
	// initiatedAt when D >= upper_Density_threshold and
	// F <= lower_Flow_threshold; terminatedAt when either bound is
	// crossed back.
	b.Simple(rtec.SimpleFluent{
		Name:     ScatsCongestion,
		Inputs:   []string{TrafficType},
		Locality: rtec.Pointwise(), // threshold test on the reading at T only
		Transitions: func(ctx *rtec.Context) []rtec.Transition {
			var out []rtec.Transition
			rows := ctx.Rows(TrafficType)
			for i := 0; i < rows.Len(); i++ {
				e := rows.At(i)
				d, _ := e.Float("density")
				f, _ := e.Float("flow")
				if d >= cfg.DensityThreshold && f <= cfg.FlowThreshold {
					out = append(out, rtec.InitiateAt(e.Key, e.Time))
				} else {
					out = append(out, rtec.TerminateAt(e.Key, e.Time))
				}
			}
			return out
		},
	})

	// --- scatsIntCongestion -------------------------------------------
	// Flat definition: an intersection is congested while at least n
	// of its sensors are congested (n capped by the sensor count, so
	// single-sensor intersections remain coverable).
	//
	// Structured definition (Config.StructuredIntersections): sensor
	// congestion → approach congestion (union of the approach's
	// sensors) → intersection congestion (at least m approaches).
	if cfg.StructuredIntersections {
		b.Static(rtec.StaticFluent{
			Name:   ScatsApproachCongestion,
			Inputs: []string{ScatsCongestion},
			HoldsFor: func(ctx *rtec.Context) map[rtec.KV]rtec.IntervalList {
				out := make(map[rtec.KV]rtec.IntervalList)
				for _, in := range reg.Intersections() {
					for approach, sensors := range in.approaches() {
						lists := make([]interval.List, 0, len(sensors))
						for _, s := range sensors {
							if l := ctx.Intervals(ScatsCongestion, s); len(l) > 0 {
								lists = append(lists, l)
							}
						}
						if u := interval.UnionAll(lists...); len(u) > 0 {
							out[rtec.KV{Key: ApproachKey(in.ID, approach), Value: rtec.TrueValue}] = u
						}
					}
				}
				return out
			},
		})
		b.Static(rtec.StaticFluent{
			Name:   ScatsIntCongestion,
			Inputs: []string{ScatsApproachCongestion},
			HoldsFor: func(ctx *rtec.Context) map[rtec.KV]rtec.IntervalList {
				out := make(map[rtec.KV]rtec.IntervalList)
				for _, in := range reg.Intersections() {
					approaches := in.approaches()
					if len(approaches) == 0 {
						continue
					}
					// Sorted approach order keeps the coverage input —
					// and with it the recognition output — run-stable.
					labels := make([]string, 0, len(approaches))
					for approach := range approaches {
						labels = append(labels, approach)
					}
					sort.Strings(labels)
					lists := make([]interval.List, 0, len(approaches))
					for _, approach := range labels {
						if l := ctx.Intervals(ScatsApproachCongestion, ApproachKey(in.ID, approach)); len(l) > 0 {
							lists = append(lists, l)
						}
					}
					m := cfg.MinCongestedApproaches
					if m > len(approaches) {
						m = len(approaches)
					}
					if cov := interval.CoverageAtLeast(m, lists); len(cov) > 0 {
						out[rtec.KV{Key: in.ID, Value: rtec.TrueValue}] = cov
					}
				}
				return out
			},
		})
	} else {
		b.Static(rtec.StaticFluent{
			Name:   ScatsIntCongestion,
			Inputs: []string{ScatsCongestion},
			HoldsFor: func(ctx *rtec.Context) map[rtec.KV]rtec.IntervalList {
				out := make(map[rtec.KV]rtec.IntervalList)
				for _, in := range reg.Intersections() {
					if len(in.Sensors) == 0 {
						continue
					}
					lists := make([]interval.List, 0, len(in.Sensors))
					for _, s := range in.Sensors {
						if l := ctx.Intervals(ScatsCongestion, s); len(l) > 0 {
							lists = append(lists, l)
						}
					}
					n := cfg.MinCongestedSensors
					if n > len(in.Sensors) {
						n = len(in.Sensors)
					}
					if cov := interval.CoverageAtLeast(n, lists); len(cov) > 0 {
						out[rtec.KV{Key: in.ID, Value: rtec.TrueValue}] = cov
					}
				}
				return out
			},
		})
	}

	// --- disagree / agree ----------------------------------------------
	// disagree(Bus, LonInt, LatInt, Val) happens when a bus moves
	// close to a SCATS intersection and contradicts its congestion
	// state; agree(Bus) when it confirms it. Events are keyed by the
	// intersection (the crowdsourcing join key) and carry the bus in
	// an attribute.
	deriveMatches := func(ctx *rtec.Context, wantDisagree bool) []rtec.Event {
		var out []rtec.Event
		rows := ctx.Rows(MoveType)
		for i := 0; i < rows.Len(); i++ {
			e := rows.At(i)
			pos, ok := eventPos(e)
			if !ok {
				continue
			}
			busSays, _ := e.Bool("congested")
			for _, in := range reg.CloseTo(pos) {
				scatsSays := ctx.HoldsAt(ScatsIntCongestion, in.ID, e.Time)
				if busSays == scatsSays {
					if !wantDisagree {
						out = append(out, rtec.NewEvent(Agree, e.Time, e.Key, map[string]any{
							"intersection": in.ID,
						}))
					}
					continue
				}
				if wantDisagree {
					val := Negative
					if busSays {
						val = Positive
					}
					out = append(out, rtec.NewEvent(Disagree, e.Time, in.ID, map[string]any{
						"bus":   e.Key,
						"value": val,
						"lon":   in.Pos.Lon,
						"lat":   in.Pos.Lat,
					}))
				}
			}
		}
		return out
	}
	// Both compare the move event at T against the fluent value at T.
	b.Event(rtec.EventRule{
		Name:     Disagree,
		Inputs:   []string{MoveType, ScatsIntCongestion},
		Locality: rtec.Pointwise(),
		Derive:   func(ctx *rtec.Context) []rtec.Event { return deriveMatches(ctx, true) },
	})
	b.Event(rtec.EventRule{
		Name:     Agree,
		Inputs:   []string{MoveType, ScatsIntCongestion},
		Locality: rtec.Pointwise(),
		Derive:   func(ctx *rtec.Context) []rtec.Event { return deriveMatches(ctx, false) },
	})

	// --- noisy: rule-sets (4) and (5) -----------------------------------
	// Rule-set (4) transitions at the disagreement time from crowd
	// reports up to CrowdWindow later (pure lookahead); rule-set (5)
	// also terminates at the crowd time from a disagreement up to
	// CrowdWindow earlier (lookback).
	noisyLocality := rtec.LocalWindow(0, cfg.CrowdWindow)
	if cfg.NoisyPolicy == Pessimistic {
		noisyLocality = rtec.LocalWindow(cfg.CrowdWindow, cfg.CrowdWindow)
	}
	b.Simple(rtec.SimpleFluent{
		Name:     Noisy,
		Inputs:   []string{Disagree, Agree, CrowdType},
		Locality: noisyLocality,
		Transitions: func(ctx *rtec.Context) []rtec.Transition {
			var out []rtec.Transition
			// Source agreement always rehabilitates.
			for _, e := range ctx.Events(Agree) {
				out = append(out, rtec.TerminateAt(e.Key, e.Time))
			}
			for _, d := range ctx.Events(Disagree) {
				bus, _ := d.Str("bus")
				busVal, _ := d.Str("value")
				crowd := ctx.RowsForKey(CrowdType, d.Key)
				switch cfg.NoisyPolicy {
				case Pessimistic:
					// Rule-set (5): any disagreement initiates noisy.
					out = append(out, rtec.InitiateAt(bus, d.Time))
					for i := 0; i < crowd.Len(); i++ {
						c := crowd.At(i)
						crowdVal, _ := c.Str("value")
						if dt := c.Time - d.Time; dt > 0 && dt < cfg.CrowdWindow && crowdVal == busVal {
							// The crowd proves the bus correct:
							// terminate at T′ (the crowd time).
							out = append(out, rtec.TerminateAt(bus, c.Time))
						}
					}
				default: // CrowdValidated, rule-set (4)
					for i := 0; i < crowd.Len(); i++ {
						c := crowd.At(i)
						crowdVal, _ := c.Str("value")
						dt := c.Time - d.Time
						if dt <= 0 || dt >= cfg.CrowdWindow {
							continue
						}
						if crowdVal != busVal {
							out = append(out, rtec.InitiateAt(bus, d.Time))
						} else {
							out = append(out, rtec.TerminateAt(bus, d.Time))
						}
					}
				}
			}
			return out
		},
	})

	// --- busCongestion: rule-set (3), or (3′) when Adaptive ------------
	busInputs := []string{MoveType}
	if cfg.Adaptive {
		busInputs = append(busInputs, Noisy)
	}
	if plan == nil {
		b.Simple(rtec.SimpleFluent{
			Name:     BusCongestion,
			Inputs:   busInputs,
			Locality: rtec.Pointwise(), // move event at T (and, if Adaptive, noisy at T)
			Transitions: func(ctx *rtec.Context) []rtec.Transition {
				var out []rtec.Transition
				rows := ctx.Rows(MoveType)
				for i := 0; i < rows.Len(); i++ {
					e := rows.At(i)
					if cfg.Adaptive && ctx.HoldsAt(Noisy, e.Key, e.Time) {
						continue // rule-set (3′): discard unreliable buses
					}
					pos, ok := eventPos(e)
					if !ok {
						continue
					}
					congested, _ := e.Bool("congested")
					for _, a := range areas.CloseTo(pos) {
						if congested {
							out = append(out, rtec.InitiateAt(a.ID, e.Time))
						} else {
							out = append(out, rtec.TerminateAt(a.ID, e.Time))
						}
					}
				}
				return out
			},
		})
	} else {
		// Sharded: the identical per-move area matches, emitted as vote
		// EVENTS keyed (bus, area) instead of fluent transitions. A vote
		// time equals its move time, so the reduce engine's transition
		// set over any window equals the transition set the single-engine
		// fluent computes over that window — interval construction is
		// order- and duplicate-insensitive, which makes the fold exact.
		b.Event(rtec.EventRule{
			Name:     BusCongVote,
			Inputs:   busInputs,
			Locality: rtec.Pointwise(),
			Derive: func(ctx *rtec.Context) []rtec.Event {
				var out []rtec.Event
				rows := ctx.Rows(MoveType)
				for i := 0; i < rows.Len(); i++ {
					e := rows.At(i)
					if cfg.Adaptive && ctx.HoldsAt(Noisy, e.Key, e.Time) {
						continue // rule-set (3′): discard unreliable buses
					}
					pos, ok := eventPos(e)
					if !ok {
						continue
					}
					congested, _ := e.Bool("congested")
					for _, a := range areas.CloseTo(pos) {
						out = append(out, rtec.NewEvent(BusCongVote, e.Time, VoteKey(e.Key, a.ID), map[string]any{
							"area":      a.ID,
							"congested": congested,
						}))
					}
				}
				return out
			},
		})
	}

	// --- sourceDisagreement ---------------------------------------------
	// holdsFor(sourceDisagreement(Int)=true, I) ←
	//   relative_complement_all(busCongestion(Int), [scatsIntCongestion(Int)]).
	// Computed only for the locations of SCATS intersections. Sharded
	// builds omit it: busCongestion only exists after the reduce stage,
	// so the tier computes the relative complement itself from the
	// reduced fluent (the pointwise identity makes that exact — see
	// DESIGN.md, "Sharded recognition tier").
	if plan == nil {
		b.Static(rtec.StaticFluent{
			Name:   SourceDisagreement,
			Inputs: []string{BusCongestion, ScatsIntCongestion},
			HoldsFor: func(ctx *rtec.Context) map[rtec.KV]rtec.IntervalList {
				out := make(map[rtec.KV]rtec.IntervalList)
				for _, in := range reg.Intersections() {
					busI := ctx.Intervals(BusCongestion, in.ID)
					if len(busI) == 0 {
						continue
					}
					scatsI := ctx.Intervals(ScatsIntCongestion, in.ID)
					if d := interval.RelativeComplementAll(busI, []interval.List{scatsI}); len(d) > 0 {
						out[rtec.KV{Key: in.ID, Value: rtec.TrueValue}] = d
					}
				}
				return out
			},
		})
	}

	// --- delayIncrease ----------------------------------------------------
	// Recognised when the delay of a bus grows by more than d seconds
	// across two SDEs less than t seconds apart.
	// Local with lookback t: the emitting pair lies within t of the
	// emission time, and a pair wider than t never emits, so a view
	// covering (T−t, T] determines the output at T exactly.
	b.Event(rtec.EventRule{
		Name:     DelayIncrease,
		Inputs:   []string{MoveType},
		Locality: rtec.LocalWindow(cfg.DelayIncreaseWindow, 0),
		Derive: func(ctx *rtec.Context) []rtec.Event {
			var out []rtec.Event
			for _, bus := range ctx.EventKeys(MoveType) {
				evs := ctx.RowsForKey(MoveType, bus)
				for i := 1; i < evs.Len(); i++ {
					prev, cur := evs.At(i-1), evs.At(i)
					dt := cur.Time - prev.Time
					if dt <= 0 || dt >= cfg.DelayIncreaseWindow {
						continue
					}
					pd, _ := prev.Int("delay")
					cd, _ := cur.Int("delay")
					if cd-pd <= cfg.DelayIncreaseSeconds {
						continue
					}
					fromLon, _ := prev.Float("lon")
					fromLat, _ := prev.Float("lat")
					toLon, _ := cur.Float("lon")
					toLat, _ := cur.Float("lat")
					out = append(out, rtec.NewEvent(DelayIncrease, cur.Time, bus, map[string]any{
						"fromLon": fromLon, "fromLat": fromLat,
						"toLon": toLon, "toLat": toLat,
						"delayGrowth": cd - pd,
					}))
				}
			}
			return out
		},
	})

	// --- flow / density trends ---------------------------------------------
	// Multi-valued fluents per sensor: rising / falling / steady, from
	// the relative change between consecutive readings.
	//
	// Window sizing: a trend derived from the reading pair (r1, r2)
	// holds from r2+1 onward, so CEs that test the trend AT a reading
	// time (e.g. congestionInTheMake) only fire when the working
	// memory covers at least three readings of the sensor — WM must
	// exceed twice the SCATS emission period (2 x 6 min in Dublin).
	// This is the kind of WM tuning the paper leaves to the end user.
	// No Locality: consecutive readings of a sensor may be arbitrarily
	// far apart, so the pair emitting at T has unbounded lookback.
	trend := func(name, attr string) rtec.SimpleFluent {
		return rtec.SimpleFluent{
			Name:   name,
			Inputs: []string{TrafficType},
			Transitions: func(ctx *rtec.Context) []rtec.Transition {
				var out []rtec.Transition
				for _, sensor := range ctx.EventKeys(TrafficType) {
					if plan != nil && !plan.OwnsSensor(sensor) {
						continue // sharded: the owner shard computes this sensor's trend
					}
					evs := ctx.RowsForKey(TrafficType, sensor)
					for i := 1; i < evs.Len(); i++ {
						prev, _ := evs.At(i - 1).Float(attr)
						cur, _ := evs.At(i).Float(attr)
						value := TrendSteady
						switch {
						case prev == 0 && cur > 0:
							value = TrendRising
						case prev == 0:
							value = TrendSteady
						case (cur-prev)/prev > cfg.TrendEpsilon:
							value = TrendRising
						case (cur-prev)/prev < -cfg.TrendEpsilon:
							value = TrendFalling
						}
						out = append(out, rtec.Transition{
							Kind: rtec.Initiate, Key: sensor, Value: value, Time: evs.TimeAt(i),
						})
					}
				}
				return out
			},
		}
	}
	b.Simple(trend(FlowTrend, "flow"))
	b.Simple(trend(DensityTrend, "density"))

	// --- unusualCongestion ---------------------------------------------
	// Intersection congestion outside the expected rush periods: the
	// "unusual events throughout the network" INSIGHT's traffic
	// managers want to detect with high certainty. Computed with the
	// interval algebra: scatsIntCongestion minus the rush windows.
	b.Static(rtec.StaticFluent{
		Name:   UnusualCongestion,
		Inputs: []string{ScatsIntCongestion},
		HoldsFor: func(ctx *rtec.Context) map[rtec.KV]rtec.IntervalList {
			rush := rushIntervals(cfg.RushHours, ctx.Window())
			out := make(map[rtec.KV]rtec.IntervalList)
			for kv, congested := range ctx.FluentInstances(ScatsIntCongestion) {
				if u := interval.RelativeComplement(congested, rush); len(u) > 0 {
					out[kv] = u
				}
			}
			return out
		},
	})

	// --- congestionInTheMake ---------------------------------------------
	// The proactive CE of the paper's motivation: "an urban monitoring
	// system that identifies traffic congestions (in-the-make) and
	// (proactively) changes traffic light priorities and speed limits"
	// (Section 1). A sensor is heading into congestion while its
	// density is already elevated and still rising, but the congestion
	// thresholds have not been crossed yet.
	// Pointwise in its own reads, but densityTrend is non-local, so the
	// engine still recomputes this fluent in full every query.
	b.Simple(rtec.SimpleFluent{
		Name:     CongestionInMake,
		Inputs:   []string{TrafficType, DensityTrend},
		Locality: rtec.Pointwise(),
		Transitions: func(ctx *rtec.Context) []rtec.Transition {
			var out []rtec.Transition
			rows := ctx.Rows(TrafficType)
			for i := 0; i < rows.Len(); i++ {
				e := rows.At(i)
				if plan != nil && !plan.OwnsSensor(e.Key) {
					continue // sharded: the owner shard computes this sensor's warning
				}
				d, _ := e.Float("density")
				f, _ := e.Float("flow")
				congested := d >= cfg.DensityThreshold && f <= cfg.FlowThreshold
				rising := ctx.HoldsAtValue(DensityTrend, e.Key, TrendRising, e.Time)
				if !congested && rising && d >= cfg.PreCongestionDensity {
					out = append(out, rtec.InitiateAt(e.Key, e.Time))
				} else {
					out = append(out, rtec.TerminateAt(e.Key, e.Time))
				}
			}
			return out
		},
	})

	// --- noisyScats (extension) ---------------------------------------------
	// Crowd-based SCATS reliability: "Given the crowdsourced
	// information, we can also evaluate the reliability of SCATS
	// sensors" (end of Section 4.3). An intersection's sensor set is
	// considered noisy while the crowd contradicts it.
	b.Simple(rtec.SimpleFluent{
		Name:     NoisyScats,
		Inputs:   []string{CrowdType, ScatsIntCongestion},
		Locality: rtec.Pointwise(), // crowd report at T vs the fluent value at T
		Transitions: func(ctx *rtec.Context) []rtec.Transition {
			var out []rtec.Transition
			rows := ctx.Rows(CrowdType)
			for i := 0; i < rows.Len(); i++ {
				c := rows.At(i)
				val, _ := c.Str("value")
				crowdSaysCongestion := val == Positive
				scatsSays := ctx.HoldsAt(ScatsIntCongestion, c.Key, c.Time)
				if crowdSaysCongestion != scatsSays {
					out = append(out, rtec.InitiateAt(c.Key, c.Time))
				} else {
					out = append(out, rtec.TerminateAt(c.Key, c.Time))
				}
			}
			return out
		},
	})

	if extend != nil {
		extend(b)
	}
	return b.Compile()
}

// Trend fluent values.
const (
	TrendRising  = "rising"
	TrendFalling = "falling"
	TrendSteady  = "steady"
)
