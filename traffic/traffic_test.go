package traffic

import (
	"testing"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
)

var (
	posI1   = geo.At(53.3500, -6.2600)
	posI2   = geo.At(53.3800, -6.2000)
	posPark = geo.At(53.3200, -6.3300)
	nearI1  = geo.At(53.3503, -6.2600) // ~33 m from i1
	nearI2  = geo.At(53.3803, -6.2000)
	nearPrk = geo.At(53.3203, -6.3300)
	farAway = geo.At(53.4000, -6.1600)
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry([]Intersection{
		{ID: "i1", Pos: posI1, Sensors: []string{"s1", "s2"}},
		{ID: "i2", Pos: posI2, Sensors: []string{"s3"}},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func newEngine(t *testing.T, cfg Config) *rtec.Engine {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = testRegistry(t)
	}
	defs, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 3600})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func query(t *testing.T, e *rtec.Engine, q rtec.Time) *rtec.Result {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustInput(t *testing.T, e *rtec.Engine, evs ...rtec.Event) {
	t.Helper()
	if err := e.Input(evs...); err != nil {
		t.Fatal(err)
	}
}

// congested / free sensor readings relative to the default thresholds
// (density 0.35, flow 600).
func congestedReading(t rtec.Time, sensor, inter string) rtec.Event {
	return Traffic(t, sensor, inter, "A1", 0.60, 300)
}

func freeReading(t rtec.Time, sensor, inter string) rtec.Event {
	return Traffic(t, sensor, inter, "A1", 0.10, 1200)
}

func TestBuildRequiresRegistry(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("Build without registry must error")
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(nil, 0); err == nil {
		t.Error("non-positive threshold must error")
	}
	if _, err := NewRegistry([]Intersection{{ID: ""}}, 100); err == nil {
		t.Error("empty intersection ID must error")
	}
	if _, err := NewRegistry([]Intersection{
		{ID: "x", Pos: posI1}, {ID: "x", Pos: posI2},
	}, 100); err == nil {
		t.Error("duplicate intersection ID must error")
	}
}

func TestRegistryCloseTo(t *testing.T) {
	reg := testRegistry(t)
	if got := reg.CloseTo(nearI1); len(got) != 1 || got[0].ID != "i1" {
		t.Errorf("CloseTo(nearI1) = %v", got)
	}
	if got := reg.CloseTo(farAway); len(got) != 0 {
		t.Errorf("CloseTo(farAway) = %v", got)
	}
	// Exactly at an intersection.
	if got := reg.CloseTo(posI2); len(got) != 1 || got[0].ID != "i2" {
		t.Errorf("CloseTo(posI2) = %v", got)
	}
	if in, ok := reg.Lookup("i1"); !ok || in.ID != "i1" {
		t.Error("Lookup(i1) failed")
	}
	if _, ok := reg.Lookup("zz"); ok {
		t.Error("Lookup(zz) should fail")
	}
}

// Brute-force cross-check of the spatial grid on a denser registry.
func TestRegistryCloseToMatchesBruteForce(t *testing.T) {
	var ins []Intersection
	for i := 0; i < 20; i++ {
		for j := 0; j < 10; j++ {
			ins = append(ins, Intersection{
				ID:  string(rune('a'+i)) + string(rune('0'+j)),
				Pos: geo.At(53.30+float64(i)*0.005, -6.30+float64(j)*0.01),
			})
		}
	}
	reg, err := NewRegistry(ins, 400)
	if err != nil {
		t.Fatal(err)
	}
	probes := []geo.Point{
		geo.At(53.312, -6.27), geo.At(53.35, -6.25), geo.At(53.30, -6.30),
		geo.At(53.40, -6.21), geo.At(53.33, -6.287),
	}
	for _, p := range probes {
		want := make(map[string]bool)
		for _, in := range ins {
			if geo.Close(p, in.Pos, 400) {
				want[in.ID] = true
			}
		}
		got := reg.CloseTo(p)
		if len(got) != len(want) {
			t.Fatalf("probe %v: grid found %d, brute force %d", p, len(got), len(want))
		}
		for _, in := range got {
			if !want[in.ID] {
				t.Fatalf("probe %v: unexpected %s", p, in.ID)
			}
		}
	}
}

func TestScatsCongestionRuleSet2(t *testing.T) {
	e := newEngine(t, Config{})
	mustInput(t, e,
		congestedReading(100, "s1", "i1"), // initiate
		congestedReading(460, "s1", "i1"), // still congested (inertia)
		freeReading(820, "s1", "i1"),      // terminate: both bounds crossed
	)
	res := query(t, e, 3599)
	got := res.Intervals(ScatsCongestion, "s1")
	want := rtec.List{{Start: 101, End: 821}}
	if !got.Equal(want) {
		t.Errorf("scatsCongestion = %v, want %v", got, want)
	}
}

func TestScatsCongestionTerminationEitherBound(t *testing.T) {
	// Termination has two rules: density back below the threshold OR
	// flow back above it.
	e := newEngine(t, Config{})
	mustInput(t, e,
		congestedReading(100, "s1", "i1"),
		Traffic(300, "s1", "i1", "A1", 0.10, 300), // density low, flow still low
	)
	res := query(t, e, 3599)
	if res.HoldsAt(ScatsCongestion, "s1", 400) {
		t.Error("density below threshold must terminate congestion")
	}

	e2 := newEngine(t, Config{})
	mustInput(t, e2,
		congestedReading(100, "s1", "i1"),
		Traffic(300, "s1", "i1", "A1", 0.60, 1200), // density high, flow high
	)
	res2 := query(t, e2, 3599)
	if res2.HoldsAt(ScatsCongestion, "s1", 400) {
		t.Error("flow above threshold must terminate congestion")
	}
}

func TestScatsIntCongestionRequiresNSensors(t *testing.T) {
	e := newEngine(t, Config{}) // MinCongestedSensors = 2
	mustInput(t, e,
		congestedReading(100, "s1", "i1"), // only one of i1's two sensors
	)
	res := query(t, e, 3599)
	if res.HoldsAt(ScatsIntCongestion, "i1", 200) {
		t.Error("one congested sensor of two must not congest the intersection")
	}

	mustInput(t, e, congestedReading(3700, "s2", "i1"))
	// s1's congestion from t=100 has fallen out of the next window;
	// re-assert it inside.
	mustInput(t, e, congestedReading(3650, "s1", "i1"))
	res = query(t, e, 7000)
	if !res.HoldsAt(ScatsIntCongestion, "i1", 3800) {
		t.Error("two congested sensors must congest the intersection")
	}
}

func TestScatsIntCongestionSingleSensorIntersection(t *testing.T) {
	// i2 has one sensor; the n=2 requirement is capped at the sensor
	// count.
	e := newEngine(t, Config{})
	mustInput(t, e, congestedReading(100, "s3", "i2"))
	res := query(t, e, 3599)
	if !res.HoldsAt(ScatsIntCongestion, "i2", 200) {
		t.Error("single-sensor intersection must congest with its only sensor")
	}
}

func TestBusCongestionRuleSet3(t *testing.T) {
	e := newEngine(t, Config{})
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),  // initiate at i1
		Move(500, "b2", "r11", "o7", 0, nearI1, 1, false), // a different bus terminates
		Move(600, "b3", "r12", "o7", 0, farAway, 0, true), // far from everything: no effect
	)
	res := query(t, e, 3599)
	got := res.Intervals(BusCongestion, "i1")
	want := rtec.List{{Start: 101, End: 501}}
	if !got.Equal(want) {
		t.Errorf("busCongestion(i1) = %v, want %v", got, want)
	}
	if len(res.Fluents[BusCongestion]) != 1 {
		t.Errorf("unexpected busCongestion instances: %v", res.Fluents[BusCongestion])
	}
}

func TestBusCongestionExtraArea(t *testing.T) {
	e := newEngine(t, Config{
		ExtraAreas: []Area{{ID: "park", Pos: posPark}},
	})
	mustInput(t, e, Move(100, "b1", "r10", "o7", 0, nearPrk, 0, true))
	res := query(t, e, 3599)
	if !res.HoldsAt(BusCongestion, "park", 200) {
		t.Error("extra area must be monitored by busCongestion")
	}
}

func TestSourceDisagreement(t *testing.T) {
	e := newEngine(t, Config{})
	// Buses report congestion at i1 during [101, 1001); SCATS reports
	// congestion only during [201, 501).
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		Move(1000, "b1", "r10", "o7", 0, nearI1, 0, false),
		congestedReading(200, "s1", "i1"),
		congestedReading(200, "s2", "i1"),
		freeReading(500, "s1", "i1"),
		freeReading(500, "s2", "i1"),
	)
	res := query(t, e, 3599)
	got := res.Intervals(SourceDisagreement, "i1")
	want := rtec.List{{Start: 101, End: 201}, {Start: 501, End: 1001}}
	if !got.Equal(want) {
		t.Errorf("sourceDisagreement = %v, want %v", got, want)
	}
}

func TestDisagreeAgreeEvents(t *testing.T) {
	e := newEngine(t, Config{})
	mustInput(t, e,
		// SCATS congestion at i1 throughout [201, ...).
		congestedReading(200, "s1", "i1"),
		congestedReading(200, "s2", "i1"),
		// b1 near i1 at 300 says NOT congested → disagree negative.
		Move(300, "b1", "r10", "o7", 0, nearI1, 0, false),
		// b2 near i1 at 400 says congested → agree.
		Move(400, "b2", "r11", "o7", 0, nearI1, 0, true),
		// b3 near i2 (no SCATS congestion) says congested → disagree positive.
		Move(500, "b3", "r12", "o7", 0, nearI2, 0, true),
	)
	res := query(t, e, 3599)

	dis := res.Derived[Disagree]
	if len(dis) != 2 {
		t.Fatalf("disagree events = %v, want 2", dis)
	}
	if dis[0].Key != "i1" || dis[0].Time != 300 {
		t.Errorf("first disagree = %v", dis[0])
	}
	if v, _ := dis[0].Str("value"); v != Negative {
		t.Errorf("first disagree value = %q, want negative", v)
	}
	if bus, _ := dis[0].Str("bus"); bus != "b1" {
		t.Errorf("first disagree bus = %q", bus)
	}
	if dis[1].Key != "i2" || dis[1].Time != 500 {
		t.Errorf("second disagree = %v", dis[1])
	}
	if v, _ := dis[1].Str("value"); v != Positive {
		t.Errorf("second disagree value = %q, want positive", v)
	}

	ag := res.Derived[Agree]
	if len(ag) != 1 || ag[0].Key != "b2" || ag[0].Time != 400 {
		t.Fatalf("agree events = %v, want one for b2@400", ag)
	}
}

func TestNoisyCrowdValidated(t *testing.T) {
	e := newEngine(t, Config{NoisyPolicy: CrowdValidated})
	mustInput(t, e,
		// b1 reports congestion near i1 with no SCATS congestion →
		// disagree(positive)@100.
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		// The crowd says there is NO congestion → contradicts the bus
		// → noisy(b1) initiated at 100.
		CrowdVerdict(200, "i1", Negative),
	)
	res := query(t, e, 3599)
	if !res.HoldsAt(Noisy, "b1", 150) {
		t.Error("noisy(b1) must hold after crowd contradicts the bus")
	}

	// Next window: b1 agrees with SCATS at i2 → rehabilitated.
	mustInput(t, e,
		congestedReading(3700, "s3", "i2"),
		Move(3800, "b1", "r10", "o7", 0, nearI2, 0, true), // agree
	)
	res = query(t, e, 7000)
	if res.HoldsAt(Noisy, "b1", 3900) {
		t.Error("agreement must terminate noisy(b1)")
	}
}

func TestNoisyCrowdValidatedNeedsCrowd(t *testing.T) {
	// Under rule-set (4), a disagreement alone does NOT make the bus
	// noisy.
	e := newEngine(t, Config{NoisyPolicy: CrowdValidated})
	mustInput(t, e, Move(100, "b1", "r10", "o7", 0, nearI1, 0, true))
	res := query(t, e, 3599)
	if res.HoldsAt(Noisy, "b1", 200) {
		t.Error("disagreement without crowd info must not initiate noisy under rule-set (4)")
	}
}

func TestNoisyCrowdValidatedConfirmationTerminates(t *testing.T) {
	e := newEngine(t, Config{NoisyPolicy: CrowdValidated})
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		CrowdVerdict(150, "i1", Negative), // contradicts → noisy from 101
		Move(400, "b1", "r10", "o7", 0, nearI1, 0, true),
		CrowdVerdict(450, "i1", Positive), // confirms the bus → terminate at 400
	)
	res := query(t, e, 3599)
	got := res.Intervals(Noisy, "b1")
	want := rtec.List{{Start: 101, End: 401}}
	if !got.Equal(want) {
		t.Errorf("noisy = %v, want %v", got, want)
	}
}

func TestNoisyCrowdWindow(t *testing.T) {
	// Crowd input arriving after CrowdWindow is ignored.
	e := newEngine(t, Config{NoisyPolicy: CrowdValidated, CrowdWindow: 100})
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		CrowdVerdict(300, "i1", Negative), // 200 s later > window
	)
	res := query(t, e, 3599)
	if res.HoldsAt(Noisy, "b1", 350) {
		t.Error("crowd verdict outside the window must be ignored")
	}
}

func TestNoisyPessimistic(t *testing.T) {
	e := newEngine(t, Config{NoisyPolicy: Pessimistic})
	mustInput(t, e,
		// Any disagreement initiates noisy immediately.
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
	)
	res := query(t, e, 3599)
	if !res.HoldsAt(Noisy, "b1", 200) {
		t.Error("rule-set (5): disagreement alone must initiate noisy")
	}
}

func TestNoisyPessimisticCrowdRehabilitates(t *testing.T) {
	e := newEngine(t, Config{NoisyPolicy: Pessimistic})
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
		// The crowd proves the bus correct → terminated at T′ = 250.
		CrowdVerdict(250, "i1", Positive),
	)
	res := query(t, e, 3599)
	got := res.Intervals(Noisy, "b1")
	want := rtec.List{{Start: 101, End: 251}}
	if !got.Equal(want) {
		t.Errorf("noisy = %v, want %v", got, want)
	}
}

func TestAdaptiveBusCongestionRuleSet3Prime(t *testing.T) {
	run := func(adaptive bool) *rtec.Result {
		e := newEngine(t, Config{
			NoisyPolicy: Pessimistic,
			Adaptive:    adaptive,
			ExtraAreas:  []Area{{ID: "park", Pos: posPark}},
		})
		mustInput(t, e,
			// b1 disagrees at i1 → noisy from 101 under rule-set (5).
			Move(100, "b1", "r10", "o7", 0, nearI1, 0, true),
			// While noisy, b1 reports congestion at the park area.
			Move(300, "b1", "r10", "o7", 0, nearPrk, 0, true),
		)
		return query(t, e, 3599)
	}

	static := run(false)
	if !static.HoldsAt(BusCongestion, "park", 400) {
		t.Error("static recognition must accept the noisy bus's report")
	}

	adaptive := run(true)
	if adaptive.HoldsAt(BusCongestion, "park", 400) {
		t.Error("self-adaptive recognition must discard the noisy bus's report")
	}
	// The initial (pre-noisy) report at i1 is still accepted: noisy
	// holds only from T+1.
	if !adaptive.HoldsAt(BusCongestion, "i1", 150) {
		t.Error("report at the moment of first disagreement is still accepted")
	}
}

func TestDelayIncrease(t *testing.T) {
	e := newEngine(t, Config{}) // d = 60 s, t = 90 s
	mustInput(t, e,
		Move(100, "b1", "r10", "o7", 100, nearI1, 0, false),
		Move(130, "b1", "r10", "o7", 200, nearI1, 0, false), // +100 in 30 s → CE
		Move(160, "b1", "r10", "o7", 220, nearI1, 0, false), // +20 → below d
		Move(400, "b1", "r10", "o7", 500, nearI1, 0, false), // +280 but 240 s apart → outside t
	)
	res := query(t, e, 3599)
	evs := res.Derived[DelayIncrease]
	if len(evs) != 1 {
		t.Fatalf("delayIncrease events = %v, want 1", evs)
	}
	if evs[0].Time != 130 || evs[0].Key != "b1" {
		t.Errorf("delayIncrease = %v", evs[0])
	}
	if g, _ := evs[0].Int("delayGrowth"); g != 100 {
		t.Errorf("delayGrowth = %d, want 100", g)
	}
}

func TestFlowAndDensityTrends(t *testing.T) {
	e := newEngine(t, Config{}) // epsilon = 0.10
	mustInput(t, e,
		Traffic(100, "s1", "i1", "A1", 0.20, 1000),
		Traffic(460, "s1", "i1", "A1", 0.30, 1200), // density +50%, flow +20% → both rising
		Traffic(820, "s1", "i1", "A1", 0.29, 700),  // density -3% → steady; flow -42% → falling
	)
	res := query(t, e, 3599)
	flow := res.Fluents[FlowTrend]
	if !flow[rtec.KV{Key: "s1", Value: TrendRising}].Contains(500) {
		t.Error("flow should be rising at 500")
	}
	if !flow[rtec.KV{Key: "s1", Value: TrendFalling}].Contains(900) {
		t.Error("flow should be falling at 900")
	}
	dens := res.Fluents[DensityTrend]
	if !dens[rtec.KV{Key: "s1", Value: TrendRising}].Contains(500) {
		t.Error("density should be rising at 500")
	}
	if !dens[rtec.KV{Key: "s1", Value: TrendSteady}].Contains(900) {
		t.Error("density should be steady at 900")
	}
	// Values are mutually exclusive.
	if dens[rtec.KV{Key: "s1", Value: TrendRising}].Contains(900) {
		t.Error("rising must terminate when steady is initiated")
	}
}

func TestNoisyScats(t *testing.T) {
	e := newEngine(t, Config{})
	mustInput(t, e,
		// SCATS says i2 congested from 101.
		congestedReading(100, "s3", "i2"),
		// The crowd says no congestion at 200 → SCATS considered noisy.
		CrowdVerdict(200, "i2", Negative),
		// At 500 the crowd confirms congestion → rehabilitated.
		CrowdVerdict(500, "i2", Positive),
	)
	res := query(t, e, 3599)
	got := res.Intervals(NoisyScats, "i2")
	want := rtec.List{{Start: 201, End: 501}}
	if !got.Equal(want) {
		t.Errorf("noisyScats = %v, want %v", got, want)
	}
}

func TestBuildStrataShape(t *testing.T) {
	defs, err := Build(Config{Registry: testRegistry(t), Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	strata := defs.Strata()
	// With Adaptive on, busCongestion must evaluate after noisy, which
	// evaluates after disagree/agree, which evaluate after
	// scatsIntCongestion, which evaluates after scatsCongestion.
	level := make(map[string]int)
	for i, names := range strata {
		for _, n := range names {
			level[n] = i
		}
	}
	order := [][2]string{
		{ScatsCongestion, ScatsIntCongestion},
		{ScatsIntCongestion, Disagree},
		{Disagree, Noisy},
		{Noisy, BusCongestion},
		{BusCongestion, SourceDisagreement},
	}
	for _, pair := range order {
		if level[pair[0]] >= level[pair[1]] {
			t.Errorf("%s (stratum %d) must evaluate before %s (stratum %d)",
				pair[0], level[pair[0]], pair[1], level[pair[1]])
		}
	}
}
