package traffic

import (
	"testing"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
)

func TestVoteKeyRoundTrip(t *testing.T) {
	k := VoteKey("bus42", "int7")
	if k != "bus42\x1fint7" {
		t.Fatalf("VoteKey = %q", k)
	}
	if got := VoteBus(k); got != "bus42" {
		t.Fatalf("VoteBus(%q) = %q", k, got)
	}
	if got := VoteBus("plain"); got != "plain" {
		t.Fatalf("VoteBus(plain) = %q", got)
	}
}

func TestBuildShardValidation(t *testing.T) {
	reg, err := NewRegistry([]Intersection{{ID: "I1"}}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildShard(Config{Registry: reg}, ShardPlan{}); err == nil {
		t.Error("BuildShard without OwnsSensor must error")
	}
	defs, err := BuildShard(Config{Registry: reg}, ShardPlan{OwnsSensor: func(string) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if defs == nil {
		t.Fatal("nil definitions")
	}
	if _, err := BuildReduce(Config{}); err != nil {
		t.Fatalf("BuildReduce: %v", err)
	}
}

// TestVoteFoldMatchesSingleEngine pins the core of the sharded
// decomposition at engine level: bus moves split across two shard
// engines, their busCongVote events folded by a reduce engine, must
// yield exactly the busCongestion fluent the single-engine rule set
// computes — including across a late-arriving move that lands between
// query boundaries.
func TestVoteFoldMatchesSingleEngine(t *testing.T) {
	i1 := geo.Point{Lon: 0, Lat: 0}
	i2 := geo.Point{Lon: 0.01, Lat: 0} // ~1.1 km away: distinct areas
	reg, err := NewRegistry([]Intersection{
		{ID: "I1", Pos: i1, Sensors: []string{"s1", "s2"}},
		{ID: "I2", Pos: i2, Sensors: []string{"s3"}},
	}, 150)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Registry: reg}
	opts := rtec.Options{WorkingMemory: 100, Step: 60}

	single, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se, err := rtec.NewEngine(single, opts)
	if err != nil {
		t.Fatal(err)
	}

	owners := map[string]int{"alpha": 0, "beta": 1}
	shards := make([]*rtec.Engine, 2)
	for i := range shards {
		i := i
		defs, err := BuildShard(cfg, ShardPlan{OwnsSensor: func(string) bool { return i == 0 }})
		if err != nil {
			t.Fatal(err)
		}
		if shards[i], err = rtec.NewEngine(defs, opts); err != nil {
			t.Fatal(err)
		}
	}
	rdefs, err := BuildReduce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reduce, err := rtec.NewEngine(rdefs, opts)
	if err != nil {
		t.Fatal(err)
	}

	feed := func(evs ...rtec.Event) {
		t.Helper()
		for _, ev := range evs {
			if err := se.Input(ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type == MoveType {
				if err := shards[owners[ev.Key]].Input(ev); err != nil {
					t.Fatal(err)
				}
				continue
			}
			for _, sh := range shards {
				if err := sh.Input(ev); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	query := func(q rtec.Time) (*rtec.Result, *rtec.Result) {
		t.Helper()
		want, err := se.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var votes []rtec.Event
		for _, sh := range shards {
			res, err := sh.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if _, leaked := res.Fluents[BusCongestion]; leaked {
				t.Fatal("shard engine computed busCongestion locally")
			}
			for _, ev := range res.Fresh {
				if ev.Type == BusCongVote {
					votes = append(votes, ev)
				}
			}
		}
		if err := reduce.Input(votes...); err != nil {
			t.Fatal(err)
		}
		got, err := reduce.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return got, want
	}
	check := func(q rtec.Time, got, want *rtec.Result) {
		t.Helper()
		wi := want.Fluents[BusCongestion]
		gi := got.Fluents[BusCongestion]
		if len(gi) != len(wi) {
			t.Fatalf("q=%d: %d reduced instances, want %d (%v vs %v)", q, len(gi), len(wi), gi, wi)
		}
		for kv, wl := range wi {
			if gl, ok := gi[kv]; !ok || !gl.Equal(wl) {
				t.Errorf("q=%d %v: reduced %v, want %v", q, kv, gi[kv], wl)
			}
		}
	}

	mv := func(tm rtec.Time, bus string, pos geo.Point, congested bool) rtec.Event {
		return Move(tm, bus, "L1", "op", 0, pos, 0, congested)
	}

	feed(
		mv(10, "alpha", i1, true),
		mv(40, "beta", i1, false),
		mv(70, "alpha", i2, true),
		Traffic(30, "s1", "I1", "a", 0.8, 100),
		Traffic(30, "s2", "I1", "b", 0.8, 100),
	)
	got, want := query(60)
	check(60, got, want)

	// A late move (t=55 < lastQ) arrives after the first boundary: the
	// vote fold must ride the reduce engine's dirty-watermark path and
	// still match the single engine, which sees the same late event.
	feed(
		mv(55, "beta", i1, true),
		mv(130, "beta", i2, false),
	)
	got, want = query(120)
	check(120, got, want)

	got, want = query(180)
	check(180, got, want)

	if _, ok := want.Fluents[BusCongestion]; !ok {
		t.Fatal("scenario never produced busCongestion: test is vacuous")
	}
}
