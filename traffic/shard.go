// Sharded decomposition of the Dublin rule set. The N-way recognition
// tier (root package) replicates sensor and crowd SDEs to every shard
// and routes each bus's move events to the shard owning the bus. Under
// that input contract the rule set splits exactly:
//
//   - sensor- and crowd-driven CEs (scatsCongestion, the intersection
//     hierarchy, unusualCongestion, noisyScats) read only replicated
//     inputs, so every shard computes identical instances and the
//     merge is idempotent (interval union of equal lists);
//   - per-entity CEs keyed by an owned entity (noisy, delayIncrease,
//     disagree/agree, flow/density trends, congestionInTheMake) are
//     computed only in the owner shard, which holds every input the
//     single engine would use for that entity;
//   - busCongestion aggregates buses across shards, so shards emit
//     busCongVote events (BuildShard) and a reduce engine folds them
//     into the fluent (BuildReduce); sourceDisagreement is then a
//     relative complement the tier computes from the reduced fluent.
//
// The equivalence of this decomposition against the single-engine rule
// set — at every shard count, both store kinds, under chaos — is pinned
// by the shard-equivalence grid in the root package.
package traffic

import (
	"fmt"
	"strings"

	"github.com/insight-dublin/insight/rtec"
)

// ShardPlan scopes one shard's rule build.
type ShardPlan struct {
	// OwnsSensor reports whether this shard owns a SCATS sensor key.
	// Sensor-keyed per-entity fluents (flowTrend, densityTrend,
	// congestionInTheMake) are computed only for owned sensors, so each
	// instance lives in exactly one shard. Required; it is called during
	// concurrent shard evaluation and must be safe for concurrent use
	// and stable between rebalances.
	OwnsSensor func(sensor string) bool
}

// VoteSep separates the bus and area components of a busCongVote key.
// US (unit separator) cannot occur in entity IDs.
const VoteSep = "\x1f"

// VoteKey builds the busCongVote event key for one (bus, area) match.
// Keying votes by the pair keeps derived-event identities unique, and
// the bus prefix is what migration uses to move a bus's vote dedup
// state between shards.
func VoteKey(bus, area string) string { return bus + VoteSep + area }

// VoteBus returns the bus component of a busCongVote key, or the whole
// key if it has no separator.
func VoteBus(key string) string {
	if i := strings.Index(key, VoteSep); i >= 0 {
		return key[:i]
	}
	return key
}

// BuildShard compiles the shard-local Dublin rule set: the single-
// engine set with owner-scoped sensor fluents, busCongestion replaced
// by busCongVote emission, and sourceDisagreement left to the tier.
func BuildShard(cfg Config, plan ShardPlan) (*rtec.Definitions, error) {
	if plan.OwnsSensor == nil {
		return nil, fmt.Errorf("traffic: ShardPlan.OwnsSensor is required")
	}
	return buildRules(cfg, &plan, nil)
}

// BuildReduce compiles the reduce-stage rule set: busCongVote events in,
// the busCongestion fluent out. A vote's time equals its source move
// event's time and its polarity equals the move's congestion flag, so
// the transition set this fluent derives over any window is exactly the
// transition set the single-engine busCongestion rule derives — late
// votes ride the engine's normal dirty-watermark path.
func BuildReduce(cfg Config) (*rtec.Definitions, error) {
	cfg = cfg.withDefaults()
	b := rtec.NewBuilder().DeclareSDE(BusCongVote)
	b.Simple(rtec.SimpleFluent{
		Name:     BusCongestion,
		Inputs:   []string{BusCongVote},
		Locality: rtec.Pointwise(), // one vote at T is one transition at T
		Transitions: func(ctx *rtec.Context) []rtec.Transition {
			var out []rtec.Transition
			rows := ctx.Rows(BusCongVote)
			for i := 0; i < rows.Len(); i++ {
				e := rows.At(i)
				area, ok := e.Str("area")
				if !ok {
					continue
				}
				if congested, _ := e.Bool("congested"); congested {
					out = append(out, rtec.InitiateAt(area, e.Time))
				} else {
					out = append(out, rtec.TerminateAt(area, e.Time))
				}
			}
			return out
		},
	})
	return b.Compile()
}

// OwnerScopedFluents lists the simple fluents whose instances live only
// in the shard owning their key (a bus or a sensor). Rebalancing moves
// exactly these instances with a migrated key; every other fluent is
// either computed identically in all shards (sensor aggregates over
// replicated inputs) or owned by the reduce engine.
func OwnerScopedFluents() []string {
	return []string{Noisy, FlowTrend, DensityTrend, CongestionInMake}
}
