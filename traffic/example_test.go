package traffic_test

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// Recognising the paper's congestion and disagreement CEs over a
// scripted scenario: SCATS says free flow while a bus insists on
// congestion.
func Example() {
	bridge := geo.At(53.3471, -6.2621)
	registry, err := traffic.NewRegistry([]traffic.Intersection{
		{ID: "oconnell-bridge", Pos: bridge, Sensors: []string{"s1"}},
	}, 120)
	if err != nil {
		log.Fatal(err)
	}
	defs, err := traffic.Build(traffic.Config{Registry: registry})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := rtec.NewEngine(defs, rtec.Options{WorkingMemory: 900})
	if err != nil {
		log.Fatal(err)
	}

	if err := engine.Input(
		// traffic(Int, A, S, D, F): low density, high flow — no congestion.
		traffic.Traffic(60, "s1", "oconnell-bridge", "A1", 0.08, 1200),
		// move + gps: the bus reports congestion right at the bridge.
		traffic.Move(300, "bus33009", "r10", "DublinBus", 45, bridge, 0, true),
	); err != nil {
		log.Fatal(err)
	}
	res, err := engine.Query(899)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("busCongestion:", res.Intervals(traffic.BusCongestion, "oconnell-bridge"))
	fmt.Println("sourceDisagreement:", res.Intervals(traffic.SourceDisagreement, "oconnell-bridge"))
	for _, d := range res.Derived[traffic.Disagree] {
		bus, _ := d.Str("bus")
		val, _ := d.Str("value")
		fmt.Printf("disagree(%s, %s, %s) at t=%d\n", bus, d.Key, val, int64(d.Time))
	}
	// Output:
	// busCongestion: [301, 900)
	// sourceDisagreement: [301, 900)
	// disagree(bus33009, oconnell-bridge, positive) at t=300
}
