package insight

// Crash-equivalence campaign: the chaos harness behind the durability
// gate (TestCrashEquivalence) and cmd/crashbench. One campaign is a
// kill → recover → resume loop over a single durable directory:
// every epoch builds a fresh System (the process-death model — nothing
// in memory survives), arms one injected failure, runs until the crash
// point fires, and lets the next epoch recover from whatever the disk
// holds. The gate property is that the union of reports emitted across
// all crashed epochs, deduplicated by query time (newest wins — report
// emission is at-least-once), fingerprints bit-identically to one
// uninterrupted run of the same window.
//
// Failure schedule. The campaign interleaves three failure families
// until its quotas are met, then runs clean to completion:
//   - WAL kills: a wal.Failpoint that tears the log mid-record once
//     appends pass an adaptive target offset, placed so every epoch
//     makes at least one full record of progress (no livelock) and the
//     kills spread across the whole window;
//   - checkpoint crashes: CrashTornCheckpoint / CrashAfterCheckpoint /
//     CrashCorruptCheckpoint on the first checkpoint write of the
//     epoch, cycling so each mode fires at least once;
//   - a combined epoch: a torn checkpoint followed by a post-mortem
//     torn WAL tail, so recovery faces both artifacts in one pass.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"time"

	"github.com/insight-dublin/insight/streams/wal"
)

// CampaignOptions configures RunCrashCampaign.
type CampaignOptions struct {
	// NewSystem builds a fresh System per epoch. It must be
	// deterministic: every call must yield an identically configured
	// system (same seeds, ColumnarTransport, no participants).
	NewSystem func() (*System, error)
	// From, Until bound the SDE window.
	From, Until Time
	// Dir is the campaign root; the durable directory under test is
	// Dir/epochs, the uninterrupted reference runs in Dir/baseline.
	Dir string
	// CheckpointEvery forwards to DurableOptions (default 1).
	CheckpointEvery int
	// Kills is the minimum number of WAL crash points to fire before
	// the campaign may complete (default 20).
	Kills int
	// Seed drives tear-size sampling.
	Seed int64
	// MaxEpochs aborts a campaign that stops making progress (default
	// 3*Kills + 24).
	MaxEpochs int
}

// EpochResult describes one campaign epoch.
type EpochResult struct {
	// Fault names the injected failure: "wal-kill", "ckpt-torn",
	// "ckpt-after", "ckpt-corrupt", "combined", or "clean".
	Fault string
	// Recovery is what BuildDurablePipeline reported entering the epoch.
	Recovery RecoveryInfo
	// RecoveryMillis is the wall time of BuildDurablePipeline — load
	// checkpoint, restore engines, replay the log tail.
	RecoveryMillis float64
	// Reports is the number of reports the epoch delivered to the
	// operator sink before dying (or finishing).
	Reports int
	// Completed is true when the epoch ran to the end of the window.
	Completed bool
}

// CampaignResult is the outcome of a crash-equivalence campaign.
type CampaignResult struct {
	Completed bool
	Epochs    []EpochResult
	// WALKills, TornCheckpoints, AfterCheckpoints, CorruptCheckpoints
	// and CombinedEpochs count the injected failures by family.
	WALKills           int
	TornCheckpoints    int
	AfterCheckpoints   int
	CorruptCheckpoints int
	CombinedEpochs     int
	// BaselineRecords is the number of WAL records one uninterrupted
	// run appends; an epoch with 0 < Recovery.ReplayedRecords <
	// BaselineRecords proves recovery is incremental.
	BaselineRecords int
	// Baseline maps query time to the uninterrupted run's fingerprint.
	Baseline map[Time]string
	// Final maps query time to the newest crashed-run report
	// (at-least-once emission deduplicated, newest epoch wins).
	Final map[Time]*Report
	// Mismatches lists every divergence between Final and Baseline,
	// empty on a passing campaign.
	Mismatches []string
}

// campaignFailpoint arms one WAL kill: the epoch's killN-th append
// dies. Counting appends rather than byte offsets keeps the campaign
// schedule-independent — however the source streams happen to merge
// into the appender, every kill epoch durably advances the log by
// killN-1 records, so the kill points sweep forward through the
// record sequence without ever outrunning it (no livelock, no
// premature exhaustion). killN must be at least 2: the first append
// always lands, which is what guarantees forward progress.
func campaignFailpoint(killN int, tearSalt int64, kills *int) wal.Failpoint {
	seen := 0
	return func(start int64, frameLen int) (tear int, kill bool) {
		seen++
		if seen < killN {
			return 0, false
		}
		*kills++
		// Tear size is a deterministic function of the pre-drawn salt and
		// the frame length: anywhere from nothing written to the full
		// frame (written then unacknowledged — the replay-owns-it case).
		return int(tearSalt % int64(frameLen+1)), true
	}
}

// RunCrashCampaign runs the baseline and the kill → recover → resume
// loop, verifying crash equivalence as it goes.
func RunCrashCampaign(ctx context.Context, opts CampaignOptions) (*CampaignResult, error) {
	if opts.Kills <= 0 {
		opts.Kills = 20
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	if opts.MaxEpochs <= 0 {
		opts.MaxEpochs = 3*opts.Kills + 24
	}
	res := &CampaignResult{
		Baseline: make(map[Time]string),
		Final:    make(map[Time]*Report),
	}

	// Uninterrupted reference run, on its own durable directory: same
	// code path, no failpoints.
	baseDir := filepath.Join(opts.Dir, "baseline")
	sys, err := opts.NewSystem()
	if err != nil {
		return nil, err
	}
	pipe, info, err := sys.BuildDurablePipeline(opts.From, opts.Until, DurableOptions{
		Dir: baseDir, CheckpointEvery: opts.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	if info.Resumed {
		return nil, fmt.Errorf("insight: campaign baseline directory %s is not fresh", baseDir)
	}
	baseline, err := pipe.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("insight: campaign baseline run: %w", err)
	}
	for _, rep := range baseline {
		res.Baseline[rep.Q] = rep.Fingerprint()
	}
	// The baseline consumed every envelope live, so its consumption
	// counter is the total record count (it survives the log's close).
	res.BaselineRecords = pipe.durable.consumedIdx
	if res.BaselineRecords == 0 {
		return nil, fmt.Errorf("insight: campaign baseline appended no WAL records")
	}

	// The kill → recover → resume loop over one durable directory.
	epochDir := filepath.Join(opts.Dir, "epochs")
	rng := rand.New(rand.NewSource(opts.Seed))
	ckptModes := []struct {
		fault string
		crash CheckpointCrash
	}{
		// Corrupt first: its poisoned checkpoint forces the next two
		// recoveries onto the CRC-fallback path, and running it early —
		// while replay still re-accumulates unfired boundaries — makes
		// sure a live checkpoint write (the crash point) always happens.
		// After-rename runs last so the clean epoch resumes from the
		// newest durable checkpoint.
		{"ckpt-corrupt", CrashCorruptCheckpoint},
		{"ckpt-torn", CrashTornCheckpoint},
		{"ckpt-after", CrashAfterCheckpoint},
	}
	ckptIdx := 0
	combinedDone := false
	for len(res.Epochs) < opts.MaxEpochs {
		// Pick this epoch's failure. Order matters: WAL kills must all
		// run first, because the appender is only throttled by its own
		// crash point — any epoch whose monitoring process dies at a
		// checkpoint lets the appender flood the rest of the stream into
		// the log, after which there is nothing left to kill an append
		// over. The combined epoch then runs while a torn tail is still
		// meaningful (the last record above every durable checkpoint),
		// followed by the remaining checkpoint crash modes, then clean.
		var fault string
		switch {
		case res.WALKills < opts.Kills:
			fault = "wal-kill"
		case !combinedDone:
			fault = "combined"
		case ckptIdx < len(ckptModes):
			fault = ckptModes[ckptIdx].fault
		default:
			fault = "clean"
		}

		d := DurableOptions{Dir: epochDir, CheckpointEvery: opts.CheckpointEvery}
		switch fault {
		case "wal-kill":
			// Alternate killing the second and third append of the epoch:
			// one to two records of durable progress per kill, so the
			// kill quota always fits inside the record sequence with
			// room to spare while still sweeping forward through it.
			d.WALFailpoint = campaignFailpoint(2+len(res.Epochs)%2, rng.Int63(), &res.WALKills)
		case "combined", "ckpt-torn", "ckpt-after", "ckpt-corrupt":
			crash := CrashTornCheckpoint
			if fault != "combined" {
				crash = ckptModes[ckptIdx].crash
			}
			armed := false
			d.CheckpointFailpoint = func(q Time) CheckpointCrash {
				if armed {
					return CrashNone
				}
				armed = true
				return crash
			}
		}

		sys, err := opts.NewSystem()
		if err != nil {
			return nil, err
		}
		//lint:allow nodeterminism recovery timing feeds only the benchmark report, never a result
		t0 := time.Now()
		pipe, info, err := sys.BuildDurablePipeline(opts.From, opts.Until, d)
		if err != nil {
			return nil, fmt.Errorf("insight: epoch %d (%s) recovery: %w", len(res.Epochs), fault, err)
		}
		recoveryMillis := float64(time.Since(t0)) / float64(time.Millisecond)
		_, runErr := pipe.Run(ctx)
		// The collector survives the crash (the "operator" saw these
		// reports before the process died); newest epoch wins per Q.
		emitted := 0
		for _, it := range pipe.Reports.Items() {
			if rep, ok := it[itemReport].(*Report); ok {
				res.Final[rep.Q] = rep
				emitted++
			}
		}
		ep := EpochResult{
			Fault:          fault,
			Recovery:       *info,
			RecoveryMillis: recoveryMillis,
			Reports:        emitted,
			Completed:      runErr == nil,
		}
		res.Epochs = append(res.Epochs, ep)

		if runErr != nil {
			if !errors.Is(runErr, wal.ErrCrashPoint) {
				return nil, fmt.Errorf("insight: epoch %d (%s) died of a real failure, not an injected crash: %w",
					len(res.Epochs)-1, fault, runErr)
			}
			switch fault {
			case "ckpt-torn":
				res.TornCheckpoints++
				ckptIdx++
			case "ckpt-after":
				res.AfterCheckpoints++
				ckptIdx++
			case "ckpt-corrupt":
				res.CorruptCheckpoints++
				ckptIdx++
			case "combined":
				res.TornCheckpoints++
				if err := tearEpochTail(epochDir, rng.Int63n(256)+1); err != nil {
					return nil, err
				}
				res.CombinedEpochs++
				combinedDone = true
			}
			continue
		}
		res.Completed = true
		break
	}
	if !res.Completed {
		return nil, fmt.Errorf("insight: campaign did not complete within %d epochs (%d/%d WAL kills)",
			opts.MaxEpochs, res.WALKills, opts.Kills)
	}

	// Crash equivalence: every baseline query time must be present with
	// a bit-identical fingerprint, and no extra query times may appear.
	qs := make([]Time, 0, len(res.Baseline))
	for q := range res.Baseline {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		rep, ok := res.Final[q]
		if !ok {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf("q=%d: no report emitted by any epoch", int64(q)))
			continue
		}
		if got := rep.Fingerprint(); got != res.Baseline[q] {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf("q=%d: fingerprint diverged\n  crashed:  %s\n  baseline: %s",
				int64(q), got, res.Baseline[q]))
		}
	}
	for q := range res.Final {
		if _, ok := res.Baseline[q]; !ok {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf("q=%d: crashed run invented a query time the baseline never fired", int64(q)))
		}
	}
	sort.Strings(res.Mismatches)
	return res, nil
}

// tearEpochTail is the combined epoch's post-mortem bite: after the
// torn-checkpoint crash, tear up to n bytes off the WAL's last record
// too, so the next recovery faces a torn checkpoint and a torn log
// tail at once. Skipped when the last record lies at or below the
// newest valid checkpoint's offset — offsets below the replay start
// must stay immutable or the log would rewind under the checkpoint.
func tearEpochTail(dir string, n int64) error {
	ck, _, _, err := loadLatestCheckpoint(dir)
	if err != nil {
		return err
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		return err
	}
	if log.LastStart() >= 0 && (ck == nil || log.LastStart() >= ck.walOffset) {
		if err := log.TearTail(n); err != nil {
			return errors.Join(err, log.Close())
		}
	}
	return log.Close()
}
