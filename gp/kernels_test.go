package gp

import (
	"math"
	"testing"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/internal/linalg"
)

func TestRandomWalkKernelValidation(t *testing.T) {
	g := pathGraph(4)
	if _, err := RandomWalkKernel(nil, 0, 1); err == nil {
		t.Error("nil graph must error")
	}
	if _, err := RandomWalkKernel(g, 0, 0); err == nil {
		t.Error("p = 0 must error")
	}
	if _, err := RandomWalkKernel(g, 1, 2); err == nil {
		t.Error("a below the PSD bound must error")
	}
}

func TestRandomWalkKernelProperties(t *testing.T) {
	g := pathGraph(6)
	k, err := RandomWalkKernel(g, 0, 2) // a defaults to 2·maxDegree
	if err != nil {
		t.Fatal(err)
	}
	if k.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d", k.NumVertices())
	}
	// Symmetric with unit max diagonal.
	maxDiag := 0.0
	for i := 0; i < 6; i++ {
		if v := k.At(i, i); v > maxDiag {
			maxDiag = v
		}
		for j := 0; j < 6; j++ {
			if math.Abs(k.At(i, j)-k.At(j, i)) > 1e-12 {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if math.Abs(maxDiag-1) > 1e-12 {
		t.Errorf("max diagonal = %v, want 1", maxDiag)
	}
	// Strictly local support: with p = 2, vertices more than 2 hops
	// apart have zero covariance — unlike the regularized Laplacian.
	if k.At(0, 5) != 0 {
		t.Errorf("K[0,5] = %v, want 0 (5 hops apart, p = 2)", k.At(0, 5))
	}
	if k.At(0, 2) <= 0 {
		t.Errorf("K[0,2] = %v, want > 0 (2 hops)", k.At(0, 2))
	}
	// Closer still correlates more.
	if !(k.At(0, 1) > k.At(0, 2)) {
		t.Errorf("K[0,1] = %v should exceed K[0,2] = %v", k.At(0, 1), k.At(0, 2))
	}
}

func TestRandomWalkKernelFitsAndPredicts(t *testing.T) {
	g := citygraph.GenerateDublin(citygraph.DublinConfig{GridX: 10, GridY: 6, Seed: 2})
	k, err := RandomWalkKernel(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Fit(k, []Observation{
		{Vertex: 0, Value: 1000},
		{Vertex: g.NumVertices() - 1, Value: 100},
	}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := reg.Predict([]int{g.Neighbors(0)[0]})
	if err != nil {
		t.Fatal(err)
	}
	// A neighbour of the high-flow sensor leans above the global mean.
	if !(mean[0] > 550) {
		t.Errorf("neighbour estimate = %v, want pulled toward 1000", mean[0])
	}
}

// Both kernels are usable interchangeably; the regularized Laplacian
// propagates globally while the p-step kernel reverts to the mean
// beyond its radius.
func TestKernelFamilyComparison(t *testing.T) {
	g := pathGraph(12)
	lap, err := RegularizedLaplacian(g, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := RandomWalkKernel(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Vertex: 0, Value: 100}}
	far := []int{11} // 11 hops from the only sensor
	for name, k := range map[string]*Kernel{"laplacian": lap, "walk": walk} {
		reg, err := Fit(k, obs, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mean, _, err := reg.Predict(far)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		switch name {
		case "walk":
			// Outside the 2-hop support: pure prior mean (the single
			// observation's value IS the empirical mean here, so
			// check via a two-observation variant below instead).
			_ = mean
		}
	}
	// Two observations so the empirical mean (55) differs from both.
	obs2 := []Observation{{Vertex: 0, Value: 100}, {Vertex: 1, Value: 10}}
	regWalk, err := Fit(walk, obs2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	meanWalk, _, err := regWalk.Predict(far)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meanWalk[0]-55) > 1 {
		t.Errorf("walk kernel beyond support = %v, want the empirical mean 55", meanWalk[0])
	}
	regLap, err := Fit(lap, obs2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	meanLap, _, err := regLap.Predict(far)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meanLap[0]-55) < 0.5 {
		t.Errorf("laplacian kernel should still propagate at 11 hops, got exactly the mean %v", meanLap[0])
	}
}

func TestNewKernelFromMatrix(t *testing.T) {
	if _, err := NewKernelFromMatrix(nil); err == nil {
		t.Error("nil matrix must error")
	}
	if _, err := NewKernelFromMatrix(linalg.FromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Error("non-square matrix must error")
	}
	if _, err := NewKernelFromMatrix(linalg.FromRows([][]float64{{1, 2}, {3, 1}})); err == nil {
		t.Error("asymmetric matrix must error")
	}
	k, err := NewKernelFromMatrix(linalg.FromRows([][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(k, []Observation{{Vertex: 0, Value: 5}}, 0.1); err != nil {
		t.Fatalf("custom kernel must be fittable: %v", err)
	}
}
