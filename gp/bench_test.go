package gp

import (
	"math"
	"testing"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/internal/linalg"
)

// The GP performance benches behind `make bench-gp` (BENCH_gp.json):
// kernel build, fit, predict-all and grid search at city scale
// (n≈512 street-graph vertices), each in two modes —
//
//	serial:   Options{Reference: true} + Workers 1, the seed's naive
//	          kernels and sequential search (the baseline),
//	blocked:  the default blocked/parallel kernels and parallel search.
//
// Mode is flipped through linalg.SetDefaultOptions, so the whole GP
// stack (Laplacian inversion, observed-block factorization, predictive
// solves) switches implementation, not just one call site.

func benchGraph512() *citygraph.Graph {
	// 520 vertices with the default Dublin structure (river gap,
	// diagonals) — the n≈512 scale of the acceptance target.
	return citygraph.GenerateDublin(citygraph.DublinConfig{GridX: 26, GridY: 20, Seed: 11})
}

func benchObservations(g *citygraph.Graph, every int) []Observation {
	var obs []Observation
	for i := 0; i < g.NumVertices(); i += every {
		obs = append(obs, Observation{Vertex: i, Value: 300 + 150*math.Sin(float64(i)/17)})
	}
	return obs
}

type benchMode struct {
	name    string
	opts    linalg.Options
	workers int // SearchOptions.Workers for the grid search
}

var benchModes = []benchMode{
	{name: "serial", opts: linalg.Options{Reference: true}, workers: 1},
	{name: "blocked", opts: linalg.Options{}, workers: 0},
}

func BenchmarkGP_KernelBuild(b *testing.B) {
	g := benchGraph512()
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			prev := linalg.SetDefaultOptions(m.opts)
			defer linalg.SetDefaultOptions(prev)
			for i := 0; i < b.N; i++ {
				if _, err := RegularizedLaplacian(g, 2, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGP_Fit(b *testing.B) {
	g := benchGraph512()
	kernel, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservations(g, 2) // 260 observed vertices
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			prev := linalg.SetDefaultOptions(m.opts)
			defer linalg.SetDefaultOptions(prev)
			for i := 0; i < b.N; i++ {
				if _, err := Fit(kernel, obs, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGP_PredictAll(b *testing.B) {
	g := benchGraph512()
	kernel, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservations(g, 2)
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			prev := linalg.SetDefaultOptions(m.opts)
			defer linalg.SetDefaultOptions(prev)
			reg, err := Fit(kernel, obs, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.PredictAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGP_GridSearch(b *testing.B) {
	g := benchGraph512()
	obs := benchObservations(g, 4) // 130 observed vertices
	alphas := []float64{0.5, 2, 8}
	betas := []float64{0.1, 1, 5}
	for _, m := range benchModes {
		b.Run(m.name, func(b *testing.B) {
			prev := linalg.SetDefaultOptions(m.opts)
			defer linalg.SetDefaultOptions(prev)
			for i := 0; i < b.N; i++ {
				if _, err := GridSearchWith(g, obs, alphas, betas, 1, 4, 1, SearchOptions{Workers: m.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
