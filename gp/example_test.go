package gp_test

import (
	"fmt"
	"log"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/geo"
	"github.com/insight-dublin/insight/gp"
)

// Estimating traffic flow at a junction without sensors from its
// neighbours, with the regularized Laplacian kernel of Section 6.
func Example() {
	// A five-junction avenue: 0 — 1 — 2 — 3 — 4.
	g := citygraph.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddVertex(geo.At(53.34+float64(i)*0.002, -6.26))
	}
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}

	// K = [β(L + I/α²)]⁻¹ with α = 3, β = 0.5.
	kernel, err := gp.RegularizedLaplacian(g, 3, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// Sensors at both ends; junction 2 is unobserved.
	reg, err := gp.Fit(kernel, []gp.Observation{
		{Vertex: 0, Value: 1200}, // free flow
		{Vertex: 4, Value: 300},  // congested
	}, 100)
	if err != nil {
		log.Fatal(err)
	}
	mean, _, err := reg.Predict([]int{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow at the unobserved middle junction: %.0f veh/h\n", mean[0])
	// Output:
	// flow at the unobserved middle junction: 750 veh/h
}
