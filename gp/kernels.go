package gp

import (
	"fmt"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/internal/linalg"
)

// The paper picks the regularized Laplacian from the family of graph
// kernels of Smola & Kondor (its reference [27], "Kernels and
// regularization on graphs"). That family contains other members with
// the same "adjacent junctions correlate" semantics; this file adds
// the p-step random-walk kernel
//
//	K = (aI − L)^p,  a ≥ λ_max(L)
//
// which models covariance as the number of ≤p-step walks between
// junctions. It gives a strictly local support (radius p), unlike the
// regularized Laplacian's global decay — a meaningful ablation for the
// traffic model (see GridSearch-style comparison in the tests and
// cmd/gpmap).

// RandomWalkKernel builds K = (aI − L)^p for the graph. p must be at
// least 1; a must make aI − L positive semi-definite, for which
// a ≥ λ_max(L) suffices — the conservative bound a ≥ 2·maxDegree is
// applied automatically when a = 0. The result is normalized to unit
// maximum diagonal so its scale is comparable to the regularized
// Laplacian kernel.
func RandomWalkKernel(g *citygraph.Graph, a float64, p int) (*Kernel, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("gp: empty graph")
	}
	if p < 1 {
		return nil, fmt.Errorf("gp: random-walk steps must be >= 1, got %d", p)
	}
	maxDeg := 0
	for i := 0; i < g.NumVertices(); i++ {
		if d := g.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if a == 0 {
		a = 2 * float64(maxDeg)
		if a == 0 {
			a = 1 // edgeless graph: L = 0
		}
	}
	if a < float64(2*maxDeg) {
		// λ_max(L) ≤ 2·maxDegree; smaller a risks an indefinite
		// kernel. Reject rather than producing a silently broken
		// model.
		return nil, fmt.Errorf("gp: random-walk a = %v below the PSD bound 2·maxDegree = %d", a, 2*maxDeg)
	}

	base := g.Laplacian().Scale(-1).AddDiag(a) // aI − L
	k := base.Clone()
	for i := 1; i < p; i++ {
		k = k.Mul(base)
	}
	// Normalize to unit max diagonal.
	var maxDiag float64
	for i := 0; i < k.Rows; i++ {
		if v := k.At(i, i); v > maxDiag {
			maxDiag = v
		}
	}
	if maxDiag > 0 {
		k.Scale(1 / maxDiag)
	}
	return &Kernel{k: k, scale: 1, n: g.NumVertices()}, nil
}

// NewKernelFromMatrix wraps a caller-supplied covariance matrix as a
// Kernel, for experimenting with kernels this package does not build
// itself. The matrix must be square and symmetric; positive
// definiteness is checked lazily at Fit time.
func NewKernelFromMatrix(m *linalg.Matrix) (*Kernel, error) {
	if m == nil || m.Rows == 0 || m.Rows != m.Cols {
		return nil, fmt.Errorf("gp: kernel matrix must be square and non-empty")
	}
	if !m.Symmetric(1e-9) {
		return nil, fmt.Errorf("gp: kernel matrix must be symmetric")
	}
	return &Kernel{k: m, scale: 1, n: m.Rows}, nil
}
