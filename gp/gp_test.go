package gp

import (
	"math"
	"testing"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/geo"
)

// pathGraph builds a simple path 0-1-2-...-(n-1).
func pathGraph(n int) *citygraph.Graph {
	g := citygraph.NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(geo.At(53.3+float64(i)*0.001, -6.3))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestRegularizedLaplacianValidation(t *testing.T) {
	g := pathGraph(3)
	if _, err := RegularizedLaplacian(nil, 1, 1); err == nil {
		t.Error("nil graph must error")
	}
	if _, err := RegularizedLaplacian(citygraph.NewGraph(), 1, 1); err == nil {
		t.Error("empty graph must error")
	}
	if _, err := RegularizedLaplacian(g, 0, 1); err == nil {
		t.Error("alpha = 0 must error")
	}
	if _, err := RegularizedLaplacian(g, 1, -1); err == nil {
		t.Error("beta <= 0 must error")
	}
}

func TestKernelProperties(t *testing.T) {
	g := pathGraph(5)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d", k.NumVertices())
	}
	// Symmetric, positive diagonal.
	for i := 0; i < 5; i++ {
		if k.At(i, i) <= 0 {
			t.Errorf("K[%d,%d] = %v, want > 0", i, i, k.At(i, i))
		}
		for j := 0; j < 5; j++ {
			if math.Abs(k.At(i, j)-k.At(j, i)) > 1e-12 {
				t.Errorf("kernel not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Covariance decays with graph distance: vertex 0 correlates more
	// with its neighbour 1 than with the far end 4.
	if !(k.At(0, 1) > k.At(0, 4)) {
		t.Errorf("K[0,1] = %v should exceed K[0,4] = %v", k.At(0, 1), k.At(0, 4))
	}
	// Doubling β halves the kernel.
	k2, err := RegularizedLaplacian(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k2.At(0, 0)-k.At(0, 0)/2) > 1e-12 {
		t.Errorf("beta scaling broken: %v vs %v", k2.At(0, 0), k.At(0, 0))
	}
	// Rescale matches recomputation.
	kr, err := k.Rescale(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(kr.At(i, j)-k2.At(i, j)) > 1e-12 {
				t.Fatal("Rescale disagrees with direct computation")
			}
		}
	}
	if _, err := k.Rescale(0); err == nil {
		t.Error("zero rescale must error")
	}
}

func TestFitValidation(t *testing.T) {
	g := pathGraph(4)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(nil, []Observation{{Vertex: 0, Value: 1}}, 0.1); err == nil {
		t.Error("nil kernel must error")
	}
	if _, err := Fit(k, nil, 0.1); err == nil {
		t.Error("no observations must error")
	}
	if _, err := Fit(k, []Observation{{Vertex: 0, Value: 1}}, 0); err == nil {
		t.Error("zero noise must error")
	}
	if _, err := Fit(k, []Observation{{Vertex: 9, Value: 1}}, 0.1); err == nil {
		t.Error("out-of-range vertex must error")
	}
}

func TestPredictionInterpolatesAndSmooths(t *testing.T) {
	// Path 0..6: observe high flow at one end, low at the other. The
	// unobserved middle must interpolate monotonically between them,
	// and observed vertices must be approximately reproduced.
	g := pathGraph(7)
	k, err := RegularizedLaplacian(g, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Fit(k, []Observation{{Vertex: 0, Value: 100}, {Vertex: 6, Value: 10}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance, err := reg.Predict([]int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean[0]-100) > 15 || math.Abs(mean[2]-10) > 15 {
		t.Errorf("observed vertices poorly reproduced: %v", mean)
	}
	if !(mean[0] > mean[1] && mean[1] > mean[2]) {
		t.Errorf("middle must interpolate: %v", mean)
	}
	// Variance at unobserved middle exceeds variance at observed ends.
	if !(variance[1] > variance[0] && variance[1] > variance[2]) {
		t.Errorf("unobserved vertex must be more uncertain: %v", variance)
	}
}

func TestPredictAllMatchesPredict(t *testing.T) {
	g := pathGraph(5)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Fit(k, []Observation{{Vertex: 1, Value: 5}, {Vertex: 3, Value: 15}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := reg.PredictAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("PredictAll length = %d", len(all))
	}
	mean, _, err := reg.Predict([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all[2]-mean[0]) > 1e-12 {
		t.Error("PredictAll disagrees with Predict")
	}
	if _, _, err := reg.Predict([]int{99}); err == nil {
		t.Error("out-of-range prediction must error")
	}
}

func TestDuplicateObservationsAveraged(t *testing.T) {
	g := pathGraph(4)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	regDup, err := Fit(k, []Observation{{Vertex: 1, Value: 10}, {Vertex: 1, Value: 20}, {Vertex: 2, Value: 5}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Two duplicate readings combine by inverse-variance weighting:
	// value 15 with HALF the variance of a single reading.
	regAvg, err := Fit(k, []Observation{{Vertex: 1, Value: 15, Noise: 0.05}, {Vertex: 2, Value: 5}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := regDup.Predict([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := regAvg.Predict([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if math.Abs(m1[i]-m2[i]) > 1e-9 {
			t.Errorf("duplicates not averaged: %v vs %v", m1, m2)
		}
	}
	if got := regDup.Observed(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Observed = %v", got)
	}
}

func TestSmoothingOnDublinGraph(t *testing.T) {
	// Estimates at unobserved junctions near congested sensors must
	// exceed estimates near free-flowing sensors (the Figure 9
	// behaviour: red near congestion, green in calm areas).
	g := citygraph.GenerateDublin(citygraph.DublinConfig{GridX: 12, GridY: 8, Seed: 5})
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Observe high flow on vertices 0..3 (one corner) and low flow on
	// the last 4 (opposite corner).
	n := g.NumVertices()
	obs := []Observation{
		{Vertex: 0, Value: 900}, {Vertex: 1, Value: 880}, {Vertex: 2, Value: 910}, {Vertex: 3, Value: 905},
		{Vertex: n - 1, Value: 80}, {Vertex: n - 2, Value: 95}, {Vertex: n - 3, Value: 70}, {Vertex: n - 4, Value: 85},
	}
	reg, err := Fit(k, obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := reg.PredictAll()
	if err != nil {
		t.Fatal(err)
	}
	// An unobserved neighbour of vertex 0 vs an unobserved neighbour
	// of vertex n-1.
	nearHigh := g.Neighbors(0)[0]
	nearLow := g.Neighbors(n - 1)[0]
	if !(all[nearHigh] > all[nearLow]) {
		t.Errorf("estimate near congested corner (%v) must exceed calm corner (%v)",
			all[nearHigh], all[nearLow])
	}
}

func TestGridSearch(t *testing.T) {
	g := pathGraph(12)
	// Smooth ground truth along the path.
	truth := func(i int) float64 { return 50 + 30*math.Sin(float64(i)/3) }
	var obs []Observation
	for i := 0; i < 12; i += 2 {
		obs = append(obs, Observation{Vertex: i, Value: truth(i)})
	}
	res, err := GridSearch(g, obs, []float64{0.5, 2, 8}, []float64{0.1, 1, 5}, 0.5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 9 {
		t.Errorf("Evaluated = %d, want 9", res.Evaluated)
	}
	if res.Alpha == 0 || res.Beta == 0 {
		t.Error("no hyperparameters chosen")
	}
	if math.IsInf(res.RMSE, 1) || res.RMSE < 0 {
		t.Errorf("RMSE = %v", res.RMSE)
	}
	// The chosen parameters must predict held-out vertices sensibly:
	// RMSE should be well below the signal amplitude.
	if res.RMSE > 30 {
		t.Errorf("cross-validated RMSE = %v, want < 30", res.RMSE)
	}
}

func TestGridSearchValidation(t *testing.T) {
	g := pathGraph(5)
	obs := []Observation{{Vertex: 0, Value: 1}, {Vertex: 1, Value: 2}, {Vertex: 2, Value: 3}}
	if _, err := GridSearch(g, obs, nil, []float64{1}, 0.1, 2, 1); err == nil {
		t.Error("empty alpha grid must error")
	}
	if _, err := GridSearch(g, obs, []float64{1}, []float64{1}, 0.1, 1, 1); err == nil {
		t.Error("one fold must error")
	}
	if _, err := GridSearch(g, obs[:1], []float64{1}, []float64{1}, 0.1, 2, 1); err == nil {
		t.Error("fewer observations than folds must error")
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid(5)
	if len(g) != 5 {
		t.Fatalf("len = %d", len(g))
	}
	if g[0] <= 0 {
		t.Error("grid must exclude zero")
	}
	if g[len(g)-1] != 10 {
		t.Errorf("grid must end at 10, got %v", g[len(g)-1])
	}
	if len(DefaultGrid(0)) != 5 {
		t.Error("non-positive points must default")
	}
}

func TestHeterogeneousNoise(t *testing.T) {
	// A trusted sensor reading and a noisy crowd-derived reading
	// disagree about the same junction; the fused estimate must sit
	// much closer to the trusted one.
	g := pathGraph(3)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Fit(k, []Observation{
		{Vertex: 1, Value: 100, Noise: 1},    // SCATS: trusted
		{Vertex: 1, Value: 1000, Noise: 100}, // crowd: noisy
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := reg.Predict([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Inverse-variance fusion: (100/1 + 1000/100) / (1/1 + 1/100) ≈ 109.
	if mean[0] > 200 {
		t.Errorf("fused estimate %v ignores observation noise", mean[0])
	}
	if _, err := Fit(k, []Observation{{Vertex: 0, Value: 1, Noise: -1}}, 1); err == nil {
		t.Error("negative per-observation noise must error")
	}
}

func TestNoisierObservationHasLessPull(t *testing.T) {
	g := pathGraph(5)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := []Observation{{Vertex: 0, Value: 50}, {Vertex: 4, Value: 50}}
	// The same outlier at the middle, once trusted, once not.
	trusted, err := Fit(k, append(base, Observation{Vertex: 2, Value: 500, Noise: 0.1}), 1)
	if err != nil {
		t.Fatal(err)
	}
	distrusted, err := Fit(k, append(base, Observation{Vertex: 2, Value: 500, Noise: 1000}), 1)
	if err != nil {
		t.Fatal(err)
	}
	mt, _, err := trusted.Predict([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	md, _, err := distrusted.Predict([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !(mt[0] > md[0]) {
		t.Errorf("trusted outlier (%v) must pull harder than distrusted (%v)", mt[0], md[0])
	}
}

func TestLogMarginalLikelihood(t *testing.T) {
	g := pathGraph(8)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Smooth data must be more likely than jagged data under the
	// smoothness-encoding kernel.
	smooth := []Observation{{Vertex: 0, Value: 10}, {Vertex: 1, Value: 12}, {Vertex: 2, Value: 14},
		{Vertex: 3, Value: 16}, {Vertex: 4, Value: 18}}
	jagged := []Observation{{Vertex: 0, Value: 10}, {Vertex: 1, Value: -40}, {Vertex: 2, Value: 60},
		{Vertex: 3, Value: -90}, {Vertex: 4, Value: 120}}
	llSmooth, err := LogMarginalLikelihood(k, smooth, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	llJagged, err := LogMarginalLikelihood(k, jagged, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(llSmooth > llJagged) {
		t.Errorf("smooth data must be more likely: %v vs %v", llSmooth, llJagged)
	}
	if math.IsNaN(llSmooth) || math.IsInf(llSmooth, 0) {
		t.Errorf("log likelihood = %v", llSmooth)
	}
}

func TestGridSearchML(t *testing.T) {
	g := pathGraph(12)
	truth := func(i int) float64 { return 50 + 30*math.Sin(float64(i)/3) }
	var obs []Observation
	for i := 0; i < 12; i++ {
		obs = append(obs, Observation{Vertex: i, Value: truth(i)})
	}
	res, err := GridSearchML(g, obs, []float64{0.5, 2, 8}, []float64{0.1, 1, 5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 9 {
		t.Errorf("Evaluated = %d", res.Evaluated)
	}
	if res.Alpha == 0 || res.Beta == 0 {
		t.Error("no hyperparameters selected")
	}
	// Training RMSE of the ML winner must be small on smooth data.
	if res.RMSE > 10 {
		t.Errorf("winner training RMSE = %v", res.RMSE)
	}
	if _, err := GridSearchML(g, obs, nil, []float64{1}, 0.5); err == nil {
		t.Error("empty grid must error")
	}
	if _, err := GridSearchML(g, nil, []float64{1}, []float64{1}, 0.5); err == nil {
		t.Error("no observations must error")
	}
}

func TestGridSearchWorkersBitIdentical(t *testing.T) {
	// The parallel search must return the exact same GridSearchResult —
	// every float bit — regardless of the worker count: work units are
	// independent and the reduction is a serial scan in grid order.
	g := citygraph.GenerateDublin(citygraph.DublinConfig{GridX: 10, GridY: 7, Seed: 3})
	truth := func(i int) float64 { return 200 + 120*math.Sin(float64(i)/9) }
	var obs []Observation
	for i := 0; i < g.NumVertices(); i += 3 {
		obs = append(obs, Observation{Vertex: i, Value: truth(i)})
	}
	alphas := []float64{0.5, 2, 8}
	betas := []float64{0.1, 1, 5}
	want, err := GridSearchWith(g, obs, alphas, betas, 1, 4, 7, SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want.Evaluated != 9 || math.IsInf(want.RMSE, 1) {
		t.Fatalf("serial search result implausible: %+v", want)
	}
	for _, workers := range []int{4, 8} {
		got, err := GridSearchWith(g, obs, alphas, betas, 1, 4, 7, SearchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Workers=%d: result %+v differs from serial %+v", workers, got, want)
		}
	}
	// The option-less wrapper uses default parallelism and must agree too.
	got, err := GridSearch(g, obs, alphas, betas, 1, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("GridSearch default result %+v differs from serial %+v", got, want)
	}
}

func TestRescaleIsView(t *testing.T) {
	// Rescale must not clone the n×n matrix: views share the backing
	// array and fold the factor into every access.
	g := pathGraph(6)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := k.Rescale(4)
	if err != nil {
		t.Fatal(err)
	}
	if &kr.k.Data[0] != &k.k.Data[0] {
		t.Error("Rescale cloned the kernel matrix")
	}
	if math.Abs(kr.At(1, 2)-k.At(1, 2)/4) > 1e-15 {
		t.Errorf("view scaling wrong: %v vs %v", kr.At(1, 2), k.At(1, 2))
	}
	// Stacked views compose multiplicatively.
	krr, err := kr.Rescale(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(krr.At(0, 0)-k.At(0, 0)/10) > 1e-15 {
		t.Errorf("stacked rescale broken: %v vs %v", krr.At(0, 0), k.At(0, 0)/10)
	}
	// And a fit against the view must match a fit against a directly
	// built kernel with the same effective β.
	direct, err := RegularizedLaplacian(g, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Vertex: 0, Value: 80}, {Vertex: 5, Value: 20}}
	rView, err := Fit(krr, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rDirect, err := Fit(direct, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mv, _, err := rView.Predict([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	md, _, err := rDirect.Predict([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mv {
		if math.Abs(mv[i]-md[i]) > 1e-9 {
			t.Errorf("view fit diverges from direct fit: %v vs %v", mv, md)
		}
	}
}

func TestFitHeterogeneousNoiseCombinesWithDefault(t *testing.T) {
	// A default-noise reading (Noise: 0 → noiseVar) and an explicit-
	// noise reading at the same vertex must fuse by inverse-variance
	// weighting: equivalent to one observation at the fused value with
	// the combined precision.
	g := pathGraph(5)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	const noiseVar = 0.1
	mixed := []Observation{
		{Vertex: 2, Value: 10},             // uses noiseVar
		{Vertex: 2, Value: 40, Noise: 0.3}, // explicit
		{Vertex: 0, Value: 25},
	}
	fusedValue := (10/noiseVar + 40/0.3) / (1/noiseVar + 1/0.3)
	fusedNoise := 1 / (1/noiseVar + 1/0.3)
	fused := []Observation{
		{Vertex: 2, Value: fusedValue, Noise: fusedNoise},
		{Vertex: 0, Value: 25},
	}
	rMixed, err := Fit(k, mixed, noiseVar)
	if err != nil {
		t.Fatal(err)
	}
	rFused, err := Fit(k, fused, noiseVar)
	if err != nil {
		t.Fatal(err)
	}
	mm, vm, err := rMixed.Predict([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	mf, vf, err := rFused.Predict([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mm {
		if math.Abs(mm[i]-mf[i]) > 1e-9 || math.Abs(vm[i]-vf[i]) > 1e-9 {
			t.Errorf("mixed-noise fusion diverges: mean %v vs %v, var %v vs %v", mm, mf, vm, vf)
		}
	}
}

func TestFitConstantObservationsScaleFloor(t *testing.T) {
	// All-equal observations have zero empirical variance; the scale
	// floor must keep the fit finite and reproduce the constant.
	g := pathGraph(6)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Vertex: 0, Value: 42}, {Vertex: 2, Value: 42}, {Vertex: 5, Value: 42}}
	reg, err := Fit(k, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance, err := reg.Predict([]int{0, 2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range mean {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("constant fit produced %v at %d", m, i)
		}
		if math.Abs(m-42) > 5 {
			t.Errorf("prediction %d = %v, want ≈ 42", i, m)
		}
		if variance[i] < 0 || math.IsNaN(variance[i]) {
			t.Errorf("variance %d = %v", i, variance[i])
		}
	}
}

func TestFitDuplicateAveragingDeterministic(t *testing.T) {
	g := pathGraph(5)
	k, err := RegularizedLaplacian(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{
		{Vertex: 1, Value: 10}, {Vertex: 1, Value: 20}, {Vertex: 1, Value: 60, Noise: 0.4},
		{Vertex: 3, Value: 5}, {Vertex: 3, Value: 7},
	}
	// Same input order: results must be bit-identical run to run (the
	// per-vertex accumulation must not leak map iteration order).
	r1, err := Fit(k, obs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fit(k, obs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m1, v1, err := r1.Predict([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	m2, v2, err := r2.Predict([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if m1[i] != m2[i] || v1[i] != v2[i] {
			t.Errorf("repeated Fit not bit-identical: %v vs %v", m1, m2)
		}
	}
	// Permuted duplicates: same model up to floating-point tolerance.
	perm := []Observation{
		{Vertex: 3, Value: 7}, {Vertex: 1, Value: 60, Noise: 0.4}, {Vertex: 3, Value: 5},
		{Vertex: 1, Value: 20}, {Vertex: 1, Value: 10},
	}
	rp, err := Fit(k, perm, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mp, _, err := rp.Predict([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if math.Abs(m1[i]-mp[i]) > 1e-9 {
			t.Errorf("duplicate order changed the model: %v vs %v", m1, mp)
		}
	}
}
