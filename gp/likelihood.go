package gp

import (
	"fmt"
	"math"
	"sort"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/internal/linalg"
)

// LogMarginalLikelihood returns the log evidence log p(y | K, σ²) of
// the observations under the GP prior — the canonical model-selection
// criterion for GP hyperparameters (the paper's grid search leaves its
// criterion unspecified; this is the standard alternative to the
// cross-validated error used by GridSearch):
//
//	log p(y) = −½ yᵀ(K_uu+σ²I)⁻¹y − ½ log|K_uu+σ²I| − n/2 · log 2π
//
// Observations are standardized exactly like Fit does, so values are
// comparable across hyperparameters but not across data sets.
func LogMarginalLikelihood(k *Kernel, obs []Observation, noiseVar float64) (float64, error) {
	reg, err := Fit(k, obs, noiseVar)
	if err != nil {
		return 0, err
	}
	// alphaVec = A⁻¹ỹ with A = K_uu + Σnoise = L·Lᵀ, so the data-fit
	// term ỹᵀA⁻¹ỹ equals αᵀAα = |Lᵀα|².
	n := len(reg.observed)
	lt := make([]float64, n)
	// lt = Lᵀ·α
	for i := 0; i < n; i++ {
		var s float64
		for j := i; j < n; j++ {
			s += reg.chol.L.At(j, i) * reg.alphaVec[j]
		}
		lt[i] = s
	}
	quad := linalg.Dot(lt, lt) // αᵀ L Lᵀ α = ỹᵀ A⁻¹ ỹ
	logDet := reg.chol.LogDet()
	return -0.5*quad - 0.5*logDet - float64(n)/2*math.Log(2*math.Pi), nil
}

// GridSearchML selects (α, β) from the grids by maximising the log
// marginal likelihood, reusing one Laplacian inversion per α.
func GridSearchML(g *citygraph.Graph, obs []Observation, alphas, betas []float64, noiseVar float64) (GridSearchResult, error) {
	if len(alphas) == 0 || len(betas) == 0 {
		return GridSearchResult{}, fmt.Errorf("gp: empty hyperparameter grid")
	}
	if len(obs) == 0 {
		return GridSearchResult{}, fmt.Errorf("gp: no observations")
	}
	best := GridSearchResult{RMSE: math.Inf(1)}
	bestLL := math.Inf(-1)
	for _, a := range alphas {
		base, err := RegularizedLaplacian(g, a, 1)
		if err != nil {
			return GridSearchResult{}, err
		}
		for _, b := range betas {
			k, err := base.Rescale(b)
			if err != nil {
				return GridSearchResult{}, err
			}
			ll, err := LogMarginalLikelihood(k, obs, noiseVar)
			if err != nil {
				return GridSearchResult{}, err
			}
			best.Evaluated++
			if ll > bestLL {
				bestLL = ll
				best.Alpha, best.Beta = a, b
				// Report the training RMSE of the winner for
				// comparability with GridSearch.
				best.RMSE = trainRMSE(k, obs, noiseVar)
			}
		}
	}
	return best, nil
}

// trainRMSE is the in-sample RMSE of the predictive mean.
func trainRMSE(k *Kernel, obs []Observation, noiseVar float64) float64 {
	reg, err := Fit(k, obs, noiseVar)
	if err != nil {
		return math.Inf(1)
	}
	// Deduplicate like Fit does: score against per-vertex means.
	perVertex := make(map[int][]float64)
	for _, o := range obs {
		perVertex[o.Vertex] = append(perVertex[o.Vertex], o.Value)
	}
	vertices := make([]int, 0, len(perVertex))
	for v := range perVertex {
		vertices = append(vertices, v)
	}
	sort.Ints(vertices)
	mean, _, err := reg.Predict(vertices)
	if err != nil {
		return math.Inf(1)
	}
	var sq float64
	for i, v := range vertices {
		var avg float64
		for _, val := range perVertex[v] {
			avg += val
		}
		avg /= float64(len(perVertex[v]))
		d := mean[i] - avg
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(vertices)))
}
