// Package gp implements the traffic modelling component of Artikis et
// al. (EDBT 2014, Section 6): Gaussian Process regression over the
// city street graph, used to estimate traffic flow at locations with
// low or non-existent sensor coverage (the data sparsity problem).
//
// The latent traffic flow f_i at each junction follows a GP whose
// covariance is a graph kernel; observed flows are the latent values
// plus Gaussian noise, y_i = f_i + ε_i with ε_i ~ N(0, σ²). Lacking
// information on preferred routes, the paper opts for the commonly
// used regularized Laplacian kernel
//
//	K = [β(L + I/α²)]⁻¹
//
// where L = D − A is the combinatorial Laplacian of the street graph
// and α, β are hyperparameters chosen by grid search within [0, 10].
// The predictive distribution at unobserved junctions ū given
// observations y at junctions u is Gaussian with
//
//	m = K_{ū,u}(K_{u,u} + σ²I)⁻¹ y
//	Σ = K_{ū,ū} − K_{ū,u}(K_{u,u} + σ²I)⁻¹ K_{u,ū}
package gp

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"

	"github.com/insight-dublin/insight/citygraph"
	"github.com/insight-dublin/insight/internal/linalg"
)

// Observation is a reading mapped onto a graph vertex: the aggregated
// traffic flow measured (or inferred) at junction Vertex.
//
// Noise optionally overrides the model-wide observation noise variance
// for this observation (0 means "use the default"). Heterogeneous
// noise lets sources of different trust feed the same model — the
// paper notes that "any additional sources that can provide congestion
// information at specific locations can be incorporated in the
// training, including, specifically, the results of the crowdsourcing
// component" (Section 6); crowd-derived pseudo-readings simply carry a
// larger variance than SCATS detectors.
type Observation struct {
	Vertex int
	Value  float64
	Noise  float64
}

// Kernel is a precomputed graph kernel over all vertices of a street
// graph. Building it costs one SPD inversion (O(n³)); fitting and
// predicting against it are then cheap, and the β hyperparameter is a
// pure scaling that needs no recomputation: Rescale returns a view
// that shares the matrix and folds the factor into every access.
type Kernel struct {
	k     *linalg.Matrix
	scale float64 // multiplies every entry of k; 1 for a freshly built kernel
	n     int
}

// RegularizedLaplacian builds K = [β(L + I/α²)]⁻¹ for the graph.
// Both hyperparameters must be positive: α = 0 makes the regularizer
// infinite and β = 0 makes the kernel unbounded.
func RegularizedLaplacian(g *citygraph.Graph, alpha, beta float64) (*Kernel, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("gp: empty graph")
	}
	if alpha <= 0 || beta <= 0 {
		return nil, fmt.Errorf("gp: hyperparameters must be positive (alpha=%v, beta=%v)", alpha, beta)
	}
	l := g.Laplacian()
	l.AddDiag(1 / (alpha * alpha))
	inv, err := linalg.InverseSPD(l.Scale(beta))
	if err != nil {
		return nil, fmt.Errorf("gp: kernel inversion: %w", err)
	}
	return &Kernel{k: inv, scale: 1, n: g.NumVertices()}, nil
}

// NumVertices returns the kernel dimension.
func (k *Kernel) NumVertices() int { return k.n }

// At returns the covariance k(x_i, x_j).
func (k *Kernel) At(i, j int) float64 { return k.scale * k.k.At(i, j) }

// Rescale returns a view of the kernel with β multiplied by factor
// (K' = K / factor), without re-inverting the Laplacian. The view
// shares the underlying matrix — O(1) instead of the O(n²) clone the
// seed paid per β — which is what lets GridSearch sweep β for free.
func (k *Kernel) Rescale(factor float64) (*Kernel, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("gp: rescale factor must be positive, got %v", factor)
	}
	return &Kernel{k: k.k, scale: k.scale / factor, n: k.n}, nil
}

// Regression is a GP fitted to observations. Build with Fit.
type Regression struct {
	kernel   *Kernel
	observed []int     // u: observed vertex indexes
	alphaVec []float64 // (K_{u,u} + σ̃²I)⁻¹ ỹ in standardized units
	chol     *linalg.Cholesky
	mean     float64 // empirical mean subtracted from y (paper assumes zero mean)
	scale    float64 // empirical std dividing y, so the kernel's O(1) scale fits
	noise    float64 // σ² in original units
}

// Fit conditions the GP on the observations. noiseVar is σ², the
// observation noise variance in the units of the observations; it must
// be positive (a zero-noise GP on a singular kernel block is
// numerically fragile and physically implausible for traffic counts).
// Duplicate observations of the same vertex are averaged.
//
// Observations are standardized internally (the paper assumes a
// zero-mean GP; standardization additionally reconciles the O(1) scale
// of the regularized Laplacian kernel with arbitrary measurement
// units, so the β ∈ [0, 10] grid of the paper stays meaningful for
// vehicle-per-hour flows). Predictions are mapped back to the original
// units.
func Fit(k *Kernel, obs []Observation, noiseVar float64) (*Regression, error) {
	if k == nil {
		return nil, fmt.Errorf("gp: nil kernel")
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("gp: no observations")
	}
	if noiseVar <= 0 {
		return nil, fmt.Errorf("gp: noise variance must be positive, got %v", noiseVar)
	}
	// Combine duplicate observations of a vertex by inverse-variance
	// weighting (plain averaging when all noises are equal), validate
	// indexes and per-observation noises.
	type accum struct {
		weighted  float64 // Σ v/σ²
		precision float64 // Σ 1/σ²
	}
	sums := make(map[int]*accum)
	for _, o := range obs {
		if o.Vertex < 0 || o.Vertex >= k.n {
			return nil, fmt.Errorf("gp: observation vertex %d out of range [0, %d)", o.Vertex, k.n)
		}
		ov := o.Noise
		if ov == 0 {
			ov = noiseVar
		}
		if ov < 0 {
			return nil, fmt.Errorf("gp: negative observation noise %v at vertex %d", ov, o.Vertex)
		}
		a := sums[o.Vertex]
		if a == nil {
			a = &accum{}
			sums[o.Vertex] = a
		}
		a.weighted += o.Value / ov
		a.precision += 1 / ov
	}
	observed := make([]int, 0, len(sums))
	for v := range sums {
		observed = append(observed, v)
	}
	// Deterministic order.
	sort.Ints(observed)
	y := make([]float64, len(observed))
	noises := make([]float64, len(observed))
	var mean float64
	for i, v := range observed {
		a := sums[v]
		y[i] = a.weighted / a.precision
		noises[i] = 1 / a.precision
		mean += y[i]
	}
	mean /= float64(len(y))
	var variance float64
	for i := range y {
		y[i] -= mean
		variance += y[i] * y[i]
	}
	variance /= float64(len(y))
	scale := math.Sqrt(variance)
	if scale < 1e-12 {
		scale = 1 // constant observations: keep units as-is
	}
	for i := range y {
		y[i] /= scale
	}

	kuu := k.k.Submatrix(observed, observed)
	if k.scale != 1 { //lint:allow floateq exact sentinel: Rescale sets 1 literally, meaning "no rescale applied"
		kuu.Scale(k.scale)
	}
	for i, nv := range noises {
		kuu.Add(i, i, nv/(scale*scale))
	}
	chol, err := linalg.NewCholesky(kuu)
	if err != nil {
		return nil, fmt.Errorf("gp: observed-block factorization: %w", err)
	}
	return &Regression{
		kernel:   k,
		observed: observed,
		alphaVec: chol.SolveVec(y),
		chol:     chol,
		mean:     mean,
		scale:    scale,
		noise:    noiseVar,
	}, nil
}

// Observed returns the observed vertex indexes, sorted.
func (r *Regression) Observed() []int { return r.observed }

// Predict returns the predictive mean and variance at the given
// vertices.
func (r *Regression) Predict(vertices []int) (mean, variance []float64, err error) {
	mean = make([]float64, len(vertices))
	variance = make([]float64, len(vertices))
	cross := make([]float64, len(r.observed))
	for i, v := range vertices {
		if v < 0 || v >= r.kernel.n {
			return nil, nil, fmt.Errorf("gp: vertex %d out of range [0, %d)", v, r.kernel.n)
		}
		for j, u := range r.observed {
			cross[j] = r.kernel.At(v, u)
		}
		mean[i] = r.mean + r.scale*linalg.Dot(cross, r.alphaVec)
		sol := r.chol.SolveVec(cross)
		variance[i] = (r.kernel.At(v, v) - linalg.Dot(cross, sol)) * r.scale * r.scale
		if variance[i] < 0 {
			variance[i] = 0 // numerical floor
		}
	}
	return mean, variance, nil
}

// PredictAll returns the predictive mean at every vertex of the graph
// (the city-wide flow picture of Figure 9).
func (r *Regression) PredictAll() ([]float64, error) {
	vertices := make([]int, r.kernel.n)
	for i := range vertices {
		vertices[i] = i
	}
	mean, _, err := r.Predict(vertices)
	return mean, err
}

// GridSearchResult is the outcome of a hyperparameter search.
type GridSearchResult struct {
	Alpha, Beta float64
	// RMSE is the cross-validated root mean squared error at the
	// chosen hyperparameters.
	RMSE float64
	// Evaluated counts the (α, β) pairs scored.
	Evaluated int
}

// SearchOptions tune GridSearchWith.
type SearchOptions struct {
	// Workers bounds the goroutines used for the (α, fold) work units
	// (and the per-α kernel builds). 0 means GOMAXPROCS; 1 is fully
	// serial. The result is bit-identical for every Workers value:
	// work units are independent and the best-(α, β) reduction is a
	// serial scan in grid order.
	Workers int
}

// GridSearch chooses (α, β) by k-fold cross-validation of the
// predictive mean over the observations, mirroring the paper's
// "hyperparameters are chosen in advance using grid search within the
// interval [0, …, 10]" (zero itself is excluded: the kernel is
// undefined there), with the default parallelism.
func GridSearch(g *citygraph.Graph, obs []Observation, alphas, betas []float64, noiseVar float64, folds int, seed int64) (GridSearchResult, error) {
	return GridSearchWith(g, obs, alphas, betas, noiseVar, folds, seed, SearchOptions{})
}

// GridSearchWith is GridSearch with explicit options. The Laplacian is
// inverted once per α (the O(n³) part, run in parallel across the α
// grid); β values reuse it through O(1) rescale views; fold partitions
// are materialized once up front (the seed rebuilt them for every
// (α, β, fold) triple); and cross-validation fans out over (α, fold)
// work units. Ties on RMSE resolve to the earliest (α, β) in grid
// order, independent of scheduling.
func GridSearchWith(g *citygraph.Graph, obs []Observation, alphas, betas []float64, noiseVar float64, folds int, seed int64, opt SearchOptions) (GridSearchResult, error) {
	if len(alphas) == 0 || len(betas) == 0 {
		return GridSearchResult{}, fmt.Errorf("gp: empty hyperparameter grid")
	}
	if folds < 2 {
		return GridSearchResult{}, fmt.Errorf("gp: need at least 2 folds, got %d", folds)
	}
	if len(obs) < folds {
		return GridSearchResult{}, fmt.Errorf("gp: %d observations cannot fill %d folds", len(obs), folds)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(obs))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Fold partitions, once. Fold f tests the observations at positions
	// i ≡ f (mod folds) of the permutation and trains on the rest —
	// identical to the seed's per-triple rebuild.
	train := make([][]Observation, folds)
	test := make([][]Observation, folds)
	for f := 0; f < folds; f++ {
		for i, pi := range perm {
			if i%folds == f {
				test[f] = append(test[f], obs[pi])
			} else {
				train[f] = append(train[f], obs[pi])
			}
		}
	}

	// One Laplacian inversion per α, in parallel.
	bases := make([]*Kernel, len(alphas))
	baseErr := make([]error, len(alphas))
	linalg.ParallelFor(workers, len(alphas), func(ai int) {
		bases[ai], baseErr[ai] = RegularizedLaplacian(g, alphas[ai], 1)
	})
	for _, err := range baseErr {
		if err != nil {
			return GridSearchResult{}, err
		}
	}

	// Cross-validation over independent (α, fold) units; each unit
	// scores every β against its fold, writing only its own cells.
	type cell struct {
		sqErr float64
		count int
	}
	partial := make([][][]cell, len(alphas)) // [α][fold][β]
	unitErr := make([][]error, len(alphas))
	for ai := range alphas {
		partial[ai] = make([][]cell, folds)
		unitErr[ai] = make([]error, folds)
	}
	linalg.ParallelFor(workers, len(alphas)*folds, func(u int) {
		ai, f := u/folds, u%folds
		scores := make([]cell, len(betas))
		vertices := make([]int, len(test[f]))
		for i, o := range test[f] {
			vertices[i] = o.Vertex
		}
		for bi, b := range betas {
			k, err := bases[ai].Rescale(b)
			if err != nil {
				unitErr[ai][f] = err
				return
			}
			reg, err := Fit(k, train[f], noiseVar)
			if err != nil {
				unitErr[ai][f] = err
				return
			}
			mean, _, err := reg.Predict(vertices)
			if err != nil {
				unitErr[ai][f] = err
				return
			}
			for i, o := range test[f] {
				d := mean[i] - o.Value
				scores[bi].sqErr += d * d
				scores[bi].count++
			}
		}
		partial[ai][f] = scores
	})
	for ai := range alphas {
		for f := 0; f < folds; f++ {
			if err := unitErr[ai][f]; err != nil {
				return GridSearchResult{}, err
			}
		}
	}

	// Serial reduction in grid order: deterministic sums and a strict-<
	// comparison make the winner independent of scheduling, with ties
	// going to the earliest grid point.
	best := GridSearchResult{RMSE: math.Inf(1)}
	for ai, a := range alphas {
		for bi, b := range betas {
			var sqErr float64
			var count int
			for f := 0; f < folds; f++ {
				sqErr += partial[ai][f][bi].sqErr
				count += partial[ai][f][bi].count
			}
			rmse := math.Sqrt(sqErr / float64(count))
			best.Evaluated++
			if rmse < best.RMSE {
				best.Alpha, best.Beta, best.RMSE = a, b, rmse
			}
		}
	}
	return best, nil
}

// DefaultGrid returns the paper's [0, 10] search interval sampled at
// the given number of points per axis, excluding zero.
func DefaultGrid(points int) []float64 {
	if points <= 0 {
		points = 5
	}
	out := make([]float64, points)
	for i := range out {
		out[i] = 10 * float64(i+1) / float64(points)
	}
	return out
}
