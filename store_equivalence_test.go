package insight

import (
	"context"
	"fmt"
	"testing"

	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// gridCells is the store-equivalence grid: every rule-set variant of
// the Dublin deployment crossed with query steps from one window down
// to a quarter window.
var gridRuleSets = []struct {
	name string
	cfg  traffic.Config
}{
	{"crowd-validated", traffic.Config{NoisyPolicy: traffic.CrowdValidated}},
	{"pessimistic-adaptive", traffic.Config{NoisyPolicy: traffic.Pessimistic, Adaptive: true}},
	{"structured", traffic.Config{NoisyPolicy: traffic.Pessimistic, StructuredIntersections: true}},
}

// TestColumnStoreMatchesRowStoreGrid is the store-equivalence gate at
// system level: the full Dublin pipeline — every rule-set variant,
// query steps from one window down to a quarter window, and chaos
// injection dropping and duplicating rows on every stream — must
// recognise bit-identical complex events whether the partition engines
// keep their working memory row-resident or column-resident. Drop/dup
// faults keep each stream arrival-ordered, so boundary admission is
// watermark-exact and the live concurrent pipeline stays deterministic
// (out-of-order re-delivery is covered separately below, through a
// deterministic merge — see TestColumnStoreMatchesRowStoreDelayed).
func TestColumnStoreMatchesRowStoreGrid(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	const wm = Time(1800)
	steps := []Time{wm, wm / 2, wm / 4}

	chaos := ChaosConfig{Streams: map[string]streams.FaultSpec{}}
	for i, id := range []string{"bus", "scats-central", "scats-north", "scats-west", "scats-south"} {
		chaos.Streams[id] = streams.FaultSpec{
			Seed:     300 + int64(i)*11,
			DropProb: 0.06,
			DupProb:  0.06,
		}
	}

	city := testCity(t)
	run := func(tc traffic.Config, step Time, kind rtec.StoreKind) []*Report {
		t.Helper()
		sys, err := New(Config{
			City:              city,
			Seed:              7,
			WorkingMemory:     wm,
			Step:              step,
			Store:             kind,
			ColumnarTransport: true,
			UnpacedReplay:     true,
			Traffic:           tc,
		})
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := sys.BuildChaosPipeline(from, until, chaos)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := pipe.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		dropped, duplicated := 0, 0
		for _, cs := range pipe.Chaos {
			dropped += cs.Stats().Dropped
			duplicated += cs.Stats().Duplicated
		}
		if dropped == 0 || duplicated == 0 {
			t.Fatalf("chaos injected %d drops, %d dups: fault injection inert", dropped, duplicated)
		}
		return reports
	}

	for _, rs := range gridRuleSets {
		for _, step := range steps {
			t.Run(fmt.Sprintf("%s/step=%d", rs.name, int64(step)), func(t *testing.T) {
				rowReports := run(rs.cfg, step, rtec.StoreRow)
				if len(rowReports) == 0 {
					t.Fatal("row-store run produced no reports")
				}
				colReports := run(rs.cfg, step, rtec.StoreColumn)
				compareReports(t, "column vs row store", colReports, rowReports)
			})
		}
	}
}

// TestColumnStoreMatchesRowStoreDelayed is the out-of-order half of
// the grid: seeded fault injection holds rows back and re-delivers
// them after their stream's arrival watermark has passed, so blocks
// reach the engines late and out of order — the regime the dirty
// watermark exists for. Whether a held row lands before or after a
// query boundary depends on the physical interleaving of the streams,
// which the live concurrent pipeline does not pin down; both store
// runs therefore consume the same faulted batches through the
// deterministic single-threaded merge of the chaos round-trip tests
// (smallest head arrival first, ties by stream order), and the
// comparison is exact: bit-identical reports at every boundary,
// row-resident vs column-resident working memory.
func TestColumnStoreMatchesRowStoreDelayed(t *testing.T) {
	const from, until = Time(7 * 3600), Time(8 * 3600)
	const wm = Time(1800)
	steps := []Time{wm, wm / 2, wm / 4}

	before := streams.LiveBatches()
	city := testCity(t)

	mkProc := func(tc traffic.Config, step Time, kind rtec.StoreKind, ids []string) *rtecProcessor {
		t.Helper()
		sys, err := New(Config{
			City:          city,
			Seed:          7,
			WorkingMemory: wm,
			Step:          step,
			Store:         kind,
			Traffic:       tc,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := &rtecProcessor{
			system:     sys,
			step:       step,
			nextQ:      from + step,
			until:      until,
			watermarks: make(map[string]Time, len(ids)),
			degraded:   make(map[string]bool),
		}
		for _, id := range ids {
			p.watermarks[id] = from
		}
		return p
	}

	// cloneBatch copies a pooled batch row by row so two consuming
	// processors can each release their own copy.
	cloneBatch := func(b *streams.Batch) *streams.Batch {
		cp := streams.GetBatch(b.Type, b.Source)
		for i := 0; i < b.Len(); i++ {
			cp.AppendRowFrom(b, i)
		}
		return cp
	}

	collect := func(dst *[]*Report, items []streams.Item) {
		for _, it := range items {
			rep, ok := it[itemReport].(*Report)
			if !ok {
				t.Fatalf("monitoring emitted a non-report item %v", it)
			}
			*dst = append(*dst, rep)
		}
	}

	for _, rs := range gridRuleSets {
		for _, step := range steps {
			t.Run(fmt.Sprintf("%s/step=%d", rs.name, int64(step)), func(t *testing.T) {
				bstreams := city.CollectBatches(from, until, 512, step/2)
				type cursor struct {
					id   string
					src  *streams.ChaosSource
					next *streams.Batch
					done bool
				}
				ids := make([]string, 0, len(bstreams))
				cursors := make([]*cursor, 0, len(bstreams))
				for i, bs := range bstreams {
					ids = append(ids, bs.ID)
					items := make([]streams.Item, 0, len(bs.Batches))
					for _, b := range bs.Batches {
						items = append(items, streams.BatchItem(b))
					}
					cursors = append(cursors, &cursor{
						id: bs.ID,
						src: streams.NewChaosSource(streams.NewSliceSource(items...), streams.FaultSpec{
							Seed:      300 + int64(i)*11,
							DropProb:  0.03,
							DelayProb: 0.10,
							DelayMax:  4,
						}),
					})
				}
				advance := func(c *cursor) {
					it, ok := c.src.Read()
					if !ok {
						c.next, c.done = nil, true
						return
					}
					b, isBatch := streams.ItemBatch(it)
					if !isBatch {
						t.Fatalf("stream %s: injector emitted a non-batch item", c.id)
					}
					c.next = b
				}
				for _, c := range cursors {
					advance(c)
				}

				rowProc := mkProc(rs.cfg, step, rtec.StoreRow, ids)
				colProc := mkProc(rs.cfg, step, rtec.StoreColumn, ids)
				var rowReports, colReports []*Report
				fed := 0
				for {
					pick := -1
					for i, c := range cursors {
						if c.done {
							continue
						}
						if pick < 0 || c.next.Arrivals[0] < cursors[pick].next.Arrivals[0] {
							pick = i
						}
					}
					if pick < 0 {
						break
					}
					c := cursors[pick]
					b := c.next
					fed += b.Len()

					cp := cloneBatch(b)
					outs, err := colProc.ProcessBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					collect(&colReports, outs)
					outs, err = rowProc.ProcessBatch(cp)
					if err != nil {
						t.Fatal(err)
					}
					collect(&rowReports, outs)
					advance(c)
				}
				if fed == 0 {
					t.Fatal("no rows survived fault injection")
				}
				delayed := 0
				for _, c := range cursors {
					delayed += c.src.Stats().Delayed
				}
				if delayed == 0 {
					t.Fatal("no rows were re-ordered: delay injection inert")
				}

				outs, err := colProc.Flush()
				if err != nil {
					t.Fatal(err)
				}
				collect(&colReports, outs)
				outs, err = rowProc.Flush()
				if err != nil {
					t.Fatal(err)
				}
				collect(&rowReports, outs)

				if len(rowReports) == 0 {
					t.Fatal("row-store run produced no reports")
				}
				compareReports(t, "column vs row store (delayed)", colReports, rowReports)
			})
		}
	}
	if live := streams.LiveBatches(); live != before {
		t.Errorf("live batches = %d, want %d: delayed buffers not returned to the pool", live, before)
	}
}
