package insight

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/streams"
	"github.com/insight-dublin/insight/traffic"
)

// shardFingerprint is ceFingerprint minus Stats.InputEvents: the
// sharded tier replicates sensor and crowd SDEs to every shard, so its
// engine-level input count legitimately exceeds the single-engine
// reference. Everything recognition produces — the CE sets, alerts,
// crowd rounds, derived and fresh events, fed-event count — must still
// match bit for bit.
func shardFingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q=%d window=[%d,%d) fed=%d\n",
		rep.Q, rep.Window.Start, rep.Window.End, rep.FedEvents)
	fmt.Fprintf(&b, "congested=%s\n", join(rep.CongestedIntersections))
	fmt.Fprintf(&b, "busAreas=%s\n", join(rep.BusCongestionAreas))
	fmt.Fprintf(&b, "disagree=%s\n", join(rep.Disagreements))
	fmt.Fprintf(&b, "warnings=%s\n", join(rep.CongestionWarnings))
	fmt.Fprintf(&b, "unusual=%s\n", join(rep.UnusualCongestion))
	fmt.Fprintf(&b, "noisy=%s\n", join(rep.NoisyBuses))
	for _, a := range rep.Alerts {
		fmt.Fprintf(&b, "alert %s|%s|%d|%s\n", a.Kind, a.Key, a.Time, a.Text)
	}
	for _, c := range rep.CrowdRounds {
		fmt.Fprintf(&b, "crowd %s|%d|%s\n", c.Intersection, c.Queried, c.Verdict.Best)
	}
	if rep.Result != nil {
		types := make([]string, 0, len(rep.Result.Derived))
		for typ := range rep.Result.Derived {
			types = append(types, typ)
		}
		sort.Strings(types)
		for _, typ := range types {
			for _, ev := range rep.Result.Derived[typ] {
				fmt.Fprintf(&b, "derived %s|%s|%d\n", ev.Type, ev.Key, ev.Time)
			}
		}
		for _, ev := range rep.Result.Fresh {
			fmt.Fprintf(&b, "fresh %s|%s|%d|%s\n", ev.Type, ev.Key, ev.Time, rtec.CanonicalAttrs(ev))
		}
	}
	return b.String()
}

func compareShardReports(t *testing.T, label string, got, want []*Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range got {
		gf, wf := shardFingerprint(got[i]), shardFingerprint(want[i])
		if gf != wf {
			t.Errorf("%s: report %d differs:\n--- sharded ---\n%s--- reference ---\n%s", label, i, gf, wf)
		}
	}
}

// TestShardEquivalenceGrid is the tentpole gate: the full Dublin
// pipeline — crowdsourcing loop included, chaos dropping and
// duplicating rows on every stream — must recognise bit-identical
// complex events through the N-way sharded recognition tier at every
// shard count and with either store kind, compared against the
// single-engine reference (the legacy path with one partition).
func TestShardEquivalenceGrid(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	const wm = Time(1800)

	chaos := ChaosConfig{Streams: map[string]streams.FaultSpec{}}
	for i, id := range []string{"bus", "scats-central", "scats-north", "scats-west", "scats-south"} {
		chaos.Streams[id] = streams.FaultSpec{
			Seed:     300 + int64(i)*11,
			DropProb: 0.06,
			DupProb:  0.06,
		}
	}

	city := testCity(t)
	run := func(shards int, kind rtec.StoreKind) []*Report {
		t.Helper()
		sys, err := New(Config{
			City:              city,
			Seed:              7,
			WorkingMemory:     wm,
			Step:              wm / 2,
			Partitions:        1, // single-engine reference when Shards == 0
			Shards:            shards,
			Store:             kind,
			Participants:      testParticipants(city, 8),
			ColumnarTransport: true,
			UnpacedReplay:     true,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := sys.BuildChaosPipeline(from, until, chaos)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := pipe.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		dropped, duplicated := 0, 0
		for _, cs := range pipe.Chaos {
			dropped += cs.Stats().Dropped
			duplicated += cs.Stats().Duplicated
		}
		if dropped == 0 || duplicated == 0 {
			t.Fatalf("chaos injected %d drops, %d dups: fault injection inert", dropped, duplicated)
		}
		return reports
	}

	reference := run(0, rtec.StoreRow)
	if len(reference) == 0 {
		t.Fatal("reference run produced no reports")
	}
	nonEmpty := false
	for _, rep := range reference {
		if len(rep.CongestedIntersections) > 0 || len(rep.BusCongestionAreas) > 0 {
			nonEmpty = true
		}
	}
	if !nonEmpty {
		t.Fatal("reference run recognised nothing: grid is vacuous")
	}

	for _, n := range []int{1, 2, 4, 8} {
		for _, kind := range []rtec.StoreKind{rtec.StoreRow, rtec.StoreColumn} {
			t.Run(fmt.Sprintf("shards=%d/store=%v", n, kind), func(t *testing.T) {
				compareShardReports(t, fmt.Sprintf("%d shards vs single engine", n),
					run(n, kind), reference)
			})
		}
	}
}

// TestShardRebalanceDeterminism pins the migration path: a run that
// migrates live bus and sensor keys between shards mid-window must
// produce bit-identical reports to the same run without any
// rebalancing — no derived event dropped or duplicated across the
// ownership flip.
func TestShardRebalanceDeterminism(t *testing.T) {
	const from, until = Time(7 * 3600), Time(9 * 3600)
	const step = Time(900)
	city := testCity(t)

	mk := func() *System {
		t.Helper()
		sys, err := New(Config{
			City:          city,
			Seed:          7,
			WorkingMemory: 1800,
			Step:          step,
			Shards:        4,
			Store:         rtec.StoreColumn,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	var base []*Report
	sys := mk()
	if err := sys.Run(context.Background(), from, until, func(r *Report) error {
		base = append(base, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := sys.ShardRebalances(); n != 0 {
		t.Fatalf("base run rebalanced %d times; automatic rebalancing should be off", n)
	}

	// Same run, but halfway through, three live buses and two live
	// sensors migrate to the shard after their current one.
	var keys []string
	for _, b := range city.Buses()[:3] {
		keys = append(keys, b.ID)
	}
	for _, s := range city.Sensors()[:2] {
		keys = append(keys, s.ID)
	}
	sys2 := mk()
	sys2.Start(from, until)
	var moved []*Report
	mid := from + (until-from)/2
	for q := from + step; q <= until; q += step {
		rep, err := sys2.Step(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		moved = append(moved, rep)
		if q == mid {
			to := (rtec.RendezvousShard(keys[0], 4) + 1) % 4
			if err := sys2.Rebalance(keys, to); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := sys2.ShardRebalances(); n < 1 {
		t.Fatalf("rebalances = %d, want >= 1", n)
	}
	for _, rep := range moved {
		if len(rep.DegradedStreams) > 0 {
			t.Errorf("q=%d: degraded streams %v after rebalance", rep.Q, rep.DegradedStreams)
		}
	}
	compareShardReports(t, "rebalanced vs unrebalanced", moved, base)
}

// TestShardAutoRebalancePipeline runs the live columnar pipeline with
// aggressive automatic skew-driven rebalancing and checks that (a) the
// tier actually migrates keys, (b) no input stream degrades, and (c)
// recognition stays bit-identical to the single-engine reference even
// while keys move between shards during the run.
func TestShardAutoRebalancePipeline(t *testing.T) {
	const from, until = 7 * 3600, 8 * 3600
	city := testCity(t)

	run := func(shards int, factor float64) ([]*Report, *System) {
		t.Helper()
		sys, err := New(Config{
			City:              city,
			Seed:              7,
			WorkingMemory:     1800,
			Step:              900,
			Partitions:        1,
			Shards:            shards,
			RebalanceFactor:   factor,
			RebalanceMinMoves: 40,
			Store:             rtec.StoreColumn,
			ColumnarTransport: true,
			UnpacedReplay:     true,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := sys.BuildPipeline(from, until)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := pipe.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return reports, sys
	}

	reference, _ := run(0, 0)
	rebalanced, sys := run(4, 1.01)
	if n := sys.ShardRebalances(); n < 1 {
		t.Fatalf("rebalances = %d, want >= 1: skew trigger inert", n)
	}
	for _, rep := range rebalanced {
		if len(rep.DegradedStreams) > 0 {
			t.Errorf("q=%d: degraded streams %v", rep.Q, rep.DegradedStreams)
		}
	}
	compareShardReports(t, "auto-rebalanced vs single engine", rebalanced, reference)
}

// TestShardTierSnapshotRoundTrip checks the tier's own checkpoint
// surface: snapshotting a sharded system mid-run — rebalance overrides
// and all — and restoring it into a fresh system (with the other store
// kind) must continue bit-identically with the original.
func TestShardTierSnapshotRoundTrip(t *testing.T) {
	const from, until = Time(7 * 3600), Time(9 * 3600)
	const step = Time(900)
	city := testCity(t)

	var sdes []dublin.SDE
	gen := city.Stream(from, until)
	for {
		sde, ok := gen.Next()
		if !ok {
			break
		}
		sdes = append(sdes, sde)
	}

	mk := func(kind rtec.StoreKind) *System {
		t.Helper()
		sys, err := New(Config{
			City:          city,
			Seed:          7,
			WorkingMemory: 1800,
			Step:          step,
			Shards:        3,
			Store:         kind,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	sysA := mk(rtec.StoreColumn)
	sysA.StartReplay(sdes)
	mid := from + 4*step
	for q := from + step; q <= mid; q += step {
		if _, err := sysA.Step(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		if q == from+2*step {
			// Make the tier state non-trivial before the checkpoint.
			if err := sysA.Rebalance([]string{city.Buses()[0].ID}, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	snaps, err := sysA.engines.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + 2; len(snaps) != want {
		t.Fatalf("tier snapshot has %d parts, want %d (shards + reduce + tier state)", len(snaps), want)
	}

	sysB := mk(rtec.StoreRow) // snapshots are store-independent
	if err := sysB.engines.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	var tail []dublin.SDE
	for _, sde := range sdes {
		if sde.Arrival > mid {
			tail = append(tail, sde)
		}
	}
	sysB.StartReplay(tail)

	var repA, repB []*Report
	for q := mid + step; q <= until; q += step {
		ra, err := sysA.Step(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sysB.Step(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		repA = append(repA, ra)
		repB = append(repB, rb)
	}
	nonEmpty := false
	for _, rep := range repA {
		if len(rep.CongestedIntersections) > 0 {
			nonEmpty = true
		}
	}
	if !nonEmpty {
		t.Fatal("post-checkpoint run recognised nothing: round-trip is vacuous")
	}
	compareShardReports(t, "restored vs original", repB, repA)

	// A wrong-arity restore must be rejected.
	if err := sysB.engines.Restore(snaps[:3]); err == nil {
		t.Error("restore with missing snapshots must error")
	}
}

// TestShardRebalanceCounterSurvivesRestore pins the fix for a snapshot
// drift caught by the snapshotdrift analyzer: shardTier.rebalances was
// documented as captured but never serialized, so a restored tier
// reported zero migrations. The counter now rides in the ~shard/meta
// section of the tier-state pseudo-snapshot.
func TestShardRebalanceCounterSurvivesRestore(t *testing.T) {
	const from = Time(7 * 3600)
	const step = Time(900)
	city := testCity(t)

	mk := func() *System {
		t.Helper()
		sys, err := New(Config{
			City:          city,
			Seed:          7,
			WorkingMemory: 1800,
			Step:          step,
			Shards:        3,
			Traffic: traffic.Config{
				NoisyPolicy: traffic.Pessimistic,
				Adaptive:    true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	sysA := mk()
	var sdes []dublin.SDE
	gen := city.Stream(from, from+2*step)
	for {
		sde, ok := gen.Next()
		if !ok {
			break
		}
		sdes = append(sdes, sde)
	}
	sysA.StartReplay(sdes)
	if _, err := sysA.Step(context.Background(), from+step); err != nil {
		t.Fatal(err)
	}
	buses := city.Buses()
	if err := sysA.Rebalance([]string{buses[0].ID}, 2); err != nil {
		t.Fatal(err)
	}
	if err := sysA.Rebalance([]string{buses[1].ID}, 1); err != nil {
		t.Fatal(err)
	}
	want := sysA.ShardRebalances()
	if want == 0 {
		t.Fatal("manual rebalances did not increment the counter: test is vacuous")
	}

	snaps, err := sysA.engines.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sysB := mk()
	if err := sysB.engines.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	if got := sysB.ShardRebalances(); got != want {
		t.Fatalf("restored tier reports %d rebalances, want %d", got, want)
	}
}
