package insight

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/insight-dublin/insight/crowd"
	"github.com/insight-dublin/insight/crowd/qee"
	"github.com/insight-dublin/insight/dublin"
	"github.com/insight-dublin/insight/rtec"
	"github.com/insight-dublin/insight/traffic"
)

// Alert is one operator-facing notification.
type Alert struct {
	Time Time
	Kind string // e.g. "congestion", "delayIncrease", "sourceDisagreement"
	Key  string // intersection, area or bus
	Text string
}

// CrowdResolution records one crowdsourcing round.
type CrowdResolution struct {
	Intersection string
	QueryTime    Time
	Queried      int
	Verdict      crowd.Verdict
	// Event is the crowd SDE injected back into the CEP component.
	Event rtec.Event
}

// Report is the outcome of one query-time evaluation of the whole
// system: what the city operator sees on the dashboard.
type Report struct {
	Q      Time
	Window rtec.Span
	// CongestedIntersections lists intersections where
	// scatsIntCongestion holds at Q.
	CongestedIntersections []string
	// BusCongestionAreas lists areas where busCongestion holds at Q.
	BusCongestionAreas []string
	// Disagreements lists intersections where sourceDisagreement
	// holds at Q.
	Disagreements []string
	// CongestionWarnings lists sensors where congestionInTheMake
	// holds at Q — elevated, still-rising density that has not yet
	// crossed the congestion thresholds (the paper's proactive
	// monitoring motivation).
	CongestionWarnings []string
	// UnusualCongestion lists intersections congested outside the
	// expected rush periods at Q — likely incidents.
	UnusualCongestion []string
	// NoisyBuses lists buses where noisy holds at Q.
	NoisyBuses []string
	// Alerts aggregates the operator notifications of this step.
	Alerts []Alert
	// CrowdRounds are the crowdsourcing resolutions triggered.
	CrowdRounds []CrowdResolution
	// DegradedStreams lists the pipeline input streams that were
	// excluded from the watermark minimum when this boundary fired:
	// streams whose arrival watermark trailed the most advanced stream
	// by more than Config.WatermarkStaleness (the transport-layer
	// mirror of the paper's noisy-source self-adaptation). Empty in
	// fault-free runs and in the direct (non-pipeline) Run loop.
	DegradedStreams []string
	// WatermarkLag is the gap between the most advanced stream's
	// arrival watermark and Q when this boundary fired — the boundary
	// release latency in stream time. Zero in the direct Run loop.
	WatermarkLag Time
	// Stats aggregates engine statistics across partitions.
	Stats rtec.Stats
	// FedEvents is the number of SDEs delivered this step.
	FedEvents int
	// Result is the merged cross-partition recognition result, for
	// consumers that need the raw fluent intervals and derived events
	// (e.g. accuracy scoring against ground truth). Not serialized.
	Result *rtec.Result `json:"-"`
}

// Fingerprint renders the report's recognized content as a canonical
// string: the CE sets, alerts, crowd verdicts and fed-event count, but
// none of the run-shaped diagnostics (Stats, WatermarkLag,
// DegradedStreams) and not the raw Result. Two reports for the same
// query time fingerprint equal exactly when recognition produced the
// same output — the equality the crash-equivalence gate checks between
// a crashed-and-recovered run and an uninterrupted one, across which
// engine statistics legitimately differ (a restored engine has not
// re-done the pre-checkpoint work).
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "q=%d win=[%d,%d) fed=%d", int64(r.Q), int64(r.Window.Start), int64(r.Window.End), r.FedEvents)
	join := func(label string, vals []string) {
		fmt.Fprintf(&b, " %s=%s", label, strings.Join(vals, ","))
	}
	join("congested", r.CongestedIntersections)
	join("busAreas", r.BusCongestionAreas)
	join("disagree", r.Disagreements)
	join("warnings", r.CongestionWarnings)
	join("unusual", r.UnusualCongestion)
	join("noisy", r.NoisyBuses)
	for _, a := range r.Alerts {
		fmt.Fprintf(&b, " alert=%d/%s/%s/%q", int64(a.Time), a.Kind, a.Key, a.Text)
	}
	for _, cr := range r.CrowdRounds {
		fmt.Fprintf(&b, " crowd=%s/%d/%d/%s", cr.Intersection, int64(cr.QueryTime), cr.Queried, cr.Verdict.Best)
	}
	return b.String()
}

// Summary renders a one-line digest.
func (r *Report) Summary() string {
	return fmt.Sprintf("Q=%d: %d SDEs, %d congested intersections, %d bus-congestion areas, %d disagreements, %d noisy buses, %d crowd rounds, %d alerts",
		int64(r.Q), r.FedEvents, len(r.CongestedIntersections), len(r.BusCongestionAreas),
		len(r.Disagreements), len(r.NoisyBuses), len(r.CrowdRounds), len(r.Alerts))
}

// Start prepares the system to stream SDEs occurring in [from, until).
// It must be called before Step; Run does it automatically.
func (s *System) Start(from, until Time) {
	s.gen = s.city.Stream(from, until)
	s.genDone = false
	s.primed = true
	s.next = nil
	s.inbox = nil
}

// StartReplay primes the system with a pre-recorded stream (e.g. read
// back from the CSV exports of package dublin) instead of the live
// generator. The slice is copied; any order is accepted.
func (s *System) StartReplay(sdes []dublin.SDE) {
	s.gen = nil
	s.genDone = true
	s.primed = true
	s.next = nil
	s.inbox = append([]dublin.SDE(nil), sdes...)
}

// Step feeds everything that has arrived by q, evaluates the CE
// engines, runs the crowdsourcing loop on fresh disagreements and
// returns the operator report.
func (s *System) Step(ctx context.Context, q Time) (*Report, error) {
	if !s.primed {
		return nil, fmt.Errorf("insight: Step before Start or StartReplay")
	}
	fed, err := s.feed(q)
	if err != nil {
		return nil, err
	}
	return s.evaluate(ctx, q, fed, true)
}

// evaluate queries the engines at q and assembles the report. When
// resolve is set the crowdsourcing loop runs inline; the streams
// pipeline passes false and runs it in a dedicated crowd processor
// instead (Section 3's "crowdsourcing processes").
func (s *System) evaluate(ctx context.Context, q Time, fed int, resolve bool) (*Report, error) {
	results, err := s.engines.Query(q)
	if err != nil {
		return nil, err
	}
	merged := rtec.MergeResults(results)

	rep := &Report{Q: q, Window: merged.Window, Stats: merged.Stats, FedEvents: fed, Result: merged}
	rep.CongestedIntersections = holdingKeys(merged, traffic.ScatsIntCongestion, q)
	rep.BusCongestionAreas = holdingKeys(merged, traffic.BusCongestion, q)
	rep.Disagreements = holdingKeys(merged, traffic.SourceDisagreement, q)
	rep.NoisyBuses = holdingKeys(merged, traffic.Noisy, q)
	rep.CongestionWarnings = holdingKeys(merged, traffic.CongestionInMake, q)
	rep.UnusualCongestion = holdingKeys(merged, traffic.UnusualCongestion, q)

	for _, in := range rep.UnusualCongestion {
		rep.Alerts = append(rep.Alerts, Alert{
			Time: q, Kind: traffic.UnusualCongestion, Key: in,
			Text: fmt.Sprintf("congestion at %s OUTSIDE rush hours — possible incident", in),
		})
	}
	for _, sensor := range rep.CongestionWarnings {
		rep.Alerts = append(rep.Alerts, Alert{
			Time: q, Kind: traffic.CongestionInMake, Key: sensor,
			Text: fmt.Sprintf("density rising at sensor %s — congestion in the make", sensor),
		})
	}
	for _, in := range rep.CongestedIntersections {
		rep.Alerts = append(rep.Alerts, Alert{
			Time: q, Kind: "congestion", Key: in,
			Text: fmt.Sprintf("SCATS intersection %s congested", in),
		})
	}
	for _, ev := range merged.Fresh {
		switch ev.Type {
		case traffic.DelayIncrease:
			growth, _ := ev.Int("delayGrowth")
			rep.Alerts = append(rep.Alerts, Alert{
				Time: ev.Time, Kind: traffic.DelayIncrease, Key: ev.Key,
				Text: fmt.Sprintf("bus %s delay grew by %d s (possible congestion in-the-make)", ev.Key, growth),
			})
		case traffic.Disagree:
			bus, _ := ev.Str("bus")
			rep.Alerts = append(rep.Alerts, Alert{
				Time: ev.Time, Kind: traffic.Disagree, Key: ev.Key,
				Text: fmt.Sprintf("bus %s disagrees with SCATS at %s", bus, ev.Key),
			})
		}
	}

	if resolve && s.qeeEngine != nil {
		rounds, err := s.resolveDisagreements(ctx, q, merged)
		if err != nil {
			return nil, err
		}
		rep.CrowdRounds = rounds
	}
	return rep, nil
}

// resolveDisagreements runs one crowdsourcing round per intersection
// with a fresh disagree event: selects participants near the
// intersection, executes the MapReduce query, fuses the answers with
// online EM, feeds the verdict back as a crowd SDE, and reports it.
func (s *System) resolveDisagreements(ctx context.Context, q Time, merged *rtec.Result) ([]CrowdResolution, error) {
	seen := make(map[string]bool)
	var rounds []CrowdResolution
	for _, ev := range merged.Fresh {
		if ev.Type != traffic.Disagree || seen[ev.Key] {
			continue
		}
		// Only near-live disagreements are worth asking about: "we
		// can no longer ask questions about an event when it is over"
		// (Section 5.2).
		if q-ev.Time > s.cfg.Step {
			continue
		}
		seen[ev.Key] = true
		inter, ok := s.registry.Lookup(ev.Key)
		if !ok {
			continue
		}
		selected := s.cfg.CrowdSelection(s.roster.Online(), inter.Pos)
		if len(selected) == 0 {
			continue
		}
		// The CE component supplies the prior (Section 5.1): skew it
		// by what the disagreeing bus claimed.
		prior := []float64{0.5, 0.5}
		if v, _ := ev.Str("value"); v == traffic.Positive {
			prior = []float64{0.6, 0.4}
		} else {
			prior = []float64{0.4, 0.6}
		}
		query := qee.Query{
			ID:       queryTimeID(ev.Key, q),
			Question: fmt.Sprintf("Is there a traffic congestion at intersection %s?", ev.Key),
			Answers:  []string{traffic.Positive, traffic.Negative},
			Pos:      inter.Pos,
			Deadline: s.cfg.CrowdDeadline,
		}
		exec, err := s.qeeEngine.Execute(ctx, query, selected)
		if err != nil {
			return nil, err
		}
		if len(exec.Answers) == 0 {
			continue // everyone missed the deadline
		}
		verdict, err := s.estimator.Process(exec.Task(prior))
		if err != nil {
			return nil, err
		}
		// happensAt(crowd(LonInt, LatInt, Val), T): inject the verdict
		// back. It is stamped one second after Q so it arrives for the
		// NEXT window, like a real asynchronous crowd response.
		crowdEv := traffic.CrowdVerdict(q+1, ev.Key, verdict.Best)
		crowdEv.Attrs["lon"] = inter.Pos.Lon
		crowdEv.Attrs["lat"] = inter.Pos.Lat
		if err := s.engines.Input(crowdEv); err != nil {
			return nil, err
		}
		// The traffic modelling component can also use the verdict to
		// resolve sparsity (Section 2): remember it as a congestion
		// pseudo-reading for FlowMap.
		if v, ok := s.interVertex[ev.Key]; ok {
			s.lastCrowd[ev.Key] = crowdReading{
				vertex:    v,
				congested: verdict.Best == traffic.Positive,
				t:         q,
			}
		}
		rounds = append(rounds, CrowdResolution{
			Intersection: ev.Key,
			QueryTime:    q,
			Queried:      len(selected),
			Verdict:      verdict,
			Event:        crowdEv,
		})
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i].Intersection < rounds[j].Intersection })
	return rounds, nil
}

// Run evaluates the system at the regular query times from+Step,
// from+2·Step, ..., until, calling fn with each report.
func (s *System) Run(ctx context.Context, from, until Time, fn func(*Report) error) error {
	s.Start(from, until)
	for q := from + s.cfg.Step; q <= until; q += s.cfg.Step {
		rep, err := s.Step(ctx, q)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(rep); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// RunReplay is Run over a pre-recorded stream: it evaluates at the
// regular query times from+Step, ..., until, feeding the recorded SDEs
// by their arrival times.
func (s *System) RunReplay(ctx context.Context, sdes []dublin.SDE, from, until Time, fn func(*Report) error) error {
	s.StartReplay(sdes)
	for q := from + s.cfg.Step; q <= until; q += s.cfg.Step {
		rep, err := s.Step(ctx, q)
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(rep); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func holdingKeys(r *rtec.Result, fluent string, q Time) []string {
	// Iterate the fluent instances in sorted key order rather than map
	// order, so the report — and everything derived from it (alerts,
	// crowd rounds, dashboard output) — is byte-stable across runs.
	insts := r.Fluents[fluent]
	kvs := make([]rtec.KV, 0, len(insts))
	for kv := range insts {
		kvs = append(kvs, kv)
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return kvs[i].Value < kvs[j].Value
	})
	var out []string
	for _, kv := range kvs {
		if kv.Value == rtec.TrueValue && insts[kv].Contains(q) {
			out = append(out, kv.Key)
		}
	}
	return out
}

// MergeReports aggregates per-shard (or per-site) reports for the same
// query time into one operator view: CE key sets become sorted unions,
// engine statistics are summed (Elapsed: max — shards evaluate in
// parallel), WatermarkLag is the max over shards (the boundary is only
// as fresh as the slowest site), DegradedStreams is the sorted union,
// and FedEvents sum. Nil reports are skipped; returns nil when nothing
// remains. Alerts, CrowdRounds and Result are concatenation-free
// tier-level concerns and stay empty on the merged view.
func MergeReports(reports []*Report) *Report {
	var out *Report
	degraded := make(map[string]bool)
	union := func(dst *[]string, src []string) {
		m := make(map[string]bool, len(*dst)+len(src))
		for _, k := range *dst {
			m[k] = true
		}
		for _, k := range src {
			m[k] = true
		}
		merged := make([]string, 0, len(m))
		for k := range m {
			merged = append(merged, k)
		}
		sort.Strings(merged)
		*dst = merged
	}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out == nil {
			out = &Report{Q: r.Q, Window: r.Window}
		}
		union(&out.CongestedIntersections, r.CongestedIntersections)
		union(&out.BusCongestionAreas, r.BusCongestionAreas)
		union(&out.Disagreements, r.Disagreements)
		union(&out.CongestionWarnings, r.CongestionWarnings)
		union(&out.UnusualCongestion, r.UnusualCongestion)
		union(&out.NoisyBuses, r.NoisyBuses)
		for _, d := range r.DegradedStreams {
			degraded[d] = true
		}
		if r.WatermarkLag > out.WatermarkLag {
			out.WatermarkLag = r.WatermarkLag
		}
		out.Stats.InputEvents += r.Stats.InputEvents
		out.Stats.DerivedEvents += r.Stats.DerivedEvents
		out.Stats.FluentPeriods += r.Stats.FluentPeriods
		out.Stats.AllocBytes += r.Stats.AllocBytes
		out.Stats.ResidentBytes += r.Stats.ResidentBytes
		out.Stats.EvalGoroutines += r.Stats.EvalGoroutines
		if r.Stats.Elapsed > out.Stats.Elapsed {
			out.Stats.Elapsed = r.Stats.Elapsed
		}
		out.FedEvents += r.FedEvents
	}
	if out == nil {
		return nil
	}
	if len(degraded) > 0 {
		out.DegradedStreams = make([]string, 0, len(degraded))
		for d := range degraded {
			out.DegradedStreams = append(out.DegradedStreams, d)
		}
		sort.Strings(out.DegradedStreams)
	}
	return out
}

// String renders a human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Summary())
	for _, a := range r.Alerts {
		fmt.Fprintf(&b, "  [%s] t=%d %s\n", a.Kind, int64(a.Time), a.Text)
	}
	for _, c := range r.CrowdRounds {
		fmt.Fprintf(&b, "  [crowd] %s: %q (confidence %.2f, %d participants)\n",
			c.Intersection, c.Verdict.Best, c.Verdict.Confidence, c.Queried)
	}
	return b.String()
}
